"""Benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures at
full (scaled) fidelity, asserts the headline shape, and archives the
rendered output under ``benchmarks/results/`` so the numbers can be
inspected after a run.

Perf-trajectory benchmarks additionally record named measurements via
the :func:`bench_record` fixture; at the end of the session these are
written to ``benchmarks/results/BENCH_<group>.json`` and compared (in
CI, via ``tools/bench_compare.py``) against the committed baselines
``benchmarks/BENCH_<group>.json``.  Set ``REPRO_BENCH_WRITE=1`` to
refresh the committed baselines in place (``tools/bench_refresh.py``
does exactly that).
"""

import json
import os
import pathlib

import pytest

from repro.sim.device import LG_V10

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_DIR = pathlib.Path(__file__).parent

#: Version stamp for the BENCH_*.json layout.
BENCH_SCHEMA = 1


@pytest.fixture(scope="session")
def device():
    return LG_V10


@pytest.fixture(scope="session")
def archive():
    """Callable that saves a rendered experiment and echoes it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name, text):
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return save


@pytest.fixture(scope="session")
def bench_record():
    """Callable that records one perf-trajectory measurement.

    ``bench_record(group, name, value, unit=..., higher_is_better=...,
    tolerance=...)`` files the entry under ``BENCH_<group>.json``.
    ``tolerance`` is the relative regression band checked by
    ``tools/bench_compare.py`` (0.25 = fail if 25% worse than the
    committed baseline); pass ``None`` for informational entries such
    as machine-dependent absolute timings that should be tracked but
    never gate CI.
    """
    groups = {}

    def record(group, name, value, *, unit, higher_is_better, tolerance):
        groups.setdefault(group, {})[name] = {
            "value": round(float(value), 6),
            "unit": unit,
            "higher_is_better": bool(higher_is_better),
            "tolerance": tolerance,
        }

    yield record

    RESULTS_DIR.mkdir(exist_ok=True)
    for group, entries in sorted(groups.items()):
        payload = {"schema": BENCH_SCHEMA, "entries": dict(sorted(entries.items()))}
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        (RESULTS_DIR / f"BENCH_{group}.json").write_text(text)
        if os.environ.get("REPRO_BENCH_WRITE"):
            (BENCH_DIR / f"BENCH_{group}.json").write_text(text)
