"""Benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures at
full (scaled) fidelity, asserts the headline shape, and archives the
rendered output under ``benchmarks/results/`` so the numbers can be
inspected after a run.
"""

import pathlib

import pytest

from repro.sim.device import LG_V10

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def device():
    return LG_V10


@pytest.fixture(scope="session")
def archive():
    """Callable that saves a rendered experiment and echoes it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name, text):
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return save
