"""Ablations over the design choices DESIGN.md calls out."""

import pytest

from repro.harness import exp_ablations as ab


def test_diff_vs_main_only(benchmark, device, archive):
    result = benchmark.pedantic(
        lambda: ab.ablate_monitoring_mode(device, seed=9, runs_per_case=8),
        rounds=1, iterations=1,
    )
    archive(
        "ablation_monitoring_mode",
        "\n".join(
            f"{mode}: top10-corr={stats['top10']:.3f} "
            f"accuracy={stats['accuracy']:.3f} prune={stats['prune']:.3f}"
            for mode, stats in result.items()
        ),
    )
    assert result["diff"]["top10"] > result["main"]["top10"] + 0.02
    assert result["diff"]["accuracy"] >= result["main"]["accuracy"] - 0.03


def test_event_count(benchmark, device, archive):
    result = benchmark.pedantic(
        lambda: ab.ablate_event_count(device, seed=9, runs=20),
        rounds=1, iterations=1,
    )
    archive(
        "ablation_event_count",
        "\n".join(f"{k} event(s): {v}/23 bugs recognized"
                  for k, v in result.items()),
    )
    assert result[1] < result[2] <= result[3]
    assert result[3] == 23


def test_two_phase_vs_phase2_only(benchmark, device, archive):
    result = benchmark.pedantic(
        lambda: ab.ablate_two_phase(device, seed=9), rounds=1, iterations=1
    )
    archive(
        "ablation_two_phase",
        f"HD:  tp={result.hd_traced_tp} fp={result.hd_traced_fp} "
        f"overhead={result.hd_overhead:.2f}%\n"
        f"P2:  tp={result.phase2_traced_tp} fp={result.phase2_traced_fp} "
        f"overhead={result.phase2_overhead:.2f}%",
    )
    assert result.hd_traced_fp < result.phase2_traced_fp / 3
    assert result.hd_overhead < result.phase2_overhead


def test_prefix_window(benchmark, device, archive):
    result = benchmark.pedantic(
        lambda: ab.ablate_prefix_window(device, seed=9, runs_per_case=8),
        rounds=1, iterations=1,
    )
    archive(
        "ablation_prefix_window",
        f"UI false-positive rate: full-action={result['full']:.2f} "
        f"prefix-only={result['prefix']:.2f}",
    )
    assert result["prefix"] > result["full"] + 0.1


def test_reset_period(benchmark, device, archive):
    result = benchmark.pedantic(
        lambda: ab.ablate_reset_period(device, seed=9), rounds=1,
        iterations=1,
    )
    archive(
        "ablation_reset_period",
        "\n".join(
            f"reset every {period:3d}: mean {latency:.0f} executions to "
            f"catch the occasional bug" for period, latency in
            result.items()
        ),
    )
    periods = sorted(result)
    assert result[periods[0]] < result[periods[-1]]


def test_occurrence_threshold(benchmark, device, archive):
    result = benchmark.pedantic(
        lambda: ab.ablate_occurrence_threshold(device, seed=9,
                                               executions_per_action=8),
        rounds=1, iterations=1,
    )
    archive(
        "ablation_occurrence_threshold",
        "\n".join(f"threshold {t}: attribution accuracy {acc:.2f}"
                  for t, acc in result.items()),
    )
    for accuracy in result.values():
        assert accuracy >= 0.9


def test_watchdog_vs_looper_instrumentation(benchmark, device, archive):
    result = benchmark.pedantic(
        lambda: ab.ablate_watchdog(device, seed=9), rounds=1, iterations=1
    )
    archive(
        "ablation_watchdog",
        "\n".join(
            f"{name:10s} tp={tp} fp={fp} fn={fn} overhead={over:.2f}%"
            for name, (tp, fp, fn, over) in result.items()
        ),
    )
    wd = next(v for k, v in result.items() if k.startswith("WD"))
    ti = result["TI"]
    hd = result["HD"]
    # The watchdog misses hangs TI catches; Hang Doctor keeps most of
    # TI's recall at a fraction of everyone's false positives.
    assert wd[0] < ti[0]
    assert wd[2] > ti[2]
    assert hd[1] < ti[1] / 3


def test_jank_filter_alternative(benchmark, device, archive):
    result = benchmark.pedantic(
        lambda: ab.ablate_jank_filter(device, seed=9, runs_per_case=6),
        rounds=1, iterations=1,
    )
    archive(
        "ablation_jank_filter",
        "\n".join(
            f"{name:10s} recall={recall:.2f} prune={prune:.2f}"
            for name, (recall, prune) in result.items()
        ),
    )
    jank_recall, _ = result["jank"]
    counter_recall, counter_prune = result["counters"]
    # Frozen frames are a clean signal when they appear, but hangs
    # inside UI-busy actions dilute the jank ratio; the counter filter
    # keeps far higher recall.
    assert counter_recall > jank_recall + 0.2
    assert counter_prune > 0.5
