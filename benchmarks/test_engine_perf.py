"""Simulator throughput micro-benchmarks.

Not a paper artifact: raw performance of the substrate, so regressions
in the engine's hot path (counter sampling, segment construction) show
up in CI.  The fleet experiments run hundreds of thousands of
operations; the engine needs to stay in the tens of microseconds per
operation.
"""

import pytest

from repro.apps.catalog import get_app
from repro.core.hang_doctor import HangDoctor
from repro.sim.engine import ExecutionEngine


def test_engine_action_throughput(benchmark, device):
    app = get_app("K9-mail")
    engine = ExecutionEngine(device, seed=1)
    action = app.action("open_email")
    result = benchmark(lambda: engine.run_action(app, action))
    assert result.events


def test_engine_session_throughput(benchmark, device):
    app = get_app("AndStatus")
    engine = ExecutionEngine(device, seed=1)
    names = [a.name for a in app.actions]
    result = benchmark(lambda: engine.run_session(app, names, gap_ms=100.0))
    assert len(result) == len(names)


def test_hang_doctor_processing_throughput(benchmark, device):
    app = get_app("K9-mail")
    engine = ExecutionEngine(device, seed=1)
    executions = engine.run_session(
        app, [a.name for a in app.actions] * 4, gap_ms=100.0
    )

    def process_all():
        doctor = HangDoctor(app, device, seed=1)
        for execution in executions:
            doctor.process(execution)
        return doctor

    doctor = benchmark(process_all)
    assert doctor.report is not None


def test_counter_model_throughput(benchmark, device):
    from repro.base.kinds import ApiKind
    from repro.base.rng import stream
    from repro.sim.counters import CounterModel

    model = CounterModel(device)
    uarch = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0,
             "mem": 1.0}
    rng = stream("perf", 1)
    counts = benchmark(
        lambda: model.segment_counts(
            kind=ApiKind.BLOCKING, thread="main", wall_ms=300.0,
            cpu_ms=180.0, pages=900, uarch=uarch, rng=rng,
        )
    )
    assert len(counts) == 46


def test_counter_model_filter_only_throughput(benchmark, device):
    """The lazy fast path: only S-Checker's three filter events."""
    from repro.base.kinds import ApiKind
    from repro.base.rng import stream
    from repro.sim.counters import FILTER_EVENTS, CounterModel

    model = CounterModel(device, events=FILTER_EVENTS)
    uarch = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0,
             "mem": 1.0}
    rng = stream("perf", 2)
    counts = benchmark(
        lambda: model.segment_counts(
            kind=ApiKind.BLOCKING, thread="main", wall_ms=300.0,
            cpu_ms=180.0, pages=900, uarch=uarch, rng=rng,
        )
    )
    assert tuple(counts) == FILTER_EVENTS


def test_counter_model_lazy_speedup(device):
    """Filter-events-only sampling must be at least 3x faster than the
    full 46-event model.  Timed with min-of-repeats so one scheduler
    hiccup on a loaded CI box cannot fail the assertion."""
    import time

    from repro.base.kinds import ApiKind
    from repro.base.rng import stream
    from repro.sim.counters import FILTER_EVENTS, CounterModel

    uarch = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0,
             "mem": 1.0}

    def best_time(model, n=3000, reps=3):
        best = float("inf")
        for rep in range(reps):
            rng = stream("perf-speedup", rep)
            started = time.perf_counter()
            for _ in range(n):
                model.segment_counts(
                    kind=ApiKind.BLOCKING, thread="main", wall_ms=300.0,
                    cpu_ms=180.0, pages=900, uarch=uarch, rng=rng,
                )
            best = min(best, time.perf_counter() - started)
        return best

    full = best_time(CounterModel(device))
    lazy = best_time(CounterModel(device, events=FILTER_EVENTS))
    speedup = full / lazy
    assert speedup >= 3.0, (
        f"lazy counter mode only {speedup:.2f}x faster than full mode"
    )
