"""Simulator throughput micro-benchmarks.

Not a paper artifact: raw performance of the substrate, so regressions
in the engine's hot path (counter sampling, segment construction) show
up in CI.  The fleet experiments run hundreds of thousands of
operations; the engine needs to stay in the tens of microseconds per
operation.
"""

import pytest

from repro.apps.catalog import get_app
from repro.core.hang_doctor import HangDoctor
from repro.sim.engine import ExecutionEngine


def test_engine_action_throughput(benchmark, device):
    app = get_app("K9-mail")
    engine = ExecutionEngine(device, seed=1)
    action = app.action("open_email")
    result = benchmark(lambda: engine.run_action(app, action))
    assert result.events


def test_engine_session_throughput(benchmark, device):
    app = get_app("AndStatus")
    engine = ExecutionEngine(device, seed=1)
    names = [a.name for a in app.actions]
    result = benchmark(lambda: engine.run_session(app, names, gap_ms=100.0))
    assert len(result) == len(names)


def test_hang_doctor_processing_throughput(benchmark, device):
    app = get_app("K9-mail")
    engine = ExecutionEngine(device, seed=1)
    executions = engine.run_session(
        app, [a.name for a in app.actions] * 4, gap_ms=100.0
    )

    def process_all():
        doctor = HangDoctor(app, device, seed=1)
        for execution in executions:
            doctor.process(execution)
        return doctor

    doctor = benchmark(process_all)
    assert doctor.report is not None


def test_counter_model_throughput(benchmark, device):
    from repro.base.kinds import ApiKind
    from repro.base.rng import stream
    from repro.sim.counters import CounterModel

    model = CounterModel(device)
    uarch = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0,
             "mem": 1.0}
    rng = stream("perf", 1)
    counts = benchmark(
        lambda: model.segment_counts(
            kind=ApiKind.BLOCKING, thread="main", wall_ms=300.0,
            cpu_ms=180.0, pages=900, uarch=uarch, rng=rng,
        )
    )
    assert len(counts) == 46


def test_counter_model_filter_only_throughput(benchmark, device):
    """The lazy fast path: only S-Checker's three filter events."""
    from repro.base.kinds import ApiKind
    from repro.base.rng import stream
    from repro.sim.counters import FILTER_EVENTS, CounterModel

    model = CounterModel(device, events=FILTER_EVENTS)
    uarch = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0,
             "mem": 1.0}
    rng = stream("perf", 2)
    counts = benchmark(
        lambda: model.segment_counts(
            kind=ApiKind.BLOCKING, thread="main", wall_ms=300.0,
            cpu_ms=180.0, pages=900, uarch=uarch, rng=rng,
        )
    )
    assert tuple(counts) == FILTER_EVENTS


def test_counter_model_lazy_speedup(device, bench_record):
    """Filter-events-only sampling must be at least 3x faster than the
    full 46-event model.  Timed with min-of-repeats so one scheduler
    hiccup on a loaded CI box cannot fail the assertion."""
    import time

    from repro.base.kinds import ApiKind
    from repro.base.rng import stream
    from repro.sim.counters import FILTER_EVENTS, CounterModel

    uarch = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0,
             "mem": 1.0}

    def best_time(model, n=3000, reps=3):
        best = float("inf")
        for rep in range(reps):
            rng = stream("perf-speedup", rep)
            started = time.perf_counter()
            for _ in range(n):
                model.segment_counts(
                    kind=ApiKind.BLOCKING, thread="main", wall_ms=300.0,
                    cpu_ms=180.0, pages=900, uarch=uarch, rng=rng,
                )
            best = min(best, time.perf_counter() - started)
        return best

    full = best_time(CounterModel(device))
    lazy = best_time(CounterModel(device, events=FILTER_EVENTS))
    speedup = full / lazy
    bench_record(
        "engine", "counter_model.lazy_speedup_x", speedup,
        unit="x", higher_is_better=True, tolerance=0.25,
    )
    assert speedup >= 3.0, (
        f"lazy counter mode only {speedup:.2f}x faster than full mode"
    )


def _best_pair_ms(device, *, counter_events, actions=200, reps=7):
    """Best-of-repeats wall time per run_action for the reference and
    columnar paths, in milliseconds: ``(reference_ms, columnar_ms)``.

    A fresh engine per repeat so caches warm identically every time;
    the two paths alternate within each repeat so load spikes on a
    busy CI box hit both sides of the ratio, and min-of-repeats drops
    any repeat that was hit anyway.
    """
    import time

    app = get_app("K9-mail")
    plan = [app.actions[i % len(app.actions)] for i in range(actions)]
    best = {False: float("inf"), True: float("inf")}
    for _ in range(reps):
        for columnar in (False, True):
            engine = ExecutionEngine(
                device, seed=7, counter_events=counter_events,
                columnar=columnar,
            )
            started = time.perf_counter()
            for action in plan:
                engine.run_action(app, action)
            best[columnar] = min(
                best[columnar], time.perf_counter() - started
            )
    scale = 1000.0 / actions
    return best[False] * scale, best[True] * scale


def test_engine_columnar_full_mode_speedup(device, bench_record):
    """End-to-end full-mode (all 46 events) speedup of the columnar
    core over the seed-shaped reference path.  The two paths render
    byte-identical output (tests/test_columnar.py), so this ratio is a
    pure measure of the batched segment construction."""
    reference, columnar = _best_pair_ms(device, counter_events=None)
    speedup = reference / columnar
    bench_record(
        "engine", "full_mode.reference_ms_per_action", reference,
        unit="ms", higher_is_better=False, tolerance=None,
    )
    bench_record(
        "engine", "full_mode.columnar_ms_per_action", columnar,
        unit="ms", higher_is_better=False, tolerance=None,
    )
    bench_record(
        "engine", "full_mode.speedup_x", speedup,
        unit="x", higher_is_better=True, tolerance=0.25,
    )
    assert speedup >= 1.5, (
        f"columnar full mode only {speedup:.2f}x faster than reference"
    )


def test_engine_columnar_filter_only_speedup(device, bench_record):
    """End-to-end filter-only (lazy, S-Checker's three events) speedup
    of the columnar core over the seed-shaped reference path — the
    fleet's hot configuration."""
    from repro.sim.counters import FILTER_EVENTS

    reference, columnar = _best_pair_ms(device, counter_events=FILTER_EVENTS)
    speedup = reference / columnar
    bench_record(
        "engine", "filter_only.reference_ms_per_action", reference,
        unit="ms", higher_is_better=False, tolerance=None,
    )
    bench_record(
        "engine", "filter_only.columnar_ms_per_action", columnar,
        unit="ms", higher_is_better=False, tolerance=None,
    )
    bench_record(
        "engine", "filter_only.speedup_x", speedup,
        unit="x", higher_is_better=True, tolerance=0.25,
    )
    assert speedup >= 3.0, (
        f"columnar filter-only mode only {speedup:.2f}x faster than reference"
    )
