"""Figure 1: A Better Camera's buggy vs fixed main-thread timeline.

Paper: the Resume action's response time is 423 ms with ``Camera.open``
on the main thread (the dominant operation) and 160 ms once it moves
to a worker thread.
"""

import pytest

from repro.harness.exp_motivation import figure1


@pytest.fixture(scope="module")
def result(device):
    return figure1(device, seed=5, runs=40)


def test_figure1(benchmark, device, archive, result):
    run = benchmark.pedantic(
        lambda: figure1(device, seed=5, runs=40), rounds=1, iterations=1
    )
    archive("figure1", run.render())


def test_buggy_response_matches_paper(result):
    assert result.buggy_response_ms == pytest.approx(423.0, rel=0.08)


def test_fixed_response_matches_paper(result):
    assert result.fixed_response_ms == pytest.approx(160.0, rel=0.12)


def test_camera_open_dominates(result):
    assert result.buggy_breakdown[0][0] == "android.hardware.Camera.open"
    assert result.moved_api == "android.hardware.Camera.open"
