"""Figure 2(b): the Hang Bug Report entries for AndStatus.

Paper: the report lists the app's detected soft hang bugs ordered by
occurrence share — `transform` dominating (75 %), with two further
bugs at 15 % and 10 %.
"""

import pytest

from repro.apps.catalog import get_app
from repro.apps.sessions import SessionGenerator
from repro.core.hang_doctor import HangDoctor
from repro.detectors.runner import run_detector
from repro.sim.engine import ExecutionEngine


def build_report(device, seed=7, users=6, actions_per_user=80):
    app = get_app("AndStatus")
    engine = ExecutionEngine(device, seed=seed)
    doctor = HangDoctor(app, device, seed=seed)
    generator = SessionGenerator(seed=seed)
    for session in generator.fleet_sessions(app, users, actions_per_user):
        executions = engine.run_session(
            app, session.action_names, gap_ms=500.0
        )
        run_detector(doctor, executions, device_id=session.user_id)
    return doctor.report


@pytest.fixture(scope="module")
def report(device):
    return build_report(device)


def test_figure2b(benchmark, device, archive, report):
    run = benchmark.pedantic(
        lambda: build_report(device), rounds=1, iterations=1
    )
    archive("figure2b", run.render())


def test_all_three_bugs_reported(report):
    assert len(report) == 3
    operations = {entry.operation for entry in report.entries()}
    assert "com.squareup.picasso.Transformation.transform" in operations
    assert "android.graphics.BitmapFactory.decodeFile" in operations
    assert "org.andstatus.app.TimelineFormatter.formatTimeline" in operations


def test_entries_ordered_by_occurrence_share(report):
    shares = [report.occurrence_share(e) for e in report.entries()]
    assert shares == sorted(shares, reverse=True)
    assert shares[0] > shares[-1]


def test_occurrences_span_multiple_devices(report):
    top = report.entries()[0]
    assert len(top.devices) >= 3


def test_self_developed_flagged(report):
    loop = next(
        entry for entry in report.entries()
        if "formatTimeline" in entry.operation
    )
    assert loop.is_self_developed
