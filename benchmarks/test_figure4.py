"""Figure 4: the soft-hang-bug symptom distributions and the filter.

Paper: most bug samples sit above the three thresholds (positive
context-switch difference; task-clock and page-fault differences above
device-calibrated cuts) while most UI samples sit below; the fitted
filter catches 100 % of the training bugs and prunes 64 % of the UI
false positives (81 % accuracy).
"""

import pytest

from repro.harness.exp_filter import figure4


@pytest.fixture(scope="module")
def result(device):
    return figure4(device, seed=7, runs_per_case=10)


def test_figure4(benchmark, device, archive, result):
    from repro.viz import distribution_panel

    run = benchmark.pedantic(
        lambda: figure4(device, seed=7, runs_per_case=10),
        rounds=1, iterations=1,
    )
    panels = "\n\n".join(
        distribution_panel(event, bug_values, ui_values,
                           run.thresholds[event])
        for event, (bug_values, ui_values) in run.distributions.items()
    )
    archive("figure4", run.render() + "\n\n" + panels)


def test_bug_exceedance_beats_ui_everywhere(result):
    for event, (bug_rate, ui_rate) in result.exceedance.items():
        assert bug_rate > ui_rate + 0.3, event


def test_context_switch_rates_match_paper_shape(result):
    bug_rate, ui_rate = result.exceedance["context-switches"]
    assert bug_rate > 0.7   # paper: 90 % positive
    assert ui_rate < 0.25   # paper: ~10 %


def test_shipped_filter_training_recall(result):
    assert result.recall >= 0.9  # paper: 100 %


def test_shipped_filter_prunes_false_positives(result):
    assert result.prune_rate >= 0.6  # paper: 64 %


def test_shipped_filter_accuracy(result):
    assert result.accuracy >= 0.8  # paper: 81 %


def test_fitted_filter_uses_few_kernel_events(result):
    scheduling = {"context-switches", "task-clock", "cpu-clock",
                  "page-faults", "minor-faults", "cpu-migrations",
                  "major-faults"}
    chosen = set(result.fitted.thresholds)
    assert chosen <= scheduling
    assert 2 <= len(chosen) <= 4  # paper: exactly 3


def test_distributions_sorted_descending(result):
    for bug_values, ui_values in result.distributions.values():
        assert bug_values == sorted(bug_values, reverse=True)
        assert ui_values == sorted(ui_values, reverse=True)
