"""Figure 5: main/render context-switch traces over time.

Paper: during a bug hang the main thread switches and the render
thread is starved for the whole window; during a UI hang the *early*
windows still look bug-like (the main thread computes before the
render thread gets work), which is why S-Checker counts to the end of
the action.
"""

import pytest

from repro.harness.exp_filter import figure5


@pytest.fixture(scope="module")
def result(device):
    return figure5(device, seed=7)


def test_figure5(benchmark, device, archive, result):
    from repro.viz import dual_series_chart

    run = benchmark.pedantic(
        lambda: figure5(device, seed=7), rounds=1, iterations=1
    )
    charts = "\n\n".join(
        f"{name}\n" + dual_series_chart(
            [(t, m) for t, m, _ in series],
            [(t, r) for t, _, r in series],
        )
        for name, series in (("soft hang bug action", run.bug_series),
                             ("UI-API action", run.ui_series))
    )
    archive("figure5", run.render() + "\n\n" + charts)


def test_bug_hang_main_dominates_throughout(result):
    main_total = sum(m for _, m, _ in result.bug_series)
    render_total = sum(r for _, _, r in result.bug_series)
    assert main_total > 1.5 * render_total


def test_ui_action_render_dominates_overall(result):
    assert result.ui_total_positive < 0.5


def test_early_ui_windows_are_misleading(result):
    assert result.ui_early_positive > result.ui_total_positive
    assert result.ui_early_positive >= 0.5


def test_series_cover_whole_actions(result):
    assert len(result.bug_series) >= 5
    assert len(result.ui_series) >= 3
