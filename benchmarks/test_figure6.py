"""Figure 6: the K9-mail Open-email diagnosis walk-through.

Paper: the first manifested hang (1.3 s) makes S-Checker read a
positive context-switch difference and mark the action Suspicious; on
the next manifestation the Diagnoser collects ~62 stack traces and
attributes the hang to ``HtmlCleaner.clean`` with a 96 % occurrence
factor.
"""

import pytest

from repro.harness.exp_casestudy import figure6


@pytest.fixture(scope="module")
def result(device):
    return figure6(device, seed=3)


def test_figure6(benchmark, device, archive, result):
    run = benchmark.pedantic(
        lambda: figure6(device, seed=3), rounds=1, iterations=1
    )
    archive("figure6", run.render())


def test_root_cause_is_htmlcleaner_clean(result):
    assert result.root_operation == "org.htmlcleaner.HtmlCleaner.clean"
    assert result.root_file == "HtmlCleaner.java"


def test_occurrence_factor_matches_paper(result):
    assert result.occurrence_factor == pytest.approx(0.96, abs=0.06)


def test_hang_length_in_paper_band(result):
    assert 700.0 <= result.diagnoser_response_ms <= 2500.0


def test_schecker_saw_positive_context_switch_difference(result):
    assert result.schecker_values["context-switches"] > 0


def test_trace_count_tracks_hang_length(result):
    expected = result.diagnoser_response_ms / 20.0
    assert result.traces_collected == pytest.approx(expected, rel=0.3)


def test_diagnosis_happened_after_schecker(result):
    assert result.diagnoser_execution > result.schecker_execution
