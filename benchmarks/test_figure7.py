"""Figure 7: state transitioning on K9-mail's UI actions.

Paper: Folders hangs but is filtered to Normal by S-Checker (no stack
traces ever collected); Inbox hangs with bug-like symptoms once,
becomes Suspicious, costs one stack-trace collection, and is cleared
to Normal by the Diagnoser — never traced again.
"""

import pytest

from repro.harness.exp_casestudy import figure7


@pytest.fixture(scope="module")
def result(device):
    return figure7(device, seed=1, rounds=6)


def test_figure7(benchmark, device, archive, result):
    run = benchmark.pedantic(
        lambda: figure7(device, seed=1, rounds=6), rounds=1, iterations=1
    )
    archive("figure7", run.render())


def test_folders_filtered_without_tracing(result):
    assert result.traces_for("folders") == 0
    assert result.final_state("folders") == "N"


def test_inbox_false_positive_costs_exactly_one_trace(result):
    assert result.traces_for("inbox") == 1
    assert result.final_state("inbox") == "N"


def test_inbox_went_through_suspicious(result):
    states = [s.state_after for s in result.steps
              if s.action_name == "inbox"]
    assert "S" in states


def test_components_engaged_in_order(result):
    inbox_steps = [s for s in result.steps if s.action_name == "inbox"]
    components = [s.component for s in inbox_steps if s.component != "-"]
    assert components[0] == "S-Checker"
    assert "Diagnoser" in components
