"""Figure 8: detection performance and overhead vs the baselines.

Paper (averages over the representative apps): Hang Doctor traces 80 %
of the true bug hangs at <10 % of TI's false positives; UTL traces
8-22x TI's false positives; UTH misses ~62 % of the bugs; overheads
are ~25 % (UTL), ~10 % (UTH), 2.26 % (TI), 0.83 % (HD), 0.58 %
(UTH+TI).
"""

import pytest

from repro.harness.exp_comparison import figure8


@pytest.fixture(scope="module")
def result(device):
    return figure8(device, seed=2, users=2, actions_per_user=60)


def test_figure8(benchmark, device, archive, result):
    from repro.viz import hbar_chart

    run = benchmark.pedantic(
        lambda: figure8(device, seed=2, users=2, actions_per_user=60),
        rounds=1, iterations=1,
    )
    over = run.overheads()["Average"]
    chart = hbar_chart(sorted(over.items(), key=lambda kv: -kv[1]),
                       title="Average overhead (%)")
    archive("figure8", run.render() + "\n\n" + chart)


def test_hd_true_positive_share(result):
    tp = result.normalized("tp")["Average"]
    assert tp["HD"] == pytest.approx(0.8, abs=0.15)  # paper: ~0.8


def test_hd_false_positives_below_10_percent_of_ti(result):
    fp = result.normalized("fp")["Average"]
    assert fp["HD"] < 0.1


def test_utl_false_positive_explosion(result):
    fp = result.normalized("fp")["Average"]
    assert 6.0 <= fp["UTL"] <= 30.0  # paper: 8-22x


def test_uth_misses_most_bugs(result):
    tp = result.normalized("tp")["Average"]
    assert tp["UTH"] < 0.55  # paper: misses 62 %


def test_utl_catches_everything(result):
    tp = result.normalized("tp")["Average"]
    assert tp["UTL"] == pytest.approx(1.0, abs=0.02)


def test_overhead_ordering(result):
    over = result.overheads()["Average"]
    assert over["UTL"] > over["UTH"] > over["TI"] > over["HD"]


def test_hd_overhead_well_below_ti(result):
    over = result.overheads()["Average"]
    assert over["HD"] < 0.8 * over["TI"]  # paper: 63 % lower


def test_ti_overhead_matches_paper(result):
    over = result.overheads()["Average"]
    assert over["TI"] == pytest.approx(2.26, abs=0.8)


def test_no_baseline_matches_hd_quality_and_cost(result):
    """The paper's bottom line: no baseline combines high TP, low FP,
    and low overhead like Hang Doctor."""
    tp = result.normalized("tp")["Average"]
    fp = result.normalized("fp")["Average"]
    over = result.overheads()["Average"]
    for detector in ("TI", "UTL", "UTH", "UTL+TI", "UTH+TI"):
        good_tp = tp[detector] >= 0.75
        low_fp = fp[detector] <= 0.2
        cheap = over[detector] <= over["HD"] * 1.2
        assert not (good_tp and low_fp and cheap), detector
