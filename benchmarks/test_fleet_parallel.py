"""Fleet-throughput benchmark for the parallel runner.

Not a paper artifact: measures a scaled-down Table 5 run end to end,
serial and sharded, and asserts the headline guarantee of
:mod:`repro.parallel` — worker count never changes the rendered
output.  (On a single-core box the sharded run is not expected to be
faster; the benchmark exists to catch regressions in per-app cost and
in the merge path, and to exercise the pool on machines that have
one.)
"""

import pytest

from repro.harness.exp_fleet import table5

FLEET_KWARGS = dict(seed=0, users=1, actions_per_user=10, corpus_size=22)


def test_fleet_serial_throughput(benchmark, device):
    result = benchmark(lambda: table5(device, workers=1, **FLEET_KWARGS))
    assert result.apps_tested == FLEET_KWARGS["corpus_size"]


def test_fleet_sharded_throughput(benchmark, device):
    result = benchmark(lambda: table5(device, workers=2, **FLEET_KWARGS))
    assert result.apps_tested == FLEET_KWARGS["corpus_size"]


def test_fleet_sharded_output_identical(device):
    serial = table5(device, workers=1, **FLEET_KWARGS)
    sharded = table5(device, workers=4, **FLEET_KWARGS)
    assert sharded.render() == serial.render()


def test_fleet_trajectory(device, bench_record):
    """Record the scaled Table 5 fleet wall time for the perf
    trajectory (BENCH_fleet.json).

    Absolute wall times are machine-dependent, so these entries are
    informational (tolerance=None) — the gating ratios live in
    BENCH_engine.json.  The serial/sharded pair is still worth
    tracking: a regression in the shard-merge path shows up here first.
    """
    import time

    def best_seconds(workers, reps=3):
        best = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            result = table5(device, workers=workers, **FLEET_KWARGS)
            best = min(best, time.perf_counter() - started)
            assert result.apps_tested == FLEET_KWARGS["corpus_size"]
        return best

    serial = best_seconds(1)
    sharded = best_seconds(2)
    actions = FLEET_KWARGS["users"] * FLEET_KWARGS["actions_per_user"]
    total_actions = actions * FLEET_KWARGS["corpus_size"]
    bench_record(
        "fleet", "table5.serial_s", serial,
        unit="s", higher_is_better=False, tolerance=None,
    )
    bench_record(
        "fleet", "table5.sharded_s", sharded,
        unit="s", higher_is_better=False, tolerance=None,
    )
    bench_record(
        "fleet", "table5.serial_actions_per_s", total_actions / serial,
        unit="actions/s", higher_is_better=True, tolerance=None,
    )
