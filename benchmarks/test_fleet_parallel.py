"""Fleet-throughput benchmark for the parallel runner.

Not a paper artifact: measures a scaled-down Table 5 run end to end,
serial and sharded, and asserts the headline guarantee of
:mod:`repro.parallel` — worker count never changes the rendered
output.  (On a single-core box the sharded run is not expected to be
faster; the benchmark exists to catch regressions in per-app cost and
in the merge path, and to exercise the pool on machines that have
one.)
"""

import pytest

from repro.harness.exp_fleet import table5

FLEET_KWARGS = dict(seed=0, users=1, actions_per_user=10, corpus_size=22)


def test_fleet_serial_throughput(benchmark, device):
    result = benchmark(lambda: table5(device, workers=1, **FLEET_KWARGS))
    assert result.apps_tested == FLEET_KWARGS["corpus_size"]


def test_fleet_sharded_throughput(benchmark, device):
    result = benchmark(lambda: table5(device, workers=2, **FLEET_KWARGS))
    assert result.apps_tested == FLEET_KWARGS["corpus_size"]


def test_fleet_sharded_output_identical(device):
    serial = table5(device, workers=1, **FLEET_KWARGS)
    sharded = table5(device, workers=4, **FLEET_KWARGS)
    assert sharded.render() == serial.render()
