"""Cross-device generality (paper §3.3.1, "Generality of the
Analysis").

The paper verifies its correlation analysis and thresholds on an LG
V10, a Nexus 5, and a Galaxy S3: the selected events are mostly kernel
software events, so "different platforms have similar correlation
analysis results" and "the selected thresholds and events are
generally good also for other platforms".
"""

import pytest

from repro.analysis.correlation import correlate, ranked_events
from repro.analysis.thresholds import FilterFit
from repro.core.config import HangDoctorConfig
from repro.harness.exp_filter import training_samples
from repro.sim.device import ALL_DEVICES

SCHEDULING = {"context-switches", "task-clock", "cpu-clock",
              "page-faults", "minor-faults", "cpu-migrations"}


@pytest.fixture(scope="module")
def per_device_samples():
    return {
        device.name: training_samples(device, seed=7, runs_per_case=6)
        for device in ALL_DEVICES
    }


def test_generality(benchmark, archive, per_device_samples):
    def run():
        lines = []
        shipped = FilterFit(
            thresholds=dict(HangDoctorConfig().filter_thresholds)
        )
        for name, samples in per_device_samples.items():
            ranking = ranked_events(correlate(samples), top=5)
            tp, fp, fn, tn = shipped.confusion(samples)
            recall = tp / (tp + fn)
            prune = tn / (tn + fp)
            top = ", ".join(event for event, _ in ranking)
            lines.append(
                f"{name:10s} recall={recall:.2f} prune={prune:.2f} "
                f"top5=[{top}]"
            )
        return "\n".join(lines)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("generality", text)


@pytest.mark.parametrize("device", ALL_DEVICES, ids=lambda d: d.name)
def test_top5_is_kernel_scheduling_on_every_device(device,
                                                   per_device_samples):
    ranking = ranked_events(correlate(per_device_samples[device.name]),
                            top=5)
    top5 = {event for event, _ in ranking}
    assert len(top5 & SCHEDULING) >= 4, (device.name, top5)


@pytest.mark.parametrize("device", ALL_DEVICES, ids=lambda d: d.name)
def test_shipped_thresholds_transfer(device, per_device_samples):
    """The LG V10-calibrated filter keeps high recall and useful
    pruning on the other two devices."""
    shipped = FilterFit(
        thresholds=dict(HangDoctorConfig().filter_thresholds)
    )
    samples = per_device_samples[device.name]
    tp, fp, fn, tn = shipped.confusion(samples)
    assert tp / (tp + fn) >= 0.85, device.name
    assert tn / (tn + fp) >= 0.5, device.name


def test_rankings_agree_across_devices(per_device_samples):
    tops = {
        name: {e for e, _ in
               ranked_events(correlate(samples), top=6)}
        for name, samples in per_device_samples.items()
    }
    reference = tops["LG V10"]
    for name, top in tops.items():
        assert len(top & reference) >= 4, (name, top)
