"""Full paper-claim verification (the machine-readable EXPERIMENTS.md).

Runs every headline experiment and grades each measured number against
the paper's published value under the documented tolerances.
"""

import pytest

from repro.harness.paper import verify_reproduction


@pytest.fixture(scope="module")
def verification(device):
    return verify_reproduction(device)


def test_paper_claims(benchmark, device, archive, verification):
    checks, text = benchmark.pedantic(
        lambda: verify_reproduction(device), rounds=1, iterations=1
    )
    archive("paper_claims", text)


def test_no_claim_deviates(verification):
    checks, _ = verification
    deviating = [c.claim.key for c in checks if c.verdict == "deviates"]
    assert deviating == []


def test_most_claims_hold_outright(verification):
    checks, _ = verification
    holding = sum(1 for check in checks if check.verdict == "holds")
    assert holding >= 0.8 * len(checks)


def test_every_registered_claim_was_measured(verification):
    from repro.harness.paper import PAPER_CLAIMS

    checks, _ = verification
    assert {check.claim.key for check in checks} == set(PAPER_CLAIMS)
