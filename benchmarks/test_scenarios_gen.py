"""Scenario generator throughput and sweep shape.

The generator must stay cheap relative to deployment: emitting an app
is a few hundred RNG draws, so a 5000-app fleet should materialize in
well under a second.  Throughput at 1000 apps is tracked in the perf
trajectory (``BENCH_scenarios.json``); absolute apps/sec is
machine-dependent, so the entry is informational (``tolerance=None``)
— the point is the committed history, not a CI gate.
"""

import time

import pytest

from repro.harness.exp_scenarios import scenario_sweep
from repro.scenarios import DEFAULT_MIX, generate_fleet

GEN_SIZE = 1000


def test_generator_throughput_trajectory(bench_record):
    """apps/sec emitting the default-mix fleet at 1000 apps."""

    def best_seconds(reps=3):
        best = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            fleet = generate_fleet(GEN_SIZE, mix=DEFAULT_MIX, seed=0)
            best = min(best, time.perf_counter() - started)
            assert len(fleet) == GEN_SIZE
        return best

    seconds = best_seconds()
    bench_record(
        "scenarios", "generate.apps_per_s", GEN_SIZE / seconds,
        unit="apps/s", higher_is_better=True, tolerance=None,
    )
    bench_record(
        "scenarios", "generate.1000_apps_s", seconds,
        unit="s", higher_is_better=False, tolerance=None,
    )


@pytest.mark.benchmark(group="scenarios")
def test_generator_benchmark(benchmark):
    fleet = benchmark(lambda: generate_fleet(GEN_SIZE, seed=0))
    assert len(fleet) == GEN_SIZE


def test_scenario_sweep_shape(device, archive):
    """A small sweep has the expected per-archetype quality shape."""
    result = scenario_sweep(
        device, seed=0, size=120, mix=DEFAULT_MIX, users=2,
        actions_per_user=12, workers=2,
    )
    archive("scenario_sweep_120", result.render())
    blocking = result.row("main_thread_blocking")
    clean = result.row("clean")
    render = result.row("render_jank_benign")
    # Bug archetypes are found; benign archetypes stay unflagged even
    # though they hang.
    assert blocking["recall"] >= 0.5
    assert blocking["precision"] == 1.0
    assert clean["apps_flagged"] == 0
    assert render["apps_flagged"] == 0
    assert render["hangs"] > 0
