"""Seed-stability of the headline reproductions.

Not a paper artifact — a guard that the reproduction's claims hold
across independent random seeds, not just the benchmark defaults.
"""

import pytest

from repro.harness.exp_stability import (
    comparison_stability,
    filter_stability,
    fleet_stability,
)


@pytest.fixture(scope="module")
def fleet(device):
    return fleet_stability(device)


@pytest.fixture(scope="module")
def comparison(device):
    return comparison_stability(device)


@pytest.fixture(scope="module")
def filt(device):
    return filter_stability(device)


def test_stability(benchmark, device, archive, fleet, comparison, filt):
    def run():
        return "\n\n".join(
            (fleet.render(), comparison.render(), filt.render())
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    archive("stability", text)


def test_fleet_detects_most_bugs_on_every_seed(fleet):
    lo, _ = fleet.spread("bugs_detected")
    assert lo >= 30  # of the 34 ground-truth bugs


def test_fleet_missed_offline_share_stable(fleet):
    for detected, missed in zip(fleet.metrics["bugs_detected"],
                                fleet.metrics["missed_offline"]):
        assert 0.6 <= missed / detected <= 0.75  # paper: 0.68


def test_no_clean_app_flagged_on_any_seed(fleet):
    assert fleet.spread("clean_flagged") == (0.0, 0.0)


def test_hd_tp_ratio_stable(comparison):
    lo, hi = comparison.spread("hd_tp_ratio")
    assert lo >= 0.6
    assert hi <= 1.0


def test_hd_fp_ratio_always_tiny(comparison):
    _, hi = comparison.spread("hd_fp_ratio")
    assert hi <= 0.1


def test_hd_cheaper_than_ti_on_every_seed(comparison):
    for hd, ti in zip(comparison.metrics["hd_overhead"],
                      comparison.metrics["ti_overhead"]):
        assert hd < ti


def test_filter_recall_stable(filt):
    lo, _ = filt.spread("recall")
    assert lo >= 0.95


def test_filter_stays_small(filt):
    _, hi = filt.spread("events")
    assert hi <= 4
