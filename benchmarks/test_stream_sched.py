"""Elastic-scheduler overhead and stream-mode perf trajectory.

Not a paper artifact: the elastic scheduler (:mod:`repro.sched`) adds
a dispatch-round loop, weight packing, and journaling hooks between
the harnesses and the executor, and these benchmarks keep that price
visible.  The gated entry is a same-machine *ratio* — elastic
dispatch over a plain ``parallel_map`` of the identical workload — so
it travels across machines; absolute timings are informational.
"""

import time

from repro.harness.exp_stream import stream_sweep
from repro.parallel import parallel_map
from repro.sched import CostModel, ElasticScheduler, pack_by_weight

PACK_SIZE = 1000


def _best_seconds(thunk, reps=3):
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


def test_pack_by_weight_throughput(bench_record):
    """Packing 1000 weighted items should stay sub-millisecond-ish —
    it runs once per dispatch round."""
    weights = [1.0 + (i % 6) * 0.25 for i in range(PACK_SIZE)]

    def pack():
        groups = pack_by_weight(weights, 8)
        assert sum(len(g) for g in groups) == PACK_SIZE

    seconds = _best_seconds(pack)
    bench_record(
        "stream", "sched.pack_1k_ms", seconds * 1000.0,
        unit="ms", higher_is_better=False, tolerance=None,
    )


def _busy(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def test_scheduler_dispatch_overhead_ratio(bench_record):
    """Elastic dispatch vs a plain parallel_map of the same workload,
    same worker count — the scheduler's loop, packing, and accounting
    are everything the ratio pays for.  Same-machine ratio, so it
    gates the trajectory."""
    items = [20_000] * 48
    keys = [f"i{n}" for n in range(len(items))]

    plain = _best_seconds(
        lambda: parallel_map(_busy, items, workers=2)
    )

    def elastic():
        ElasticScheduler(workers=2).map(_busy, items, keys)

    sched = _best_seconds(elastic)
    ratio = sched / plain if plain > 0 else float("inf")
    bench_record(
        "stream", "sched.dispatch_overhead_ratio", ratio,
        unit="x", higher_is_better=False, tolerance=1.0,
    )
    bench_record(
        "stream", "sched.dispatch_48_shards_s", sched,
        unit="s", higher_is_better=False, tolerance=None,
    )


def test_stream_round_trajectory(device, bench_record, archive):
    """Wall time per stream round at the quick-preset scale, plus the
    cost model's calibration state at bench time."""
    started = time.perf_counter()
    result = stream_sweep(device, seed=5, rounds=3, fleet_size=2,
                          churn_rate=0.25, apps=("K9-mail",),
                          actions_per_round=8, workers=2)
    seconds = time.perf_counter() - started
    archive("stream_quick", result.render())
    assert len(result.rounds) == 3
    bench_record(
        "stream", "stream.round_ms", seconds * 1000.0 / 3,
        unit="ms", higher_is_better=False, tolerance=None,
    )
    model = CostModel.from_trajectory()
    bench_record(
        "stream", "sched.cost_anchor_ms_per_action",
        model.ms_per_action if model.ms_per_action is not None else 0.0,
        unit="ms", higher_is_better=False, tolerance=None,
    )
