"""Table 2: the timeout-value dilemma over the eight Table 1 apps.

Paper totals — TP: 0/19, 1/19, 2/19, 19/19 at 5 s / 1 s / 500 ms /
100 ms; FP: 0, 0, 8, 33.
"""

import pytest

from repro.harness.exp_motivation import table2


@pytest.fixture(scope="module")
def result(device):
    return table2(device, seed=5, executions_per_action=15)


def test_table2(benchmark, device, archive, result):
    run = benchmark.pedantic(
        lambda: table2(device, seed=5, executions_per_action=15),
        rounds=1, iterations=1,
    )
    archive("table2", run.render())


def test_anr_timeout_misses_everything(result):
    assert result.totals()[5000.0] == (0, 0)


def test_one_second_catches_only_seadroid(result):
    tp, fp = result.totals()[1000.0]
    assert tp == 1
    assert fp == 0
    assert result.per_app["SeaDroid"][1000.0][0] == 1


def test_500ms_catches_two_bugs(result):
    tp, _ = result.totals()[500.0]
    assert 1 <= tp <= 4  # paper: 2 (FrostWire + SeaDroid)
    assert result.per_app["FrostWire"][500.0][0] == 1
    assert result.per_app["SeaDroid"][500.0][0] == 1


def test_100ms_catches_all_19_bugs(result):
    tp, fp = result.totals()[100.0]
    assert tp == result.total_bugs() == 19
    assert 25 <= fp <= 45  # paper: 33


def test_false_positives_at_500ms(result):
    _, fp = result.totals()[500.0]
    assert 5 <= fp <= 13  # paper: 8
