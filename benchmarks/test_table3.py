"""Table 3: Pearson correlation of 46 events with soft hang bugs.

Paper: kernel scheduling events lead both rankings; the main−render
difference representation improves the top-10 average correlation by
~14 % over main-thread-only monitoring.
"""

import pytest

from repro.harness.exp_filter import table3
from repro.sim.counters import KERNEL_EVENTS


@pytest.fixture(scope="module")
def result(device):
    return table3(device, seed=7, runs_per_case=10)


def test_table3(benchmark, device, archive, result):
    run = benchmark.pedantic(
        lambda: table3(device, seed=7, runs_per_case=10),
        rounds=1, iterations=1,
    )
    archive("table3", run.render())


def test_difference_improves_average_correlation(result):
    assert result.improvement_percent() == pytest.approx(14.0, abs=8.0)


def test_top5_are_kernel_scheduling_events(result):
    scheduling = {"context-switches", "task-clock", "cpu-clock",
                  "page-faults", "minor-faults", "cpu-migrations"}
    top5 = [event for event, _ in result.diff_ranking[:5]]
    assert set(top5) <= scheduling


def test_top_coefficient_in_paper_range(result):
    _, top_coef = result.diff_ranking[0]
    assert 0.55 <= top_coef <= 0.85  # paper: 0.658


def test_microarch_events_rank_below_kernel(result):
    position = {e: i for i, (e, _) in enumerate(result.diff_ranking)}
    for uarch in ("instructions", "cache-misses", "branch-misses",
                  "L1-dcache-loads"):
        assert position[uarch] > position["task-clock"]
        assert position[uarch] > position["context-switches"]


def test_kernel_events_counted_exactly(result):
    """All six top diff-mode events come from the kernel, hence are
    immune to PMU multiplexing (paper's Table 3(a) remark)."""
    top6 = [event for event, _ in result.diff_ranking[:6]]
    assert all(event in KERNEL_EVENTS for event in top6)
