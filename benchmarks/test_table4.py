"""Table 4: training-set sensitivity of the correlation ranking.

Paper: the 75 % and 50 % subsets keep the top-5 events in place, so
the analysis does not depend on the particular training set.
"""

import pytest

from repro.harness.exp_filter import table4


@pytest.fixture(scope="module")
def result(device):
    return table4(device, seed=7, runs_per_case=10)


def test_table4(benchmark, device, archive, result):
    run = benchmark.pedantic(
        lambda: table4(device, seed=7, runs_per_case=10),
        rounds=1, iterations=1,
    )
    archive("table4", run.render())


def test_three_training_fractions(result):
    assert set(result.rankings) == {1.0, 0.75, 0.5}


def test_top5_family_stable_across_subsets(result):
    """The top-5 stays within the kernel scheduling family for every
    subset (twin events like cpu-clock/task-clock may swap places)."""
    scheduling = {"context-switches", "task-clock", "cpu-clock",
                  "page-faults", "minor-faults", "cpu-migrations"}
    for fraction in result.rankings:
        top5 = set(result.top_events(fraction, 5))
        assert len(top5 & scheduling) >= 4, (fraction, top5)


def test_top2_identical_across_subsets(result):
    tops = [tuple(result.top_events(f, 2)) for f in result.rankings]
    assert len(set(tops)) == 1


def test_smaller_sets_can_inflate_coefficients(result):
    """Paper: "with smaller training sets, the correlation coefficients
    may increase" — the 50 % top coefficient is at least the full
    set's minus noise."""
    full_top = result.rankings[1.0][0][1]
    half_top = result.rankings[0.5][0][1]
    assert half_top > full_top - 0.12
