"""Table 5: the 114-app fleet study.

Paper: Hang Doctor finds 34 new soft hang bugs across 16 apps; 68 %
(23) are missed by the offline scanner because their root causes are
previously-unknown blocking APIs or self-developed operations.
"""

import pytest

from repro.harness.exp_fleet import table5


@pytest.fixture(scope="module")
def result(device):
    return table5(device, seed=7, users=5, actions_per_user=80)


def test_table5(benchmark, device, archive, result):
    run = benchmark.pedantic(
        lambda: table5(device, seed=7, users=5, actions_per_user=80),
        rounds=1, iterations=1,
    )
    archive("table5", run.render())


def test_fleet_has_114_apps(result):
    assert result.apps_tested == 114


def test_finds_nearly_all_34_bugs(result):
    assert result.total_detected >= 31  # paper: 34 ground-truth bugs


def test_missed_offline_share_near_68_percent(result):
    assert result.missed_offline_percent == pytest.approx(68.0, abs=8.0)


def test_no_clean_app_flagged(result):
    assert result.clean_apps_flagged == 0


def test_sixteen_apps_with_detections(result):
    assert len(result.rows) == 16
    for row in result.rows:
        assert row.bugs_detected >= 1, row.app_name


def test_paper_examples_discovered(result):
    discovered = " ".join(result.new_blocking_apis)
    assert "HtmlCleaner.clean" in discovered
    assert "Gson.toJson" in discovered


def test_database_growth_excludes_self_developed(result):
    for name in result.new_blocking_apis:
        assert "Formatter" not in name
        assert "Sorter" not in name
