"""Table 6: which filter event recognizes each validation bug.

Paper: of the 23 previously-unknown bugs, context-switches recognizes
18, task-clock 12, page-faults 12 — and their union recognizes all 23,
which is why S-Checker needs all three events.
"""

import pytest

from repro.harness.exp_fleet import table6


@pytest.fixture(scope="module")
def result(device):
    return table6(device, seed=11, runs=25)


def test_table6(benchmark, device, archive, result):
    run = benchmark.pedantic(
        lambda: table6(device, seed=11, runs=25), rounds=1, iterations=1
    )
    archive("table6", run.render())


def test_23_validation_bugs(result):
    assert result.total_bugs == 23


def test_union_recognizes_every_bug(result):
    assert result.undetected == []


def test_each_event_recognizes_a_majority_but_not_all(result):
    totals = result.totals()
    for event, count in totals.items():
        assert 10 <= count <= 22, (event, count)


def test_single_event_insufficient(result):
    """No single counter covers all 23 bugs (the paper's argument for
    a multi-event filter)."""
    totals = result.totals()
    assert all(count < 23 for count in totals.values())


def test_omni_notes_is_page_fault_territory(result):
    omni = next(row for row in result.rows if row.app_name == "Omni-Notes")
    assert omni.by_event["page-faults"] == omni.new_bugs == 3
    assert omni.by_event["context-switches"] == 0


def test_merchant_is_context_switch_territory(result):
    merchant = next(
        row for row in result.rows if row.app_name == "Merchant"
    )
    assert merchant.by_event["context-switches"] == 1
    assert merchant.by_event["task-clock"] == 0
