"""§4.6: in-lab testing vs in-the-wild detection.

The paper argues a test bed (automated inputs, synthetic content)
catches bugs before release but "cannot completely recreate the real
environment", so some bugs never manifest there.  This bench measures
the coverage gap over the bug-bearing catalog apps.
"""

import pytest

from repro.apps.catalog import get_app
from repro.testbed import lab_vs_wild

APPS = ("K9-mail", "Sage Math", "AndStatus", "Omni-Notes",
        "StickerCamera", "SkyTube", "QKSMS", "Merchant")


@pytest.fixture(scope="module")
def result(device):
    apps = [get_app(name) for name in APPS]
    return lab_vs_wild(apps, device, seed=4)


def test_testbed(benchmark, device, archive, result):
    apps = [get_app(name) for name in APPS]
    run = benchmark.pedantic(
        lambda: lab_vs_wild(apps, device, seed=4), rounds=1, iterations=1
    )
    archive("testbed_vs_wild", run.render())


def test_lab_catches_content_independent_bugs(result):
    lab, _, bugs = result.per_app["StickerCamera"]
    assert lab == bugs


def test_lab_misses_content_dependent_bugs(result):
    missed = result.missed_in_lab()
    assert any("HtmlCleaner.clean" in site for _, site in missed)


def test_wild_at_least_matches_lab_overall(result):
    assert result.wild_found >= result.lab_found


def test_neither_environment_is_complete(result):
    assert result.lab_found < result.total_bugs
