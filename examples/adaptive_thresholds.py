#!/usr/bin/env python
"""Filter self-adaptation on a mis-calibrated device (paper §3.3.1).

Ships Hang Doctor to a device with absurdly wrong filter thresholds
(as if a vendor port scaled every counter differently), then lets the
periodic background collection repair them: each sampled hang is
labelled by its own stack traces, and once a batch accumulates, the
adapter decides between a light threshold nudge and a heavy refit.

Run:  python examples/adaptive_thresholds.py
"""

from repro import ExecutionEngine, LG_V10, get_app
from repro.core import BackgroundCollector, HangDoctorConfig
from repro.core.hang_doctor import HangDoctor


def detection_rate(app, device, config, seed, rounds=60):
    """Fraction of bug hangs a fresh Hang Doctor traces."""
    engine = ExecutionEngine(device, seed=seed)
    doctor = HangDoctor(app, device, config=config, seed=seed)
    bug_hangs = 0
    traced = 0
    for _ in range(rounds):
        for action in app.actions:
            execution = engine.run_action(app, action)
            outcome = doctor.process(execution)
            if execution.bug_caused_hang():
                bug_hangs += 1
                traced += bool(outcome.trace_episodes)
    return traced / max(1, bug_hangs)


def main():
    app = get_app("K9-mail")
    device = LG_V10

    broken = HangDoctorConfig(filter_thresholds={
        "context-switches": 1e6,   # nothing ever fires
        "task-clock": 1e18,
        "page-faults": 1e9,
    })
    print("Mis-calibrated thresholds:", broken.filter_thresholds)
    print(f"  bug-hang trace rate: "
          f"{detection_rate(app, device, broken, seed=5):.0%}\n")

    print("Running the background collection + adaptation loop...")
    config = HangDoctorConfig(filter_thresholds=dict(
        broken.filter_thresholds
    ))
    collector = BackgroundCollector(
        device, config, app_package=app.package, period=2, batch_size=16,
    )
    engine = ExecutionEngine(device, seed=5)
    adapted = None
    for round_index in range(400):
        for action in app.actions:
            result = collector.observe(engine.run_action(app, action))
            if result is not None:
                adapted = result
                break
        if adapted:
            break
    if adapted is None:
        raise SystemExit("adaptation never triggered; try another seed")

    print(f"  adaptation mode   : {adapted.mode}")
    print(f"  errors before     : fn={adapted.errors_before[0]} "
          f"fp={adapted.errors_before[1]}")
    print(f"  errors after      : fn={adapted.errors_after[0]} "
          f"fp={adapted.errors_after[1]}")
    print("  new thresholds    :")
    for event, value in config.filter_thresholds.items():
        print(f"    {event:18s} > {value:.4g}")

    print(f"\n  bug-hang trace rate after adaptation: "
          f"{detection_rate(app, device, config, seed=6):.0%}")


if __name__ == "__main__":
    main()
