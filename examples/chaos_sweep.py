#!/usr/bin/env python
"""Chaos sweep: how much detection quality survives a flaky substrate.

On real phones the monitoring substrate itself fails — counter reads
error out, `perf_event_open` gets revoked, stack sampling is denied by
SELinux, state files are corrupted by crashes mid-write.  This example
deploys Hang Doctor on two apps while a seeded fault injector breaks
the monitors at increasing rates, then prints the degradation curve:
precision/recall/overhead per fault rate, plus how often the runtime
degraded (timeout-only mode), quarantined actions, or recovered state
from a corrupt file.  No fault ever crashes a deployment.

The whole sweep is deterministic: the same seed injects the identical
fault sequence, and `workers` only changes wall-clock time, never a
byte of output.

Run:  python examples/chaos_sweep.py
"""

from repro.faults import FaultPlan
from repro.harness.exp_chaos import chaos_sweep
from repro.sim.device import LG_V10


def main():
    rates = (0.0, 0.05, 0.2, 0.4)
    print("Fault plan at each rate r (FaultPlan.uniform):")
    print(f"  {FaultPlan.uniform(0.2).describe()}  (shown for r=0.2)\n")

    result = chaos_sweep(
        LG_V10, seed=0, rates=rates,
        apps=("K9-mail", "AndStatus"), users=2, actions_per_user=30,
        workers=0,  # one worker per CPU; results identical to workers=1
    )
    print(result.render())

    print("\nPer-app cells at the harshest rate:")
    for cell in result.cells:
        if cell.rate != max(rates):
            continue
        notes = []
        if cell.degraded:
            notes.append("degraded to timeout-only")
        if cell.quarantined:
            notes.append(f"{cell.quarantined} action(s) quarantined")
        if cell.state_recovered:
            notes.append("report recovered from corruption")
        print(f"  {cell.app_name:12s} bugs={cell.bugs_detected} "
              f"ctr-fail={cell.counter_read_failures} "
              f"trc-fail={cell.trace_failures} "
              f"faults-fired={cell.faults_fired}"
              f"{'  [' + '; '.join(notes) + ']' if notes else ''}")


if __name__ == "__main__":
    main()
