#!/usr/bin/env python
"""Crowd backend: one device's diagnosis spares the whole fleet.

The paper deploys Hang Doctor per device: every instance pays the full
two-phase cost — S-Checker, then the expensive stack-trace collection
— for every bug, even when thousands of other devices already
diagnosed the same one.  This example closes the loop server-side:
devices upload their Hang Bug Reports in idempotent batches, a crowd
aggregator dedupes bugs by root-cause signature and publishes back a
known-bug table plus a merged blocking-API database, and every synced
device short-circuits straight from S-Checker's Suspicious verdict to
the fleet's verdict — skipping the phase-2 collection entirely.

The sweep deploys fleets of growing size and prints the diagnosis-cost
reduction curve: phase-2 collections per device-round fall
monotonically as the fleet grows, while detection quality holds.  A
second pass turns on upload faults (dropped, duplicated, and late
batches) to show ingestion idempotence absorbing a hostile network.

Everything is deterministic: the same seed reproduces every byte, and
`workers` only changes wall-clock time.

Run:  python examples/crowd_sweep.py
"""

from repro.harness.exp_crowd import crowd_sweep
from repro.sim.device import LG_V10


def main():
    result = crowd_sweep(
        LG_V10, seed=0, fleet_sizes=(1, 2, 4, 8), rounds=3,
        apps=("K9-mail", "AndStatus"), actions_per_round=40,
        workers=0,  # one worker per CPU; results identical to workers=1
    )
    print(result.render())

    print("\nSame fleet, hostile upload path (30% drop/duplicate/delay):")
    faulted = crowd_sweep(
        LG_V10, seed=0, fleet_sizes=(8,), rounds=3,
        apps=("K9-mail", "AndStatus"), actions_per_round=40,
        fault_rate=0.3, workers=0,
    )
    cell = faulted.cells[0]
    print(f"  batches: {cell.batches_ingested} ingested, "
          f"{cell.batches_dropped} dropped, "
          f"{cell.batches_duplicated} duplicated (all recognized), "
          f"{cell.batches_late} delivered a round late")
    print(f"  collections still avoided: {cell.avoided_fraction:.0%} "
          f"({cell.baseline_collections} -> {cell.phase2_collections})")


if __name__ == "__main__":
    main()
