#!/usr/bin/env python
"""Head-to-head: Hang Doctor vs the baselines (paper Fig. 8).

Runs TI (timeout), UTL/UTH (utilization thresholds), their timeout
combinations, and Hang Doctor over identical sessions of the paper's
representative apps, then prints true/false positives normalized to TI
and the monitoring overhead of each detector.

Run:  python examples/detector_comparison.py
"""

from repro import LG_V10
from repro.harness.exp_comparison import figure8


def main():
    print("Comparing six detectors over five apps "
          "(this takes a few seconds)...\n")
    result = figure8(LG_V10, seed=11, users=2, actions_per_user=60)
    print(result.render())

    tp = result.normalized("tp")["Average"]
    fp = result.normalized("fp")["Average"]
    over = result.overheads()["Average"]
    print("\nReading the averages like the paper does:")
    print(f"  - HD traces {tp['HD']:.0%} of the true bug hangs "
          f"(paper: ~80%) at {fp['HD']:.0%} of TI's false positives "
          f"(paper: <10%).")
    print(f"  - UTL catches everything but traces {fp['UTL']:.1f}x TI's "
          f"false positives (paper: 8-22x).")
    print(f"  - UTH stays quiet but misses {1 - tp['UTH']:.0%} of the "
          f"bugs (paper: ~62%).")
    print(f"  - Overhead: HD {over['HD']:.2f}% vs TI {over['TI']:.2f}% "
          f"vs UTL {over['UTL']:.2f}% (paper: 0.83 / 2.26 / ~25).")


if __name__ == "__main__":
    main()
