#!/usr/bin/env python
"""Deep-dive: how a single soft hang bug gets diagnosed (paper Fig. 6).

Walks K9-mail's Open-email action through the two-phase algorithm step
by step, printing the raw evidence at each stage: the response times
the Looper hooks measure, the three counter differences S-Checker
reads, the collected stack traces, and the occurrence-factor analysis
that convicts ``HtmlCleaner.clean``.

Run:  python examples/email_app_diagnosis.py
"""

from repro import ExecutionEngine, HangDoctor, LG_V10, get_app
from repro.core.states import ActionState
from repro.sim.stacktrace import StackTraceSampler
from repro.sim.timeline import MAIN_THREAD


def main():
    app = get_app("K9-mail")
    engine = ExecutionEngine(LG_V10, seed=3)
    doctor = HangDoctor(app, LG_V10, seed=3)
    action = app.action("open_email")

    for attempt in range(1, 40):
        state_before = doctor.state_of("open_email")
        execution = engine.run_action(app, action)
        outcome = doctor.process(execution)

        rts = ", ".join(
            f"{event.spec.name}={event.response_time_ms:.0f}ms"
            for event in execution.events
        )
        print(f"execution #{attempt} [{state_before.short}] {rts}")

        if state_before is ActionState.UNCATEGORIZED \
                and execution.response_time_ms > 100.0:
            check = doctor.schecker.evaluate({
                event: execution.counter_difference(
                    event, execution.start_ms, execution.end_ms
                )
                for event in doctor.config.filter_events()
            })
            print("  S-Checker counter differences (main - render):")
            for event, value in check.values.items():
                flag = "FIRED" if check.fired[event] else "quiet"
                print(f"    {event:18s} {value:14.4g}  [{flag}]")

        if outcome.detections:
            detection = outcome.detections[0]
            print("\n  Diagnoser verdict:")
            print(f"    root cause        : {detection.root_name}")
            print(f"    call site         : {detection.root.file}:"
                  f"{detection.root.line}")
            print(f"    occurrence factor : {detection.occurrence:.0%}")
            print(f"    hang length       : "
                  f"{detection.response_time_ms:.0f} ms")
            print(f"    traces collected  : {outcome.cost.trace_samples}")

            print("\n  Sample of the collected stack traces:")
            sampler = StackTraceSampler(period_ms=20.0)
            hang = execution.hang_events()[0]
            traces = sampler.sample(
                execution.timeline, MAIN_THREAD,
                hang.dispatch_ms, hang.finish_ms,
            )
            for index, trace in enumerate(traces[:3], start=1):
                print(f"    [ST {index:02d}] {trace}")
            print(f"    ... {len(traces) - 3} more")
            break
    else:
        raise SystemExit("bug did not manifest; try another seed")

    print(f"\nfinal state of 'open_email': "
          f"{doctor.state_of('open_email').value}")


if __name__ == "__main__":
    main()
