#!/usr/bin/env python
"""Designing the S-Checker filter from scratch (paper §3.3.1).

Reruns the paper's filter-design pipeline on this substrate: profile
all 46 performance events over the labelled training set, rank them by
Pearson correlation (main−render difference vs main-only), fit the
OR-of-thresholds filter with the event-addition procedure, and check
the result against the held-out validation bugs.

Run:  python examples/filter_design.py
"""

from repro import LG_V10
from repro.analysis.correlation import correlate, ranked_events
from repro.analysis.thresholds import fit_filter
from repro.harness.exp_filter import table3, training_samples
from repro.harness.exp_fleet import table6


def main():
    print("Step 1: correlation analysis over 46 events "
          "(10 known bugs + 11 UI-APIs)...\n")
    result = table3(LG_V10, seed=7, runs_per_case=8)
    print(result.render())

    print("\nStep 2: fit the filter (add events until every training "
          "bug is caught)...\n")
    samples = training_samples(LG_V10, seed=7, runs_per_case=8)
    ranking = [e for e, _ in ranked_events(correlate(samples))]
    fitted = fit_filter(samples, ranking)
    for event, threshold in fitted.thresholds.items():
        print(f"  {event:18s} > {threshold:.4g}")
    tp, fp, fn, tn = fitted.confusion(samples)
    print(f"\n  training recall {tp / (tp + fn):.0%}, "
          f"UI false positives pruned "
          f"{fitted.false_positive_prune_rate(samples):.0%}, "
          f"accuracy {fitted.accuracy(samples):.0%}")

    print("\nStep 3: validate on the 23 previously-unknown bugs "
          "(paper Table 6)...\n")
    validation = table6(LG_V10, seed=11, runs=20)
    print(validation.render())


if __name__ == "__main__":
    main()
