#!/usr/bin/env python
"""Fleet study: Hang Doctor in the wild over the 114-app corpus.

A scaled-down version of the paper's Table 5 deployment: every app in
the fleet (the 16 bug-bearing catalog apps plus generated clean apps)
is exercised by simulated users with Hang Doctor embedded.  Prints the
per-app bugs-detected / missed-offline table, the new blocking APIs
the shared database learned, and an AndStatus Hang Bug Report like the
paper's Figure 2(b).

Run:  python examples/fleet_study.py
"""

from repro import ExecutionEngine, HangDoctor, LG_V10, get_app
from repro.apps.sessions import SessionGenerator
from repro.core.blocking_db import BlockingApiDatabase
from repro.detectors.runner import run_detector
from repro.harness.exp_fleet import table5


def main():
    print("Running the fleet study (this takes a few seconds)...\n")
    result = table5(LG_V10, seed=7, users=4, actions_per_user=70)
    print(result.render())

    print("\nBlocking APIs discovered at runtime:")
    for name in result.new_blocking_apis:
        print(f"  + {name}")

    # The paper's Figure 2(b): a per-app Hang Bug Report.
    print("\nRebuilding AndStatus's developer report...\n")
    app = get_app("AndStatus")
    engine = ExecutionEngine(LG_V10, seed=7)
    doctor = HangDoctor(
        app, LG_V10, blocking_db=BlockingApiDatabase.initial(), seed=7
    )
    generator = SessionGenerator(seed=7)
    for session in generator.fleet_sessions(app, users=6,
                                            actions_per_user=60):
        executions = engine.run_session(
            app, session.action_names, gap_ms=500.0
        )
        run_detector(doctor, executions, device_id=session.user_id)
    print(doctor.report.render())


if __name__ == "__main__":
    main()
