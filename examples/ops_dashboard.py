#!/usr/bin/env python
"""The ops plane end to end: rollups, SLOs, alerts, flamegraph.

Runs the continuous fleet (a short `repro stream` sweep) under a
telemetry session, then walks every view `repro.obs` builds on it:

1. folds the trace into fixed windows — sim-clock seconds, stream
   rounds — and prints a few rollup rows with their derived ratios
   (overhead %, ingest availability);
2. evaluates the default SLOs (detection latency, precision floor,
   overhead ceiling, ingest availability) and prints the error-budget
   table plus any multi-window burn-rate alerts;
3. prints the head of the collapsed-stack flamegraph and the metrics
   registry rendered in Prometheus text format — the same bytes
   `repro serve` answers on `GET /metrics`;
4. writes `rollups.jsonl` / `alerts.jsonl` / `flamegraph.txt` to
   `out/ops_dashboard/` and proves a 2-worker re-run exports
   identical bytes.

`python -m repro dash out/ops_dashboard` renders the same story from
the files alone.

Run:  python examples/ops_dashboard.py
"""

from repro import telemetry
from repro.harness.exp_stream import stream_sweep
from repro.obs import (
    evaluate_slos,
    flamegraph_text,
    render_prometheus,
    render_slo_table,
    rollup_from_session,
    write_obs_exports,
)
from repro.sim.device import LG_V10

SWEEP = dict(seed=7, rounds=4, fleet_size=3, churn_rate=0.2,
             actions_per_round=30)


def observed_run(workers):
    """One telemetry-observed stream sweep; returns (session, result)."""
    with telemetry.session() as tel:
        result = stream_sweep(LG_V10, workers=workers, **SWEEP)
    return tel, result


def main():
    tel, result = observed_run(workers=1)
    rollup = rollup_from_session(tel).add_stream(result)

    print("1. Rollup windows (counters + derived ratios)")
    for row in rollup.rows()[:4]:
        derived = ", ".join(f"{k}={v:.3g}"
                            for k, v in sorted(row["derived"].items()))
        print(f"   {row['domain']}[{row['index']}]  "
              f"counters={sum(row['counters'].values())}  {derived}")

    print("\n2. SLO error budgets and burn-rate alerts")
    statuses, alerts = evaluate_slos(rollup)
    print("   " + render_slo_table(statuses).replace("\n", "\n   "))
    for alert in alerts[:3]:
        print(f"   ALERT[{alert['severity']}] {alert['objective']} "
              f"{alert['domain']}[{alert['index']}] "
              f"burn {alert['burn_short']:.1f}/{alert['burn_long']:.1f}")
    if not alerts:
        print("   (no alerts)")

    print("\n3. Flamegraph head + Prometheus exposition head")
    for line in flamegraph_text(tel.records).splitlines()[:4]:
        print(f"   {line}")
    for line in render_prometheus(tel.metrics).splitlines()[:6]:
        print(f"   {line}")

    print("\n4. Exports, byte-identical across worker counts")
    paths = write_obs_exports("out/ops_dashboard", session=tel,
                              stream=result)
    for path in paths:
        print(f"   wrote {path}")
    again_tel, again_result = observed_run(workers=2)
    again = rollup_from_session(again_tel).add_stream(again_result)
    assert again.to_jsonl() == rollup.to_jsonl()
    assert flamegraph_text(again_tel.records) \
        == flamegraph_text(tel.records)
    print("   byte-identical across workers 1 vs 2")
    print("   -> python -m repro dash out/ops_dashboard")


if __name__ == "__main__":
    main()
