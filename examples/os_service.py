#!/usr/bin/env python
"""OS-integrated Hang Doctor (the paper's future-work sketch).

Instead of each developer embedding Hang Doctor, the OS supervises
every foreground app: a per-app Hang Doctor behind one system service,
one shared blocking-API database (a bug learned from any app protects
all of them), the legacy 5-second ANR watchdog kept for hard hangs,
and a system-wide report for the platform vendor.

The demo also shows why the stock ANR tool is not enough: across the
whole run it raises zero dialogs while the service diagnoses dozens of
soft hang bugs.

Run:  python examples/os_service.py
"""

from repro import ExecutionEngine, LG_V10, get_app
from repro.apps.sessions import SessionGenerator
from repro.osint import OsHangService

FOREGROUND_APPS = ("K9-mail", "AndStatus", "SkyTube", "QKSMS",
                   "UOITDC Booking")


def main():
    device = LG_V10
    service = OsHangService(device, seed=11)
    generator = SessionGenerator(seed=11)

    print("Simulating a day of foreground app usage...\n")
    for app_name in FOREGROUND_APPS:
        app = get_app(app_name)
        engine = ExecutionEngine(device, seed=11)
        session = generator.user_session(app, user_id=0,
                                         actions_per_user=60)
        for execution in engine.run_session(app, session.action_names):
            service.observe(execution)

    print(service.report.render())
    print("\nPer-app detections:")
    for app_name, detections in service.report.by_app().items():
        print(f"  {app_name:16s} {len(detections)}")

    print("\nBlocking APIs the device learned (shared across apps):")
    for name in service.cross_app_discoveries():
        print(f"  + {name}")

    print(f"\nLegacy ANR dialogs raised: {len(service.report.anr_events)}"
          " (the 5 s watchdog sees none of these soft hangs)")


if __name__ == "__main__":
    main()
