#!/usr/bin/env python
"""Why one blocking call freezes everything (paper §2.1).

Input events execute one by one, in queue order, on the main thread.
This demo fires a burst of taps at K9-mail while an email with a heavy
HTML body is opening: the HtmlCleaner hang at the head of the queue
delays every event behind it, so the *latency* users feel (enqueue to
finish) dwarfs each event's own processing time.

Run:  python examples/queue_burst.py
"""

from repro import ExecutionEngine, LG_V10, get_app


def main():
    app = get_app("K9-mail")
    engine = ExecutionEngine(LG_V10, seed=2)

    print("Rapid tap burst: open_email, then folders, inbox, compose\n")
    records, _ = engine.run_queued_burst(
        app, ["open_email", "folders", "inbox", "compose"]
    )

    print(f"{'input event':30s}{'processing':>12}{'felt latency':>14}")
    for record in records:
        print(
            f"{record.message.target:30s}"
            f"{record.response_time_ms:>10.0f}ms"
            f"{record.latency_ms:>12.0f}ms"
        )

    head = records[0]
    tail = records[-1]
    print(
        f"\nThe head-of-queue hang ({head.response_time_ms:.0f} ms) made "
        f"the last tap feel {tail.latency_ms:.0f} ms slow even though its "
        f"own work took {tail.response_time_ms:.0f} ms — "
        "which is exactly why blocking operations belong on worker "
        "threads."
    )


if __name__ == "__main__":
    main()
