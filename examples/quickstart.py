#!/usr/bin/env python
"""Quickstart: embed Hang Doctor in an app and watch it work.

Runs the K9-mail model on a simulated LG V10, processes a short user
session through Hang Doctor, and prints what the two-phase algorithm
did: which actions were filtered as UI work, which got diagnosed, the
root causes it found, and the developer-facing Hang Bug Report.

Run:  python examples/quickstart.py
"""

from repro import ExecutionEngine, HangDoctor, LG_V10, get_app
from repro.apps.sessions import SessionGenerator


def main():
    app = get_app("K9-mail")
    device = LG_V10
    engine = ExecutionEngine(device, seed=42)
    doctor = HangDoctor(app, device, seed=42)

    print(f"App under test : {app.name} ({app.package})")
    print(f"Device         : {device.name}")
    print(f"Actions        : {[a.name for a in app.actions]}")
    print()

    session = SessionGenerator(seed=42).user_session(
        app, user_id=0, actions_per_user=60
    )
    print(f"Replaying a user session of {len(session)} actions...\n")

    detections = 0
    for index, action_name in enumerate(session.action_names, start=1):
        execution = engine.run_action(app, app.action(action_name))
        outcome = doctor.process(execution)
        for detection in outcome.detections:
            detections += 1
            print(
                f"  [{index:03d}] SOFT HANG BUG in '{detection.action_name}'"
                f" ({detection.response_time_ms:.0f} ms): "
                f"{detection.root_name} "
                f"(occurrence factor {detection.occurrence:.0%})"
            )

    print(f"\n{detections} bug manifestations diagnosed.\n")

    print("Final action states:")
    for action in app.actions:
        state = doctor.state_of(action.name)
        print(f"  {action.name:16s} {state.value}")

    print()
    print(doctor.report.render())

    discoveries = doctor.blocking_db.runtime_discoveries()
    print(f"\nNew blocking APIs added to the offline database: {discoveries}")


if __name__ == "__main__":
    main()
