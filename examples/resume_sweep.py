#!/usr/bin/env python
"""Kill a sweep mid-run, resume it, and get the identical bytes back.

A fleet-scale sweep can die halfway through — the box reboots, the OOM
killer takes a worker, a batch scheduler preempts the job.  This
example runs the chaos sweep three ways and proves the recovery story:

1. an uninterrupted reference run;
2. a checkpointed run whose workers are *killed by an injected fault*
   (`worker_kill_rate`) while torn-write faults chew on the journal —
   the supervisor rebuilds the pool, re-runs only the lost shards, and
   the `ExecutionReport` says exactly what happened;
3. an "interrupted" run that journals only part of the sweep before
   stopping, then a resumed run that restores the completed shards and
   computes the rest.

Every variant renders byte-identical output, because each shard is a
pure function of its payload and the journal only short-circuits
*which process* computes it.

Run:  python examples/resume_sweep.py
"""

import tempfile

from repro.checkpoint import ShardJournal, run_key
from repro.faults import FaultInjector, FaultPlan
from repro.harness.exp_chaos import chaos_sweep
from repro.parallel import ExecutionReport
from repro.sim.device import LG_V10

SWEEP = dict(seed=0, rates=(0.0, 0.2), apps=("K9-mail", "AndStatus"),
             users=1, actions_per_user=20)


def main():
    print("1. Uninterrupted reference run")
    reference = chaos_sweep(LG_V10, workers=2, **SWEEP)
    print(reference.render())

    with tempfile.TemporaryDirectory() as checkpoint:
        print("\n2. Same sweep with workers killed out from under it")
        hostile = FaultPlan(worker_kill_rate=0.5, torn_write_rate=0.3)
        report = ExecutionReport()
        survived = chaos_sweep(
            LG_V10, workers=2, checkpoint=checkpoint, report=report,
            executor_faults=FaultInjector(hostile, seed=7,
                                          scope=("executor",)),
            **SWEEP,
        )
        assert survived.render() == reference.render()
        print("byte-identical to the reference despite:")
        print(report.describe())

    with tempfile.TemporaryDirectory() as checkpoint:
        print("\n3. Interrupt after two shards, then resume")
        # Journal only the first two cells by hand — the state an
        # interrupted run leaves behind (kill -9 safe: every entry is
        # written atomically the moment its shard completes).
        first_rate_only = dict(SWEEP, rates=(SWEEP["rates"][0],))
        partial = chaos_sweep(LG_V10, workers=2, **first_rate_only)
        journal = ShardJournal(
            checkpoint,
            run_key("chaos", LG_V10.name, SWEEP["seed"], SWEEP["rates"],
                    SWEEP["apps"], SWEEP["users"],
                    SWEEP["actions_per_user"]),
        ).open()
        for cell in partial.cells:
            journal.record(f"{cell.rate!r}|{cell.app_name}", cell)
        resumed = chaos_sweep(LG_V10, workers=2, checkpoint=checkpoint,
                              resume=True, **SWEEP)
        assert resumed.render() == reference.render()
        print("resumed run byte-identical to the reference; "
              + resumed.execution.describe().splitlines()[1].strip())


if __name__ == "__main__":
    main()
