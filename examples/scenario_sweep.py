#!/usr/bin/env python
"""Scenario sweep: per-archetype precision/recall at fleet scale.

The 114-app corpus reproduces Table 5; the scenario generator goes
further: it procedurally emits labelled apps from a six-archetype
taxonomy — clean apps, classic main-thread blocking, async-wait hangs
(`AsyncTask.get` on the main thread), synchronous IPC waits, rarely
manifesting lifecycle races, and benign render jank that hangs but
must never be flagged — then deploys Hang Doctor across the fleet and
scores it per archetype against the generator's own ground truth.

Everything is deterministic: app k of an archetype is a pure function
of (seed, archetype, k), so the same seed gives byte-identical fleets
at any size, mix, or worker count.

Run:  python examples/scenario_sweep.py
"""

from repro import generate_fleet, scenario_app
from repro.harness.exp_scenarios import scenario_sweep
from repro.scenarios import TAXONOMY
from repro.sim.device import LG_V10

MIX = "clean=0.4,blocking=0.2,async=0.15,ipc=0.1,race=0.05,render=0.1"


def main():
    print("The archetype taxonomy:")
    for archetype in TAXONOMY:
        label = "bugs" if archetype.has_bugs else "benign"
        print(f"  {archetype.name:24s} [{label:6s}] {archetype.description}")

    print("\nOne generated app per archetype (seed 0, ordinal 0):")
    for archetype in TAXONOMY:
        app = scenario_app(archetype.name, 0, seed=0)
        bugs = app.hang_bug_operations()
        print(f"  {app.name:14s} {app.package:28s} "
              f"{len(app.actions)} actions, {len(bugs)} planted bug(s)")

    fleet = generate_fleet(300, mix=MIX, seed=0)
    counts = {}
    for entry in fleet:
        counts[entry.archetype] = counts.get(entry.archetype, 0) + 1
    print(f"\nA 300-app fleet at mix {MIX}:")
    print("  " + ", ".join(f"{name}={n}" for name, n in counts.items()))

    print("\nDeploying Hang Doctor across the fleet "
          "(2 users x 12 actions each)...")
    result = scenario_sweep(
        LG_V10, seed=0, size=300, mix=MIX, users=2, actions_per_user=12,
        workers=0,  # one worker per CPU; results identical to workers=1
    )
    print(result.render())

    race = result.row("lifecycle_callback_race")
    print(f"\nThe race archetype's recall ({race['recall']:.2f}) is the "
          f"interesting number: its bugs manifest\n"
          f"in only 15-45% of executions, so short sessions miss them — "
          f"the same\nphenomenon that makes in-lab testing miss "
          f"content-dependent bugs (paper 4.6).")


if __name__ == "__main__":
    main()
