#!/usr/bin/env python
"""The live ingestion service surviving a hostile fleet and a kill.

The crowd backend's batch path (`crowd_sweep`) folds every upload into
one serial aggregator.  This example runs the *service* path instead —
`repro.serve`: an asyncio HTTP server acking uploads only after a
write-ahead-journal fsync, concurrent devices retrying through seeded
network faults, a SIGKILL-style crash mid-run, a restart that replays
the journal — and proves the two paths publish byte-identical
snapshots, because the aggregator's merge is a CRDT and its
serialization is canonical.

Run:  python examples/serve_fleet.py
"""

import asyncio
import tempfile

from repro.faults import FaultInjector, FaultPlan
from repro.serve import IngestService, ServeClient
from repro.serve.loadgen import (
    baseline_snapshot_json,
    synthetic_fleet_batches,
)

FLEET = synthetic_fleet_batches(seed=42, devices=12, rounds=2)
FAULTS = FaultPlan(request_drop_rate=0.2, connection_reset_rate=0.15,
                   response_corrupt_rate=0.1, request_delay_rate=0.2,
                   request_delay_ms=2.0)


async def upload_fleet(port, fleet_slice, seed_base=0):
    """Concurrent devices, each with its own seeded-retry client."""
    async def device(index, batches):
        client = ServeClient(
            "127.0.0.1", port, seed=seed_base + index,
            key=f"dev{index}",
            faults=FaultInjector(FAULTS, seed=7, scope=("serve-net",)),
            max_attempts=40, sleep_scale=0.01,
        )
        for batch in batches:
            await client.upload(batch)
        return client.stats

    stats = await asyncio.gather(*(
        device(index, batches) for index, batches in fleet_slice
    ))
    return stats


async def main_async(state_dir):
    half = len(FLEET) // 2

    print("1. Boot the service; first half of the fleet uploads "
          "through injected drops/resets/corruption")
    service = await IngestService(state_dir,
                                  snapshot_every=10_000).start()
    port = service.port
    stats = await upload_fleet(port, FLEET[:half])
    retries = sum(s.retries for s in stats)
    print(f"   {sum(s.delivered for s in stats)} batches acked "
          f"({retries} retries forced by the fault storm)")

    print("2. SIGKILL stand-in: no drain, no snapshot published")
    await service.abort()
    assert not service.state.snapshot_bytes()

    print("3. Restart on the same state dir: the WAL replays "
          "every acked batch")
    service = await IngestService(state_dir,
                                  snapshot_every=10_000).start()
    print(f"   replayed {service.state.replayed} from the journal")
    assert service.state.replayed > 0

    print("4. The rest of the fleet uploads (plus a few ambiguous "
          "re-sends, acked as duplicates); graceful drain")
    await upload_fleet(service.port, FLEET[:2], seed_base=100)
    await upload_fleet(service.port, FLEET[half:], seed_base=200)
    await service.stop()
    return service.state.snapshot_bytes()


def main():
    with tempfile.TemporaryDirectory() as state_dir:
        served = asyncio.run(main_async(state_dir))
    expected = baseline_snapshot_json(FLEET).encode("utf-8")
    assert served == expected
    print("5. Published snapshot is byte-identical to the batch-path "
          "aggregator over the same fleet")


if __name__ == "__main__":
    main()
