#!/usr/bin/env python
"""Continuous fleet mode: a long-lived crowd study that survives churn
and worker failures without changing a byte of output.

The crowd sweep deploys a fixed fleet for a fixed number of rounds; a
real deployment churns — devices join and leave mid-study — and the
machines running the study fail too.  This example runs one stream
twice: first calm, then under a seeded executor storm (worker kills +
shard stalls) that forces the elastic scheduler to steal shards from
stragglers and reshard dead workers' items.  The rendered time series
must match byte for byte, because scheduling is timing and the output
is data: churn draws from a keyed fault channel (a pure function of
the seed), every device round is a pure function of its payload, and
steal/reshard activity is quarantined in the advisory execution
report.

Run:  python examples/stream_fleet.py
"""

from repro.harness.exp_stream import stream_sweep
from repro.parallel import ExecutionReport
from repro.sim.device import LG_V10

CONFIG = dict(
    seed=9, rounds=4, fleet_size=3, churn_rate=0.25,
    publish_every=2, apps=("K9-mail",), actions_per_round=10,
)


def main():
    calm = stream_sweep(LG_V10, workers=2, **CONFIG)
    print(calm.render())

    print("\nSame stream, workers being killed and shards stalling:")
    report = ExecutionReport()
    stormy = stream_sweep(
        LG_V10, workers=2, worker_kill_rate=0.4, shard_stall_rate=0.3,
        deadline=5.0, report=report, **CONFIG,
    )
    assert stormy.render() == calm.render()
    print("  rendered output: byte-identical to the calm run")
    print(f"  advisory report: {report.steals} steal(s), "
          f"{report.reshards} reshard(s), {report.worker_crashes} "
          f"worker crash(es), {report.churn_events} churn event(s)")

    members = {d for entry in calm.rounds for d in entry.fleet}
    print(f"\n{len(members)} distinct devices passed through the fleet; "
          f"per-device phase-2 cost fell "
          f"{calm.rounds[0].collections_per_device:.2f} -> "
          f"{calm.rounds[-1].collections_per_device:.2f} "
          f"as the knowledge base grew.")


if __name__ == "__main__":
    main()
