#!/usr/bin/env python
"""In-lab testing vs in-the-wild detection (paper §4.6).

Drives the bug-bearing catalog apps two ways: on a simulated test bed
(Monkey-style random inputs, synthetic content, phase-2-only tracing)
and in the wild (real user sessions, real content, the full two-phase
Hang Doctor).  Shows the paper's conclusion: the lab catches the
content-independent bugs before release, but content-dependent hangs —
K9-mail's heavy-email HtmlCleaner bug above all — never manifest on
synthetic inputs, so Hang Doctor still needs to run in the wild.

Run:  python examples/testbed_vs_wild.py
"""

from repro import LG_V10, get_app
from repro.testbed import MonkeyInputGenerator, lab_vs_wild

APPS = ("K9-mail", "Sage Math", "AndStatus", "Omni-Notes",
        "StickerCamera", "SkyTube", "QKSMS", "Merchant")


def main():
    apps = [get_app(name) for name in APPS]

    monkey = MonkeyInputGenerator(seed=4)
    print("Monkey action coverage after 200 events:")
    for app in apps:
        print(f"  {app.name:16s} {monkey.coverage(app, 200):.0%}")

    print("\nRunning both environments (a few seconds)...\n")
    report = lab_vs_wild(apps, LG_V10, seed=4)
    print(report.render())

    missed = report.missed_in_lab()
    if missed:
        print("\nBugs the test bed never manifested "
              "(content-dependent; found only in the wild):")
        for app_name, site in missed:
            print(f"  {app_name}: {site}")
    print(
        "\nConclusion: the lab found "
        f"{report.lab_found}/{report.total_bugs} bugs before release; "
        "the rest need in-the-wild detection."
    )


if __name__ == "__main__":
    main()
