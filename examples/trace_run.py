#!/usr/bin/env python
"""Trace a fleet-style deployment and read where the time went.

Runs Hang Doctor over K9-mail's simulated fleet sessions (the Table 5
machinery for one app) under a telemetry session, then:

1. prints the top spans by self-time — `sim.action.execute` dominates,
   with `core.diagnoser.collect` appearing once per phase-2 trace
   collection;
2. prints the metrics registry — actions processed, S-Checker
   verdicts, phase-2 collections, the response-time histogram;
3. writes the exports (`trace.jsonl`, Perfetto-loadable `trace.json`,
   `metrics.txt`, advisory `executor.jsonl`) to `out/trace_run/`;
4. re-runs the same deployment and proves the deterministic exports
   came back byte-identical.

Load `out/trace_run/trace.json` at https://ui.perfetto.dev ("Open
trace file") to see the per-app tracks on a timeline.

Run:  python examples/trace_run.py
"""

from repro import telemetry
from repro.harness.exp_fleet import table5
from repro.sim.device import LG_V10

SWEEP = dict(seed=7, users=2, actions_per_user=40, corpus_size=22)


def observed_run(workers):
    """One telemetry-observed Table 5 run; returns (session, render)."""
    with telemetry.session() as tel:
        result = table5(LG_V10, workers=workers, **SWEEP)
    return tel, result.render()


def main():
    tel, rendered = observed_run(workers=2)

    print("1. Top spans by self-time (sim-clock ms within each track)")
    for row in telemetry.top_spans_by_self_time(tel, limit=5):
        print(f"   {row['name']:<24} x{row['count']:<5} "
              f"total={row['total_self']:.0f} mean={row['mean_self']:.1f}")

    print("\n2. Metrics")
    print(telemetry.export_metrics_text(tel).rstrip())

    print("\n3. Exports")
    paths = telemetry.write_exports(tel, "out/trace_run")
    for path in paths:
        print(f"   wrote {path}")
    print("   -> load out/trace_run/trace.json in Perfetto")

    print("\n4. Determinism: a serial re-run exports identical bytes")
    again, rendered_again = observed_run(workers=1)
    assert rendered_again == rendered
    assert telemetry.export_jsonl(again) == telemetry.export_jsonl(tel)
    assert telemetry.export_metrics_text(again) \
        == telemetry.export_metrics_text(tel)
    print("   byte-identical across workers 2 vs 1")


if __name__ == "__main__":
    main()
