"""Thin setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works on
environments whose setuptools lacks PEP 660 editable-wheel support
(no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
