"""Hang Doctor (EuroSys 2018) reproduction.

Runtime detection and diagnosis of soft hangs for smartphone apps,
rebuilt on a simulated Android substrate.  Start here:

>>> from repro import LG_V10, ExecutionEngine, HangDoctor, get_app
>>> app = get_app("K9-mail")
>>> engine = ExecutionEngine(LG_V10, seed=1)
>>> doctor = HangDoctor(app, LG_V10)
>>> for execution in engine.run_session(app, ["open_email"] * 3):
...     outcome = doctor.process(execution)

See ``examples/quickstart.py`` for the guided version, DESIGN.md for
the system inventory, and EXPERIMENTS.md for the paper-vs-measured
record of every table and figure.
"""

from repro.apps import (
    ActionSpec,
    ApiKind,
    ApiSpec,
    AppSpec,
    InputEventSpec,
    MOTIVATION_APPS,
    Operation,
    SessionGenerator,
    TABLE5_APPS,
    UserSession,
    build_corpus,
    get_app,
)
from repro.core import (
    ActionState,
    BlockingApiDatabase,
    HangBugReport,
    HangDoctor,
    HangDoctorConfig,
)
from repro.detectors import (
    OfflineScanner,
    TimeoutDetector,
    UtilizationDetector,
    run_detector,
    run_detectors,
)
from repro.scenarios import generate_fleet, parse_mix, scenario_app
from repro.testbed import MonkeyInputGenerator, TestBedRunner, lab_vs_wild
from repro.sim import (
    ExecutionEngine,
    GALAXY_S3,
    LG_V10,
    NEXUS_5,
    PERCEIVABLE_DELAY_MS,
)

__version__ = "1.0.0"

__all__ = [
    "ActionSpec",
    "ActionState",
    "ApiKind",
    "ApiSpec",
    "AppSpec",
    "BlockingApiDatabase",
    "ExecutionEngine",
    "GALAXY_S3",
    "HangBugReport",
    "HangDoctor",
    "HangDoctorConfig",
    "InputEventSpec",
    "LG_V10",
    "MOTIVATION_APPS",
    "MonkeyInputGenerator",
    "NEXUS_5",
    "OfflineScanner",
    "Operation",
    "PERCEIVABLE_DELAY_MS",
    "SessionGenerator",
    "TABLE5_APPS",
    "TestBedRunner",
    "TimeoutDetector",
    "UserSession",
    "UtilizationDetector",
    "build_corpus",
    "generate_fleet",
    "get_app",
    "lab_vs_wild",
    "parse_mix",
    "run_detector",
    "run_detectors",
    "scenario_app",
    "__version__",
]
