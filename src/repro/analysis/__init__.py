"""Analysis layer: correlation, threshold fitting, metrics, overhead.

Everything the paper's Section 3.3.1 does offline to *design*
S-Checker (Pearson correlation of 46 events against labelled soft
hangs, threshold fitting, training-set sensitivity) plus the
evaluation machinery of Section 4 (TP/FP/FN accounting against ground
truth, and the monitoring-overhead model behind Figure 8(c)).
"""

from repro.analysis.bootstrap import BootstrapResult, bootstrap_correlations
from repro.analysis.correlation import (
    CounterSample,
    collect_samples,
    correlate,
    pearson,
    ranked_events,
    spearman,
)
from repro.analysis.metrics import (
    ConfusionCounts,
    detection_matches_bug,
    match_detection,
    traced_confusion,
)
from repro.analysis.overhead import OverheadModel, OverheadResult
from repro.analysis.roc import RocCurve, auc_ranking, roc_curve
from repro.analysis.summary import (
    DetectorSummary,
    render_summaries,
    summarize_run,
    summarize_runs,
)
from repro.analysis.sensitivity import sensitivity_analysis, subsample
from repro.analysis.thresholds import FilterFit, fit_filter, fit_threshold

__all__ = [
    "BootstrapResult",
    "ConfusionCounts",
    "CounterSample",
    "FilterFit",
    "OverheadModel",
    "OverheadResult",
    "RocCurve",
    "DetectorSummary",
    "auc_ranking",
    "bootstrap_correlations",
    "collect_samples",
    "correlate",
    "detection_matches_bug",
    "fit_filter",
    "fit_threshold",
    "match_detection",
    "pearson",
    "render_summaries",
    "roc_curve",
    "spearman",
    "summarize_run",
    "summarize_runs",
    "ranked_events",
    "sensitivity_analysis",
    "subsample",
    "traced_confusion",
]
