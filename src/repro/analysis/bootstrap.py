"""Bootstrap confidence intervals for the correlation analysis.

The paper's Table 4 probes training-set dependence with two fixed
subsets (75 %, 50 %).  Bootstrap resampling generalizes that:
resample the labelled samples with replacement many times, recompute
each event's correlation, and report percentile intervals — a
quantitative version of "the correlation of these performance events
... is not affected by the training set used".
"""

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.correlation import correlate
from repro.base.rng import stream


@dataclass(frozen=True)
class BootstrapResult:
    """Per-event correlation point estimates and intervals."""

    #: event -> (estimate, low, high)
    intervals: Dict[str, Tuple[float, float, float]]
    resamples: int
    confidence: float

    def interval(self, event):
        """(estimate, low, high) for one event."""
        return self.intervals[event]

    def width(self, event):
        """Interval width (smaller = more training-set independent)."""
        _, low, high = self.intervals[event]
        return high - low

    def separable(self, event_a, event_b):
        """True when the two events' intervals do not overlap —
        their ranking order is training-set independent."""
        _, low_a, high_a = self.intervals[event_a]
        _, low_b, high_b = self.intervals[event_b]
        return low_a > high_b or low_b > high_a

    def render(self, events=None):
        """ASCII table of intervals, widest estimate first."""
        chosen = events or sorted(
            self.intervals, key=lambda e: self.intervals[e][0],
            reverse=True,
        )
        lines = [
            f"Bootstrap correlation intervals "
            f"({self.confidence:.0%}, {self.resamples} resamples)"
        ]
        for event in chosen:
            estimate, low, high = self.intervals[event]
            lines.append(
                f"  {event:28s} {estimate:6.3f}  [{low:6.3f}, {high:6.3f}]"
            )
        return "\n".join(lines)


def bootstrap_correlations(samples: Sequence, events, resamples=200,
                           confidence=0.9, seed=0, method="pearson"):
    """Percentile bootstrap over the per-event label correlations.

    Resampling is stratified by class so every replicate keeps both
    bug and UI samples (plain resampling would occasionally produce a
    single-class replicate with undefined correlation).
    """
    if resamples < 10:
        raise ValueError("need at least 10 resamples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    samples = list(samples)
    bugs = [s for s in samples if s.is_hang_bug]
    uis = [s for s in samples if not s.is_hang_bug]
    if not bugs or not uis:
        raise ValueError("need both bug and UI samples")

    rng = stream(seed, "bootstrap")
    estimates = correlate(samples, events=events, method=method)
    draws: Dict[str, list] = {event: [] for event in events}
    for _ in range(resamples):
        replicate = [
            bugs[i] for i in rng.integers(0, len(bugs), size=len(bugs))
        ] + [
            uis[i] for i in rng.integers(0, len(uis), size=len(uis))
        ]
        coefficients = correlate(replicate, events=events, method=method)
        for event in events:
            draws[event].append(coefficients[event])

    alpha = (1.0 - confidence) / 2.0
    intervals = {}
    for event in events:
        values = np.asarray(draws[event])
        intervals[event] = (
            float(estimates[event]),
            float(np.quantile(values, alpha)),
            float(np.quantile(values, 1.0 - alpha)),
        )
    return BootstrapResult(
        intervals=intervals, resamples=resamples, confidence=confidence
    )
