"""Pearson correlation of performance events with soft hang bugs.

The paper samples all 46 available performance events while executing
user actions whose soft hangs are caused by (a) known soft hang bugs
and (b) UI-APIs, then ranks events by the Pearson correlation between
each event's per-action sample and the binary bug/UI label.  Two
monitoring modes are compared: the main−render *difference* (Table
3(a)) and the main thread alone (Table 3(b)); the difference wins by
~14 % on average because UI work lights up the render thread.
"""

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.sim.counters import ALL_EVENTS
from repro.sim.pmu import PmuSampler
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD


@dataclass(frozen=True)
class CounterSample:
    """One labelled per-action counter sample."""

    #: Event name -> sampled value (difference or main-only total).
    values: Dict[str, float]
    #: True for a soft-hang-bug sample, False for a UI-API sample.
    is_hang_bug: bool
    #: Provenance (app/action) for debugging and sensitivity splits.
    source: str = ""


def pearson(x, y):
    """Pearson correlation coefficient of two equal-length sequences.

    Returns 0.0 when either side has zero variance (degenerate case).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size:
        raise ValueError("x and y must have the same length")
    if x.size < 2:
        raise ValueError("need at least two samples")
    if np.std(x) == 0.0 or np.std(y) == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def _ranks(values):
    """Average ranks (ties share the mean rank)."""
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    ranks[order] = np.arange(1, values.size + 1, dtype=float)
    # Average the ranks of tied values.
    for value in np.unique(values):
        mask = values == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def spearman(x, y):
    """Spearman rank correlation (the paper's future-work direction:
    "we leave as future work studying the non-linear correlation").

    Monotone but non-linear relationships that Pearson underrates are
    captured by correlating ranks instead of raw values.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size:
        raise ValueError("x and y must have the same length")
    if x.size < 2:
        raise ValueError("need at least two samples")
    return pearson(_ranks(x), _ranks(y))


def collect_samples(execution, label, mode="diff", events=ALL_EVENTS,
                    sampler=None, source=""):
    """Build one :class:`CounterSample` from an action execution.

    *mode* is ``"diff"`` (main − render, Table 3(a)) or ``"main"``
    (main thread only, Table 3(b)).  Readings go through a
    :class:`PmuSampler` so PMU register multiplexing error applies when
    all 46 events are counted at once, as in the paper's profiling.
    """
    if mode not in ("diff", "main"):
        raise ValueError(f"unknown mode {mode!r}")
    if sampler is None:
        raise ValueError("a PmuSampler is required")
    values = {}
    for event in events:
        if mode == "diff":
            values[event] = sampler.read_difference(
                execution.timeline, event, MAIN_THREAD, RENDER_THREAD,
                start_ms=execution.start_ms, end_ms=execution.end_ms,
            )
        else:
            values[event] = sampler.read(
                execution.timeline, MAIN_THREAD, event,
                start_ms=execution.start_ms, end_ms=execution.end_ms,
            )
    return CounterSample(values=values, is_hang_bug=label, source=source)


def correlate(samples: Sequence[CounterSample], events=ALL_EVENTS,
              method="pearson"):
    """Correlation of every event against the bug/UI labels.

    *method* is ``"pearson"`` (the paper's linear analysis) or
    ``"spearman"`` (rank-based; the paper's future-work direction for
    non-linear relationships).
    """
    if len(samples) < 2:
        raise ValueError("need at least two samples to correlate")
    if method == "pearson":
        correlator = pearson
    elif method == "spearman":
        correlator = spearman
    else:
        raise ValueError(f"unknown correlation method {method!r}")
    labels = [1.0 if sample.is_hang_bug else 0.0 for sample in samples]
    coefficients = {}
    for event in events:
        xs = [sample.values.get(event, 0.0) for sample in samples]
        coefficients[event] = correlator(xs, labels)
    return coefficients


def ranked_events(coefficients, top=None):
    """Events sorted by correlation coefficient, descending.

    The paper ranks by the (positive) coefficient; all discriminative
    events correlate positively in the difference representation.
    """
    ordered = sorted(coefficients.items(), key=lambda kv: kv[1], reverse=True)
    if top is not None:
        ordered = ordered[:top]
    return ordered
