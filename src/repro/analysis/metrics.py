"""Detection-quality metrics against ground truth.

Two granularities, matching the paper's two ways of counting:

* **Traced soft hangs** (Figure 8(a,b)): each hang execution that a
  detector paid stack-trace collection for is a true positive if the
  hang was caused by a ground-truth bug, a false positive if it was UI
  work; bug hangs the detector did not trace are false negatives.
* **Distinct bugs / detections** (Tables 2, 5, 6): a Detection is
  matched back to the app's call sites via its root-cause frame, then
  judged by the site's ground-truth label.

Only this module ever consults ground truth; detectors never do.
"""

from dataclasses import dataclass


@dataclass
class ConfusionCounts:
    """True/false positives and false negatives."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def precision(self):
        """tp / (tp + fp); 0 when nothing was reported."""
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def recall(self):
        """tp / (tp + fn); 0 when there was nothing to find."""
        total = self.tp + self.fn
        return self.tp / total if total else 0.0

    def add(self, other):
        """Accumulate another count set into this one."""
        self.tp += other.tp
        self.fp += other.fp
        self.fn += other.fn
        return self


def match_detection(app, detection):
    """Map a detection's root frame back to an app call site.

    The root may be the API's leaf frame, its library facade frame, or
    the self-developed caller frame; any of them identifies the site.
    When the same API is called from several sites, the detection's
    caller frame disambiguates.  Returns the matching Operation or
    None.
    """
    root = detection.root
    if root is None:
        return None
    matches = []
    for action in app.actions:
        for op in action.operations():
            candidates = [op.api.leaf_frame(), op.caller_frame(app.package)]
            entry = op.api.entry_frame()
            if entry is not None:
                candidates.append(entry)
            if root in candidates:
                matches.append(op)
    if not matches:
        return None
    if len(matches) > 1 and detection.caller is not None:
        for op in matches:
            if detection.caller == op.caller_frame(app.package):
                return op
    return matches[0]


def detection_matches_bug(app, detection):
    """True if the detection's root cause is a ground-truth bug site."""
    op = match_detection(app, detection)
    return op is not None and op.is_hang_bug


def traced_confusion(executions, outcomes):
    """Figure 8-style counting over one detector run.

    Every *trace episode* a detector paid for is scored against ground
    truth: an episode overlapping a bug-dominated hang event counts
    toward tracing that hang (each bug hang is at most one TP); every
    other episode is a false positive — this is what lets a
    low-threshold utilization monitor rack up many times TI's false
    positives by re-triggering on ordinary busy windows.  Bug hangs no
    episode covered are false negatives.
    """
    if len(executions) != len(outcomes):
        raise ValueError("executions and outcomes must align")
    counts = ConfusionCounts()
    for execution, outcome in zip(executions, outcomes):
        bug_events = []
        for event in execution.hang_events():
            dominant = event.dominant_op()
            if dominant is not None and dominant.op.is_hang_bug:
                bug_events.append((event.dispatch_ms, event.finish_ms))
        covered = [False] * len(bug_events)
        for start, end in outcome.trace_episodes:
            hit = False
            for index, (lo, hi) in enumerate(bug_events):
                if start < hi and end > lo:
                    covered[index] = True
                    hit = True
            if not hit:
                counts.fp += 1
        counts.tp += sum(covered)
        counts.fn += sum(1 for c in covered if not c)
    return counts


def detected_bug_sites(app, detections):
    """Distinct ground-truth bug sites named by a detection list."""
    sites = set()
    for detection in detections:
        op = match_detection(app, detection)
        if op is not None and op.is_hang_bug:
            sites.add(op.site_id)
    return sites


def false_positive_actions(app, detections):
    """Distinct actions a detector blamed without a real bug root."""
    actions = set()
    for detection in detections:
        if not detection_matches_bug(app, detection):
            actions.add(detection.action_name)
    return actions
