"""Monitoring-overhead cost model (paper Figure 8(c)).

The paper measures each detector's CPU and memory overhead relative to
the unmonitored app and reports the average of the two percentages.
We reproduce the *relative* cost structure with a per-activity model:

* reading the two ``setMessageLogging`` timestamps is almost free;
* keeping perf counters enabled costs a small amount per monitored
  millisecond, and each end-of-action read costs a fixed sliver;
* a periodic /proc utilization sample (open + read + parse ``stat``
  and ``io``) is far more expensive than a counter read — this is why
  the paper prefers performance events over resource utilizations;
* a stack-trace sample (unwind + symbolize + buffer) is the single
  most expensive activity, so a detector's overhead is dominated by
  how many false positives it traces.

The default constants land the paper's ordering (UTL ~25 %, UTH ~10 %,
TI ~2.3 %, HD ~0.8 %, UTH+TI ~0.6 %) on our simulated sessions.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class OverheadResult:
    """Overhead percentages of one detector run."""

    cpu_percent: float
    memory_percent: float

    @property
    def average_percent(self):
        """The paper's reported number: mean of CPU and memory %."""
        return (self.cpu_percent + self.memory_percent) / 2.0


@dataclass(frozen=True)
class OverheadModel:
    """Per-activity monitoring costs."""

    #: CPU ms per input event timed via the looper hooks.
    rt_event_cpu_ms: float = 0.01
    #: CPU ms per millisecond of perf-counter monitoring (counting is
    #: hardware-assisted; the cost is scheduler bookkeeping).
    counter_cpu_per_ms: float = 0.0015
    #: CPU ms per end-of-action counter read (3 kernel events).
    counter_read_cpu_ms: float = 0.35
    #: CPU ms per periodic /proc utilization sample.
    util_sample_cpu_ms: float = 8.0
    #: CPU ms per stack-trace sample (unwind + serialize).
    trace_sample_cpu_ms: float = 1.1
    #: CPU ms per trace-analysis run.
    analysis_cpu_ms: float = 2.5

    #: Memory KB per activity (buffers, parsed strings, trace storage).
    rt_event_mem_kb: float = 0.05
    counter_read_mem_kb: float = 0.3
    util_sample_mem_kb: float = 3.0
    trace_sample_mem_kb: float = 2.0
    analysis_mem_kb: float = 1.0

    def monitor_cpu_ms(self, cost):
        """Total monitoring CPU for a MonitoringCost record."""
        return (
            cost.rt_events * self.rt_event_cpu_ms
            + cost.counter_window_ms * self.counter_cpu_per_ms
            + cost.counter_reads * self.counter_read_cpu_ms
            + cost.util_samples * self.util_sample_cpu_ms
            + cost.trace_samples * self.trace_sample_cpu_ms
            + cost.analyses * self.analysis_cpu_ms
        )

    def monitor_mem_kb(self, cost):
        """Total monitoring memory for a MonitoringCost record."""
        return (
            cost.rt_events * self.rt_event_mem_kb
            + cost.counter_reads * self.counter_read_mem_kb
            + cost.util_samples * self.util_sample_mem_kb
            + cost.trace_samples * self.trace_sample_mem_kb
            + cost.analyses * self.analysis_mem_kb
        )

    def overhead(self, cost, app_cpu_ms, app_mem_kb):
        """Overhead percentages relative to the app's own usage."""
        if app_cpu_ms <= 0 or app_mem_kb <= 0:
            raise ValueError("app baseline usage must be positive")
        return OverheadResult(
            cpu_percent=100.0 * self.monitor_cpu_ms(cost) / app_cpu_ms,
            memory_percent=100.0 * self.monitor_mem_kb(cost) / app_mem_kb,
        )


def app_baseline(executions):
    """The unmonitored app's own resource usage over a session.

    CPU: total CPU milliseconds across all threads.  Memory: page
    faults translate to touched KB (4 KB pages) — the same ``stat`` /
    ``io`` granularity the paper measures with.
    """
    cpu_ms = 0.0
    faults = 0.0
    for execution in executions:
        timeline = execution.timeline
        for thread in timeline.threads():
            cpu_ms += timeline.cpu_ms(thread)
            faults += timeline.total(thread, "page-faults")
    return cpu_ms, max(1.0, faults * 4.0)
