"""Threshold sweeps (ROC curves) for filter events.

The paper picks one operating point per event; sweeping the threshold
over the whole sample range shows the full detection/false-positive
trade-off and gives a scalar (AUC) for how separable bug and UI hangs
are under each event — a compact way to compare events, monitoring
modes, and devices beyond a single threshold choice.
"""

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RocCurve:
    """A swept detection curve for one event."""

    event: str
    #: (false-positive rate, true-positive rate) pairs, sorted by FPR.
    points: Tuple[Tuple[float, float], ...]

    @property
    def auc(self):
        """Area under the curve (0.5 = uninformative, 1.0 = perfect)."""
        xs = np.array([x for x, _ in self.points])
        ys = np.array([y for _, y in self.points])
        # Trapezoid rule (numpy renamed trapz -> trapezoid in 2.0).
        return float(np.sum((xs[1:] - xs[:-1]) * (ys[1:] + ys[:-1]) / 2.0))

    def tpr_at_fpr(self, max_fpr):
        """Best true-positive rate achievable at or under *max_fpr*."""
        best = 0.0
        for fpr, tpr in self.points:
            if fpr <= max_fpr:
                best = max(best, tpr)
        return best

    def operating_point(self, threshold_values, threshold):
        """(fpr, tpr) the paper-style fixed *threshold* achieves.

        *threshold_values* are the per-sample (value, label) pairs the
        curve was built from.
        """
        bugs = [v for v, label in threshold_values if label]
        uis = [v for v, label in threshold_values if not label]
        tpr = (
            sum(1 for v in bugs if v > threshold) / len(bugs) if bugs else 0.0
        )
        fpr = (
            sum(1 for v in uis if v > threshold) / len(uis) if uis else 0.0
        )
        return fpr, tpr


def roc_curve(samples: Sequence, event):
    """Build the ROC curve of one event over labelled counter samples."""
    pairs = [
        (sample.values.get(event, 0.0), sample.is_hang_bug)
        for sample in samples
    ]
    bugs = [value for value, label in pairs if label]
    uis = [value for value, label in pairs if not label]
    if not bugs or not uis:
        raise ValueError("need both bug and UI samples")

    thresholds = sorted({value for value, _ in pairs})
    points = [(1.0, 1.0)]
    for threshold in thresholds:
        tpr = sum(1 for v in bugs if v > threshold) / len(bugs)
        fpr = sum(1 for v in uis if v > threshold) / len(uis)
        points.append((fpr, tpr))
    points.append((0.0, 0.0))
    points = sorted(set(points))
    return RocCurve(event=event, points=tuple(points))


def auc_ranking(samples, events):
    """Events ranked by ROC AUC, descending — a threshold-free
    alternative to the Pearson ranking of the paper's Table 3."""
    scored = [(event, roc_curve(samples, event).auc) for event in events]
    return sorted(scored, key=lambda pair: pair[1], reverse=True)
