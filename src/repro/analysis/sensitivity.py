"""Training-set sensitivity analysis (paper Table 4).

The correlation ranking should not depend on the particular training
set.  The paper randomly drops data points to form 75 % and 50 %
training subsets, re-runs the correlation analysis, and checks that
the top-5 events keep their ranking positions.
"""

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.correlation import correlate, ranked_events
from repro.base.rng import stream


def subsample(samples, fraction, seed=0, key="sensitivity"):
    """Randomly keep *fraction* of the samples (at least two, and at
    least one of each label so correlation stays defined)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = stream(seed, key, fraction)
    count = max(2, int(round(len(samples) * fraction)))
    indices = rng.choice(len(samples), size=min(count, len(samples)),
                         replace=False)
    chosen = [samples[i] for i in sorted(indices)]
    labels = {sample.is_hang_bug for sample in chosen}
    if len(labels) < 2:
        # Force both classes in: swap in the first sample of the
        # missing label.
        missing = (True not in labels)
        for sample in samples:
            if sample.is_hang_bug == missing:
                chosen[0] = sample
                break
    return chosen


@dataclass(frozen=True)
class SensitivityResult:
    """Correlation rankings for the full set and each subset."""

    #: fraction -> ranked [(event, coefficient), ...]
    rankings: Dict[float, Tuple]

    def top_events(self, fraction, k=5):
        """Names of the top-*k* events for one training fraction."""
        return [event for event, _ in self.rankings[fraction][:k]]

    def stable_top_k(self, k=5):
        """True if the top-*k* ranking is identical across fractions."""
        tops = [self.top_events(fraction, k) for fraction in self.rankings]
        return all(top == tops[0] for top in tops)


def sensitivity_analysis(samples: Sequence, fractions=(1.0, 0.75, 0.5),
                         events=None, seed=0):
    """Re-run the correlation analysis on training subsets."""
    from repro.sim.counters import ALL_EVENTS

    events = ALL_EVENTS if events is None else events
    rankings = {}
    for fraction in fractions:
        subset = (
            list(samples) if fraction >= 1.0
            else subsample(samples, fraction, seed=seed)
        )
        coefficients = correlate(subset, events=events)
        rankings[fraction] = tuple(ranked_events(coefficients))
    return SensitivityResult(rankings=rankings)
