"""Detector-quality summaries.

Condenses a :class:`~repro.detectors.runner.DetectorRun` into the
numbers a report needs — traced-hang precision/recall/F1 and the
overhead percentage — and renders a comparison table over several
runs.  Used by the CLI's ``compare`` command and by downstream users
who want one row per detector instead of raw confusion counts.
"""

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.overhead import OverheadModel
from repro.harness.tables import render_table


@dataclass(frozen=True)
class DetectorSummary:
    """One detector's quality/overhead digest."""

    name: str
    tp: int
    fp: int
    fn: int
    overhead_percent: float

    @property
    def precision(self):
        """tp / (tp + fp); 0 when nothing was reported."""
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def recall(self):
        """tp / (tp + fn); 0 when there was nothing to find."""
        total = self.tp + self.fn
        return self.tp / total if total else 0.0

    @property
    def f1(self):
        """Harmonic mean of precision and recall."""
        denominator = self.precision + self.recall
        if denominator == 0:
            return 0.0
        return 2 * self.precision * self.recall / denominator


def summarize_run(run, model=None):
    """Digest one DetectorRun."""
    counts = run.confusion()
    overhead = run.overhead(model or OverheadModel())
    return DetectorSummary(
        name=run.detector_name,
        tp=counts.tp,
        fp=counts.fp,
        fn=counts.fn,
        overhead_percent=overhead.average_percent,
    )


def summarize_runs(runs, model=None):
    """Digest a {name: DetectorRun} mapping, best F1 first."""
    summaries = [summarize_run(run, model) for run in runs.values()]
    return sorted(summaries, key=lambda s: s.f1, reverse=True)


def render_summaries(summaries: Sequence[DetectorSummary], title=None):
    """ASCII table over detector summaries."""
    rows = [
        (s.name, s.tp, s.fp, s.fn,
         round(s.precision, 3), round(s.recall, 3), round(s.f1, 3),
         round(s.overhead_percent, 2))
        for s in summaries
    ]
    return render_table(
        ("detector", "tp", "fp", "fn", "precision", "recall", "f1",
         "overhead%"),
        rows, title=title or "Detector comparison",
    )
