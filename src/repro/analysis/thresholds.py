"""S-Checker filter fitting (paper §3.3.1, "Hang Bug Symptoms and
Filter Details").

The paper's procedure: starting from the most correlated event, find
the threshold that best separates soft hang bugs from UI-APIs
(minimizing false negatives first, then false positives); while any
training bug remains undetected, add the next event in correlation
order with its own fitted threshold.  The resulting filter fires when
ANY selected event exceeds its threshold.  On the paper's training set
this selects exactly three events — context-switches (> 0), task-clock
(> 1.7e8) and page-faults (> 500) — catching 100 % of the bugs while
pruning 64 % of the UI false positives (81 % accuracy).
"""

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.analysis.correlation import CounterSample

#: Cost weight of a false negative relative to a false positive when
#: fitting each event's threshold.  Per-event thresholds sit at natural
#: class boundaries (the paper's 0 / 1.7e8 / 500); eliminating the
#: residual false negatives is the job of *adding events*, not of
#: dragging a single threshold down: "in case of false negatives, we
#: include another performance event ... until all the soft hang bugs
#: in the training set can be detected by at least one event".
FN_WEIGHT = 2.0


@dataclass(frozen=True)
class FilterFit:
    """A fitted OR-of-thresholds filter."""

    #: Event name -> threshold, in selection order.
    thresholds: Dict[str, float]

    def fires(self, values):
        """True if any selected event strictly exceeds its threshold."""
        return any(
            values.get(event, 0.0) > threshold
            for event, threshold in self.thresholds.items()
        )

    def confusion(self, samples):
        """(tp, fp, fn, tn) of the filter over labelled samples."""
        tp = fp = fn = tn = 0
        for sample in samples:
            fired = self.fires(sample.values)
            if sample.is_hang_bug and fired:
                tp += 1
            elif sample.is_hang_bug:
                fn += 1
            elif fired:
                fp += 1
            else:
                tn += 1
        return tp, fp, fn, tn

    def accuracy(self, samples):
        """Fraction of samples classified correctly."""
        tp, fp, fn, tn = self.confusion(samples)
        total = tp + fp + fn + tn
        return (tp + tn) / total if total else 0.0

    def false_positive_prune_rate(self, samples):
        """Fraction of UI samples the filter correctly rejects."""
        _, fp, _, tn = self.confusion(samples)
        ui_total = fp + tn
        return tn / ui_total if ui_total else 0.0


def fit_threshold(samples: Sequence[CounterSample], event,
                  fn_weight=FN_WEIGHT):
    """Best single-event threshold minimizing weighted FN + FP.

    Candidate thresholds are midpoints between consecutive sorted
    sample values (plus sentinels below/above all values); the filter
    fires on values strictly greater than the threshold.  Returns
    ``(threshold, cost)``.
    """
    values = sorted({sample.values.get(event, 0.0) for sample in samples})
    if not values:
        raise ValueError("no samples")
    candidates = [values[0] - 1.0]
    candidates += [
        (low + high) / 2.0 for low, high in zip(values, values[1:])
    ]
    candidates.append(values[-1] + 1.0)

    best_threshold, best_cost = None, None
    for candidate in candidates:
        fn = sum(
            1 for s in samples
            if s.is_hang_bug and s.values.get(event, 0.0) <= candidate
        )
        fp = sum(
            1 for s in samples
            if not s.is_hang_bug and s.values.get(event, 0.0) > candidate
        )
        cost = fn_weight * fn + fp
        if best_cost is None or cost < best_cost:
            best_threshold, best_cost = candidate, cost
    return best_threshold, best_cost


def _events_near_duplicate(samples, event_a, event_b, cutoff=0.95):
    """True when two events' samples are almost perfectly *positively*
    correlated (an anti-correlated event still carries new one-sided
    information for a greater-than filter).

    The paper skips redundant events this way: "the cpu-clock is
    omitted because it is similar to the task-clock" (footnote 3);
    likewise minor-faults mirrors page-faults.
    """
    import numpy as np

    xs = np.array([s.values.get(event_a, 0.0) for s in samples])
    ys = np.array([s.values.get(event_b, 0.0) for s in samples])
    if np.std(xs) == 0.0 or np.std(ys) == 0.0:
        return False
    return float(np.corrcoef(xs, ys)[0, 1]) >= cutoff


def fit_filter(samples: Sequence[CounterSample], ranked, max_events=None,
               fn_weight=FN_WEIGHT, dedup_cutoff=0.95):
    """Fit the OR-filter following the paper's event-addition procedure.

    *ranked* is the event order from the correlation analysis (most
    correlated first).  Events are added, each with its own fitted
    threshold, until every hang-bug sample is detected by at least one
    selected event (or *max_events* is reached).  Events nearly
    identical to an already-selected one (cpu-clock vs task-clock,
    minor-faults vs page-faults) are skipped — they cannot cover any
    bug their twin misses.
    """
    ranked = list(ranked)
    if max_events is not None:
        ranked = ranked[:max_events]
    thresholds = {}
    covered = [False] * len(samples)

    for event in ranked:
        remaining_bugs = [
            sample
            for sample, done in zip(samples, covered)
            if sample.is_hang_bug and not done
        ]
        if thresholds and not remaining_bugs:
            break
        if any(
            _events_near_duplicate(samples, event, chosen, dedup_cutoff)
            for chosen in thresholds
        ):
            continue
        threshold, _ = fit_threshold(samples, event, fn_weight=fn_weight)
        thresholds[event] = threshold
        for index, sample in enumerate(samples):
            if sample.values.get(event, 0.0) > threshold:
                covered[index] = covered[index] or sample.is_hang_bug
        if all(
            done for sample, done in zip(samples, covered) if sample.is_hang_bug
        ):
            break
    return FilterFit(thresholds=thresholds)
