"""App/workload model.

Synthetic Android-like apps stand in for the 114 real apps the paper
tested.  An :class:`~repro.apps.app.AppSpec` is a set of user actions;
each action posts input events to the main thread; each input event
executes a sequence of operations (API calls) with ground-truth labels
(UI work vs. blocking/compute soft hang bugs).  The catalog module
hand-models the named apps of the paper's Tables 1 and 5; the corpus
module pads them with generated clean apps to reach the 114-app fleet.
"""

from repro.apps.api import (
    ApiKind,
    ApiSpec,
    UI_CLASS_PREFIXES,
    blocking_api,
    compute_op,
    is_ui_class,
    light_api,
    ui_api,
)
from repro.apps.app import (
    ActionSpec,
    AppSpec,
    BugReport,
    InputEventSpec,
    Operation,
)
from repro.apps.catalog import (
    MOTIVATION_APPS,
    NAMED_APPS,
    TABLE5_APPS,
    get_app,
)
from repro.apps.corpus import build_corpus
from repro.apps.replay import replay, sessions_from_json, sessions_to_json
from repro.apps.sessions import SessionGenerator, UserSession

__all__ = [
    "ActionSpec",
    "ApiKind",
    "ApiSpec",
    "AppSpec",
    "BugReport",
    "InputEventSpec",
    "MOTIVATION_APPS",
    "NAMED_APPS",
    "Operation",
    "SessionGenerator",
    "TABLE5_APPS",
    "UI_CLASS_PREFIXES",
    "UserSession",
    "blocking_api",
    "build_corpus",
    "compute_op",
    "get_app",
    "is_ui_class",
    "light_api",
    "replay",
    "sessions_from_json",
    "sessions_to_json",
    "ui_api",
]
