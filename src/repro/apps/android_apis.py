"""Well-known Android API specifications.

A registry of the UI APIs, known blocking APIs, and previously-unknown
blocking APIs that the paper's examples revolve around (camera ``open``,
``BitmapFactory.decodeFile``, HtmlCleaner ``clean``, gson ``toJson``,
cupboard ``get`` hiding ``insertWithOnConflict``...).  Catalog apps and
the generated corpus compose their actions from these specs.

``known_blocking=True`` marks APIs present in the offline tools'
known-blocking database *before* Hang Doctor runs — the ground truth
behind the paper's "missed offline" column.
"""

from repro.apps.api import (
    async_wait_api,
    blocking_api,
    compute_op,
    ipc_api,
    light_api,
    ui_api,
)

# ---------------------------------------------------------------------------
# UI APIs (must run on the main thread; never soft hang bugs).
# The heavier ones (inflate, addView on deep hierarchies) are the false
# positives that plague a pure 100 ms timeout detector.
# ---------------------------------------------------------------------------

# Draw/bind-style UI APIs feed the render thread heavily; measure/
# layout passes are main-thread CPU with little render work.  That
# spread is what makes some UI hangs genuinely hard to tell from bugs
# (the overlap visible in the paper's Figure 4).
SET_TEXT = ui_api(
    "setText", "android.widget.TextView", mean_ms=45.0, render_share=0.4
)
INFLATE = ui_api(
    "inflate", "android.view.LayoutInflater", mean_ms=150.0,
    cpu_share=0.5, render_share=0.3, sigma=0.35, pages=120,
)
SEEKBAR_INIT = ui_api(
    "<init>", "android.widget.SeekBar", mean_ms=55.0, render_share=0.35
)
ENABLE_ORIENTATION = ui_api(
    "enable", "android.view.OrientationEventListener", mean_ms=40.0,
    cpu_share=0.55, render_share=0.2,
)
ON_MEASURE = ui_api(
    "onMeasure", "android.view.View", mean_ms=65.0,
    cpu_share=0.8, render_share=0.12, pages=150,
)
ON_LAYOUT = ui_api(
    "onLayout", "android.view.View", mean_ms=55.0,
    cpu_share=0.75, render_share=0.12, pages=130,
)
ON_DRAW = ui_api("onDraw", "android.view.View", mean_ms=75.0, render_share=0.7)
NOTIFY_DATA_SET_CHANGED = ui_api(
    "notifyDataSetChanged", "android.widget.BaseAdapter", mean_ms=95.0,
    sigma=0.3, pages=100, render_share=0.65,
)
REQUEST_LAYOUT = ui_api(
    "requestLayout", "android.view.View", mean_ms=50.0,
    cpu_share=0.7, render_share=0.15,
)
INVALIDATE = ui_api("invalidate", "android.view.View", mean_ms=30.0,
                    render_share=0.65)
ADD_VIEW = ui_api(
    "addView", "android.view.ViewGroup", mean_ms=110.0, sigma=0.3, pages=110,
    render_share=0.6,
)
SMOOTH_SCROLL = ui_api(
    "smoothScrollBy", "android.widget.ListView", mean_ms=70.0, render_share=0.75
)
SET_IMAGE = ui_api(
    "setImageDrawable", "android.widget.ImageView", mean_ms=60.0, pages=140,
    render_share=0.65,
)
WEBVIEW_LOAD = ui_api(
    "loadDataWithBaseURL", "android.webkit.WebView", mean_ms=170.0,
    cpu_share=0.5, render_share=0.5, sigma=0.35, pages=160,
)
#: Main-thread-CPU-heavy UI work that never touches the render thread
#: (text measurement / software drawing).  Actions built on it are the
#: borderline UI hangs that sometimes carry bug-like symptoms — the
#: false positives S-Checker cannot prune (paper: the filter keeps
#: ~36 % of UI false positives; Figure 7's Inbox example).
TEXT_LAYOUT = ui_api(
    "generate", "android.text.StaticLayout", mean_ms=170.0,
    cpu_share=0.85, render_share=0.0, sigma=0.35, pages=500, pages_fast=40,
)

#: The 11 UI APIs of the paper's training set (Section 3.3.1).
TRAINING_UI_APIS = (
    SET_TEXT,
    INFLATE,
    SEEKBAR_INIT,
    ENABLE_ORIENTATION,
    ON_MEASURE,
    ON_LAYOUT,
    ON_DRAW,
    NOTIFY_DATA_SET_CHANGED,
    REQUEST_LAYOUT,
    ADD_VIEW,
    SMOOTH_SCROLL,
)

ALL_UI_APIS = TRAINING_UI_APIS + (INVALIDATE, SET_IMAGE, WEBVIEW_LOAD)

# ---------------------------------------------------------------------------
# Known blocking APIs (in the offline known-blocking database).
# ---------------------------------------------------------------------------

CAMERA_OPEN = blocking_api(
    "open", "android.hardware.Camera", mean_ms=300.0, known_blocking=True,
    # Connecting to the camera HAL is one long IPC wait: few CPU
    # cycles, few voluntary switches per blocked millisecond.
    cpu_share=0.55, wait_chunk_ms=15.0, pages=900,
)
CAMERA_SET_PARAMETERS = blocking_api(
    "setParameters", "android.hardware.Camera", mean_ms=85.0,
    known_blocking=True, cpu_share=0.5, pages=200,
)
BITMAP_DECODE_FILE = blocking_api(
    "decodeFile", "android.graphics.BitmapFactory", mean_ms=600.0,
    known_blocking=True, cpu_share=0.7, pages=2400, sigma=0.3,
)
BITMAP_DECODE_STREAM = blocking_api(
    "decodeStream", "android.graphics.BitmapFactory", mean_ms=420.0,
    known_blocking=True, cpu_share=0.65, pages=1800,
)
DB_QUERY = blocking_api(
    "query", "android.database.sqlite.SQLiteDatabase", mean_ms=300.0,
    known_blocking=True, cpu_share=0.65, pages=1000,
)
DB_INSERT = blocking_api(
    "insert", "android.database.sqlite.SQLiteDatabase", mean_ms=260.0,
    known_blocking=True, cpu_share=0.6, pages=800,
)
DB_INSERT_CONFLICT = blocking_api(
    "insertWithOnConflict", "android.database.sqlite.SQLiteDatabase",
    mean_ms=340.0, known_blocking=True, cpu_share=0.6, pages=1000,
)
DB_OPEN = blocking_api(
    "getWritableDatabase", "android.database.sqlite.SQLiteOpenHelper",
    mean_ms=280.0, known_blocking=True, cpu_share=0.55, pages=900,
)
MEDIA_PREPARE = blocking_api(
    "prepare", "android.media.MediaPlayer", mean_ms=420.0,
    # Media probing waits on the codec service in long stretches.
    known_blocking=True, cpu_share=0.4, wait_chunk_ms=25.0, pages=1100,
)
BLUETOOTH_ACCEPT = blocking_api(
    "accept", "android.bluetooth.BluetoothServerSocket", mean_ms=420.0,
    known_blocking=True, cpu_share=0.2, pages=300,
)
FILE_READ = blocking_api(
    "read", "java.io.FileInputStream", mean_ms=260.0, known_blocking=True,
    cpu_share=0.6, pages=1200,
)
FILE_WRITE = blocking_api(
    "write", "java.io.FileOutputStream", mean_ms=240.0, known_blocking=True,
    cpu_share=0.55, pages=1000,
)
PREFS_COMMIT = blocking_api(
    "commit", "android.content.SharedPreferences$Editor", mean_ms=280.0,
    # Serializes the whole preference map (CPU) then waits on a single
    # fsync: high task-clock, few switches, small footprint — the
    # training bug only the task-clock condition catches.
    known_blocking=True, cpu_share=0.75, wait_chunk_ms=35.0, pages=400,
)
XML_PARSE = blocking_api(
    "parse", "org.xmlpull.v1.XmlPullParser", mean_ms=280.0,
    known_blocking=True, cpu_share=0.75, pages=900,
)

#: Network on the main thread — the class of bug the paper excludes
#: from its core study (footnote 2: well-known, usually caught at
#: build/offline time) but sketches a monitoring extension for.
HTTP_EXECUTE = blocking_api(
    "execute", "org.apache.http.impl.client.DefaultHttpClient",
    mean_ms=900.0, sigma=0.4, cpu_share=0.12, pages=400,
    network_bytes=60_000, known_blocking=True,
)

KNOWN_BLOCKING_APIS = (
    CAMERA_OPEN,
    CAMERA_SET_PARAMETERS,
    BITMAP_DECODE_FILE,
    BITMAP_DECODE_STREAM,
    DB_QUERY,
    DB_INSERT,
    DB_INSERT_CONFLICT,
    DB_OPEN,
    MEDIA_PREPARE,
    BLUETOOTH_ACCEPT,
    FILE_READ,
    FILE_WRITE,
    PREFS_COMMIT,
    XML_PARSE,
)

# ---------------------------------------------------------------------------
# Previously-unknown blocking APIs (not in the database: the 68 % of
# bugs that offline detection misses).  Several are the paper's own
# examples.
# ---------------------------------------------------------------------------

HTML_CLEAN = blocking_api(
    "clean", "org.htmlcleaner.HtmlCleaner", mean_ms=1300.0, sigma=0.2,
    cpu_share=0.8, pages=2600, library="org.HtmlCleaner",
)
GSON_TO_JSON = blocking_api(
    "toJson", "com.google.gson.Gson", mean_ms=1000.0, sigma=0.25,
    cpu_share=0.85, pages=2000, library="com.google.gson",
)
IMAGE_TRANSFORM = blocking_api(
    "transform", "com.squareup.picasso.Transformation", mean_ms=450.0,
    cpu_share=0.8, pages=1500, library="com.squareup.picasso",
)
CUPBOARD_GET = blocking_api(
    # A well-known blocking database API hidden inside the cupboard
    # library: the visible call site is ``Cupboard.get``; the leaf is
    # ``SQLiteDatabase.insertWithOnConflict`` (paper's SageMath #84).
    "insertWithOnConflict", "android.database.sqlite.SQLiteDatabase",
    mean_ms=340.0, known_blocking=True, cpu_share=0.6, pages=1000,
    entry_name="get", entry_clazz="nl.qbusict.cupboard.Cupboard",
    source_visible=False, library="nl.qbusict.cupboard",
)
PICASSO_LOAD_SYNC = blocking_api(
    # Known bitmap decode hidden behind an image-loader facade.
    "decodeStream", "android.graphics.BitmapFactory", mean_ms=400.0,
    known_blocking=True, cpu_share=0.7, pages=1600,
    entry_name="getBitmap", entry_clazz="com.squareup.picasso.RequestHandler",
    source_visible=False, library="com.squareup.picasso",
)
ORMLITE_QUERY = blocking_api(
    # Known database query hidden behind an ORM facade.
    "query", "android.database.sqlite.SQLiteDatabase", mean_ms=320.0,
    known_blocking=True, cpu_share=0.65, pages=1000,
    entry_name="queryForAll", entry_clazz="com.j256.ormlite.dao.Dao",
    source_visible=False, library="com.j256.ormlite",
)
MARKDOWN_RENDER = blocking_api(
    "toHtml", "org.commonmark.renderer.html.HtmlRenderer", mean_ms=550.0,
    cpu_share=0.85, pages=1300, library="org.commonmark",
)
ZIP_ENTRY_READ = blocking_api(
    "getInputStream", "java.util.zip.ZipFile", mean_ms=420.0,
    cpu_share=0.5, pages=1400,
)
EXIF_PARSE = blocking_api(
    "getAttribute", "android.media.ExifInterface", mean_ms=260.0,
    cpu_share=0.55, pages=700,
)
GEOCODER_LOOKUP = blocking_api(
    "getFromLocation", "android.location.Geocoder", mean_ms=520.0,
    cpu_share=0.3, pages=600,
)
SVG_PARSE = blocking_api(
    "getFromResource", "com.caverock.androidsvg.SVG", mean_ms=480.0,
    cpu_share=0.8, pages=1200, library="com.caverock.androidsvg",
)
JSOUP_PARSE = blocking_api(
    "parse", "org.jsoup.Jsoup", mean_ms=700.0, cpu_share=0.8, pages=1700,
    library="org.jsoup",
)
OPML_IMPORT = blocking_api(
    "readDocument", "org.antennapod.opml.OpmlReader", mean_ms=600.0,
    cpu_share=0.7, pages=1300, library="org.antennapod.opml",
)
CRYPTO_DIGEST = blocking_api(
    "digest", "java.security.MessageDigest", mean_ms=350.0,
    cpu_share=0.95, pages=500,
)
AUDIO_DECODE = blocking_api(
    "getTrackFormat", "android.media.MediaExtractor", mean_ms=440.0,
    cpu_share=0.5, pages=1100,
)

UNKNOWN_BLOCKING_APIS = (
    HTML_CLEAN,
    GSON_TO_JSON,
    IMAGE_TRANSFORM,
    CUPBOARD_GET,
    PICASSO_LOAD_SYNC,
    ORMLITE_QUERY,
    MARKDOWN_RENDER,
    ZIP_ENTRY_READ,
    EXIF_PARSE,
    GEOCODER_LOOKUP,
    SVG_PARSE,
    JSOUP_PARSE,
    OPML_IMPORT,
    CRYPTO_DIGEST,
    AUDIO_DECODE,
)

# ---------------------------------------------------------------------------
# Synchronous waits on asynchronous results (PersisDroid's anatomy of
# asynchronous-execution hangs).  The work already runs on a worker;
# calling these from the main thread re-serializes it.  None are in
# the offline known-blocking database — wait primitives are generic
# concurrency APIs, not I/O names a scanner greps for.
# ---------------------------------------------------------------------------

ASYNC_TASK_GET = async_wait_api(
    "get", "android.os.AsyncTask", mean_ms=450.0, sigma=0.35,
)
FUTURE_GET = async_wait_api(
    "get", "java.util.concurrent.FutureTask", mean_ms=380.0, sigma=0.3,
)
THREAD_JOIN = async_wait_api(
    "join", "java.lang.Thread", mean_ms=320.0, sigma=0.3,
)
LATCH_AWAIT = async_wait_api(
    "await", "java.util.concurrent.CountDownLatch", mean_ms=280.0,
)
HANDLER_RUN_BLOCKING = async_wait_api(
    # Post to a worker Handler and spin-wait for the reply token.
    "runWithScissors", "android.os.Handler", mean_ms=340.0, sigma=0.3,
)

ASYNC_WAIT_APIS = (
    ASYNC_TASK_GET,
    FUTURE_GET,
    THREAD_JOIN,
    LATCH_AWAIT,
    HANDLER_RUN_BLOCKING,
)

# ---------------------------------------------------------------------------
# Synchronous binder IPC calls.  The remote process (content provider,
# package manager, location service) does the work while the caller
# idles in the binder driver.  The provider-query entry points are
# well-known enough to sit in the offline database; the service
# lookups are the long tail offline scanning misses.
# ---------------------------------------------------------------------------

RESOLVER_QUERY = ipc_api(
    "query", "android.content.ContentResolver", mean_ms=320.0,
    known_blocking=True, sigma=0.3,
)
RESOLVER_INSERT = ipc_api(
    "insert", "android.content.ContentResolver", mean_ms=260.0,
    known_blocking=True,
)
PM_GET_INSTALLED = ipc_api(
    "getInstalledPackages", "android.content.pm.PackageManager",
    mean_ms=480.0, sigma=0.35,
)
ACCOUNTS_BLOCKING_GET = ipc_api(
    # AccountManagerFuture.getResult() on the main thread.
    "getResult", "android.accounts.AccountManagerFuture", mean_ms=360.0,
)
LOCATION_LAST_KNOWN = ipc_api(
    "getLastKnownLocation", "android.location.LocationManager",
    mean_ms=220.0,
)
CURSOR_GET_COUNT = ipc_api(
    # First getCount() on a provider-backed cursor fills the window
    # across the binder.
    "getCount", "android.database.Cursor", mean_ms=300.0, sigma=0.3,
)

IPC_APIS = (
    RESOLVER_QUERY,
    RESOLVER_INSERT,
    PM_GET_INSTALLED,
    ACCOUNTS_BLOCKING_GET,
    LOCATION_LAST_KNOWN,
    CURSOR_GET_COUNT,
)

# ---------------------------------------------------------------------------
# Light bookkeeping calls.
# ---------------------------------------------------------------------------

LOG_D = light_api("d", "android.util.Log", mean_ms=0.6)
GET_STRING = light_api("getString", "android.content.res.Resources", mean_ms=1.2)
PUT_EXTRA = light_api("putExtra", "android.content.Intent", mean_ms=0.8)
GET_SYSTEM_SERVICE = light_api(
    "getSystemService", "android.content.Context", mean_ms=1.5
)

LIGHT_APIS = (LOG_D, GET_STRING, PUT_EXTRA, GET_SYSTEM_SERVICE)


def heavy_loop(function_name, clazz, mean_ms=280.0, **kwargs):
    """A self-developed lengthy operation (paper's third miss class)."""
    return compute_op(function_name, clazz, mean_ms=mean_ms, **kwargs)


#: Initial contents of the known-blocking-API database (qualified
#: names), as offline tools would ship it before Hang Doctor runs.
def initial_blocking_names():
    """Qualified names of all APIs marked known_blocking."""
    names = set()
    for api in KNOWN_BLOCKING_APIS + UNKNOWN_BLOCKING_APIS + IPC_APIS:
        if api.known_blocking:
            names.add(api.qualified_name)
    return names
