"""API specifications.

Every operation an app can run on its main thread is described by an
:class:`ApiSpec`.  The spec captures the behavioural parameters the
simulator needs (duration distribution, CPU share, render-thread work,
memory footprint) and the *knowledge* parameters the detectors need
(whether the API is in the known-blocking database, whether its call
site is visible to an offline source scanner, whether it is a facade
over a hidden library call).

Kinds
-----
``UI``
    Must run on the main thread (layout, inflation, drawing).  Never a
    soft hang bug, even when slow: it generates heavy render-thread
    work.
``BLOCKING``
    I/O-ish API (file, camera, database, parsing) that can move to a
    worker thread.  A manifested call blocks the main thread — a soft
    hang bug.
``COMPUTE``
    Self-developed lengthy operation (heavy loop).  Pure CPU on the
    main thread; also a soft hang bug, but invisible to offline
    scanners that only search for well-known blocking API names.
``ASYNC_WAIT``
    Synchronous wait on an asynchronous result (``AsyncTask.get``,
    ``Future.get``).  Blocking the main thread on a worker's
    completion re-serializes the offloaded work — a soft hang bug.
``IPC``
    Synchronous binder round trip to a remote process.  Slow replies
    block the main thread — a soft hang bug.
``LIGHT``
    Cheap bookkeeping call; never hangs.
"""

import math
from dataclasses import dataclass
from typing import Optional

from repro.base.frames import Frame
from repro.base.kinds import ApiKind
from repro.base.rng import stream

#: Class-name prefixes that Trace Analyzer treats as UI classes (the
#: paper: "UI-APIs are well known as they are grouped in a few classes,
#: e.g. View and Widget classes").
UI_CLASS_PREFIXES = (
    "android.view",
    "android.widget",
    "android.webkit",
    "android.text",
    "android.animation",
    "android.transition",
    "android.graphics.drawable",
    "android.app.Activity",
    "android.app.Fragment",
    "androidx.recyclerview.widget",
)


def is_ui_class(clazz):
    """True if *clazz* belongs to a UI package (must stay on main thread)."""
    return clazz.startswith(UI_CLASS_PREFIXES)


#: Kinds whose slow calls could run off the main thread — the soft hang
#: *bug* kinds.  UI work must stay on main and LIGHT calls never hang.
_MOVABLE_KINDS = (
    ApiKind.BLOCKING,
    ApiKind.COMPUTE,
    ApiKind.ASYNC_WAIT,
    ApiKind.IPC,
)


@dataclass(frozen=True)
class ApiSpec:
    """Static description of one API (or self-developed operation).

    Parameters mirror what the simulator and detectors need; see module
    docstring for the semantics of :attr:`kind`.
    """

    #: Leaf method name (what appears at the bottom of a stack trace).
    name: str
    #: Fully-qualified class of the leaf method.
    clazz: str
    kind: ApiKind
    #: Mean wall-clock duration of a *manifested* (slow) call, ms.
    mean_ms: float
    #: Lognormal shape of the duration distribution (sigma of log).
    sigma: float = 0.25
    #: Probability that a call manifests slow; otherwise it takes
    #: :attr:`fast_ms`.  Occasional bugs have manifest_prob < 1.
    manifest_prob: float = 1.0
    #: Duration of a non-manifested call, ms.
    fast_ms: float = 2.0
    #: Fraction of wall time the calling thread spends on-CPU (the rest
    #: is blocked on I/O / IPC).
    cpu_share: float = 0.6
    #: CPU work generated on the render thread, as a fraction of the
    #: operation's wall duration.  High for UI APIs, ~0 for blocking.
    render_share: float = 0.0
    #: Memory pages newly touched by a manifested call (drives faults).
    pages: int = 50
    #: Pages touched by a fast call.
    pages_fast: int = 5
    #: Average blocked milliseconds per voluntary context switch.  None
    #: uses the device default (short I/O chunks).  Calls that block
    #: once for a long stretch (mmap reads, single IPC round trips) set
    #: this high and therefore produce few voluntary switches.
    wait_chunk_ms: Optional[float] = None
    #: Whether the API is in the known-blocking database that offline
    #: scanners search for (ground truth of "known" vs "unknown").
    known_blocking: bool = False
    #: When the API is a facade over a third-party library, the visible
    #: call-site method differs from the leaf (e.g. cupboard ``get``
    #: hiding database ``insertWithOnConflict``).
    entry_name: Optional[str] = None
    entry_clazz: Optional[str] = None
    #: Whether the call site's source is visible to an offline scanner
    #: (False for closed-source / encrypted third-party libraries).
    source_visible: bool = True
    #: Library the API ships in, if any (for reporting).
    library: Optional[str] = None
    #: How likely the slow path is to manifest in a *test bed* relative
    #: to the wild, as a multiplier on :attr:`manifest_prob`.  Bugs
    #: triggered by real content (a heavy email, a large worksheet)
    #: rarely manifest on synthetic lab inputs — the paper's §4.6
    #: argument for running Hang Doctor in the wild.
    lab_manifest_scale: float = 1.0
    #: Bytes transferred on the network by a manifested call (0 for
    #: non-network operations).  Supports the paper's footnote-2
    #: extension: detecting network-on-main-thread bugs by monitoring
    #: the main thread's network activity.
    network_bytes: int = 0

    def __post_init__(self):
        if self.mean_ms <= 0:
            raise ValueError(f"{self.name}: mean_ms must be positive")
        if not 0.0 <= self.manifest_prob <= 1.0:
            raise ValueError(f"{self.name}: manifest_prob outside [0, 1]")
        if not 0.0 < self.cpu_share <= 1.0:
            raise ValueError(f"{self.name}: cpu_share outside (0, 1]")
        if self.render_share < 0:
            raise ValueError(f"{self.name}: render_share must be >= 0")
        if (self.entry_name is None) != (self.entry_clazz is None):
            raise ValueError(
                f"{self.name}: entry_name and entry_clazz must be set together"
            )
        if not 0.0 <= self.lab_manifest_scale <= 1.0:
            raise ValueError(
                f"{self.name}: lab_manifest_scale outside [0, 1]"
            )
        if self.network_bytes < 0:
            raise ValueError(f"{self.name}: network_bytes must be >= 0")

    @property
    def qualified_name(self):
        """``Class.method`` of the leaf frame."""
        return f"{self.clazz}.{self.name}"

    @property
    def call_site_name(self):
        """Method name visible at the call site in app source."""
        return self.entry_name if self.entry_name is not None else self.name

    @property
    def call_site_class(self):
        """Class visible at the call site in app source."""
        return self.entry_clazz if self.entry_clazz is not None else self.clazz

    @property
    def is_ui(self):
        """True for operations that must stay on the main thread."""
        return self.kind is ApiKind.UI

    @property
    def can_hang(self):
        """True if a manifested call typically exceeds the 100 ms
        perceivable delay.  Short blocking calls (e.g. an 85 ms camera
        ``setParameters``) are movable in principle but are not soft
        hang bugs: they never produce a perceivable hang on their own.
        """
        if self.kind not in _MOVABLE_KINDS:
            return False
        return self.mean_ms >= 100.0

    def leaf_frame(self):
        """Stack frame of the executing leaf method."""
        file = self.clazz.rsplit(".", 1)[-1] + ".java"
        line = 25 + (hash_line(self.qualified_name) % 900)
        return Frame(clazz=self.clazz, method=self.name, file=file, line=line)

    def entry_frame(self):
        """Stack frame of the library facade, or None if not wrapped."""
        if self.entry_name is None:
            return None
        file = self.entry_clazz.rsplit(".", 1)[-1] + ".java"
        line = 25 + (hash_line(f"{self.entry_clazz}.{self.entry_name}") % 900)
        return Frame(
            clazz=self.entry_clazz, method=self.entry_name, file=file, line=line
        )

    def api_frames(self):
        """Frames this API contributes to a stack trace, outer to leaf."""
        entry = self.entry_frame()
        leaf = self.leaf_frame()
        return (entry, leaf) if entry is not None else (leaf,)

    def uarch_profile(self):
        """Per-API microarchitectural multipliers.

        Drawn once, deterministically from the API name.  These model
        the paper's observation that instruction/cache counts depend on
        the *specific* source code of an operation (hence correlate
        poorly with hang bugs), while scheduling events do not.
        """
        rng = stream("uarch", self.qualified_name)
        return {
            "ipc": float(rng.lognormal(mean=0.0, sigma=0.55)),
            "cache": float(rng.lognormal(mean=0.0, sigma=0.7)),
            "branch": float(rng.lognormal(mean=0.0, sigma=0.6)),
            "tlb": float(rng.lognormal(mean=0.0, sigma=0.7)),
            "mem": float(rng.lognormal(mean=0.0, sigma=0.6)),
        }

    def effective_manifest_prob(self, environment="wild"):
        """Manifestation probability in the given environment."""
        if environment == "wild":
            return self.manifest_prob
        if environment == "lab":
            return self.manifest_prob * self.lab_manifest_scale
        raise ValueError(f"unknown environment {environment!r}")

    def sample_duration_ms(self, rng, environment="wild"):
        """Sample one call's wall duration; returns (duration, manifested)."""
        probability = self.effective_manifest_prob(environment)
        manifested = bool(rng.random() < probability)
        if not manifested:
            jitter = rng.lognormal(mean=0.0, sigma=0.3)
            return max(0.05, self.fast_ms * jitter), False
        mu = math.log(self.mean_ms) - 0.5 * self.sigma**2
        return float(rng.lognormal(mean=mu, sigma=self.sigma)), True

    def moved_to_worker(self):
        """Spec unchanged; movement to a worker is an Operation property."""
        return self


def hash_line(text):
    """Stable small hash for synthesizing source line numbers."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) % 1_000_003
    return value


def ui_api(name, clazz="android.view.View", mean_ms=60.0, **kwargs):
    """Build a UI API spec (heavy render-thread work, on main thread)."""
    defaults = dict(
        kind=ApiKind.UI,
        mean_ms=mean_ms,
        cpu_share=0.35,
        render_share=0.6,
        pages=80,
        pages_fast=10,
        manifest_prob=1.0,
        fast_ms=8.0,
    )
    defaults.update(kwargs)
    return ApiSpec(name=name, clazz=clazz, **defaults)


def blocking_api(name, clazz, mean_ms=300.0, known_blocking=False, **kwargs):
    """Build a blocking API spec (I/O-ish, movable off the main thread)."""
    defaults = dict(
        kind=ApiKind.BLOCKING,
        mean_ms=mean_ms,
        cpu_share=0.55,
        render_share=0.0,
        pages=900,
        pages_fast=20,
        known_blocking=known_blocking,
    )
    defaults.update(kwargs)
    return ApiSpec(name=name, clazz=clazz, **defaults)


def compute_op(name, clazz, mean_ms=250.0, **kwargs):
    """Build a self-developed lengthy operation (heavy loop)."""
    defaults = dict(
        kind=ApiKind.COMPUTE,
        mean_ms=mean_ms,
        cpu_share=0.97,
        render_share=0.0,
        pages=250,
        pages_fast=10,
        known_blocking=False,
    )
    defaults.update(kwargs)
    return ApiSpec(name=name, clazz=clazz, **defaults)


def async_wait_api(name, clazz, mean_ms=350.0, **kwargs):
    """Build a synchronous wait on an asynchronous result.

    Almost all the wall time is one long block on the worker's
    completion signal: minimal CPU, no render work, a tiny footprint,
    and a single long wait chunk (few voluntary switches) — the
    PersisDroid hang anatomy.
    """
    defaults = dict(
        kind=ApiKind.ASYNC_WAIT,
        mean_ms=mean_ms,
        cpu_share=0.08,
        render_share=0.0,
        pages=20,
        pages_fast=4,
        wait_chunk_ms=40.0,
        known_blocking=False,
    )
    defaults.update(kwargs)
    return ApiSpec(name=name, clazz=clazz, **defaults)


def ipc_api(name, clazz, mean_ms=280.0, known_blocking=False, **kwargs):
    """Build a synchronous binder IPC call (remote process does the
    work; the caller marshals, waits one long stretch, unmarshals)."""
    defaults = dict(
        kind=ApiKind.IPC,
        mean_ms=mean_ms,
        cpu_share=0.18,
        render_share=0.0,
        pages=60,
        pages_fast=8,
        wait_chunk_ms=30.0,
        known_blocking=known_blocking,
    )
    defaults.update(kwargs)
    return ApiSpec(name=name, clazz=clazz, **defaults)


def light_api(name, clazz="android.util.Log", mean_ms=1.0, **kwargs):
    """Build a cheap bookkeeping call (never hangs)."""
    defaults = dict(
        kind=ApiKind.LIGHT,
        mean_ms=mean_ms,
        sigma=0.2,
        cpu_share=0.9,
        render_share=0.0,
        pages=2,
        pages_fast=1,
        fast_ms=0.5,
    )
    defaults.update(kwargs)
    return ApiSpec(name=name, clazz=clazz, **defaults)
