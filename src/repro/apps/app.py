"""App, action, and operation specifications.

An :class:`AppSpec` models one Android app: a package name, store
metadata (category, download count, commit — mirroring the paper's
Table 5 columns), and a set of user actions.  Each
:class:`ActionSpec` posts one or more :class:`InputEventSpec` messages
to the main thread; each input event runs a sequence of
:class:`Operation` call sites.

Ground truth lives here: an operation whose API ``can_hang`` and that
runs on the main thread is a soft hang bug.  Detectors never read these
labels — only the metrics layer does.
"""

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.apps.api import ApiSpec, hash_line
from repro.base.frames import Frame


@dataclass(frozen=True)
class Operation:
    """One call site inside an input event's handler code.

    The caller fields identify the self-developed function containing
    the call (they become the caller frames of stack traces and the
    file/line Hang Doctor reports to the developer).
    """

    api: ApiSpec
    caller_function: str
    caller_file: str
    caller_line: int
    #: Developer moved this call to a worker thread (the "fixed" app).
    on_worker: bool = False

    @property
    def is_hang_bug(self):
        """Ground truth: a movable blocking/compute call on main thread."""
        return self.api.can_hang and not self.on_worker

    @property
    def site_id(self):
        """Stable identifier of the call site (for reports and dedup)."""
        return f"{self.caller_file}:{self.caller_line}:{self.api.qualified_name}"

    def caller_frame(self, package):
        """Stack frame of the self-developed caller function."""
        return Frame(
            clazz=f"{package}.{self.caller_file[:-5]}",
            method=self.caller_function,
            file=self.caller_file,
            line=self.caller_line,
        )

    def stack_frames(self, package, handler_frame):
        """Full stack for this operation, outermost handler to leaf API."""
        return (handler_frame, self.caller_frame(package)) + self.api.api_frames()


@dataclass(frozen=True)
class InputEventSpec:
    """One message on the main thread's queue (part of an action)."""

    name: str
    operations: Tuple[Operation, ...]

    def __post_init__(self):
        if not self.operations:
            raise ValueError(f"input event {self.name!r} has no operations")


@dataclass(frozen=True)
class ActionSpec:
    """One user action (tap, scroll, resume...) of an app."""

    name: str
    #: Listener/callback the action is delivered through (onClick, ...).
    handler: str
    events: Tuple[InputEventSpec, ...]

    def __post_init__(self):
        if not self.events:
            raise ValueError(f"action {self.name!r} has no input events")

    def operations(self):
        """All call sites of the action, in execution order."""
        return [op for event in self.events for op in event.operations]

    def handler_frame(self, package):
        """Outermost stack frame (the listener callback)."""
        activity = self.name.title().replace("_", "") + "Activity"
        return Frame(
            clazz=f"{package}.{activity}",
            method=self.handler,
            file=f"{activity}.java",
            line=25 + (hash_line(f"{package}.{self.name}") % 400),
        )

    def hang_bug_operations(self):
        """Ground-truth soft hang bug call sites in this action."""
        return [op for op in self.operations() if op.is_hang_bug]


@dataclass(frozen=True)
class BugReport:
    """Ground-truth record of one soft hang bug in a catalog app.

    Mirrors a row fragment of the paper's Table 5: the GitHub issue the
    authors opened, whether the bug was previously unknown as blocking
    (and hence missed by the offline tool), and whether the developers
    confirmed it.
    """

    site_id: str
    issue_id: int
    known_offline: bool
    confirmed_by_developer: bool


@dataclass(frozen=True)
class AppSpec:
    """One simulated app."""

    name: str
    package: str
    category: str
    downloads: int
    commit: str
    actions: Tuple[ActionSpec, ...]
    issue_id: Optional[int] = None
    bug_reports: Tuple[BugReport, ...] = ()

    def __post_init__(self):
        names = [action.name for action in self.actions]
        if len(names) != len(set(names)):
            raise ValueError(f"app {self.name!r} has duplicate action names")

    def action(self, name):
        """Look up an action by name."""
        for candidate in self.actions:
            if candidate.name == name:
                return candidate
        raise KeyError(f"app {self.name!r} has no action {name!r}")

    def hang_bug_operations(self):
        """All ground-truth soft hang bug call sites in the app."""
        bugs = []
        seen = set()
        for action in self.actions:
            for op in action.hang_bug_operations():
                if op.site_id not in seen:
                    seen.add(op.site_id)
                    bugs.append(op)
        return bugs

    def has_hang_bugs(self):
        """True if any action contains a soft hang bug."""
        return bool(self.hang_bug_operations())

    def fixed(self, site_ids=None):
        """Return the app with bug call sites moved to worker threads.

        *site_ids* limits the fix to specific call sites; by default all
        ground-truth bugs are fixed.  UI operations are never moved.
        """

        def fix_op(op):
            if not op.is_hang_bug:
                return op
            if site_ids is not None and op.site_id not in site_ids:
                return op
            return replace(op, on_worker=True)

        new_actions = []
        for action in self.actions:
            new_events = tuple(
                replace(event, operations=tuple(fix_op(op) for op in event.operations))
                for event in action.events
            )
            new_actions.append(replace(action, events=new_events))
        return replace(self, actions=tuple(new_actions))

    def operation_by_site(self, site_id):
        """Find a call site by its :attr:`Operation.site_id`."""
        for action in self.actions:
            for op in action.operations():
                if op.site_id == site_id:
                    return op
        raise KeyError(f"app {self.name!r} has no call site {site_id!r}")


def simple_event(name, *operations):
    """Convenience constructor for a single input event."""
    return InputEventSpec(name=name, operations=tuple(operations))


def simple_action(name, handler, *operations):
    """Convenience constructor for a one-event action."""
    return ActionSpec(
        name=name,
        handler=handler,
        events=(simple_event(f"{name}_event", *operations),),
    )
