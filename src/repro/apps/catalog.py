"""Hand-modelled catalog apps.

The 16 bug-bearing apps of the paper's Table 5 and the 8 motivation
apps of Table 1, rebuilt as synthetic :class:`~repro.apps.app.AppSpec`
workloads.  Per-app bug inventories (count, offline detectability,
developer confirmation, GitHub issue id) follow the paper:

* 34 new soft hang bugs across the Table 5 apps;
* 23 of them (68 %) caused by APIs *not* in the known-blocking
  database, hence missed by a PerfChecker-style offline scanner;
* 21 (62 %) confirmed by developers.

Each app also carries realistic UI-only actions whose occasional slow
executions are the false positives that plague timeout-only detection.
"""

from dataclasses import replace

from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog_helpers import (
    action,
    event,
    finish,
    multi_action,
    op,
    ui_action,
)


# ---------------------------------------------------------------------------
# Table 5 apps (new soft hang bugs found by Hang Doctor)
# ---------------------------------------------------------------------------


def _andstatus():
    """Social timeline app; 3 bugs (issue #303), 2 missed offline.

    The known ``BitmapFactory.decodeFile`` on timeline scroll is the
    bug the developer first dismissed ("rarely executed") until Hang
    Doctor showed 600 ms hangs on every scroll; ``transform`` and a
    self-developed timeline formatter are unknown to offline tools.
    """
    transform = replace(
        apis.IMAGE_TRANSFORM, mean_ms=300.0, cpu_share=0.4, pages=450,
        manifest_prob=0.85, lab_manifest_scale=0.05,
    )
    format_loop = apis.heavy_loop(
        "formatTimeline", "org.andstatus.app.TimelineFormatter",
        mean_ms=165.0, cpu_share=0.9, pages=1800, manifest_prob=0.8,
    )
    scroll = action(
        "scroll_timeline", "onScroll",
        op(apis.BITMAP_DECODE_FILE, "loadAvatars", "TimelineAdapter.java"),
        op(apis.SMOOTH_SCROLL, "scrollList", "TimelineAdapter.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "refreshList", "TimelineAdapter.java"),
    )
    open_post = action(
        "open_post", "onItemClick",
        op(transform, "decorateImages", "PostViewer.java"),
        op(apis.SET_TEXT, "showBody", "PostViewer.java"),
        op(apis.INFLATE, "buildLayout", "PostViewer.java"),
    )
    refresh = action(
        "refresh_timeline", "onRefresh",
        op(format_loop, "rebuildTimeline", "TimelineFormatter.java"),
        op(apis.ON_DRAW, "redraw", "TimelineView.java"),
        op(apis.ON_MEASURE, "measure", "TimelineView.java"),
        op(apis.ON_LAYOUT, "layout", "TimelineView.java"),
        op(apis.ADD_VIEW, "attachRows", "TimelineView.java"),
    )
    compose = ui_action("compose", apis.INFLATE, apis.SET_TEXT,
                        apis.REQUEST_LAYOUT)
    settings = ui_action("open_settings", apis.INFLATE, apis.ADD_VIEW)
    app = AppSpec(
        name="AndStatus", package="org.andstatus.app", category="Social",
        downloads=1_000, commit="49ef41c",
        actions=(scroll, open_post, refresh, compose, settings),
    )
    return finish(app, issue_id=303, confirmed=True)


def _dashclock():
    """Personalization widget; 1 known-API bug (SharedPreferences
    commit on the main thread), detectable offline."""
    save = action(
        "save_settings", "onClick",
        op(apis.PREFS_COMMIT, "persistSettings",
           "ConfigurationActivity.java"),
        op(apis.SET_TEXT, "confirmSave", "ConfigurationActivity.java"),
    )
    configure = ui_action("configure_widget", apis.INFLATE, apis.ADD_VIEW,
                          apis.SEEKBAR_INIT)
    preview = ui_action("preview", apis.ON_DRAW, apis.INVALIDATE)
    app = AppSpec(
        name="DashClock", package="net.nurik.roman.dashclock",
        category="Personalization", downloads=1_000_000, commit="7e248f7",
        actions=(save, configure, preview),
    )
    return finish(app, issue_id=874, confirmed=False)


def _cyclestreets():
    """Travel app with map loading; 4 bugs (3 unknown).  Its map-drawing
    UI actions are CPU-heavy on the main thread, which is why
    utilization-threshold baselines drown in false positives here
    (paper §4.4)."""
    geocoder = replace(apis.GEOCODER_LOOKUP, manifest_prob=0.8, pages=350,
                       lab_manifest_scale=0.4)
    svg = replace(apis.SVG_PARSE, mean_ms=380.0, pages=500)
    smoothing = apis.heavy_loop(
        "smoothRoute", "net.cyclestreets.RouteSmoother",
        mean_ms=260.0, cpu_share=0.95, pages=250,
    )
    plan_route = action(
        "plan_route", "onClick",
        op(geocoder, "resolveEndpoints", "RoutePlanner.java"),
        op(smoothing, "smoothGeometry", "RoutePlanner.java"),
        op(apis.ON_DRAW, "drawRoute", "MapView.java"),
    )
    load_map = action(
        "load_map_tiles", "onScroll",
        op(svg, "renderIcons", "TileLoader.java"),
        op(apis.ON_DRAW, "drawTiles", "MapView.java"),
        op(apis.INVALIDATE, "invalidateMap", "MapView.java"),
    )
    itinerary = action(
        "open_itinerary", "onItemClick",
        op(replace(apis.DB_QUERY, mean_ms=300.0), "loadItinerary",
           "ItineraryActivity.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "showSteps", "ItineraryActivity.java"),
    )
    # Map redraw: pure UI but main-thread CPU heavy (high utilization).
    heavy_map_ui = replace(
        apis.ON_DRAW, mean_ms=140.0, cpu_share=0.6, render_share=0.55,
        sigma=0.35,
    )
    pan_map = ui_action("pan_map", heavy_map_ui, apis.INVALIDATE,
                        apis.REQUEST_LAYOUT, caller="panMap")
    zoom_map = ui_action("zoom_map", heavy_map_ui, apis.ON_MEASURE,
                         caller="zoomMap")
    app = AppSpec(
        name="CycleStreets", package="net.cyclestreets",
        category="Travel & Local", downloads=50_000, commit="2d8d550",
        actions=(plan_route, load_map, itinerary, pan_map, zoom_map),
    )
    return finish(app, issue_id=117, confirmed=False)


def _k9_mail():
    """Email client; 2 bugs, both unknown to offline tools.

    ``HtmlCleaner.clean`` (issue #1007) parses HTML when an email is
    opened — 1.3 s hangs on heavy pages (the paper's Figure 6 example).
    A self-developed thread-index builder hangs message search.
    """
    clean = replace(
        apis.HTML_CLEAN, manifest_prob=0.55, fast_ms=20.0, pages_fast=60,
        lab_manifest_scale=0.0,
    )
    index_loop = apis.heavy_loop(
        "buildThreadIndex", "com.fsck.k9.ThreadIndexer",
        mean_ms=220.0, cpu_share=0.95, pages=1200, manifest_prob=0.7,
        lab_manifest_scale=0.1,
    )
    open_email = multi_action(
        "open_email", "onItemClick",
        event("load_message",
              op(clean, "sanitizeHtml", "HtmlSanitizer.java"),
              op(replace(apis.WEBVIEW_LOAD, mean_ms=45.0), "displayHtml",
                 "MessageView.java")),
        event("update_header",
              op(replace(apis.SET_TEXT, mean_ms=25.0), "showSubject",
                 "MessageHeader.java"),
              op(replace(apis.SET_IMAGE, mean_ms=35.0), "showContactPicture",
                 "MessageHeader.java")),
    )
    search = action(
        "search_messages", "onQueryTextSubmit",
        op(index_loop, "indexThreads", "ThreadIndexer.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "showResults", "SearchResults.java"),
    )
    # The paper's Figure 7 UI actions: Folders hangs but is filtered by
    # S-Checker (clear UI symptoms); Inbox hangs with bug-like symptoms
    # once (false positive) and is cleared by Diagnoser's stack traces.
    folders = ui_action(
        "folders", apis.INFLATE, apis.ADD_VIEW, apis.NOTIFY_DATA_SET_CHANGED,
        caller="showFolders",
    )
    inbox = ui_action(
        "inbox", replace(apis.TEXT_LAYOUT, mean_ms=190.0),
        apis.NOTIFY_DATA_SET_CHANGED,
        caller="showMessageList",
    )
    compose = ui_action("compose", apis.INFLATE, apis.SET_TEXT)
    app = AppSpec(
        name="K9-mail", package="com.fsck.k9", category="Communication",
        downloads=5_000_000, commit="ac131a2",
        actions=(open_email, search, folders, inbox, compose),
    )
    return finish(app, issue_id=1007, confirmed=True)


def _omni_notes():
    """Note-taking app; 3 unknown bugs whose blocking calls wait in one
    long stretch (few voluntary switches) inside UI-heavy actions, so
    only the page-fault condition catches them (paper Table 6)."""
    markdown = replace(
        apis.MARKDOWN_RENDER, mean_ms=240.0, cpu_share=0.22,
        wait_chunk_ms=180.0, pages=3200, lab_manifest_scale=0.05,
    )
    attachment = replace(
        apis.ZIP_ENTRY_READ, mean_ms=260.0, cpu_share=0.2,
        wait_chunk_ms=200.0, pages=3400,
    )
    snapshot = replace(
        apis.FILE_READ, known_blocking=False, name="readFully",
        clazz="it.feio.android.omninotes.BackupHelper", mean_ms=230.0,
        cpu_share=0.2, wait_chunk_ms=160.0, pages=3000, library=None,
    )
    heavy_ui = (apis.ADD_VIEW, apis.ON_DRAW, apis.NOTIFY_DATA_SET_CHANGED,
                apis.SMOOTH_SCROLL)
    open_note = action(
        "open_note", "onItemClick",
        op(markdown, "renderPreview", "NoteViewer.java"),
        *[op(api, "buildNoteUi") for api in heavy_ui],
    )
    open_attachment = action(
        "open_attachment", "onClick",
        op(attachment, "extractAttachment", "AttachmentHandler.java"),
        *[op(api, "showAttachment") for api in heavy_ui],
    )
    restore_note = action(
        "restore_note", "onClick",
        op(snapshot, "readBackup", "BackupHelper.java"),
        *[op(api, "rebuildNoteList") for api in heavy_ui],
    )
    note_list = ui_action("note_list", apis.NOTIFY_DATA_SET_CHANGED,
                          apis.SMOOTH_SCROLL)
    app = AppSpec(
        name="Omni-Notes", package="it.feio.android.omninotes",
        category="Productivity", downloads=50_000, commit="8ffde3a",
        actions=(open_note, open_attachment, restore_note, note_list),
    )
    return finish(app, issue_id=253, confirmed=True)


def _owntracks():
    """Location diary; 1 bug: a known blocking query nested inside an
    ORM library facade (one of the paper's three nested cases)."""
    load_track = action(
        "load_track", "onClick",
        op(apis.ORMLITE_QUERY, "loadWaypoints", "MapActivity.java"),
        op(apis.ON_DRAW, "drawTrack", "MapActivity.java"),
    )
    map_view = ui_action("map_view", apis.ON_DRAW, apis.INVALIDATE)
    app = AppSpec(
        name="OwnTracks", package="org.owntracks.android",
        category="Travel & Local", downloads=1_000, commit="1514d4a",
        actions=(load_track, map_view),
    )
    return finish(app, issue_id=303, confirmed=False)


def _qksms():
    """SMS app; 3 unknown compute-style bugs (CPU-bound, small memory
    footprints): caught by context-switches and task-clock but not by
    page faults (paper Table 6)."""
    emoji = apis.heavy_loop(
        "parseEmoji", "com.moez.QKSMS.EmojiParser",
        mean_ms=260.0, cpu_share=0.95, pages=160,
    )
    digest = replace(
        apis.CRYPTO_DIGEST, mean_ms=300.0, cpu_share=0.95, pages=220,
        manifest_prob=0.85,
    )
    sort_loop = apis.heavy_loop(
        "sortConversations", "com.moez.QKSMS.ConversationSorter",
        mean_ms=240.0, cpu_share=0.95, pages=180,
    )
    open_conversation = action(
        "open_conversation", "onItemClick",
        op(emoji, "renderBubbles", "ConversationView.java"),
        op(apis.SET_TEXT, "showMessages", "ConversationView.java"),
    )
    verify_backup = action(
        "verify_backup", "onClick",
        op(digest, "checksumBackup", "BackupVerifier.java"),
        op(apis.SET_TEXT, "showStatus", "BackupVerifier.java"),
    )
    refresh_inbox = action(
        "refresh_inbox", "onRefresh",
        op(sort_loop, "resortThreads", "ConversationSorter.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "redrawList", "InboxFragment.java"),
    )
    settings = ui_action("settings", apis.INFLATE, apis.SEEKBAR_INIT)
    app = AppSpec(
        name="QKSMS", package="com.moez.QKSMS", category="Communication",
        downloads=100_000, commit="2a80947",
        actions=(open_conversation, verify_backup, refresh_inbox, settings),
    )
    return finish(app, issue_id=382, confirmed=True)


def _stickercamera():
    """Photography app; 3 bugs, all well-known camera/bitmap/file APIs
    (offline-detectable; the developer never replied)."""
    take_photo = action(
        "take_photo", "onClick",
        op(replace(apis.CAMERA_OPEN, mean_ms=260.0), "openCamera",
           "CameraActivity.java"),
        op(apis.SET_IMAGE, "showPreview", "CameraActivity.java"),
    )
    apply_sticker = action(
        "apply_sticker", "onItemClick",
        op(replace(apis.BITMAP_DECODE_FILE, mean_ms=480.0), "loadSticker",
           "StickerActivity.java"),
        op(apis.ON_DRAW, "composeImage", "StickerActivity.java"),
    )
    save_photo = action(
        "save_photo", "onClick",
        # Small JPEGs: a bug whose memory footprint stays under the
        # page-fault threshold (tests the filter's multi-event need).
        op(replace(apis.FILE_WRITE, mean_ms=260.0, pages=350), "writeJpeg",
           "SaveHandler.java"),
        op(apis.SET_TEXT, "confirmSaved", "SaveHandler.java"),
    )
    gallery = ui_action("gallery", apis.NOTIFY_DATA_SET_CHANGED,
                        apis.SMOOTH_SCROLL)
    app = AppSpec(
        name="StickerCamera", package="com.github.skykai.stickercamera",
        category="Photography", downloads=5_000, commit="6fc41b1",
        actions=(take_photo, apply_sticker, save_photo, gallery),
    )
    return finish(app, issue_id=29, confirmed=False)


def _antennapod():
    """Podcast player; 3 bugs: known MediaPlayer.prepare plus two
    unknown parsers (OPML import, track-format probing) with moderate
    footprints — caught by context-switches/task-clock, not by page
    faults (paper Table 6)."""
    opml = replace(apis.OPML_IMPORT, mean_ms=520.0, cpu_share=0.75, pages=460)
    probe = replace(apis.AUDIO_DECODE, mean_ms=380.0, cpu_share=0.6, pages=420)
    play_episode = action(
        "play_episode", "onClick",
        op(replace(apis.MEDIA_PREPARE, mean_ms=420.0), "preparePlayer",
           "PlaybackService.java"),
        op(apis.SET_IMAGE, "showCover", "PlayerFragment.java"),
    )
    import_opml = action(
        "import_opml", "onClick",
        op(opml, "readOpml", "OpmlImportActivity.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "showFeeds", "OpmlImportActivity.java"),
    )
    episode_info = action(
        "episode_info", "onItemClick",
        op(probe, "probeDuration", "EpisodeInfoFragment.java"),
        op(apis.SET_TEXT, "showDuration", "EpisodeInfoFragment.java"),
        op(apis.INFLATE, "buildInfoPane", "EpisodeInfoFragment.java"),
    )
    feed_list = ui_action("feed_list", apis.NOTIFY_DATA_SET_CHANGED,
                          apis.ADD_VIEW)
    app = AppSpec(
        name="AntennaPod", package="de.danoeh.antennapod",
        category="Media & Video", downloads=100_000, commit="c3808e2",
        actions=(play_episode, import_opml, episode_info, feed_list),
    )
    return finish(app, issue_id=1921, confirmed=True)


def _merchant():
    """Point-of-sale app; 1 unknown bug: a receipt-printer connect that
    blocks in short I/O chunks with almost no CPU — context-switches is
    the only counter that sees it (paper Table 6)."""
    printer = replace(
        apis.BLUETOOTH_ACCEPT, name="connect", clazz="com.epson.eposprint.Print",
        known_blocking=False, mean_ms=320.0, cpu_share=0.12, pages=260,
        library="com.epson.eposprint",
    )
    print_receipt = action(
        "print_receipt", "onClick",
        op(printer, "connectPrinter", "ReceiptPrinter.java"),
        op(apis.SET_TEXT, "showPrinted", "ReceiptPrinter.java"),
    )
    checkout = ui_action("checkout", apis.INFLATE, apis.SET_TEXT)
    app = AppSpec(
        name="Merchant", package="com.loyalty.merchant", category="Business",
        downloads=10_000, commit="c87d69a",
        actions=(print_receipt, checkout),
    )
    return finish(app, issue_id=17, confirmed=True)


def _uoitdc():
    """Booking app; 2 unknown heavy parsers (HTML timetable scraping,
    iCal parsing) — hot on all three filter counters."""
    jsoup = replace(apis.JSOUP_PARSE, mean_ms=640.0)
    ical = apis.blocking_api(
        "parseICal", "com.uoitdc.booking.ICalParser", mean_ms=520.0,
        cpu_share=0.85, pages=1400,
    )
    load_timetable = action(
        "load_timetable", "onClick",
        op(jsoup, "scrapeTimetable", "TimetableLoader.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "showSlots", "TimetableLoader.java"),
    )
    sync_calendar = action(
        "sync_calendar", "onClick",
        op(ical, "mergeCalendar", "CalendarSync.java"),
        op(apis.SET_TEXT, "showSynced", "CalendarSync.java"),
    )
    book_slot = ui_action("book_slot", apis.INFLATE, apis.SET_TEXT)
    app = AppSpec(
        name="UOITDC Booking", package="com.uoitdc.booking", category="Tools",
        downloads=100, commit="5d18c26",
        actions=(load_timetable, sync_calendar, book_slot),
    )
    return finish(app, issue_id=3, confirmed=True)


def _sagemath():
    """Math client; 3 bugs (issue #84): two unknown gson ``toJson``
    serializations (~1 s on large objects) and one known database
    insert hidden inside the cupboard library."""
    to_json = replace(apis.GSON_TO_JSON, manifest_prob=0.75, fast_ms=30.0,
                      lab_manifest_scale=0.05)
    save_worksheet = action(
        "save_worksheet", "onClick",
        op(to_json, "serializeWorksheet", "WorksheetStore.java"),
        op(apis.SET_TEXT, "confirmSave", "WorksheetStore.java"),
    )
    share_result = action(
        "share_result", "onClick",
        op(to_json, "serializeResult", "ShareHelper.java"),
        op(apis.INFLATE, "buildShareSheet", "ShareHelper.java"),
    )
    cache_cell = action(
        "cache_cell", "onCellEvaluated",
        op(apis.CUPBOARD_GET, "persistCell", "CellCache.java"),
        op(apis.INVALIDATE, "redrawCell", "CellCache.java"),
    )
    open_worksheet = ui_action("open_worksheet", apis.INFLATE, apis.ADD_VIEW,
                               apis.ON_MEASURE)
    app = AppSpec(
        name="Sage Math", package="org.sagemath.droid", category="Education",
        downloads=10_000, commit="3198106",
        actions=(save_worksheet, share_result, cache_cell, open_worksheet),
    )
    return finish(app, issue_id=84, confirmed=True)


def _radiodroid():
    """Internet radio; 2 bugs: known MediaPlayer.prepare plus an
    unknown icon-pack loader that blocks once on a large mmap read —
    only page faults flag it (paper Table 6)."""
    icons = apis.blocking_api(
        "loadStationIcons", "net.programmierecke.radiodroid.IconCache",
        mean_ms=230.0, cpu_share=0.18, wait_chunk_ms=170.0, pages=3000,
    )
    play_station = action(
        "play_station", "onItemClick",
        op(replace(apis.MEDIA_PREPARE, mean_ms=360.0), "startStream",
           "PlayerService.java"),
        op(apis.SET_IMAGE, "showStationArt", "PlayerActivity.java"),
    )
    browse_stations = action(
        "browse_stations", "onScroll",
        op(icons, "warmIconCache", "StationListAdapter.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "refreshStations",
           "StationListAdapter.java"),
        op(apis.SMOOTH_SCROLL, "scrollStations", "StationListAdapter.java"),
        op(apis.ON_DRAW, "drawStationRows", "StationListAdapter.java"),
    )
    favorites = ui_action("favorites", apis.NOTIFY_DATA_SET_CHANGED,
                          apis.ADD_VIEW)
    app = AppSpec(
        name="RadioDroid", package="net.programmierecke.radiodroid",
        category="Music & Audio", downloads=10, commit="0108e8b",
        actions=(play_station, browse_stations, favorites),
    )
    return finish(app, issue_id=29, confirmed=False)


def _gitosc():
    """Git client; 1 unknown bug: packfile object reads that block in
    small chunks with little CPU — context-switches only."""
    jgit = apis.blocking_api(
        "readObject", "org.eclipse.jgit.storage.file.ObjectReader",
        mean_ms=280.0, cpu_share=0.15, pages=320, library="org.eclipse.jgit",
    )
    open_commit = action(
        "open_commit", "onItemClick",
        op(jgit, "loadCommitDiff", "CommitDetailActivity.java"),
        op(apis.SET_TEXT, "showDiff", "CommitDetailActivity.java"),
    )
    repo_list = ui_action("repo_list", apis.NOTIFY_DATA_SET_CHANGED,
                          apis.SMOOTH_SCROLL)
    app = AppSpec(
        name="Git@OSC", package="net.oschina.gitapp", category="Tools",
        downloads=10_000, commit="bb80e0a95",
        actions=(open_commit, repo_list),
    )
    return finish(app, issue_id=89, confirmed=False)


def _lens_launcher():
    """Launcher; 1 bug: a known bitmap decode hidden behind an image
    loader facade (third nested-library case)."""
    load_icons = action(
        "load_app_icons", "onResume",
        op(apis.PICASSO_LOAD_SYNC, "loadIconGrid", "LauncherActivity.java"),
        op(apis.ON_DRAW, "drawGrid", "LensView.java"),
    )
    lens_zoom = ui_action(
        "lens_zoom",
        replace(apis.ON_DRAW, mean_ms=90.0, render_share=0.75),
        apis.INVALIDATE, caller="zoomLens",
    )
    app = AppSpec(
        name="Lens-Launcher", package="nickrout.lenslauncher",
        category="Personalization", downloads=100_000, commit="e41e6c6",
        actions=(load_icons, lens_zoom),
    )
    return finish(app, issue_id=15, confirmed=False)


def _skytube():
    """YouTube client; 1 unknown bug: HTML page parsing for video
    metadata (heavy on all three filter counters)."""
    parse = replace(apis.JSOUP_PARSE, mean_ms=720.0, manifest_prob=0.85,
                    lab_manifest_scale=0.35)
    open_video = action(
        "open_video", "onItemClick",
        op(parse, "parseVideoPage", "VideoDetailFragment.java"),
        op(replace(apis.SET_TEXT, mean_ms=25.0), "showDescription",
           "VideoDetailFragment.java"),
        op(replace(apis.SET_IMAGE, mean_ms=35.0), "showThumbnail",
           "VideoDetailFragment.java"),
    )
    trending = ui_action("trending", apis.NOTIFY_DATA_SET_CHANGED,
                         apis.SMOOTH_SCROLL)
    app = AppSpec(
        name="SkyTube", package="free.rm.skytube", category="Video Players",
        downloads=5_000, commit="3da671c",
        actions=(open_video, trending),
    )
    return finish(app, issue_id=88, confirmed=True)


#: The 16 bug-bearing apps of the paper's Table 5 (in table order).
TABLE5_APPS = (
    _andstatus(),
    _dashclock(),
    _cyclestreets(),
    _k9_mail(),
    _omni_notes(),
    _owntracks(),
    _qksms(),
    _stickercamera(),
    _antennapod(),
    _merchant(),
    _uoitdc(),
    _sagemath(),
    _radiodroid(),
    _gitosc(),
    _lens_launcher(),
    _skytube(),
)

# Motivation (Table 1) apps live in their own module to keep this one
# readable; import at the bottom to avoid a cycle with the helpers.
from repro.apps.motivation import MOTIVATION_APPS  # noqa: E402

#: All hand-modelled apps, keyed by name.
NAMED_APPS = {app.name: app for app in TABLE5_APPS + MOTIVATION_APPS}


def get_app(name):
    """Look up a hand-modelled app by its Table 1 / Table 5 name."""
    try:
        return NAMED_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown catalog app {name!r}; available: {sorted(NAMED_APPS)}"
        ) from None
