"""Builder helpers shared by the catalog and motivation app modules."""

from dataclasses import replace

from repro.apps.api import hash_line
from repro.apps.app import ActionSpec, BugReport, InputEventSpec, Operation


def op(api, caller_function, caller_file=None, on_worker=False):
    """Build an Operation with a synthesized (stable) source line."""
    if caller_file is None:
        caller_file = caller_function[0].upper() + caller_function[1:] + ".java"
    line = 30 + (
        hash_line(f"{caller_file}:{caller_function}:{api.qualified_name}") % 700
    )
    return Operation(
        api=api,
        caller_function=caller_function,
        caller_file=caller_file,
        caller_line=line,
        on_worker=on_worker,
    )


def event(name, *ops):
    """Build one input event."""
    return InputEventSpec(name=name, operations=tuple(ops))


def action(name, handler, *ops):
    """Single-input-event action."""
    return ActionSpec(
        name=name, handler=handler, events=(event(f"{name}_event", *ops),)
    )


def multi_action(name, handler, *events_):
    """Multi-input-event action (the action's response time is the max
    of its input events' response times, per the paper §2.2)."""
    return ActionSpec(name=name, handler=handler, events=tuple(events_))


def ui_action(name, *ui_apis, handler="onClick", caller="updateUi"):
    """An action made purely of UI APIs (a potential false positive)."""
    ops = [op(api, caller) for api in ui_apis]
    return action(name, handler, *ops)


def bug_reports_for(app, issue_id, confirmed):
    """Derive BugReport ground truth for every hang-bug site of *app*.

    ``known_offline`` follows the paper's Table 5 accounting: a bug is
    detectable offline iff its leaf API is in the known-blocking
    database (PerfChecker analyzes packaged bytecode, so library
    nesting does not hide a *known* API — see §4.2's "3 out of 11"
    nested cases, which still count as offline-detectable).
    """
    reports = []
    for bug_op in app.hang_bug_operations():
        reports.append(
            BugReport(
                site_id=bug_op.site_id,
                issue_id=issue_id,
                known_offline=bug_op.api.known_blocking,
                confirmed_by_developer=confirmed,
            )
        )
    return tuple(reports)


def finish(app, issue_id, confirmed):
    """Attach derived bug reports to a built app."""
    return replace(
        app,
        issue_id=issue_id,
        bug_reports=bug_reports_for(app, issue_id, confirmed),
    )
