"""The 114-app test fleet.

The paper tested ~114 apps; only the 16 of Table 5 showed soft hang
problems.  The corpus therefore combines the hand-modelled Table 5
apps with generated *clean* apps (UI and light work only, across the
store categories the paper lists) to reach the full fleet size.
"""

from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog import TABLE5_APPS
from repro.apps.wellknown import WELLKNOWN_CLEAN_APPS
from repro.apps.catalog_helpers import op, ui_action
from repro.base.rng import stream

#: Store categories sampled for generated apps (paper's Table 5 mix).
CATEGORIES = (
    "Social", "Personalization", "Travel & Local", "Communication",
    "Productivity", "Photography", "Media & Video", "Business", "Tools",
    "Education", "Music & Audio", "Video Players", "Books", "Weather",
    "Finance", "Health & Fitness",
)

#: UI/light building blocks for generated clean apps.
_UI_POOL = apis.ALL_UI_APIS
_LIGHT_POOL = apis.LIGHT_APIS

#: Paper fleet size.
FLEET_SIZE = 114


def app_profile(rng):
    """Draw the store-listing profile (category, downloads, commit).

    The draw order (category, then downloads, then commit) is part of
    the seed contract: :func:`generate_clean_app` has emitted the same
    apps for a given seed since the corpus existed, and every scenario
    archetype (:mod:`repro.scenarios.archetypes`) shares this prefix so
    generated apps stay comparable across archetypes.
    """
    category = CATEGORIES[int(rng.integers(len(CATEGORIES)))]
    downloads = int(10 ** rng.uniform(2, 6))
    commit = "".join(
        "0123456789abcdef"[int(d)] for d in rng.integers(0, 16, size=7)
    )
    return category, downloads, commit


def clean_actions(rng):
    """Draw a clean app's action list (UI and light operations only)."""
    action_count = int(rng.integers(3, 7))
    actions = []
    for action_index in range(action_count):
        ui_count = int(rng.integers(1, 4))
        chosen = [
            _UI_POOL[int(rng.integers(len(_UI_POOL)))] for _ in range(ui_count)
        ]
        chosen += [
            _LIGHT_POOL[int(rng.integers(len(_LIGHT_POOL)))]
            for _ in range(int(rng.integers(1, 3)))
        ]
        actions.append(
            ui_action(f"action_{action_index}", *chosen,
                      caller=f"handleAction{action_index}")
        )
    return tuple(actions)


def clean_app(rng, name, package):
    """The ``clean`` archetype: one bug-free app drawn from *rng*.

    This is the single clean-app generator path — the legacy corpus
    (:func:`generate_clean_app`) and the scenario taxonomy's ``clean``
    archetype both call it, so there is exactly one place the UI/light
    pools and draw order live.
    """
    category, downloads, commit = app_profile(rng)
    actions = clean_actions(rng)
    return AppSpec(
        name=name, package=package, category=category,
        downloads=downloads, commit=commit, actions=actions,
    )


def generate_clean_app(index, seed=0):
    """Generate one bug-free app (UI and light operations only).

    Seed-for-seed identical to what this function has always emitted:
    the rng keying (``seed, "corpus", index``) and every draw inside
    :func:`clean_app` are unchanged.
    """
    rng = stream(seed, "corpus", index)
    return clean_app(
        rng, f"GenApp-{index:03d}", f"com.generated.app{index:03d}"
    )


def build_corpus(seed=0, size=FLEET_SIZE):
    """The full test fleet: Table 5 apps, hand-modelled clean apps,
    and generated clean apps up to *size*."""
    base = list(TABLE5_APPS) + list(WELLKNOWN_CLEAN_APPS)
    if size < len(base):
        raise ValueError(
            f"corpus size {size} smaller than the {len(base)} "
            "hand-modelled apps"
        )
    fleet = list(base)
    for index in range(size - len(base)):
        fleet.append(generate_clean_app(index, seed=seed))
    return fleet
