"""The 114-app test fleet.

The paper tested ~114 apps; only the 16 of Table 5 showed soft hang
problems.  The corpus therefore combines the hand-modelled Table 5
apps with generated *clean* apps (UI and light work only, across the
store categories the paper lists) to reach the full fleet size.
"""

from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog import TABLE5_APPS
from repro.apps.wellknown import WELLKNOWN_CLEAN_APPS
from repro.apps.catalog_helpers import op, ui_action
from repro.base.rng import stream

#: Store categories sampled for generated apps (paper's Table 5 mix).
CATEGORIES = (
    "Social", "Personalization", "Travel & Local", "Communication",
    "Productivity", "Photography", "Media & Video", "Business", "Tools",
    "Education", "Music & Audio", "Video Players", "Books", "Weather",
    "Finance", "Health & Fitness",
)

#: UI/light building blocks for generated clean apps.
_UI_POOL = apis.ALL_UI_APIS
_LIGHT_POOL = apis.LIGHT_APIS

#: Paper fleet size.
FLEET_SIZE = 114


def generate_clean_app(index, seed=0):
    """Generate one bug-free app (UI and light operations only)."""
    rng = stream(seed, "corpus", index)
    name = f"GenApp-{index:03d}"
    package = f"com.generated.app{index:03d}"
    category = CATEGORIES[int(rng.integers(len(CATEGORIES)))]
    downloads = int(10 ** rng.uniform(2, 6))
    commit = "".join(
        "0123456789abcdef"[int(d)] for d in rng.integers(0, 16, size=7)
    )
    action_count = int(rng.integers(3, 7))
    actions = []
    for action_index in range(action_count):
        ui_count = int(rng.integers(1, 4))
        chosen = [
            _UI_POOL[int(rng.integers(len(_UI_POOL)))] for _ in range(ui_count)
        ]
        chosen += [
            _LIGHT_POOL[int(rng.integers(len(_LIGHT_POOL)))]
            for _ in range(int(rng.integers(1, 3)))
        ]
        actions.append(
            ui_action(f"action_{action_index}", *chosen,
                      caller=f"handleAction{action_index}")
        )
    return AppSpec(
        name=name, package=package, category=category,
        downloads=downloads, commit=commit, actions=tuple(actions),
    )


def build_corpus(seed=0, size=FLEET_SIZE):
    """The full test fleet: Table 5 apps, hand-modelled clean apps,
    and generated clean apps up to *size*."""
    base = list(TABLE5_APPS) + list(WELLKNOWN_CLEAN_APPS)
    if size < len(base):
        raise ValueError(
            f"corpus size {size} smaller than the {len(base)} "
            "hand-modelled apps"
        )
    fleet = list(base)
    for index in range(size - len(base)):
        fleet.append(generate_clean_app(index, seed=seed))
    return fleet
