"""Motivation-study apps (paper Table 1).

Eight apps with *well-known* soft hang bugs, used by the paper's
Section 2.2 to show that a pure timeout detector needs the 100 ms
threshold to catch them (19 true positives) but then drowns in UI
false positives (33).  Bug durations are placed to reproduce Table 2's
timeout sweep: one ~1.4 s bug (SeaDroid) survives a 1 s timeout, one
~650 ms bug (FrostWire) survives 500 ms, everything else lives in the
100–500 ms band.

``A Better Camera``'s resume action reproduces Figure 1: six
operations totalling ~423 ms, dominated by ``Camera.open`` (~263 ms),
which moving to a worker thread cuts to ~160 ms.
"""

from dataclasses import replace

from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog_helpers import action, op, ui_action

#: Heavy UI combination that occasionally exceeds 500 ms (the source of
#: Table 2's false positives at the 500 ms timeout).
_HEAVY_UI = (apis.WEBVIEW_LOAD, apis.INFLATE,
             apis.NOTIFY_DATA_SET_CHANGED)

#: Moderate UI combination hanging in the 100–400 ms band.
_MODERATE_UI = (apis.INFLATE, apis.ON_MEASURE, apis.SET_TEXT)

#: Light UI combination around the 100 ms boundary.
_LIGHT_UI = (apis.ON_DRAW, apis.ON_LAYOUT, apis.SET_TEXT)


def _ui_actions(prefix, heavy, moderate, light):
    """Build counts of heavy/moderate/light UI-only actions."""
    actions = []
    for index in range(heavy):
        actions.append(ui_action(f"{prefix}_heavy_ui_{index}", *_HEAVY_UI))
    for index in range(moderate):
        actions.append(ui_action(f"{prefix}_ui_{index}", *_MODERATE_UI))
    for index in range(light):
        actions.append(ui_action(f"{prefix}_light_ui_{index}", *_LIGHT_UI))
    return actions


def _droidwall():
    apply_rules = action(
        "apply_rules", "onClick",
        op(replace(apis.FILE_WRITE, mean_ms=220.0, sigma=0.12), "writeIptablesScript",
           "Api.java"),
        op(apis.SET_TEXT, "showApplied", "MainActivity.java"),
    )
    return AppSpec(
        name="DroidWall", package="com.googlecode.droidwall",
        category="Tools", downloads=100_000, commit="3e2b654",
        actions=tuple([apply_rules] + _ui_actions("droidwall", 1, 2, 1)),
    )


def _frostwire():
    load_library = action(
        "load_library", "onResume",
        op(replace(apis.DB_QUERY, mean_ms=650.0, sigma=0.15), "loadFinished",
           "LibraryFragment.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "showDownloads",
           "LibraryFragment.java"),
    )
    return AppSpec(
        name="FrostWire", package="com.frostwire.android",
        category="Media & Video", downloads=1_000_000, commit="55427ef",
        actions=tuple([load_library] + _ui_actions("frostwire", 0, 3, 2)),
    )


def _ushaidi():
    sync_reports = action(
        "sync_reports", "onClick",
        op(replace(apis.XML_PARSE, mean_ms=280.0, sigma=0.12), "parseReports",
           "ReportsSync.java"),
        op(apis.SET_TEXT, "refreshReports", "ReportsSync.java"),
    )
    save_report = action(
        "save_report", "onClick",
        op(replace(apis.DB_INSERT, mean_ms=240.0, sigma=0.12), "persistReport",
           "ReportEditor.java"),
        op(apis.SET_TEXT, "confirmSave", "ReportEditor.java"),
    )
    return AppSpec(
        name="Ushaidi", package="com.ushahidi.android",
        category="Communication", downloads=10_000, commit="59fbb533d0",
        actions=tuple([sync_reports, save_report]
                      + _ui_actions("ushaidi", 1, 2, 1)),
    )


def _seadroid():
    open_library = action(
        "open_library", "onItemClick",
        op(replace(apis.FILE_READ, mean_ms=1400.0, sigma=0.15),
           "loadCachedListing", "BrowserActivity.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "showEntries",
           "BrowserActivity.java"),
    )
    return AppSpec(
        name="SeaDroid", package="com.seafile.seadroid2",
        category="Productivity", downloads=50_000, commit="5a7531d",
        actions=tuple([open_library] + _ui_actions("seadroid", 2, 3, 1)),
    )


def _websms():
    save_connector = action(
        "save_connector", "onClick",
        op(replace(apis.PREFS_COMMIT, mean_ms=190.0, sigma=0.12), "persistConnector",
           "SettingsActivity.java"),
        op(apis.SET_TEXT, "confirmConnector", "SettingsActivity.java"),
    )
    return AppSpec(
        name="WebSMS", package="de.ub0r.android.websms",
        category="Communication", downloads=500_000, commit="1f596fbd29",
        actions=tuple([save_connector] + _ui_actions("websms", 0, 2, 1)),
    )


def _cgeo():
    open_cache = action(
        "open_cache", "onItemClick",
        op(replace(apis.DB_QUERY, mean_ms=280.0, sigma=0.12), "loadCacheDetails",
           "CacheDetailActivity.java"),
        op(apis.SET_TEXT, "showCache", "CacheDetailActivity.java"),
    )
    import_gpx = action(
        "import_gpx", "onClick",
        op(replace(apis.XML_PARSE, mean_ms=330.0, sigma=0.12), "parseGpx",
           "GpxImporter.java"),
        op(apis.SET_TEXT, "showImported", "GpxImporter.java"),
    )
    show_map_icons = action(
        "show_map_icons", "onScroll",
        op(replace(apis.BITMAP_DECODE_FILE, mean_ms=300.0, sigma=0.12), "decodeIcons",
           "MapMarkers.java"),
        op(apis.ON_DRAW, "drawMarkers", "MapMarkers.java"),
    )
    read_logfile = action(
        "read_logfile", "onClick",
        op(replace(apis.FILE_READ, mean_ms=240.0, sigma=0.12), "loadFieldNotes",
           "FieldNotes.java"),
        op(apis.SET_TEXT, "showNotes", "FieldNotes.java"),
    )
    open_db = action(
        "open_database", "onResume",
        op(replace(apis.DB_OPEN, mean_ms=260.0, sigma=0.12), "ensureDatabase",
           "DataStore.java"),
        op(apis.NOTIFY_DATA_SET_CHANGED, "refreshCaches", "DataStore.java"),
    )
    return AppSpec(
        name="cgeo", package="cgeo.geocaching", category="Travel & Local",
        downloads=1_000_000, commit="6e4a8d4ba8",
        actions=tuple([open_cache, import_gpx, show_map_icons, read_logfile,
                       open_db] + _ui_actions("cgeo", 2, 2, 1)),
    )


def _fbreaderj():
    bugs = [
        ("open_book", replace(apis.FILE_READ, mean_ms=330.0, sigma=0.12), "openBookFile",
         "BookReader.java"),
        ("render_cover", replace(apis.BITMAP_DECODE_STREAM, mean_ms=300.0, sigma=0.12),
         "decodeCover", "CoverManager.java"),
        ("search_library", replace(apis.DB_QUERY, mean_ms=260.0, sigma=0.12),
         "searchBooks", "LibraryService.java"),
        ("add_bookmark", replace(apis.DB_INSERT, mean_ms=220.0, sigma=0.12),
         "saveBookmark", "BookmarkService.java"),
        ("import_catalog", replace(apis.XML_PARSE, mean_ms=340.0, sigma=0.12),
         "parseCatalog", "CatalogImporter.java"),
        ("save_position", replace(apis.PREFS_COMMIT, mean_ms=170.0, sigma=0.12),
         "savePosition", "PositionStore.java"),
    ]
    bug_actions = [
        action(name, "onClick", op(api, caller, file),
               op(apis.SET_TEXT, caller + "Status", file))
        for name, api, caller, file in bugs
    ]
    return AppSpec(
        name="FBReaderJ", package="org.geometerplus.fbreader",
        category="Books", downloads=10_000_000, commit="0f02d4e923",
        actions=tuple(bug_actions + _ui_actions("fbreader", 2, 1, 1)),
    )


def _a_better_camera():
    """Figure 1's app: the buggy Resume sequence totals ~423 ms with
    ``Camera.open`` the dominant ~263 ms; ``fixed()`` moves it to a
    worker for a ~160 ms response time."""
    resume = action(
        "resume", "onResume",
        op(replace(apis.CAMERA_SET_PARAMETERS, mean_ms=75.0, sigma=0.1),
           "configureCamera", "MainActivity.java"),
        op(replace(apis.CAMERA_OPEN, mean_ms=263.0, sigma=0.1), "openCamera",
           "MainActivity.java"),
        op(replace(apis.SET_TEXT, mean_ms=30.0, sigma=0.1), "updateHud",
           "MainActivity.java"),
        op(replace(apis.INFLATE, mean_ms=35.0, sigma=0.1), "inflateControls",
           "MainActivity.java"),
        op(replace(apis.SEEKBAR_INIT, mean_ms=10.0, sigma=0.1), "initZoomBar",
           "MainActivity.java"),
        op(replace(apis.ENABLE_ORIENTATION, mean_ms=10.0, sigma=0.1),
           "enableRotation", "MainActivity.java"),
    )
    save_photo = action(
        "save_photo", "onPictureTaken",
        op(replace(apis.FILE_WRITE, mean_ms=170.0, sigma=0.12), "writeJpeg",
           "SavingService.java"),
        op(apis.SET_IMAGE, "updateThumbnail", "MainActivity.java"),
    )
    return AppSpec(
        name="A Better Camera", package="com.almalence.opencam",
        category="Photography", downloads=1_000_000, commit="9f8e3b0",
        actions=tuple([resume, save_photo]
                      + _ui_actions("camera", 0, 3, 1)),
    )


#: The 8 motivation apps of the paper's Table 1 (in table order).
MOTIVATION_APPS = (
    _droidwall(),
    _frostwire(),
    _ushaidi(),
    _websms(),
    _cgeo(),
    _seadroid(),
    _fbreaderj(),
    _a_better_camera(),
)
