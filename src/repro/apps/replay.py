"""Session recording and replay.

The paper's evaluation methodology fixes the inputs: "we use the same
app user traces to test Hang Doctor and the baselines."  This module
makes that explicit and durable — record a set of user sessions to
JSON, reload them later (or on another machine), and replay them
through any detector with a pinned engine seed so every comparison
sees byte-identical executions.
"""

import json
from typing import Sequence

from repro.apps.sessions import UserSession

#: Wire-format version.
SCHEMA_VERSION = 1


def sessions_to_json(sessions: Sequence[UserSession], engine_seed=0):
    """Serialize sessions plus the engine seed that pins executions."""
    return json.dumps({
        "schema": SCHEMA_VERSION,
        "engine_seed": engine_seed,
        "sessions": [
            {
                "app": session.app_name,
                "user": session.user_id,
                "actions": list(session.action_names),
            }
            for session in sessions
        ],
    }, indent=2)


def sessions_from_json(text):
    """Rebuild (sessions, engine_seed) from the JSON form."""
    payload = json.loads(text)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported session schema {payload.get('schema')!r}"
        )
    sessions = [
        UserSession(
            app_name=raw["app"],
            user_id=raw["user"],
            action_names=tuple(raw["actions"]),
        )
        for raw in payload["sessions"]
    ]
    return sessions, payload["engine_seed"]


def replay(app, sessions, device, detector_factory, engine_seed=0,
           gap_ms=1000.0):
    """Replay recorded sessions through a freshly built detector.

    *detector_factory(app)* builds the detector; a fresh engine with
    the pinned seed regenerates the identical executions, so two
    replays (e.g. Hang Doctor vs a baseline) compare on exactly the
    same soft hangs.  Returns the
    :class:`~repro.detectors.runner.DetectorRun`.
    """
    from repro.detectors.runner import DetectorRun, run_detector
    from repro.sim.engine import ExecutionEngine

    engine = ExecutionEngine(device, seed=engine_seed)
    detector = detector_factory(app)
    combined = DetectorRun(detector_name=detector.name)
    for session in sessions:
        if session.app_name != app.name:
            raise ValueError(
                f"session for {session.app_name!r} replayed against "
                f"{app.name!r}"
            )
        executions = engine.run_session(
            app, session.action_names, gap_ms=gap_ms
        )
        run = run_detector(detector, executions,
                           device_id=session.user_id)
        combined.executions.extend(run.executions)
        combined.outcomes.extend(run.outcomes)
        combined.cost.add(run.cost)
    return combined
