"""User-session generation.

The paper deployed the tested apps to 20 users for 60 days.  A
:class:`SessionGenerator` reproduces that scale (or a scaled-down
version for benches): per user and day, a sequence of action names
drawn with per-action popularity weights, so frequent actions hit
their Normal-state reset period and occasional bugs get many chances
to manifest.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.base.rng import stream


@dataclass(frozen=True)
class UserSession:
    """One user's action trace for one app."""

    app_name: str
    user_id: int
    action_names: Tuple[str, ...]

    def __len__(self):
        return len(self.action_names)


class SessionGenerator:
    """Draws weighted action sequences for an app's user base."""

    def __init__(self, seed=0):
        self.seed = seed

    def action_weights(self, app):
        """Per-action popularity weights (stable per app)."""
        rng = stream(self.seed, "weights", app.name)
        weights = rng.lognormal(mean=0.0, sigma=0.6, size=len(app.actions))
        return weights / weights.sum()

    def user_session(self, app, user_id, actions_per_user=60):
        """One user's trace: *actions_per_user* weighted draws."""
        rng = stream(self.seed, "session", app.name, user_id)
        weights = self.action_weights(app)
        names = [action.name for action in app.actions]
        indices = rng.choice(len(names), size=actions_per_user, p=weights)
        return UserSession(
            app_name=app.name,
            user_id=user_id,
            action_names=tuple(names[i] for i in indices),
        )

    def fleet_sessions(self, app, users=20, actions_per_user=60):
        """Sessions for a whole user base."""
        return [
            self.user_session(app, user_id, actions_per_user)
            for user_id in range(users)
        ]

    def coverage_session(self, app, repeats=3, user_id=0):
        """A trace that executes every action *repeats* times (round
        robin) — used when an experiment must touch every action."""
        names = [action.name for action in app.actions] * repeats
        return UserSession(
            app_name=app.name, user_id=user_id, action_names=tuple(names)
        )
