"""Hand-modelled clean apps.

The paper's 114-app fleet is dominated by apps where Hang Doctor found
*nothing* — well-tested, mature apps whose heavy work already lives on
worker threads.  A few such apps are hand-modelled here (the rest of
the clean fleet is generated): their actions mix UI work with blocking
APIs that are **already on worker threads**, which exercises the
``on_worker`` path of the engine and gives offline scanners and Hang
Doctor realistic true-negative material.
"""

from dataclasses import replace

from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog_helpers import action, op, ui_action


def _messenger():
    """A Signal-style messenger: database and crypto on workers."""
    open_chat = action(
        "open_chat", "onItemClick",
        op(apis.DB_QUERY, "loadMessages", "ConversationLoader.java",
           on_worker=True),
        op(apis.SET_TEXT, "renderBubbles", "ConversationView.java"),
        op(apis.SMOOTH_SCROLL, "scrollToEnd", "ConversationView.java"),
    )
    send = action(
        "send_message", "onClick",
        op(replace(apis.CRYPTO_DIGEST, mean_ms=220.0), "sealMessage",
           "MessageSender.java", on_worker=True),
        op(replace(apis.SET_TEXT, mean_ms=20.0), "appendBubble",
           "ConversationView.java"),
    )
    chat_list = ui_action("chat_list", apis.NOTIFY_DATA_SET_CHANGED,
                          apis.SET_IMAGE)
    return AppSpec(
        name="Courier", package="org.courier.app",
        category="Communication", downloads=10_000_000, commit="f3a91c2",
        actions=(open_chat, send, chat_list),
    )


def _gallery():
    """A gallery whose decodes are properly offloaded."""
    open_album = action(
        "open_album", "onItemClick",
        op(apis.BITMAP_DECODE_FILE, "decodeThumbnails",
           "ThumbnailLoader.java", on_worker=True),
        op(apis.NOTIFY_DATA_SET_CHANGED, "showGrid", "AlbumView.java"),
    )
    view_photo = action(
        "view_photo", "onItemClick",
        op(apis.BITMAP_DECODE_STREAM, "decodeFull", "PhotoViewer.java",
           on_worker=True),
        op(replace(apis.SET_IMAGE, mean_ms=45.0), "showPhoto",
           "PhotoViewer.java"),
    )
    zoom = ui_action("zoom", apis.ON_DRAW, apis.INVALIDATE)
    return AppSpec(
        name="Lightbox", package="com.lightbox.gallery",
        category="Photography", downloads=5_000_000, commit="88ab90d",
        actions=(open_album, view_photo, zoom),
    )


def _podcast_player():
    """A podcast player that prepares media off the main thread."""
    play = action(
        "play", "onClick",
        op(apis.MEDIA_PREPARE, "prepareStream", "PlayerService.java",
           on_worker=True),
        op(replace(apis.SET_IMAGE, mean_ms=40.0), "showArt",
           "PlayerView.java"),
    )
    browse = ui_action("browse", apis.NOTIFY_DATA_SET_CHANGED,
                       apis.SMOOTH_SCROLL)
    return AppSpec(
        name="Wavecast", package="fm.wavecast.player",
        category="Media & Video", downloads=1_000_000, commit="41c07be",
        actions=(play, browse),
    )


def _notes():
    """A notes app syncing on workers."""
    save = action(
        "save_note", "onClick",
        op(apis.DB_INSERT, "persistNote", "NoteStore.java",
           on_worker=True),
        op(replace(apis.SET_TEXT, mean_ms=15.0), "showSaved",
           "EditorView.java"),
    )
    edit = ui_action("edit", apis.SET_TEXT, apis.REQUEST_LAYOUT)
    note_list = ui_action("note_list", apis.NOTIFY_DATA_SET_CHANGED,
                          apis.ADD_VIEW)
    return AppSpec(
        name="Margin", package="io.margin.notes",
        category="Productivity", downloads=500_000, commit="9cd14ef",
        actions=(save, edit, note_list),
    )


def _weather():
    """A weather app: parsing off-thread, light UI refreshes."""
    refresh = action(
        "refresh", "onRefresh",
        op(replace(apis.XML_PARSE, mean_ms=240.0), "parseForecast",
           "ForecastParser.java", on_worker=True),
        op(replace(apis.SET_TEXT, mean_ms=25.0), "updateTiles",
           "ForecastView.java"),
    )
    forecast = ui_action("forecast", apis.ON_DRAW, apis.SET_TEXT)
    return AppSpec(
        name="Nimbus", package="app.nimbus.weather", category="Weather",
        downloads=2_000_000, commit="c52d7a1",
        actions=(refresh, forecast),
    )


#: Hand-modelled clean apps included in the fleet alongside the
#: generated ones.
WELLKNOWN_CLEAN_APPS = (
    _messenger(),
    _gallery(),
    _podcast_player(),
    _notes(),
    _weather(),
)
