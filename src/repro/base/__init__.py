"""Dependency-free primitives shared by the simulator and app model.

This package sits at the bottom of the import graph: seeded RNG
streams, stack-frame records, and the operation-kind enum.  Both
:mod:`repro.sim` and :mod:`repro.apps` import from here, never from
each other's internals, which keeps the package import-order safe.
"""

from repro.base.frames import Frame, StackTrace, occurrence_factor
from repro.base.kinds import ApiKind
from repro.base.rng import stream, substream_seed

__all__ = [
    "ApiKind",
    "Frame",
    "StackTrace",
    "occurrence_factor",
    "stream",
    "substream_seed",
]
