"""Stack-frame and stack-trace records.

A :class:`Frame` is one stack entry (class, method, file, line); a
:class:`StackTrace` is a timestamped tuple of frames ordered from the
outermost caller (event handler) to the leaf API.  The paper's
Diagnoser attributes a soft hang to the operation with the highest
*occurrence factor* — the fraction of collected traces containing it —
computed by :func:`occurrence_factor`.
"""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True, order=True)
class Frame:
    """One stack-trace entry."""

    clazz: str
    method: str
    file: str
    line: int

    @property
    def qualified_name(self):
        """Fully-qualified ``package.Class.method`` name."""
        return f"{self.clazz}.{self.method}"

    def __str__(self):
        return f"{self.qualified_name}({self.file}:{self.line})"


@dataclass(frozen=True)
class StackTrace:
    """A snapshot of a thread's call stack at one instant."""

    time_ms: float
    frames: Tuple[Frame, ...]

    @property
    def leaf(self):
        """The innermost (currently executing) frame, or None if idle."""
        return self.frames[-1] if self.frames else None

    def contains(self, frame):
        """True if *frame* appears anywhere in this trace."""
        return frame in self.frames

    def __str__(self):
        if not self.frames:
            return "<idle>"
        return " -> ".join(str(frame) for frame in reversed(self.frames))


def occurrence_factor(traces, frame):
    """Fraction of *traces* whose stack contains *frame* (0 if empty)."""
    if not traces:
        return 0.0
    hits = sum(1 for trace in traces if trace.contains(frame))
    return hits / len(traces)
