"""Operation kinds.

``UI``
    Must run on the main thread (layout, inflation, drawing).  Never a
    soft hang bug, even when slow: it generates heavy render work.
``BLOCKING``
    I/O-ish API (file, camera, database, parsing) that could move to a
    worker thread; a manifested slow call on the main thread is a soft
    hang bug.
``COMPUTE``
    Self-developed lengthy operation (heavy loop); also a soft hang bug
    but invisible to name-based offline scanners.
``LIGHT``
    Cheap bookkeeping call; never hangs.
"""

import enum


class ApiKind(enum.Enum):
    """Behavioural class of an operation."""

    UI = "ui"
    BLOCKING = "blocking"
    COMPUTE = "compute"
    LIGHT = "light"
