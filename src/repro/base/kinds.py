"""Operation kinds.

``UI``
    Must run on the main thread (layout, inflation, drawing).  Never a
    soft hang bug, even when slow: it generates heavy render work.
``BLOCKING``
    I/O-ish API (file, camera, database, parsing) that could move to a
    worker thread; a manifested slow call on the main thread is a soft
    hang bug.
``COMPUTE``
    Self-developed lengthy operation (heavy loop); also a soft hang bug
    but invisible to name-based offline scanners.
``ASYNC_WAIT``
    Synchronous wait for an asynchronous result (``AsyncTask.get``,
    ``Future.get``, ``Thread.join``, ``CountDownLatch.await``).  The
    work already runs off the main thread; blocking on its completion
    from the main thread re-serializes it — a soft hang bug
    (PersisDroid's asynchronous-execution anatomy).
``IPC``
    Synchronous binder round trip to another process
    (``ContentResolver.query``, ``PackageManager`` lookups).  The
    caller idles while the remote side works; on the main thread a
    slow reply is a soft hang bug.
``LIGHT``
    Cheap bookkeeping call; never hangs.
"""

import enum


class ApiKind(enum.Enum):
    """Behavioural class of an operation."""

    UI = "ui"
    BLOCKING = "blocking"
    COMPUTE = "compute"
    ASYNC_WAIT = "async_wait"
    IPC = "ipc"
    LIGHT = "light"
