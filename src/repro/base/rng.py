"""Deterministic random-number streams.

Every stochastic decision in the simulator draws from a
:class:`numpy.random.Generator` obtained via :func:`stream`, keyed by a
root seed plus a tuple of string/int keys.  The same (seed, keys) pair
always yields the same stream, independently of how many other streams
were created, which keeps every experiment reproducible and lets
unrelated subsystems (durations, counters, sampling jitter) evolve
independently when parameters change elsewhere.
"""

import hashlib

import numpy as np


def _digest(seed, keys):
    hasher = hashlib.sha256()
    hasher.update(str(seed).encode("utf-8"))
    for key in keys:
        hasher.update(b"\x00")
        hasher.update(str(key).encode("utf-8"))
    return hasher.digest()


def stream(seed, *keys):
    """Return a seeded :class:`numpy.random.Generator` for (seed, keys).

    >>> stream(1, "a").random() == stream(1, "a").random()
    True
    >>> stream(1, "a").random() == stream(1, "b").random()
    False
    """
    digest = _digest(seed, keys)
    words = np.frombuffer(digest, dtype=np.uint32)
    return np.random.Generator(np.random.PCG64(words))


def substream_seed(seed, *keys):
    """Return a 64-bit integer seed derived from (seed, keys).

    Useful when a component wants to store a compact seed and create its
    own streams later.
    """
    digest = _digest(seed, keys)
    return int.from_bytes(digest[:8], "little")
