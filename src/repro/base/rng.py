"""Deterministic random-number streams.

Every stochastic decision in the simulator draws from a
:class:`numpy.random.Generator` obtained via :func:`stream`, keyed by a
root seed plus a tuple of string/int keys.  The same (seed, keys) pair
always yields the same stream, independently of how many other streams
were created, which keeps every experiment reproducible and lets
unrelated subsystems (durations, counters, sampling jitter) evolve
independently when parameters change elsewhere.
"""

import hashlib

import numpy as np


def _digest(seed, keys):
    hasher = hashlib.sha256()
    hasher.update(str(seed).encode("utf-8"))
    for key in keys:
        hasher.update(b"\x00")
        hasher.update(str(key).encode("utf-8"))
    return hasher.digest()


def stream(seed, *keys):
    """Return a seeded :class:`numpy.random.Generator` for (seed, keys).

    >>> stream(1, "a").random() == stream(1, "a").random()
    True
    >>> stream(1, "a").random() == stream(1, "b").random()
    False
    """
    digest = _digest(seed, keys)
    words = np.frombuffer(digest, dtype=np.uint32)
    return np.random.Generator(np.random.PCG64(words))


def pooled_stream():
    """A :class:`numpy.random.Generator` meant to be re-keyed in place
    with :func:`reseed` between uses (one per owner, not shared across
    threads)."""
    return np.random.Generator(np.random.PCG64(0))


def reseed(generator, seed, *keys):
    """Re-key *generator* (a PCG64-backed Generator) in place for
    (seed, keys).

    A fresh :func:`stream` pays SeedSequence entropy mixing plus
    bit-generator and Generator construction on every call; a hot loop
    that needs one short-lived stream per item can instead keep one
    :func:`pooled_stream` and re-key it.  The digest bytes are written
    directly into the PCG64 state and (odd-forced) increment, which is
    a different state derivation from :func:`stream`'s SeedSequence
    path — a reseeded stream is deterministic and unique per
    (seed, keys) but not sample-identical to ``stream(seed, *keys)``.
    """
    return _rekey(generator, _digest(seed, keys))


def digest_prefix(seed, *keys):
    """Precompute the hash prefix shared by a family of reseed keys.

    ``reseed_prefixed(gen, digest_prefix(s, a, b), c)`` lands on exactly
    the same state as ``reseed(gen, s, a, b, c)`` — the sha256 update
    sequence is byte-identical — but a hot loop that varies only the
    trailing key hashes just that key per call.
    """
    hasher = hashlib.sha256()
    hasher.update(str(seed).encode("utf-8"))
    for key in keys:
        hasher.update(b"\x00")
        hasher.update(str(key).encode("utf-8"))
    return hasher


def reseed_prefixed(generator, prefix, *keys):
    """Like :func:`reseed`, continuing from a :func:`digest_prefix`."""
    hasher = prefix.copy()
    for key in keys:
        hasher.update(b"\x00")
        hasher.update(str(key).encode("utf-8"))
    return _rekey(generator, hasher.digest())


def _rekey(generator, digest):
    generator.bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {
            "state": int.from_bytes(digest[:16], "little"),
            "inc": int.from_bytes(digest[16:], "little") | 1,
        },
        "has_uint32": 0,
        "uinteger": 0,
    }
    return generator


def substream_seed(seed, *keys):
    """Return a 64-bit integer seed derived from (seed, keys).

    Useful when a component wants to store a compact seed and create its
    own streams later.
    """
    digest = _digest(seed, keys)
    return int.from_bytes(digest[:8], "little")


class SeededBackoff:
    """Deterministic retry backoff: exponential growth, decorrelated jitter.

    Retry storms are the classic way a fleet turns one outage into
    two, so every retry loop in the repo (the serve client's upload
    retries, the counter-read retry in :mod:`repro.core`) draws its
    delays from one of these instead of ``random``/wall clock.  The
    schedule follows the decorrelated-jitter rule — each delay is
    uniform on ``[base, min(cap, 3 * previous)]`` — which keeps the
    exponential envelope of plain backoff while decorrelating
    concurrent clients, and every draw comes from the keyed stream
    ``(seed, "backoff", *keys, attempt)``, so:

    * the same (seed, keys) replays the identical delay sequence on
      every run — retry timing is part of the reproducible record;
    * two clients with different keys decorrelate fully even under one
      root seed (no thundering herd after a shared failure);
    * every delay is bounded: ``base_ms <= delay <= cap_ms``.

    :meth:`reset` rewinds the schedule after a success so the next
    failure starts the envelope from ``base_ms`` again (the attempt
    counter keeps advancing, so replayed delays never repeat draws).
    """

    def __init__(self, seed, *keys, base_ms=100.0, cap_ms=30_000.0):
        if base_ms <= 0.0:
            raise ValueError(f"base_ms must be > 0, got {base_ms}")
        if cap_ms < base_ms:
            raise ValueError(
                f"cap_ms must be >= base_ms ({base_ms}), got {cap_ms}"
            )
        self.base_ms = float(base_ms)
        self.cap_ms = float(cap_ms)
        self._seed = seed
        self._keys = tuple(keys)
        self._attempt = 0
        self._prev_ms = None

    def next_ms(self):
        """The next delay in milliseconds (advances the schedule)."""
        self._attempt += 1
        rng = stream(self._seed, "backoff", *self._keys, self._attempt)
        prev = self._prev_ms if self._prev_ms is not None else self.base_ms
        high = min(self.cap_ms, 3.0 * prev)
        delay = self.base_ms + (high - self.base_ms) * float(rng.random())
        self._prev_ms = delay
        return delay

    def reset(self):
        """Rewind the envelope to ``base_ms`` (call after a success)."""
        self._prev_ms = None
