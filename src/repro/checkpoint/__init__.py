"""Checkpointed experiment execution.

Long sweeps (`repro chaos`, `repro crowd`, the fleet/Table 5 study,
seed stability) journal every completed shard to disk so a crash or
kill mid-run is restartable: ``--checkpoint DIR --resume`` skips the
journaled shards and re-runs only the rest, producing byte-identical
output to an uninterrupted run.  See :mod:`repro.checkpoint.journal`
for the mechanics and safety properties.
"""

from repro.checkpoint.journal import (
    JOURNAL_SCHEMA,
    ShardJournal,
    checkpointed_map,
    run_key,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "ShardJournal",
    "checkpointed_map",
    "run_key",
]
