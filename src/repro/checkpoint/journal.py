"""The shard-level checkpoint journal behind every ``--checkpoint``.

A long sweep decomposes into pure shards (see :mod:`repro.parallel`);
the journal persists each shard's result the moment it completes, so a
crash, deadline kill, or plain ``kill -9`` mid-sweep loses only the
shards still in flight.  On ``--resume`` the sweep loads completed
shards from the journal and re-runs the rest — and because every shard
is a pure function of its payload, the resumed run's merged output is
byte-identical to an uninterrupted one.

Safety properties:

* **Crash-atomic entries**: every write goes through
  :func:`repro.core.persistence.atomic_write_bytes` (temp file +
  fsync + rename), so a kill mid-checkpoint leaves at worst a
  truncated temp file, never a torn journal entry.  The ``torn_write``
  fault channel simulates exactly that death to prove it.
* **Run-key guard**: the journal records a :func:`run_key` digest of
  the sweep's full parameterization.  Resuming with *any* different
  parameter (seed, apps, rates, device, ...) mismatches the key and
  the journal resets instead of serving stale shards.
* **Corruption tolerance**: an unreadable or mislabeled entry is
  treated as missing (the shard re-runs), mirroring the
  ``load_report``/``load_database`` never-raise contract.
* **Best-effort writes**: a failed checkpoint write degrades (the
  shard re-runs on resume) rather than crashing the sweep; failures
  are accounted in the :class:`~repro.parallel.ExecutionReport`.
"""

import hashlib
import json
import os
import pathlib
import pickle

from repro.core.persistence import atomic_write_bytes, atomic_write_text
from repro.faults.injector import InjectedFault
from repro.parallel import parallel_map
from repro.telemetry import absorb_value
from repro.telemetry import active as _telemetry_active
from repro.telemetry import current as _telemetry_current

#: Journal layout version (bumped on incompatible changes; a mismatch
#: resets the journal, never misreads it).
JOURNAL_SCHEMA = 1


def run_key(*parts):
    """Digest a sweep's full parameterization into a stable run key.

    Two runs share a journal only when every part matches — pass
    everything that changes the output (experiment name, device name,
    seed, grids, sizes, worker-visible knobs).
    """
    text = "|".join(str(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


class ShardJournal:
    """A directory of completed-shard results keyed by shard id.

    Parameters
    ----------
    directory: journal root (created on :meth:`open`).
    key: the sweep's :func:`run_key`.
    faults: optional :class:`~repro.faults.FaultInjector` whose
        ``torn_write`` channel exercises the crash-atomic write path.
    report: optional :class:`~repro.parallel.ExecutionReport` that
        accounts checkpoint hits and torn writes.
    """

    def __init__(self, directory, key, faults=None, report=None):
        self.directory = pathlib.Path(directory)
        # Telemetry-on runs journal ShardTelemetry carriers instead of
        # raw values; tagging the run key keeps the two entry shapes
        # from ever being served across modes (a telemetry-off resume
        # of a telemetry-on journal, or vice versa, resets instead).
        self.key = str(key) + ("+telemetry" if _telemetry_active() else "")
        self.faults = faults
        self.report = report

    # ------------------------------------------------------------ layout

    @property
    def manifest_path(self):
        """Path of the run-key manifest file."""
        return self.directory / "manifest.json"

    @property
    def shards_dir(self):
        """Directory holding one pickle per completed shard."""
        return self.directory / "shards"

    @property
    def reassignments_path(self):
        """Append-only JSONL log of scheduler reassignment decisions."""
        return self.directory / "reassignments.jsonl"

    def _entry_path(self, shard_key):
        digest = hashlib.sha256(str(shard_key).encode("utf-8")).hexdigest()
        return self.shards_dir / f"{digest[:32]}.pkl"

    # --------------------------------------------------------- lifecycle

    def open(self, resume=False):
        """Prepare the journal; returns ``self``.

        Without *resume* the journal always starts empty.  With it,
        existing entries are kept only when the manifest's run key
        matches this sweep's — a missing, corrupt, or mismatched
        manifest resets the journal (stale shards must never leak into
        a differently-parameterized run).
        """
        if resume and self._manifest_matches():
            return self
        self.clear()
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.manifest_path,
            json.dumps({"schema": JOURNAL_SCHEMA, "run_key": self.key},
                       indent=2) + "\n",
        )
        return self

    def _manifest_matches(self):
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return False
        return (
            isinstance(payload, dict)
            and payload.get("schema") == JOURNAL_SCHEMA
            and payload.get("run_key") == self.key
        )

    def clear(self):
        """Drop every journal entry, the manifest, and the
        reassignment log."""
        if self.shards_dir.is_dir():
            for path in self.shards_dir.iterdir():
                try:
                    path.unlink()
                except OSError:
                    pass
        for path in (self.manifest_path, self.reassignments_path):
            try:
                path.unlink()
            except OSError:
                pass

    # ----------------------------------------------------- reassignments

    def log_reassignment(self, kind, **record):
        """Write-ahead one scheduler decision; best-effort, never raises.

        The elastic scheduler (:mod:`repro.sched`) records every
        assignment, steal, and reshard *before* acting on it, so a
        crash mid-redistribution leaves an auditable trail: on resume
        the log shows which items were in flight where when the run
        died.  The record is one JSON line ``{"kind": ..., ...}``
        appended with an fsync; a torn tail (killed mid-append) is
        tolerated by :meth:`reassignments`.  Returns True when the
        record landed.
        """
        payload = dict(record)
        payload["kind"] = str(kind)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.reassignments_path, "a",
                      encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            return False
        _telemetry_current().advisory_event("checkpoint.reassignment",
                                            **payload)
        return True

    def reassignments(self):
        """All durably logged reassignment records, in append order.

        A torn final line (the process died mid-append) is skipped,
        mirroring the journal-wide corruption-means-rerun contract.
        """
        try:
            text = self.reassignments_path.read_text(encoding="utf-8")
        except OSError:
            return []
        records = []
        for line in text.splitlines():
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict):
                records.append(payload)
        return records

    # ----------------------------------------------------------- entries

    def record(self, shard_key, value):
        """Persist one completed shard; best-effort, never raises.

        A write that dies mid-stream (injected ``torn_write`` or a
        real I/O error) is dropped — the destination entry stays
        absent or intact-old, and the shard simply re-runs on resume.
        Returns True when the entry landed.
        """
        payload = pickle.dumps((str(shard_key), value),
                               protocol=pickle.HIGHEST_PROTOCOL)
        try:
            atomic_write_bytes(self._entry_path(shard_key), payload,
                               faults=self.faults, label=str(shard_key))
        except (InjectedFault, OSError, pickle.PicklingError) as error:
            if self.report is not None:
                self.report.torn_writes += 1
                self.report.record(
                    "torn-write",
                    f"checkpoint for shard {shard_key!r} lost "
                    f"({type(error).__name__})",
                )
            return False
        _telemetry_current().advisory_event("checkpoint.write",
                                            shard=str(shard_key))
        return True

    def load(self, shard_key):
        """Fetch one shard's journaled result.

        Returns ``(True, value)`` on a hit; ``(False, None)`` when the
        entry is absent, unreadable, or labeled with a different shard
        key (hash-collision paranoia) — all of which just mean "re-run
        the shard".
        """
        path = self._entry_path(shard_key)
        try:
            stored_key, value = pickle.loads(path.read_bytes())
        except Exception:  # noqa: BLE001 - any corruption means re-run
            return False, None
        if stored_key != str(shard_key):
            return False, None
        return True, value

    def completed(self, shard_keys):
        """The subset of *shard_keys* already journaled."""
        return [key for key in shard_keys if self.load(key)[0]]


def checkpointed_map(fn, items, keys, journal=None, **kwargs):
    """:func:`~repro.parallel.parallel_map` with a shard journal.

    *keys* names each item's journal entry (same length as *items*).
    Journaled shards are restored without re-running; the rest execute
    through the supervised pool and are journaled the moment each
    completes (via the executor's ``on_result`` hook), so an
    interrupted call resumes from its last completed shard.  Results
    come back in submission order either way, so output is
    byte-identical with, without, or across interrupted journals.

    With ``journal=None`` this is exactly ``parallel_map(fn, items,
    **kwargs)`` — except that the journal keys still name the shards'
    default telemetry tracks, so a checkpointed and an unjournaled run
    of the same sweep export identical traces.
    """
    items = list(items)
    keys = [str(key) for key in keys]
    if len(items) != len(keys):
        raise ValueError(
            f"need one key per item, got {len(keys)} keys for "
            f"{len(items)} items"
        )
    if len(set(keys)) != len(keys):
        raise ValueError("shard keys must be unique within one map")
    if journal is None:
        return parallel_map(fn, items, shard_tracks=keys, **kwargs)
    results = {}
    pending_items = []
    pending_keys = []
    for item, key in zip(items, keys):
        hit, value = journal.load(key)
        if hit:
            # Restored carriers replay the shard's telemetry exactly
            # as a fresh run would record it (per-track renumbering
            # makes the restored-before-fresh absorption order moot).
            _telemetry_current().advisory_event("checkpoint.restore",
                                                shard=key)
            results[key] = absorb_value(value, key)
        else:
            pending_items.append(item)
            pending_keys.append(key)
    report = kwargs.get("report")
    if report is not None and results:
        report.checkpoint_hits += len(results)
        report.record(
            "checkpoint",
            f"restored {len(results)}/{len(items)} shard(s) from "
            f"{journal.directory}",
        )

    def journal_result(index, value):
        journal.record(pending_keys[index], value)

    fresh = parallel_map(fn, pending_items, on_result=journal_result,
                         shard_tracks=pending_keys, **kwargs)
    for key, value in zip(pending_keys, fresh):
        results[key] = value
    return [results[key] for key in keys]
