"""Command-line interface.

``python -m repro <command>`` regenerates the paper's experiments and
runs Hang Doctor over the synthetic fleet from a shell:

* ``apps`` — list the catalog apps and their ground-truth bugs
* ``session`` — run Hang Doctor over one app's simulated user session
* ``scan`` — run the offline scanner over an app
* ``fleet`` — the Table 5 fleet study
* ``scenarios`` — per-archetype sweep of a taxonomy-generated fleet
* ``compare`` — the Figure 8 detector comparison
* ``filter`` — the correlation/threshold design pipeline (Tables 3-4)
* ``testbed`` — lab-vs-wild bug coverage (§4.6)
* ``chaos`` — detection quality under injected monitoring faults
* ``crowd`` — fleet-size sweep of the crowd backend's diagnosis savings
* ``stream`` — continuous fleet mode: long-lived sweep with device
  churn, rolling KB republish, and the elastic shard scheduler
* ``serve`` — run the live crowd ingestion service (HTTP, WAL-backed)
* ``serve-bench`` — stress the ingestion service with a device fleet
* ``slo`` — evaluate SLO error budgets over a telemetry directory
  (exits nonzero when a budget is exhausted)
* ``dash`` — render the terminal ops dashboard for a telemetry
  directory (rollups, SLO status, top spans)
"""

import argparse
import json
import pathlib
import sys

from repro import telemetry
from repro.apps.catalog import NAMED_APPS, TABLE5_APPS, get_app
from repro.apps.corpus import FLEET_SIZE
from repro.apps.sessions import SessionGenerator
from repro.scenarios import DEFAULT_MIX
from repro.core.hang_doctor import HangDoctor
from repro.detectors.offline import OfflineScanner
from repro.detectors.runner import run_detector
from repro.sim.device import ALL_DEVICES
from repro.sim.engine import ExecutionEngine


def _workers(value):
    value = int(value)
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0 (0 = one worker per CPU)"
        )
    return value


def _device(name):
    for device in ALL_DEVICES:
        if device.name.lower().replace(" ", "-") == name.lower():
            return device
    raise SystemExit(
        f"unknown device {name!r}; available: "
        f"{[d.name for d in ALL_DEVICES]}"
    )


def cmd_apps(args):
    """List the catalog apps with their bug counts."""
    print(f"{'app':18s}{'category':18s}{'actions':>8}{'bugs':>6}")
    for app in NAMED_APPS.values():
        print(f"{app.name:18s}{app.category:18s}"
              f"{len(app.actions):>8}{len(app.hang_bug_operations()):>6}")


def cmd_session(args):
    """Run Hang Doctor over one app's simulated user session."""
    app = get_app(args.app)
    engine = ExecutionEngine(_device(args.device), seed=args.seed)
    doctor = HangDoctor(app, engine.device, seed=args.seed)
    session = SessionGenerator(seed=args.seed).user_session(
        app, user_id=0, actions_per_user=args.actions
    )
    executions = engine.run_session(app, session.action_names)
    run = run_detector(doctor, executions)
    for detection in run.detections:
        print(f"{detection.action_name:20s} {detection.root_name} "
              f"({detection.occurrence:.0%}, "
              f"{detection.response_time_ms:.0f} ms)")
    print()
    print(doctor.report.render())


def cmd_scan(args):
    """Run the offline scanner over an app; list hits and misses."""
    app = get_app(args.app)
    scanner = OfflineScanner(analyze_libraries=not args.source_only)
    for detection in scanner.scan_app(app):
        print(f"{detection.action_name:20s} {detection.api_name}")
    missed = scanner.missed_bugs(app)
    print(f"\n{len(missed)} ground-truth bug(s) this scanner misses:")
    for op in missed:
        print(f"  {op.api.qualified_name} "
              f"({op.caller_file}:{op.caller_line})")


def _checkpoint_args(args):
    """Validate and unpack the --checkpoint/--resume pair."""
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint DIR")
    return args.checkpoint, args.resume


def _print_result(result, args):
    """Render a sweep result, plus its execution report when verbose."""
    print(result.render())
    if getattr(args, "verbose", False) and result.execution is not None:
        print()
        print(result.execution.describe())


def _run_observed(args, thunk):
    """Run *thunk*, under a telemetry session when the flags ask for one.

    Returns ``(result, session)`` where *session* is None when neither
    ``--telemetry`` nor ``--trace`` was given — the zero-cost default.
    """
    if not (getattr(args, "telemetry", None)
            or getattr(args, "trace", False)):
        return thunk(), None
    with telemetry.session() as active:
        result = thunk()
    return result, active


def _emit_observability(args, session, report=None):
    """Write ``--telemetry`` exports / print the ``--trace`` summary.

    The export note goes to stderr so stdout stays exactly the
    rendered result (the determinism smokes diff stdout bytes).
    """
    if session is None:
        return
    directory = getattr(args, "telemetry", None)
    if directory:
        from repro.obs import write_obs_exports

        paths = telemetry.write_exports(session, directory, report=report)
        paths += write_obs_exports(directory, session=session)
        print(f"telemetry: wrote {len(paths)} file(s) to {directory}/",
              file=sys.stderr)
    if getattr(args, "trace", False):
        print()
        print(telemetry.render_trace_summary(session))


def _dump_report_json(args, report):
    """Write the ``--report-json`` execution-report dump, if asked."""
    path = getattr(args, "report_json", None)
    if not path or report is None:
        return
    pathlib.Path(path).write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
    )


def cmd_fleet(args):
    """Regenerate the Table 5 fleet study."""
    from repro.harness.exp_fleet import table5

    checkpoint, resume = _checkpoint_args(args)
    result, session = _run_observed(args, lambda: table5(
        _device(args.device), seed=args.seed, users=args.users,
        actions_per_user=args.actions, corpus_size=args.fleet_size,
        workers=args.workers, checkpoint=checkpoint, resume=resume,
    ))
    _print_result(result, args)
    _emit_observability(args, session, result.execution)
    _dump_report_json(args, result.execution)


def cmd_scenarios(args):
    """Sweep a taxonomy-generated scenario fleet."""
    from repro.harness.exp_scenarios import scenario_sweep

    if args.quick:
        size, users, actions = 200, 1, 8
    else:
        size, users, actions = args.fleet_size, args.users, args.actions
    checkpoint, resume = _checkpoint_args(args)
    result, session = _run_observed(args, lambda: scenario_sweep(
        _device(args.device), seed=args.seed, size=size, mix=args.mix,
        users=users, actions_per_user=actions, workers=args.workers,
        checkpoint=checkpoint, resume=resume,
    ))
    _print_result(result, args)
    _emit_observability(args, session, result.execution)
    _dump_report_json(args, result.execution)


def cmd_compare(args):
    """Regenerate the Figure 8 detector comparison."""
    from repro.harness.exp_comparison import figure8

    result = figure8(_device(args.device), seed=args.seed,
                     users=args.users, actions_per_user=args.actions,
                     workers=args.workers)
    print(result.render())


def cmd_chaos(args):
    """Run the chaos sweep: fault rates vs detection quality."""
    from repro.harness.exp_chaos import chaos_sweep

    if args.quick:
        rates = (0.0, 0.2)
        apps = ("K9-mail", "AndStatus")
        users, actions = 1, 12
    else:
        rates = tuple(float(r) for r in args.rates.split(","))
        apps = tuple(args.apps.split(",")) if args.apps else None
        users, actions = args.users, args.actions
    checkpoint, resume = _checkpoint_args(args)
    result, session = _run_observed(args, lambda: chaos_sweep(
        _device(args.device), seed=args.seed, rates=rates, apps=apps,
        users=users, actions_per_user=actions, workers=args.workers,
        checkpoint=checkpoint, resume=resume,
    ))
    _print_result(result, args)
    _emit_observability(args, session, result.execution)
    _dump_report_json(args, result.execution)


def cmd_crowd(args):
    """Run the crowd sweep: fleet size vs diagnosis-cost reduction."""
    from repro.harness.exp_crowd import crowd_sweep

    if args.quick:
        fleet_sizes = (1, 4)
        apps = ("K9-mail", "AndStatus")
        rounds, actions = 2, 12
    else:
        fleet_sizes = tuple(int(n) for n in args.fleet_sizes.split(","))
        apps = tuple(args.apps.split(",")) if args.apps else None
        rounds, actions = args.rounds, args.actions
    checkpoint, resume = _checkpoint_args(args)
    result, session = _run_observed(args, lambda: crowd_sweep(
        _device(args.device), seed=args.seed, fleet_sizes=fleet_sizes,
        rounds=rounds, apps=apps, actions_per_round=actions,
        fault_rate=args.fault_rate, workers=args.workers,
        checkpoint=checkpoint, resume=resume,
    ))
    _print_result(result, args)
    _emit_observability(args, session, result.execution)
    _dump_report_json(args, result.execution)


def cmd_stream(args):
    """Run continuous fleet mode through the elastic scheduler."""
    from repro.harness.exp_stream import stream_sweep

    if args.quick:
        fleet_size, rounds, actions = 2, 3, 12
        apps = ("K9-mail", "AndStatus")
    else:
        fleet_size, rounds, actions = (args.fleet_size, args.rounds,
                                       args.actions)
        apps = tuple(args.apps.split(",")) if args.apps else None
    checkpoint, resume = _checkpoint_args(args)
    result, session = _run_observed(args, lambda: stream_sweep(
        _device(args.device), seed=args.seed, rounds=rounds,
        fleet_size=fleet_size, churn_rate=args.churn_rate,
        publish_every=args.publish_every, apps=apps,
        actions_per_round=actions, fault_rate=args.fault_rate,
        worker_kill_rate=args.worker_kill_rate,
        shard_stall_rate=args.shard_stall_rate, workers=args.workers,
        checkpoint=checkpoint, resume=resume, deadline=args.deadline,
    ))
    _print_result(result, args)
    _emit_observability(args, session, result.execution)
    _dump_report_json(args, result.execution)


def cmd_serve(args):
    """Run the live crowd ingestion service until SIGTERM/SIGINT."""
    import asyncio
    import signal

    from repro.faults import FaultInjector, FaultPlan
    from repro.serve import IngestService

    faults = None
    if args.torn_write_rate > 0.0:
        faults = FaultInjector(
            FaultPlan(torn_write_rate=args.torn_write_rate),
            seed=args.seed, scope=("serve",),
        )

    async def _run():
        service = await IngestService(
            args.state_dir, host=args.host, port=args.port,
            max_queue=args.max_queue, snapshot_every=args.snapshot_every,
            tenant_rate=args.tenant_rate, tenant_burst=args.tenant_burst,
            faults=faults,
        ).start()
        loop = asyncio.get_running_loop()
        stopping = loop.create_future()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                signum,
                lambda: None if stopping.done()
                else stopping.set_result(None),
            )
        # Printed only once signal handlers are live: "serving on" in
        # the log means a TERM now drains instead of killing.
        print(f"serving on {service.address} "
              f"(state: {args.state_dir}, "
              f"replayed {service.state.replayed} from WAL)", flush=True)
        await stopping
        print("draining...", flush=True)
        await service.stop()
        print(f"stopped: {service.stats['ingested']} ingested, "
              f"{service.stats['duplicates']} duplicates, "
              f"{service.stats['publishes']} publish(es)", flush=True)

    asyncio.run(_run())


def cmd_serve_bench(args):
    """Drive a simulated device fleet against the ingestion service."""
    from repro.serve import run_bench

    connect = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        connect = (host or "127.0.0.1", int(port))
    report = run_bench(
        args.state_dir, devices=args.devices, rounds=args.rounds,
        seed=args.seed, mode=args.mode,
        apps=tuple(args.apps.split(",")) if args.apps else None,
        actions=args.actions, device_profile=_device(args.device),
        workers=args.workers, concurrency=args.concurrency,
        fault_rate=args.fault_rate,
        request_delay_ms=args.request_delay_ms, connect=connect,
        max_queue=args.max_queue, tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        snapshot_every=args.snapshot_every,
        sleep_scale=args.sleep_scale, max_attempts=args.max_attempts,
        baseline_out=args.baseline_out,
    )
    print(report.render())
    if report.undelivered:
        raise SystemExit(
            f"{len(report.undelivered)} undelivered batch(es), e.g. "
            f"{report.undelivered[:3]}"
        )
    if report.snapshot_matches is False:
        raise SystemExit(
            "published snapshot does not match the batch baseline"
        )


def cmd_slo(args):
    """Evaluate SLO error budgets over a telemetry directory."""
    from repro.obs import (
        alerts_to_jsonl,
        build_rollup,
        evaluate_slos,
        records_from_jsonl,
        render_slo_table,
    )

    trace = pathlib.Path(args.directory) / "trace.jsonl"
    if not trace.exists():
        raise SystemExit(
            f"no trace.jsonl in {args.directory}/ — run an experiment "
            f"with --telemetry {args.directory} first"
        )
    rollup = build_rollup(records=records_from_jsonl(trace),
                          window_ms=args.window_ms)
    statuses, alerts = evaluate_slos(rollup)
    if args.json:
        print(json.dumps({"objectives": statuses, "alerts": alerts},
                         indent=2, sort_keys=True))
    else:
        print(render_slo_table(statuses))
        print()
        print(f"{len(alerts)} burn-rate alert(s)")
        if alerts:
            sys.stdout.write(alerts_to_jsonl(alerts))
    exhausted = [s["objective"] for s in statuses if s["exhausted"]]
    if exhausted:
        raise SystemExit(
            f"error budget exhausted: {', '.join(exhausted)}"
        )


def cmd_dash(args):
    """Render the terminal ops dashboard for a telemetry directory."""
    from repro.obs import render_dash

    print(render_dash(args.directory, window_ms=args.window_ms,
                      limit=args.limit))


def cmd_filter(args):
    """Regenerate the filter-design analyses (Tables 3-4)."""
    from repro.harness.exp_filter import table3, table4

    device = _device(args.device)
    print(table3(device, seed=args.seed).render())
    print()
    print(table4(device, seed=args.seed).render())


def cmd_reproduce(args):
    """Regenerate every paper table and figure into a directory."""
    from repro.harness.reproduce import generate_all

    def progress(name, seconds):
        print(f"  {name:10s} done in {seconds:5.1f}s")

    print(f"Reproducing all experiments into {args.out}/ ...")
    _, session = _run_observed(args, lambda: generate_all(
        _device(args.device), args.out, seed=args.seed,
        progress=progress, workers=args.workers,
    ))
    _emit_observability(args, session)
    print("done.")


def cmd_verify(args):
    """Verify every encoded paper claim against fresh measurements."""
    from repro.harness.paper import verify_reproduction

    print("Measuring all headline experiments (takes ~15 s)...")
    checks, text = verify_reproduction(_device(args.device),
                                       seed=args.seed)
    print(text)
    deviating = [c.claim.key for c in checks if c.verdict == "deviates"]
    if deviating:
        raise SystemExit(f"claims deviating from the paper: {deviating}")
    print("\nall claims hold.")


def cmd_testbed(args):
    """Compare in-lab vs in-the-wild bug coverage."""
    from repro.testbed import lab_vs_wild

    apps = (
        [get_app(args.app)] if args.app else list(TABLE5_APPS[:8])
    )
    report = lab_vs_wild(apps, _device(args.device), seed=args.seed)
    print(report.render())
    missed = report.missed_in_lab()
    if missed:
        print("\nbugs that never manifested on the test bed:")
        for app_name, site in missed:
            print(f"  {app_name}: {site}")


def build_parser():
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hang Doctor (EuroSys'18) reproduction toolkit",
    )
    parser.add_argument("--device", default="lg-v10",
                        help="device profile (lg-v10, nexus-5, galaxy-s3)")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list catalog apps").set_defaults(
        func=cmd_apps
    )

    session = sub.add_parser("session",
                             help="run Hang Doctor over a user session")
    session.add_argument("app")
    session.add_argument("--actions", type=int, default=80)
    session.set_defaults(func=cmd_session)

    scan = sub.add_parser("scan", help="offline-scan an app")
    scan.add_argument("app")
    scan.add_argument("--source-only", action="store_true",
                      help="source-level scanning (no library bytecode)")
    scan.set_defaults(func=cmd_scan)

    workers_help = (
        "worker processes for app-sharded experiments "
        "(0 = one per CPU; results are identical for any count)"
    )

    def add_checkpoint_flags(command):
        """The supervised-execution trio shared by the long sweeps."""
        command.add_argument(
            "--checkpoint", default=None, metavar="DIR",
            help="journal completed shards to DIR as they finish "
                 "(crash-atomic; a killed run becomes resumable)")
        command.add_argument(
            "--resume", action="store_true",
            help="skip shards already journaled in --checkpoint DIR; "
                 "output is byte-identical to an uninterrupted run")
        command.add_argument(
            "--verbose", action="store_true",
            help="print the execution report (retries, fallbacks, "
                 "deadline hits, checkpoint hits) after the result")

    def add_observability_flags(command, report_json=True):
        """The telemetry trio shared by the instrumented commands."""
        command.add_argument(
            "--telemetry", default=None, metavar="DIR",
            help="collect deterministic telemetry and export it to DIR: "
                 "trace.jsonl (event log), trace.json (Chrome trace, "
                 "loads in Perfetto), metrics.txt, plus the advisory "
                 "executor.jsonl; exports are byte-identical for any "
                 "--workers count and across checkpoint resume")
        command.add_argument(
            "--trace", action="store_true",
            help="print a trace summary (top spans by self-time, "
                 "metrics) after the result")
        if report_json:
            command.add_argument(
                "--report-json", default=None, metavar="PATH",
                help="dump the execution report (supervision events, "
                     "machine-readable) to PATH")

    fleet = sub.add_parser("fleet", help="the Table 5 fleet study")
    fleet.add_argument("--users", type=int, default=4)
    fleet.add_argument("--actions", type=int, default=60)
    fleet.add_argument("--fleet-size", type=int, default=FLEET_SIZE,
                       help="corpus size: the hand-modelled apps plus "
                            "generated clean apps up to this many "
                            f"(default {FLEET_SIZE}, the paper's fleet)")
    fleet.add_argument("--workers", type=_workers, default=1,
                       help=workers_help)
    add_checkpoint_flags(fleet)
    add_observability_flags(fleet)
    fleet.set_defaults(func=cmd_fleet)

    scenarios = sub.add_parser(
        "scenarios",
        help="sweep a taxonomy-generated fleet (per-archetype "
             "precision/recall)",
    )
    scenarios.add_argument("--fleet-size", type=int, default=1000,
                           help="generated apps in the fleet")
    scenarios.add_argument(
        "--mix", default=DEFAULT_MIX,
        help="archetype mix as name=fraction pairs (aliases: clean, "
             "blocking, async, ipc, race, render); fractions are "
             "normalized")
    scenarios.add_argument("--users", type=int, default=2)
    scenarios.add_argument("--actions", type=int, default=12)
    scenarios.add_argument("--quick", action="store_true",
                           help="small fixed preset (200 apps, 1 user) "
                                "for CI determinism smoke")
    scenarios.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                           help="root seed (also accepted before the "
                                "subcommand)")
    scenarios.add_argument("--workers", type=_workers, default=1,
                           help=workers_help)
    add_checkpoint_flags(scenarios)
    add_observability_flags(scenarios)
    scenarios.set_defaults(func=cmd_scenarios)

    compare = sub.add_parser("compare",
                             help="the Figure 8 detector comparison")
    compare.add_argument("--users", type=int, default=2)
    compare.add_argument("--actions", type=int, default=50)
    compare.add_argument("--workers", type=_workers, default=1,
                         help=workers_help)
    compare.set_defaults(func=cmd_compare)

    chaos = sub.add_parser(
        "chaos",
        help="sweep injected monitoring-fault rates (degradation curves)",
    )
    chaos.add_argument("--rates", default="0,0.02,0.05,0.1,0.2,0.4",
                       help="comma-separated fault rates to sweep")
    chaos.add_argument("--apps", default=None,
                       help="comma-separated catalog app names "
                            "(default: the Figure 8 apps)")
    chaos.add_argument("--users", type=int, default=2)
    chaos.add_argument("--actions", type=int, default=40)
    chaos.add_argument("--quick", action="store_true",
                       help="small fixed preset (2 apps, 2 rates) for "
                            "CI determinism smoke")
    chaos.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                       help="root seed (also accepted before the "
                            "subcommand)")
    chaos.add_argument("--workers", type=_workers, default=1,
                       help=workers_help)
    add_checkpoint_flags(chaos)
    add_observability_flags(chaos)
    chaos.set_defaults(func=cmd_chaos)

    crowd = sub.add_parser(
        "crowd",
        help="sweep fleet sizes with the crowd backend (diagnosis-cost "
             "reduction curve)",
    )
    crowd.add_argument("--fleet-sizes", default="1,2,4,8",
                       help="comma-separated device counts to sweep")
    crowd.add_argument("--apps", default=None,
                       help="comma-separated catalog app names "
                            "(default: AndStatus, K9-mail)")
    crowd.add_argument("--rounds", type=int, default=3,
                       help="crowd sync rounds per fleet")
    crowd.add_argument("--actions", type=int, default=40,
                       help="actions per device per round")
    crowd.add_argument("--fault-rate", type=float, default=0.0,
                       help="upload fault rate (drop/duplicate/delay)")
    crowd.add_argument("--quick", action="store_true",
                       help="small fixed preset (2 apps, 2 fleet sizes) "
                            "for CI determinism smoke")
    crowd.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                       help="root seed (also accepted before the "
                            "subcommand)")
    crowd.add_argument("--workers", type=_workers, default=1,
                       help=workers_help)
    add_checkpoint_flags(crowd)
    add_observability_flags(crowd)
    crowd.set_defaults(func=cmd_crowd)

    stream = sub.add_parser(
        "stream",
        help="continuous fleet mode: long-lived sweep with device "
             "churn through the elastic shard scheduler",
    )
    stream.add_argument("--fleet-size", type=int, default=4,
                        help="nominal device count (churn reshapes it)")
    stream.add_argument("--rounds", type=int, default=6,
                        help="sync rounds to stream")
    stream.add_argument("--churn-rate", type=float, default=0.0,
                        help="seeded per-(round, device) join/leave "
                             "probability; the schedule is keyed, so "
                             "output stays identical for any --workers")
    stream.add_argument("--publish-every", type=int, default=1,
                        help="republish the crowd KB every N rounds "
                             "(1 = every round, the crowd sweep's "
                             "behaviour)")
    stream.add_argument("--apps", default=None,
                        help="comma-separated catalog app names "
                             "(default: AndStatus, K9-mail)")
    stream.add_argument("--actions", type=int, default=40,
                        help="actions per device per round")
    stream.add_argument("--fault-rate", type=float, default=0.0,
                        help="upload fault rate (drop/duplicate/delay)")
    stream.add_argument("--worker-kill-rate", type=float, default=0.0,
                        help="executor storm: kill workers mid-shard at "
                             "this rate (resharded; output unchanged)")
    stream.add_argument("--shard-stall-rate", type=float, default=0.0,
                        help="executor storm: stall shards at this rate "
                             "(stolen past the deadline; output "
                             "unchanged)")
    stream.add_argument("--deadline", type=float, default=None,
                        help="straggler steal deadline in seconds "
                             "(default: sized from the perf-trajectory "
                             "cost model)")
    stream.add_argument("--quick", action="store_true",
                        help="small fixed preset (2 apps, fleet 2, 3 "
                             "rounds) for CI determinism smoke")
    stream.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                        help="root seed (also accepted before the "
                             "subcommand)")
    stream.add_argument("--workers", type=_workers, default=1,
                        help=workers_help)
    add_checkpoint_flags(stream)
    add_observability_flags(stream)
    stream.set_defaults(func=cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="run the live crowd ingestion service (HTTP, WAL-backed)",
    )
    serve.add_argument("state_dir",
                       help="directory for snapshot.json + wal.jsonl")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 = pick a free one)")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="bound on batches queued for the fsync "
                            "pipeline; beyond it uploads shed with 429")
    serve.add_argument("--snapshot-every", type=int, default=512,
                       help="publish a snapshot every N applied batches")
    serve.add_argument("--tenant-rate", type=float, default=0.0,
                       help="per-tenant admitted batches per second "
                            "(0 disables the token-bucket gate)")
    serve.add_argument("--tenant-burst", type=int, default=32)
    serve.add_argument("--torn-write-rate", type=float, default=0.0,
                       help="inject torn snapshot/WAL writes at this "
                            "rate (recovery drill)")
    serve.set_defaults(func=cmd_serve)

    bench = sub.add_parser(
        "serve-bench",
        help="stress the ingestion service with a simulated fleet",
    )
    bench.add_argument("state_dir", nargs="?", default="serve-state",
                       help="state directory for the in-process server "
                            "(unused with --connect)")
    bench.add_argument("--devices", type=int, default=200)
    bench.add_argument("--rounds", type=int, default=2)
    bench.add_argument("--mode", choices=("synthetic", "real"),
                       default="synthetic",
                       help="synthetic: cheap seeded batches at fleet "
                            "scale; real: full Hang Doctor device "
                            "rounds (crowd_sweep's baseline path)")
    bench.add_argument("--apps", default=None,
                       help="comma-separated catalog apps (real mode)")
    bench.add_argument("--actions", type=int, default=12,
                       help="actions per device round (real mode)")
    bench.add_argument("--concurrency", type=int, default=32,
                       help="devices uploading at once")
    bench.add_argument("--fault-rate", type=float, default=0.0,
                       help="network fault rate (drop/delay/reset/"
                            "corrupt, each)")
    bench.add_argument("--request-delay-ms", type=float, default=5.0)
    bench.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="drive an externally managed server instead "
                            "of spawning one in-process")
    bench.add_argument("--max-queue", type=int, default=64,
                       help="in-process server queue bound")
    bench.add_argument("--tenant-rate", type=float, default=0.0)
    bench.add_argument("--tenant-burst", type=int, default=32)
    bench.add_argument("--snapshot-every", type=int, default=512)
    bench.add_argument("--sleep-scale", type=float, default=0.05,
                       help="multiplier on backoff sleeps (compresses "
                            "simulated delays; decisions unchanged)")
    bench.add_argument("--max-attempts", type=int, default=25)
    bench.add_argument("--baseline-out", default=None, metavar="PATH",
                       help="write the batch-baseline snapshot JSON to "
                            "PATH (for external byte-comparison)")
    bench.add_argument("--workers", type=_workers, default=1,
                       help=workers_help)
    bench.set_defaults(func=cmd_serve_bench)

    slo = sub.add_parser(
        "slo",
        help="evaluate SLO error budgets over a telemetry directory "
             "(nonzero exit when a budget is exhausted)",
    )
    slo.add_argument("directory",
                     help="a --telemetry export directory "
                          "(needs trace.jsonl)")
    slo.add_argument("--window-ms", type=float, default=1000.0,
                     help="sim-clock rollup window width")
    slo.add_argument("--json", action="store_true",
                     help="emit objectives + alerts as JSON")
    slo.set_defaults(func=cmd_slo)

    dash = sub.add_parser(
        "dash",
        help="terminal ops dashboard for a telemetry directory "
             "(rollups, SLO status, top spans)",
    )
    dash.add_argument("directory",
                      help="a --telemetry export directory")
    dash.add_argument("--window-ms", type=float, default=1000.0,
                      help="sim-clock rollup window width")
    dash.add_argument("--limit", type=int, default=8,
                      help="rows per dashboard section")
    dash.set_defaults(func=cmd_dash)

    filt = sub.add_parser("filter", help="the filter-design pipeline")
    filt.set_defaults(func=cmd_filter)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every paper table and figure"
    )
    reproduce.add_argument("--out", default="reproduction")
    reproduce.add_argument("--workers", type=_workers, default=1,
                           help=workers_help)
    add_observability_flags(reproduce, report_json=False)
    reproduce.set_defaults(func=cmd_reproduce)

    verify = sub.add_parser(
        "verify", help="check every paper claim against fresh runs"
    )
    verify.set_defaults(func=cmd_verify)

    testbed = sub.add_parser("testbed", help="lab-vs-wild coverage")
    testbed.add_argument("--app", default=None)
    testbed.set_defaults(func=cmd_testbed)
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _device(args.device)  # validate up front for a clean error
    try:
        args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
