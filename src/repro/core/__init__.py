"""Hang Doctor: the paper's primary contribution.

A two-phase runtime methodology for detecting and diagnosing soft
hangs, embedded in an app:

* Phase 1 — :class:`~repro.core.schecker.SChecker`: when an
  *Uncategorized* action's response time exceeds 100 ms, read three
  kernel performance-event counters (main−render differences) and
  label the action *Suspicious* only if a symptom condition fires.
* Phase 2 — :class:`~repro.core.diagnoser.Diagnoser`: for Suspicious /
  Hang-Bug actions that hang again, collect main-thread stack traces
  for the duration of the hang and attribute the root cause by
  occurrence factor; non-UI root causes are soft hang bugs.

Detected unknown blocking APIs feed the
:class:`~repro.core.blocking_db.BlockingApiDatabase` used by offline
scanners; everything is summarized for the developer in the
:class:`~repro.core.report.HangBugReport`.
"""

from repro.core.adaptation import (
    AdaptationResult,
    BackgroundCollector,
    FilterAdapter,
)
from repro.core.blocking_db import BlockingApiDatabase
from repro.core.config import HangDoctorConfig
from repro.core.diagnoser import Diagnoser
from repro.core.event_monitor import PerformanceEventMonitor
from repro.core.hang_doctor import HangDoctor
from repro.core.injector import AppInjector
from repro.core.report import HangBugReport, ReportEntry
from repro.core.response_monitor import ResponseTimeMonitor
from repro.core.schecker import SChecker, SymptomCheck
from repro.core.states import ActionState, ActionStateMachine
from repro.core.trace_analyzer import Diagnosis, TraceAnalyzer
from repro.core.trace_collector import TraceCollector

__all__ = [
    "ActionState",
    "ActionStateMachine",
    "AdaptationResult",
    "AppInjector",
    "BackgroundCollector",
    "BlockingApiDatabase",
    "Diagnoser",
    "Diagnosis",
    "FilterAdapter",
    "HangBugReport",
    "HangDoctor",
    "HangDoctorConfig",
    "PerformanceEventMonitor",
    "ReportEntry",
    "ResponseTimeMonitor",
    "SChecker",
    "SymptomCheck",
    "TraceAnalyzer",
    "TraceCollector",
]
