"""Automatic filter adaptation (paper §3.3.1, "Automatic Adaptation of
the Filter").

Hang Doctor's thresholds generalize across devices, but the paper
sketches a two-level safety net for platforms/bugs outside the design
set, driven by a periodic background collection of counter samples and
stack traces:

* **Light adaptation** (cheap, on-device): when the collected samples
  show false positives or false negatives that a pure threshold nudge
  can fix, move the offending thresholds just far enough — raise a
  threshold to exclude FP values, lower it to include FN values —
  while never sacrificing a currently-detected bug.
* **Heavy adaptation** (server-side): when nudging is not enough,
  re-run the full event-selection/threshold-fitting procedure of
  :func:`repro.analysis.thresholds.fit_filter` on the collected data
  and ship the new filter to the device.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.correlation import (
    CounterSample,
    correlate,
    ranked_events,
)
from repro.analysis.thresholds import FilterFit, fit_filter


@dataclass(frozen=True)
class AdaptationResult:
    """Outcome of one adaptation pass."""

    #: "none", "light", or "heavy".
    mode: str
    #: The (possibly new) filter thresholds.
    thresholds: Dict[str, float]
    #: Filter misclassifications before/after, (fn, fp) pairs.
    errors_before: tuple
    errors_after: tuple


class FilterAdapter:
    """Adapts an existing filter to freshly collected labelled samples."""

    def __init__(self, candidate_events=None, max_events=5):
        self.candidate_events = candidate_events
        self.max_events = max_events

    def adapt(self, current_thresholds, samples):
        """Return an :class:`AdaptationResult` for *samples*.

        Labels come from the background collection's stack traces (the
        ground truth a device can establish for itself by diagnosing
        each collected hang).
        """
        current = FilterFit(thresholds=dict(current_thresholds))
        fn, fp = self._errors(current, samples)
        if fn == 0 and fp == 0:
            return AdaptationResult(
                mode="none", thresholds=dict(current_thresholds),
                errors_before=(fn, fp), errors_after=(fn, fp),
            )

        light = self._light_adapt(current_thresholds, samples)
        light_fn, light_fp = self._errors(light, samples)
        if light_fn == 0 and light_fp <= fp:
            return AdaptationResult(
                mode="light", thresholds=dict(light.thresholds),
                errors_before=(fn, fp), errors_after=(light_fn, light_fp),
            )

        heavy = self._heavy_adapt(samples)
        heavy_fn, heavy_fp = self._errors(heavy, samples)
        return AdaptationResult(
            mode="heavy", thresholds=dict(heavy.thresholds),
            errors_before=(fn, fp), errors_after=(heavy_fn, heavy_fp),
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _errors(filter_fit, samples):
        tp, fp, fn, _ = filter_fit.confusion(samples)
        return fn, fp

    @staticmethod
    def _light_adapt(current_thresholds, samples):
        """Nudge thresholds without changing the event set.

        For each event: lower the threshold just below the smallest
        value of any currently-missed bug (fixing FNs), unless doing so
        admits more UI samples than it fixes; raise it just above the
        largest UI value below the smallest detected-bug value (fixing
        FPs without losing bugs).
        """
        new_thresholds = dict(current_thresholds)
        current = FilterFit(thresholds=dict(current_thresholds))
        missed = [
            s for s in samples if s.is_hang_bug and not current.fires(s.values)
        ]
        for event, threshold in current_thresholds.items():
            bug_values = sorted(
                s.values.get(event, 0.0) for s in samples if s.is_hang_bug
            )
            ui_values = sorted(
                s.values.get(event, 0.0) for s in samples if not s.is_hang_bug
            )
            if missed:
                target = min(
                    s.values.get(event, 0.0) for s in missed
                )
                candidate = target - abs(target) * 1e-6 - 1e-9
                admitted = sum(1 for v in ui_values if candidate < v <= threshold)
                if admitted <= len(missed):
                    new_thresholds[event] = min(threshold, candidate)
            elif ui_values and bug_values:
                # Raise toward the largest UI value still under every
                # detected bug value for this event.
                floor = min(v for v in bug_values if v > threshold) \
                    if any(v > threshold for v in bug_values) else None
                offenders = [v for v in ui_values if v > threshold]
                if offenders and floor is not None:
                    candidate = max(v for v in offenders if v < floor) \
                        if any(v < floor for v in offenders) else threshold
                    new_thresholds[event] = max(threshold, candidate)
        return FilterFit(thresholds=new_thresholds)

    def _heavy_adapt(self, samples):
        """Re-run selection + fitting on the collected samples."""
        events = self.candidate_events
        if events is None:
            events = sorted(samples[0].values)
        coefficients = correlate(samples, events=events)
        ranked = [event for event, _ in ranked_events(coefficients)]
        return fit_filter(samples, ranked, max_events=self.max_events)


class BackgroundCollector:
    """The paper's periodic background data collection.

    Every ``period`` action executions, independently of S-Checker and
    Diagnoser, Hang Doctor collects one labelled counter sample for the
    adaptation loop: the top-correlated events are read for the
    execution and — if it soft-hung — stack traces establish the ground
    truth (bug vs UI) on the device itself.  When enough samples are
    banked, a :class:`FilterAdapter` pass decides whether the current
    thresholds need a light nudge or a heavy server-side refit.

    The period is chosen "long enough so that this extra data
    collection overhead can become negligible" (paper §3.3.1).
    """

    def __init__(self, device, config, app_package=None, period=50,
                 batch_size=20, events=None, seed=0):
        from repro.core.trace_analyzer import TraceAnalyzer
        from repro.core.trace_collector import TraceCollector
        from repro.sim.pmu import PmuSampler
        from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD

        if period < 1:
            raise ValueError("period must be >= 1")
        self.config = config
        self.period = period
        self.batch_size = batch_size
        self.events = tuple(events or config.filter_events())
        self._sampler = PmuSampler(device, self.events, seed=seed)
        self._collector = TraceCollector(period_ms=config.trace_period_ms)
        self._analyzer = TraceAnalyzer(
            occurrence_threshold=config.occurrence_threshold,
            app_package=app_package,
        )
        self._main = MAIN_THREAD
        self._render = RENDER_THREAD
        self._executions_seen = 0
        self.samples: List[CounterSample] = []
        #: Adaptation passes performed (result objects, newest last).
        self.adaptations: List[AdaptationResult] = []

    def observe(self, execution):
        """Account one execution; maybe collect a sample; maybe adapt.

        Returns the AdaptationResult if an adaptation pass ran on this
        call, else None.
        """
        self._executions_seen += 1
        if self._executions_seen % self.period != 0:
            return None
        if not execution.has_soft_hang:
            return None
        sample = self._collect(execution)
        if sample is not None:
            self.samples.append(sample)
        if len(self.samples) < self.batch_size:
            return None
        adapter = FilterAdapter(candidate_events=list(self.events))
        result = adapter.adapt(self.config.filter_thresholds, self.samples)
        if result.mode != "none":
            self.config.filter_thresholds = dict(result.thresholds)
        self.adaptations.append(result)
        self.samples.clear()
        return result

    # ------------------------------------------------------------------

    def _collect(self, execution):
        """One labelled sample: counter diffs + trace-derived label."""
        values = {
            event: self._sampler.read_difference(
                execution.timeline, event, self._main, self._render,
                execution.start_ms, execution.end_ms,
            )
            for event in self.events
        }
        hang = execution.hang_events()[0]
        traces = self._collector.collect(execution, hang)
        diagnosis = self._analyzer.analyze(traces)
        if diagnosis.root is None:
            return None
        return CounterSample(
            values=values,
            is_hang_bug=diagnosis.is_hang_bug,
            source=f"background:{execution.action.name}",
        )
