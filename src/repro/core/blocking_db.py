"""Known-blocking-API database.

Offline detectors (PerfChecker and kin) search app code for calls to a
curated list of APIs known to block.  The list is the community's
accumulated expert knowledge; Hang Doctor's closing contribution is to
grow it automatically: every previously-unknown blocking *API* it
diagnoses at runtime is added, so that offline tools can warn every
other developer before release.  Self-developed operations are
reported to their app's developer but never added (they are not APIs).
"""

from repro.apps.android_apis import initial_blocking_names


class BlockingApiDatabase:
    """A mutable set of qualified blocking-API names."""

    def __init__(self, names=None):
        self._names = set(names) if names is not None else set()
        self._added_at_runtime = []
        #: True when this database was rebuilt from the shipped initial
        #: list because the persisted copy was corrupt.
        self.recovered_from_corruption = False

    @classmethod
    def initial(cls):
        """The database as shipped before Hang Doctor ever runs."""
        return cls(initial_blocking_names())

    def knows(self, qualified_name):
        """True if the API is already known as blocking."""
        return qualified_name in self._names

    def add(self, qualified_name):
        """Record a newly discovered blocking API.

        Returns True if the name was new (and notes it as a runtime
        discovery), False if it was already known.
        """
        if qualified_name in self._names:
            return False
        self._names.add(qualified_name)
        self._added_at_runtime.append(qualified_name)
        return True

    def runtime_discoveries(self):
        """Qualified names added at runtime, in discovery order."""
        return list(self._added_at_runtime)

    def names(self):
        """All known blocking-API names (a copy)."""
        return set(self._names)

    def __len__(self):
        return len(self._names)

    def __contains__(self, qualified_name):
        return qualified_name in self._names
