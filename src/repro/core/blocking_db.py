"""Known-blocking-API database.

Offline detectors (PerfChecker and kin) search app code for calls to a
curated list of APIs known to block.  The list is the community's
accumulated expert knowledge; Hang Doctor's closing contribution is to
grow it automatically: every previously-unknown blocking *API* it
diagnoses at runtime is added, so that offline tools can warn every
other developer before release.  Self-developed operations are
reported to their app's developer but never added (they are not APIs).
"""

from repro.apps.android_apis import initial_blocking_names


class BlockingApiDatabase:
    """A mutable set of qualified blocking-API names."""

    def __init__(self, names=None):
        self._names = set(names) if names is not None else set()
        self._added_at_runtime = []
        #: True when this database was rebuilt from the shipped initial
        #: list because the persisted copy was corrupt.
        self.recovered_from_corruption = False

    @classmethod
    def initial(cls):
        """The database as shipped before Hang Doctor ever runs."""
        return cls(initial_blocking_names())

    def knows(self, qualified_name):
        """True if the API is already known as blocking."""
        return qualified_name in self._names

    def add(self, qualified_name):
        """Record a newly discovered blocking API.

        Returns True if the name was new (and notes it as a runtime
        discovery), False if it was already known.
        """
        if qualified_name in self._names:
            return False
        self._names.add(qualified_name)
        self._added_at_runtime.append(qualified_name)
        return True

    def merge(self, other):
        """Fold another database's knowledge into this one.

        Names dedupe **case-sensitively** by exact qualified-name match
        (``a.B.c`` and ``a.b.c`` are different APIs — Java identifiers
        are case-sensitive, and folding case would silently alias
        them).  Merged names are *not* marked as runtime discoveries of
        this database — they were discovered elsewhere — but the other
        database's own discovery list is appended (first-seen order,
        duplicates dropped) so provenance survives crowd publishing.

        Returns the number of names that were new to this database.
        """
        added = 0
        for name in other.sorted_names():
            if name not in self._names:
                self._names.add(name)
                added += 1
        known_discoveries = set(self._added_at_runtime)
        for name in other.runtime_discoveries():
            if name not in known_discoveries:
                known_discoveries.add(name)
                self._added_at_runtime.append(name)
        return added

    def runtime_discoveries(self):
        """Qualified names added at runtime, in discovery order."""
        return list(self._added_at_runtime)

    def names(self):
        """All known blocking-API names (a set copy)."""
        return set(self._names)

    def sorted_names(self):
        """All known names in the database's canonical (sorted) order.

        This is the iteration/serialization order: crowd publishing and
        local saves both emit it, so two databases with equal contents
        always serialize byte-identically regardless of insertion
        history.
        """
        return sorted(self._names)

    def __iter__(self):
        """Iterate names in canonical (sorted) order."""
        return iter(self.sorted_names())

    def __len__(self):
        return len(self._names)

    def __contains__(self, qualified_name):
        return qualified_name in self._names
