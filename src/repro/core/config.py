"""Hang Doctor configuration.

Default values follow the paper: 100 ms perceivable delay, the three
kernel filter events (context-switches, task-clock, page-faults) on
main−render differences, a 20-execution reset period for Normal
actions, 20 ms stack-trace sampling, and a 0.5 occurrence-factor bar
separating single-API root causes from self-developed operations.

The filter thresholds are calibrated by the paper's fitting procedure
on *this* substrate's training set (see ``benchmarks/test_figure4.py``
and EXPERIMENTS.md): a positive context-switch difference, task-clock
difference above 1.2e8 ns, page-fault difference above 250.  On the
authors' LG V10 the same procedure yielded 0 / 1.7e8 / 500 — same
events, same structure, device-dependent scales.
"""

from dataclasses import dataclass, field
from typing import Dict

#: The paper's published thresholds (LG V10), kept for ablations.
PAPER_THRESHOLDS = {
    "context-switches": 0.0,
    "task-clock": 1.7e8,
    "page-faults": 500.0,
}


def _default_thresholds():
    return {
        "context-switches": 0.0,
        "task-clock": 1.2e8,
        "page-faults": 250.0,
    }


@dataclass
class HangDoctorConfig:
    """Tunable parameters of Hang Doctor."""

    #: Minimum human-perceivable delay (ms); response times above this
    #: are soft hangs.
    perceivable_delay_ms: float = 100.0
    #: S-Checker filter: event name -> threshold on the main−render
    #: difference.  The action is Suspicious if ANY event exceeds its
    #: threshold (strictly greater).
    filter_thresholds: Dict[str, float] = field(
        default_factory=_default_thresholds
    )
    #: Executions after which a Normal action is reset to Uncategorized
    #: (to catch occasional bugs that earlier looked like UI work).
    normal_reset_period: int = 20
    #: Stack-trace sampling period during a hang (ms).
    trace_period_ms: float = 20.0
    #: Minimum occurrence factor for a single API to be the root cause;
    #: below it, the most common self-developed caller is blamed.
    occurrence_threshold: float = 0.5
    #: Whether Hang Doctor keeps collecting traces for actions already
    #: in the Hang Bug state (the paper keeps collecting: some actions
    #: hide several bugs that manifest in different executions).
    trace_hang_bug_state: bool = True
    #: Footnote-2 extension: also monitor the main thread's network
    #: activity; a hang with more than this many bytes moved on the
    #: main thread is symptomatic regardless of the counter filter.
    #: None disables the extension (the paper's default — network APIs
    #: are well-known blocking and usually caught offline).
    network_threshold_bytes: float = None
    #: Retries after a transient counter-read failure (bounded: each
    #: retry is another syscall charged to the overhead model).
    counter_read_retries: int = 2
    #: Consecutive failed counter reads (retries exhausted) after which
    #: Hang Doctor degrades to timeout-only mode: S-Checker is
    #: bypassed and Uncategorized hangs go straight to Suspicious.
    counter_failure_degrade_after: int = 3
    #: Consecutive refused trace collections after which the Diagnoser
    #: quarantines an action (stops paying for trace attempts on it).
    trace_failure_quarantine: int = 3

    def filter_events(self):
        """The performance events the filter reads, in filter order."""
        return tuple(self.filter_thresholds)

    def validate(self):
        """Raise ValueError on nonsensical settings."""
        if self.perceivable_delay_ms <= 0:
            raise ValueError("perceivable_delay_ms must be positive")
        if not self.filter_thresholds:
            raise ValueError("filter needs at least one event threshold")
        if self.normal_reset_period < 1:
            raise ValueError("normal_reset_period must be >= 1")
        if self.trace_period_ms <= 0:
            raise ValueError("trace_period_ms must be positive")
        if not 0.0 < self.occurrence_threshold <= 1.0:
            raise ValueError("occurrence_threshold must be in (0, 1]")
        if self.counter_read_retries < 0:
            raise ValueError("counter_read_retries must be >= 0")
        if self.counter_failure_degrade_after < 1:
            raise ValueError("counter_failure_degrade_after must be >= 1")
        if self.trace_failure_quarantine < 1:
            raise ValueError("trace_failure_quarantine must be >= 1")
        return self
