"""Phase 2: the Diagnoser (Trace Collector + Trace Analyzer).

Runs for actions in the Suspicious or Hang Bug state.  If the current
execution violates the 100 ms timeout again, stack traces are
collected until the end of each soft hang and analyzed for the root
cause; otherwise the action is left Suspicious so the next hang can be
caught (occasional bugs).

Degradation policy: when the substrate refuses a collection window
(an injected :class:`~repro.faults.TraceCollectionError`), the hang is
skipped and the failure counted instead of crashing the app.  An
action whose collections keep failing consecutively is *quarantined* —
the Diagnoser stops paying for trace attempts on it entirely — because
on a device whose sampler is broken for that action, retrying every
hang would burn overhead for no evidence.  One traced hang resets the
action's failure streak.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.core.trace_analyzer import Diagnosis, TraceAnalyzer
from repro.core.trace_collector import TraceCollector
from repro.faults import TraceCollectionError


@dataclass(frozen=True)
class HangDiagnosis:
    """Diagnosis of one soft hang (one input event's hang window)."""

    event_name: str
    response_time_ms: float
    diagnosis: Diagnosis
    #: Window stack traces were collected over.
    start_ms: float = 0.0
    end_ms: float = 0.0

    @property
    def is_hang_bug(self):
        """True when the hang's root cause is a soft hang bug."""
        return self.diagnosis.is_hang_bug


@dataclass(frozen=True)
class DiagnoserResult:
    """Everything the Diagnoser produced for one action execution."""

    #: Per-hang diagnoses (one per input event that hung).
    hang_diagnoses: Tuple[HangDiagnosis, ...]
    #: Stack-trace samples collected (overhead accounting).
    samples: int
    #: Collection windows the substrate refused on this execution.
    trace_failures: int = 0
    #: The action is quarantined (collections kept failing); no trace
    #: attempts were or will be made for it.
    quarantined: bool = False

    @property
    def diagnosed(self):
        """True if at least one hang was traced and analyzed."""
        return bool(self.hang_diagnoses)

    @property
    def found_hang_bug(self):
        """True if any hang's root cause is a soft hang bug."""
        return any(h.is_hang_bug for h in self.hang_diagnoses)

    def bug_diagnoses(self):
        """The hang diagnoses attributed to soft hang bugs."""
        return [h for h in self.hang_diagnoses if h.is_hang_bug]


class Diagnoser:
    """Second-phase deep analysis."""

    def __init__(self, config, app_package=None, faults=None):
        self.config = config
        self.collector = TraceCollector(
            period_ms=config.trace_period_ms, faults=faults
        )
        self.analyzer = TraceAnalyzer(
            occurrence_threshold=config.occurrence_threshold,
            app_package=app_package,
        )
        #: Consecutive failed collections per action name.
        self._failure_streak = {}
        self._quarantined = set()

    def is_quarantined(self, action_name):
        """True when trace collection is suspended for *action_name*."""
        return action_name in self._quarantined

    def quarantined_actions(self):
        """Names of quarantined actions, sorted."""
        return sorted(self._quarantined)

    def diagnose(self, execution):
        """Trace and analyze every soft hang in *execution*.

        Returns a :class:`DiagnoserResult`; ``hang_diagnoses`` is empty
        when the timeout was not violated (no data is collected in that
        case, and the caller should leave the action Suspicious).
        Collection refusals never propagate: they are counted in
        ``trace_failures``, and after
        ``config.trace_failure_quarantine`` consecutive failures the
        action is quarantined.
        """
        action_name = execution.action.name
        if action_name in self._quarantined:
            return DiagnoserResult(
                hang_diagnoses=(), samples=0, quarantined=True
            )
        before = self.collector.samples_collected
        diagnoses = []
        failures = 0
        for event_execution in execution.events:
            rt = event_execution.response_time_ms
            if rt <= self.config.perceivable_delay_ms:
                continue
            try:
                traces = self.collector.collect(execution, event_execution)
            except TraceCollectionError:
                failures += 1
                streak = self._failure_streak.get(action_name, 0) + 1
                self._failure_streak[action_name] = streak
                if streak >= self.config.trace_failure_quarantine:
                    self._quarantined.add(action_name)
                    break
                continue
            self._failure_streak[action_name] = 0
            diagnoses.append(
                HangDiagnosis(
                    event_name=event_execution.spec.name,
                    response_time_ms=rt,
                    diagnosis=self.analyzer.analyze(traces),
                    start_ms=event_execution.dispatch_ms,
                    end_ms=event_execution.finish_ms,
                )
            )
        samples = self.collector.samples_collected - before
        return DiagnoserResult(
            hang_diagnoses=tuple(diagnoses),
            samples=samples,
            trace_failures=failures,
            quarantined=action_name in self._quarantined,
        )
