"""Performance-event monitor.

The runtime face of Simpleperf in the paper's prototype: started when
an Uncategorized action begins, stopped at its end, and read as the
main−render difference of each filter event.  All three of Hang
Doctor's filter events are kernel software events, so the readings are
exact regardless of PMU register pressure; the monitor still goes
through :class:`~repro.sim.pmu.PmuSampler` so that experiments with
larger event sets (e.g. the adaptation study) model multiplexing error
faithfully.

A :class:`~repro.faults.FaultInjector` can be attached to model the
counter substrate failing under it: reads then raise
:class:`~repro.faults.TransientCounterError` (retryable) or
:class:`~repro.faults.CounterUnavailableError` (the monitor is dead
for good — every later read fails immediately), and surviving
readings may be silently undercounted.  Failed attempts still accrue
monitored time and read counts: the syscall was paid for whether or
not it returned data.
"""

from repro.faults import CounterUnavailableError
from repro.sim.pmu import PmuSampler
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD


class PerformanceEventMonitor:
    """Reads per-action counter differences for a set of events."""

    def __init__(self, device, events, seed=0, faults=None):
        self.events = tuple(events)
        self._sampler = PmuSampler(device, self.events, seed=seed)
        self.faults = faults
        #: Permanently dead (a CounterUnavailableError was injected).
        self.unavailable = False
        #: Total milliseconds of monitored execution (for the overhead
        #: model: counting costs scale with monitored time).
        self.monitored_ms = 0.0
        #: Number of end-of-action counter reads performed.
        self.reads = 0
        #: Number of read attempts that failed (injected faults).
        self.failed_reads = 0

    @property
    def kernel_only(self):
        """True when the monitored set needs no PMU registers — the
        configuration that pairs with a lazily-restricted
        :class:`~repro.sim.counters.CounterModel` (the engine then
        skips generating the 37 PMU events these reads never touch)."""
        return self._sampler.kernel_only

    def _begin_read(self, lo, hi):
        """Meter one read attempt; raise if the read fails."""
        self.monitored_ms += max(0.0, hi - lo)
        self.reads += 1
        if self.unavailable:
            self.failed_reads += 1
            raise CounterUnavailableError(
                "perf counters permanently unavailable"
            )
        if self.faults is None:
            return
        try:
            self.faults.counter_read_fault()
        except CounterUnavailableError:
            self.unavailable = True
            self.failed_reads += 1
            raise
        except Exception:
            self.failed_reads += 1
            raise

    def _corrupt(self, event, value):
        if self.faults is None:
            return value
        return self.faults.corrupt_counter_value(event, value)

    def read_differences(self, execution, start_ms=None, end_ms=None):
        """Main−render difference of every monitored event.

        By default the window is the whole action execution: S-Checker
        "conservatively counts the performance events until the end of
        the action execution" (paper §3.3.1 Discussion) because early
        samples routinely look bug-like even for UI work.
        """
        lo = execution.start_ms if start_ms is None else start_ms
        hi = execution.end_ms if end_ms is None else end_ms
        self._begin_read(lo, hi)
        values = {}
        for event in self.events:
            values[event] = self._corrupt(event, self._sampler.read_difference(
                execution.timeline, event, MAIN_THREAD, RENDER_THREAD,
                start_ms=lo, end_ms=hi,
            ))
        return values

    def read_thread_totals(self, execution, thread, start_ms=None, end_ms=None):
        """Raw per-thread totals (used by main-thread-only ablations)."""
        lo = execution.start_ms if start_ms is None else start_ms
        hi = execution.end_ms if end_ms is None else end_ms
        self._begin_read(lo, hi)
        return {
            event: self._corrupt(
                event,
                self._sampler.read(execution.timeline, thread, event, lo, hi),
            )
            for event in self.events
        }
