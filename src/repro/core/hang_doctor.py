"""The Hang Doctor orchestrator (paper Figure 2(a)).

Wires the runtime components together around the per-action state
machine:

* every execution's input-event response times are measured (cheap,
  always on);
* Uncategorized actions run with the performance-event monitor
  enabled; on a hang, S-Checker's filter decides Suspicious vs Normal;
* Suspicious / Hang Bug actions that hang again are traced and
  analyzed by the Diagnoser; confirmed bugs are recorded in the Hang
  Bug Report and — when the root cause is an API rather than
  self-developed code — added to the known-blocking-API database;
* Normal actions are periodically reset to Uncategorized.

HangDoctor implements the common :class:`~repro.detectors.base.Detector`
interface so it can be compared head-to-head with the baselines.

Graceful degradation: the monitoring substrate is allowed to fail
(see :mod:`repro.faults`) without ever failing the app.  Transient
counter-read errors get a bounded retry; after
``config.counter_failure_degrade_after`` consecutive reads that still
failed, Hang Doctor degrades to **timeout-only mode** — S-Checker is
bypassed and every Uncategorized hang goes straight to Suspicious,
trading the filter's false-positive pruning for survival.  Refused
trace collections are absorbed by the Diagnoser, which quarantines an
action after repeated failures.  Every degradation is recorded in the
:class:`~repro.detectors.base.MonitoringCost` of the execution and in
the Hang Bug Report; no injected fault ever raises out of
:meth:`process`.
"""

from repro.base.rng import SeededBackoff
from repro.core.blocking_db import BlockingApiDatabase
from repro.core.config import HangDoctorConfig
from repro.core.diagnoser import Diagnoser
from repro.core.injector import AppInjector
from repro.core.report import HangBugReport
from repro.core.schecker import SChecker
from repro.core.states import ActionState, ActionStateMachine
from repro.detectors.base import ActionOutcome, Detection, Detector
from repro.faults import (
    CounterUnavailableError,
    FaultInjector,
    FaultPlan,
    TransientCounterError,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry import current as telemetry


class HangDoctor(Detector):
    """Two-phase runtime soft-hang-bug detector for one app."""

    name = "HD"

    def __init__(self, app, device, config=None, blocking_db=None, seed=0,
                 faults=None, crowd_kb=None):
        self.app = app
        self.device = device
        self.config = (config or HangDoctorConfig()).validate()
        self.blocking_db = (
            blocking_db if blocking_db is not None
            else BlockingApiDatabase.initial()
        )
        #: Crowd-synced known-bug knowledge (see :mod:`repro.crowd`):
        #: when the fleet has already diagnosed this (app, action), the
        #: Diagnoser's trace collection is skipped and the known
        #: verdict is applied directly.  None disables the path — the
        #: paper's isolated-device behaviour.
        self.crowd_kb = crowd_kb
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults, seed=seed, scope=(app.name,))
        self.faults = faults
        self.injector = AppInjector(app)
        self.machine = ActionStateMachine(
            reset_period=self.config.normal_reset_period
        )
        for row in self.injector.rows():
            self.machine.register(row.uid)
        self.schecker = SChecker(self.config, device, seed=seed,
                                 faults=faults)
        self.diagnoser = Diagnoser(self.config, app_package=app.package,
                                   faults=faults)
        self.report = HangBugReport(app.name)
        #: This doctor's always-on metrics registry — the *single*
        #: source behind the public run-counter views
        #: (:attr:`phase2_collections`, :attr:`kb_short_circuits`,
        #: :attr:`degraded`), which used to be bookkept in parallel
        #: with the telemetry stream and could drift from it.
        self.metrics = MetricsRegistry()
        self._consecutive_counter_failures = 0
        self._quarantines_reported = set()
        #: Seeded retry schedule for transient counter-read failures:
        #: the delays a real deployment would sleep between attempts,
        #: bookkept in ``cost.retry_backoff_ms`` (deterministic per
        #: seed/app, drawn only when a retry actually happens).
        self._counter_backoff = SeededBackoff(
            seed, "counter-retry", app.name, base_ms=5.0, cap_ms=200.0
        )

    # ------------------------------------------------------------------

    def _meter(self, name, n=1):
        """Increment one run counter in the single source of truth.

        The local registry backs the public view properties; an active
        telemetry session sees the very same increment, so the views
        and the exported metrics can never disagree.
        """
        self.metrics.count(name, n)
        telemetry().count(name, n)

    @property
    def degraded(self):
        """True once counters died and only the timeout remains."""
        return self.metrics.gauge_value("core.degraded.mode") > 0

    @property
    def phase2_collections(self):
        """Phase-2 trace collections actually paid for (the expensive
        half of the two-phase cost, what the crowd backend drives down
        fleet-wide)."""
        return self.metrics.counter_value("core.phase2.collections")

    @property
    def kb_short_circuits(self):
        """Phase-2 collections avoided via the crowd known-bug DB."""
        return self.metrics.counter_value("core.kb.short_circuits")

    # ------------------------------------------------------------------

    def state_of(self, action_name):
        """Current state of a named action."""
        return self.machine.state(self.injector.uid_of(action_name))

    def process(self, execution, device_id=0):
        """Observe one action execution and run the two-phase algorithm.

        Never raises on injected monitoring faults: failures degrade
        the monitoring (recorded in the outcome's cost and the report)
        while the state machine keeps running on what evidence remains.
        """
        if execution.app.package != self.app.package:
            raise ValueError(
                f"execution belongs to {execution.app.package!r}; this "
                f"Hang Doctor instance is embedded in {self.app.package!r}"
            )
        uid = self.injector.uid_of(execution.action.name)
        state = self.machine.state(uid)
        outcome = ActionOutcome()
        outcome.cost.rt_events = len(execution.events)
        hang = execution.response_time_ms > self.config.perceivable_delay_ms

        self._meter("core.actions.processed")
        if hang:
            self._meter("core.hangs.observed")
            self.metrics.observe("core.hang.response_ms",
                                 execution.response_time_ms)
            telemetry().observe("core.hang.response_ms",
                                execution.response_time_ms)
        tel = telemetry()
        if tel.enabled:
            tel.record_span(
                "core.action.process", execution.start_ms,
                execution.end_ms, action=execution.action.name,
                state=state.name, hang=hang,
            )

        if state is ActionState.UNCATEGORIZED:
            self._phase_one(uid, execution, hang, outcome)
        elif state is ActionState.NORMAL:
            self.machine.note_normal_execution(uid, time_ms=execution.end_ms)
        else:  # SUSPICIOUS or HANG_BUG
            self._phase_two(uid, state, execution, hang, outcome, device_id)
        return outcome

    # ------------------------------------------------------------------

    def _phase_one(self, uid, execution, hang, outcome):
        """S-Checker: counters were on for this Uncategorized action."""
        if self.degraded:
            # Timeout-only mode: the counters are gone, so the filter
            # cannot prune UI work; every hang goes to the Diagnoser.
            if hang:
                telemetry().event(
                    "core.schecker.verdict", execution.end_ms,
                    action=execution.action.name, verdict="timeout-only",
                )
                self.machine.transition(
                    uid, ActionState.SUSPICIOUS, "timeout-only",
                    time_ms=execution.end_ms,
                )
            return
        outcome.cost.counter_window_ms = execution.end_ms - execution.start_ms
        if not hang:
            # No soft hang: leave Uncategorized, monitor again next time.
            return
        check = self._checked_with_retry(execution, outcome)
        if check is None:
            # The read ultimately failed.  Without counter evidence the
            # hang cannot be ruled UI work, so fail conservative: hand
            # it to the Diagnoser rather than miss a bug.
            telemetry().event(
                "core.schecker.verdict", execution.end_ms,
                action=execution.action.name, verdict="read-failed",
            )
            self.machine.transition(
                uid, ActionState.SUSPICIOUS, "S-Checker (read failed)",
                time_ms=execution.end_ms,
            )
            return
        verdict = "suspicious" if check.symptomatic else "normal"
        self._meter(f"core.schecker.{verdict}")
        telemetry().event(
            "core.schecker.verdict", execution.end_ms,
            action=execution.action.name, verdict=verdict,
        )
        if check.symptomatic:
            self.machine.transition(
                uid, ActionState.SUSPICIOUS, "S-Checker",
                time_ms=execution.end_ms,
            )
        else:
            self.machine.transition(
                uid, ActionState.NORMAL, "S-Checker", time_ms=execution.end_ms
            )

    def _checked_with_retry(self, execution, outcome):
        """One S-Checker evaluation with bounded retry.

        Returns the SymptomCheck, or None when every attempt failed.
        Each attempt (including failures) is a real syscall charged to
        ``counter_reads``; a permanent failure stops retrying early.
        Each retry is preceded by a seeded backoff delay
        (:class:`~repro.base.rng.SeededBackoff`) charged to
        ``retry_backoff_ms`` — the deterministic record of what a real
        deployment would have slept.
        """
        attempts = 1 + self.config.counter_read_retries
        for attempt in range(attempts):
            try:
                check = self.schecker.check(execution)
            except TransientCounterError:
                outcome.cost.counter_reads += 1
                outcome.cost.counter_read_failures += 1
                self._meter("core.schecker.read_failures")
                if attempt + 1 < attempts:
                    outcome.cost.retry_backoff_ms += (
                        self._counter_backoff.next_ms()
                    )
                continue
            except CounterUnavailableError:
                outcome.cost.counter_reads += 1
                outcome.cost.counter_read_failures += 1
                self._meter("core.schecker.read_failures")
                break
            outcome.cost.counter_reads += 1
            self._consecutive_counter_failures = 0
            self._counter_backoff.reset()
            return check
        self._consecutive_counter_failures += 1
        if (self._consecutive_counter_failures
                >= self.config.counter_failure_degrade_after):
            self._enter_degraded_mode(execution.end_ms)
        return None

    def _enter_degraded_mode(self, time_ms):
        """Give up on counters; record it instead of crashing."""
        self.metrics.gauge_set("core.degraded.mode", 1.0)
        self._meter("core.degraded.entries")
        tel = telemetry()
        tel.gauge_set("core.degraded.mode", 1.0)
        tel.event(
            "core.degraded.enter", time_ms,
            consecutive_failures=self._consecutive_counter_failures,
        )
        self.report.note_degradation(
            "timeout-only",
            detail=(
                f"counters lost after "
                f"{self._consecutive_counter_failures} consecutive "
                f"failed reads"
            ),
            time_ms=time_ms,
        )

    def _crowd_short_circuit(self, uid, state, execution, outcome,
                             device_id):
        """Apply a fleet-diagnosed verdict instead of collecting traces.

        Returns True when the crowd knowledge base holds a confirmed
        bug for this (app, action): the action jumps straight from
        S-Checker's Suspicious verdict to Hang Bug, the known root
        cause is recorded for this manifestation (report + detection +
        blocking-API database), and no trace collection is paid for —
        the bug was already diagnosed elsewhere in the fleet.
        """
        if self.crowd_kb is None:
            return False
        known = self.crowd_kb.lookup(self.app.name, execution.action.name)
        if known is None:
            return False
        self._meter("core.kb.short_circuits")
        outcome.cost.kb_short_circuits += 1
        telemetry().event(
            "core.kb.short_circuit", execution.end_ms,
            action=execution.action.name, operation=known.operation,
        )
        if state is ActionState.SUSPICIOUS:
            self.machine.transition(uid, ActionState.HANG_BUG, "Crowd-KB",
                                    time_ms=execution.end_ms)
        outcome.detections.append(
            Detection(
                detector=self.name,
                app_name=self.app.name,
                action_name=execution.action.name,
                time_ms=execution.end_ms,
                response_time_ms=execution.response_time_ms,
                root=known.root_frame(),
                occurrence=known.occurrence,
                root_is_ui=False,
                is_self_developed=known.is_self_developed,
            )
        )
        self.report.record(
            operation=known.operation,
            file=known.file,
            line=known.line,
            is_self_developed=known.is_self_developed,
            response_time_ms=execution.response_time_ms,
            occurrence_factor=known.occurrence,
            device_id=device_id,
            action=execution.action.name,
        )
        if not known.is_self_developed:
            self.blocking_db.add(known.operation)
        return True

    def _phase_two(self, uid, state, execution, hang, outcome, device_id):
        """Diagnoser: trace and analyze if the timeout fires again."""
        if not hang:
            # Occasional bug: stay put, catch the next manifestation.
            return
        if state is ActionState.HANG_BUG and not self.config.trace_hang_bug_state:
            return
        if self._crowd_short_circuit(uid, state, execution, outcome,
                                     device_id):
            return
        self._meter("core.phase2.collections")
        result = self.diagnoser.diagnose(execution)
        outcome.trace_episodes.extend(
            (h.start_ms, h.end_ms) for h in result.hang_diagnoses
        )
        outcome.cost.trace_samples = result.samples
        outcome.cost.analyses = len(result.hang_diagnoses)
        outcome.cost.trace_failures = result.trace_failures
        if result.samples:
            self._meter("core.trace.samples", result.samples)
        if result.trace_failures:
            self._meter("core.trace.failures", result.trace_failures)
        tel = telemetry()
        if tel.enabled:
            tel.record_span(
                "core.diagnoser.collect", execution.start_ms,
                execution.end_ms, action=execution.action.name,
                samples=result.samples, analyses=len(result.hang_diagnoses),
                trace_failures=result.trace_failures,
            )
        if result.quarantined:
            name = execution.action.name
            if name not in self._quarantines_reported:
                self._quarantines_reported.add(name)
                tel.event("core.diagnoser.quarantine", execution.end_ms,
                          action=name)
                self.report.note_degradation(
                    "trace-quarantine", detail=name,
                    time_ms=execution.end_ms,
                )
        if result.trace_failures and not result.hang_diagnoses:
            # Every collection was refused: no evidence either way, so
            # the action keeps its state for the next manifestation.
            return
        if result.quarantined and not result.hang_diagnoses:
            return

        bug_diagnoses = result.bug_diagnoses()
        if state is ActionState.SUSPICIOUS:
            target = (
                ActionState.HANG_BUG if bug_diagnoses else ActionState.NORMAL
            )
            self.machine.transition(
                uid, target, "Diagnoser", time_ms=execution.end_ms
            )

        for hang_diag in bug_diagnoses:
            diagnosis = hang_diag.diagnosis
            outcome.detections.append(
                Detection(
                    detector=self.name,
                    app_name=self.app.name,
                    action_name=execution.action.name,
                    time_ms=execution.end_ms,
                    response_time_ms=hang_diag.response_time_ms,
                    root=diagnosis.root,
                    caller=diagnosis.caller,
                    occurrence=diagnosis.occurrence,
                    root_is_ui=False,
                    is_self_developed=diagnosis.is_self_developed,
                )
            )
            self.report.record(
                operation=diagnosis.root.qualified_name,
                file=diagnosis.root.file,
                line=diagnosis.root.line,
                is_self_developed=diagnosis.is_self_developed,
                response_time_ms=hang_diag.response_time_ms,
                occurrence_factor=diagnosis.occurrence,
                device_id=device_id,
                action=execution.action.name,
            )
            if not diagnosis.is_self_developed:
                self.blocking_db.add(diagnosis.root.qualified_name)
