"""The Hang Doctor orchestrator (paper Figure 2(a)).

Wires the runtime components together around the per-action state
machine:

* every execution's input-event response times are measured (cheap,
  always on);
* Uncategorized actions run with the performance-event monitor
  enabled; on a hang, S-Checker's filter decides Suspicious vs Normal;
* Suspicious / Hang Bug actions that hang again are traced and
  analyzed by the Diagnoser; confirmed bugs are recorded in the Hang
  Bug Report and — when the root cause is an API rather than
  self-developed code — added to the known-blocking-API database;
* Normal actions are periodically reset to Uncategorized.

HangDoctor implements the common :class:`~repro.detectors.base.Detector`
interface so it can be compared head-to-head with the baselines.
"""

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.config import HangDoctorConfig
from repro.core.diagnoser import Diagnoser
from repro.core.injector import AppInjector
from repro.core.report import HangBugReport
from repro.core.schecker import SChecker
from repro.core.states import ActionState, ActionStateMachine
from repro.detectors.base import ActionOutcome, Detection, Detector


class HangDoctor(Detector):
    """Two-phase runtime soft-hang-bug detector for one app."""

    name = "HD"

    def __init__(self, app, device, config=None, blocking_db=None, seed=0):
        self.app = app
        self.device = device
        self.config = (config or HangDoctorConfig()).validate()
        self.blocking_db = (
            blocking_db if blocking_db is not None
            else BlockingApiDatabase.initial()
        )
        self.injector = AppInjector(app)
        self.machine = ActionStateMachine(
            reset_period=self.config.normal_reset_period
        )
        for row in self.injector.rows():
            self.machine.register(row.uid)
        self.schecker = SChecker(self.config, device, seed=seed)
        self.diagnoser = Diagnoser(self.config, app_package=app.package)
        self.report = HangBugReport(app.name)

    # ------------------------------------------------------------------

    def state_of(self, action_name):
        """Current state of a named action."""
        return self.machine.state(self.injector.uid_of(action_name))

    def process(self, execution, device_id=0):
        """Observe one action execution and run the two-phase algorithm."""
        if execution.app.package != self.app.package:
            raise ValueError(
                f"execution belongs to {execution.app.package!r}; this "
                f"Hang Doctor instance is embedded in {self.app.package!r}"
            )
        uid = self.injector.uid_of(execution.action.name)
        state = self.machine.state(uid)
        outcome = ActionOutcome()
        outcome.cost.rt_events = len(execution.events)
        hang = execution.response_time_ms > self.config.perceivable_delay_ms

        if state is ActionState.UNCATEGORIZED:
            self._phase_one(uid, execution, hang, outcome)
        elif state is ActionState.NORMAL:
            self.machine.note_normal_execution(uid, time_ms=execution.end_ms)
        else:  # SUSPICIOUS or HANG_BUG
            self._phase_two(uid, state, execution, hang, outcome, device_id)
        return outcome

    # ------------------------------------------------------------------

    def _phase_one(self, uid, execution, hang, outcome):
        """S-Checker: counters were on for this Uncategorized action."""
        outcome.cost.counter_window_ms = execution.end_ms - execution.start_ms
        if not hang:
            # No soft hang: leave Uncategorized, monitor again next time.
            return
        check = self.schecker.check(execution)
        outcome.cost.counter_reads = 1
        if check.symptomatic:
            self.machine.transition(
                uid, ActionState.SUSPICIOUS, "S-Checker",
                time_ms=execution.end_ms,
            )
        else:
            self.machine.transition(
                uid, ActionState.NORMAL, "S-Checker", time_ms=execution.end_ms
            )

    def _phase_two(self, uid, state, execution, hang, outcome, device_id):
        """Diagnoser: trace and analyze if the timeout fires again."""
        if not hang:
            # Occasional bug: stay put, catch the next manifestation.
            return
        if state is ActionState.HANG_BUG and not self.config.trace_hang_bug_state:
            return
        result = self.diagnoser.diagnose(execution)
        outcome.trace_episodes.extend(
            (h.start_ms, h.end_ms) for h in result.hang_diagnoses
        )
        outcome.cost.trace_samples = result.samples
        outcome.cost.analyses = len(result.hang_diagnoses)

        bug_diagnoses = result.bug_diagnoses()
        if state is ActionState.SUSPICIOUS:
            target = (
                ActionState.HANG_BUG if bug_diagnoses else ActionState.NORMAL
            )
            self.machine.transition(
                uid, target, "Diagnoser", time_ms=execution.end_ms
            )

        for hang_diag in bug_diagnoses:
            diagnosis = hang_diag.diagnosis
            outcome.detections.append(
                Detection(
                    detector=self.name,
                    app_name=self.app.name,
                    action_name=execution.action.name,
                    time_ms=execution.end_ms,
                    response_time_ms=hang_diag.response_time_ms,
                    root=diagnosis.root,
                    caller=diagnosis.caller,
                    occurrence=diagnosis.occurrence,
                    root_is_ui=False,
                    is_self_developed=diagnosis.is_self_developed,
                )
            )
            self.report.record(
                operation=diagnosis.root.qualified_name,
                file=diagnosis.root.file,
                line=diagnosis.root.line,
                is_self_developed=diagnosis.is_self_developed,
                response_time_ms=hang_diag.response_time_ms,
                occurrence_factor=diagnosis.occurrence,
                device_id=device_id,
            )
            if not diagnosis.is_self_developed:
                self.blocking_db.add(diagnosis.root.qualified_name)
