"""App Injector.

The paper's offline component that instruments an app before release:
it assigns a Unique ID (UID) to every user-action entry point
(onClick, onScroll, ... listeners), so that at runtime Hang Doctor can
look up each executing action's current state in O(1).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class InjectedAction:
    """Look-up table row for one instrumented action."""

    uid: int
    action_name: str
    handler: str


class AppInjector:
    """Assigns UIDs to an app's actions and builds the look-up table."""

    def __init__(self, app):
        self.app = app
        self._by_name = {}
        self._by_uid = {}
        for uid, action in enumerate(app.actions, start=1):
            row = InjectedAction(
                uid=uid, action_name=action.name, handler=action.handler
            )
            self._by_name[action.name] = row
            self._by_uid[uid] = row

    def uid_of(self, action_name):
        """UID of a named action (raises KeyError if not instrumented)."""
        return self._by_name[action_name].uid

    def action_name(self, uid):
        """Action name for a UID."""
        return self._by_uid[uid].action_name

    def rows(self):
        """All look-up table rows, in UID order."""
        return [self._by_uid[uid] for uid in sorted(self._by_uid)]

    def __len__(self):
        return len(self._by_uid)
