"""Persistence and anonymized telemetry.

The paper's privacy stance (§3.2): "all the anonymized data sent out
from the user devices only include those blocking operations that have
caused a soft hang."  This module defines exactly that wire format —
a detection record carries the blamed operation, its source location,
the hang length and occurrence factor, and nothing else (no action
sequences, no content, no identifiers beyond an opaque device id) —
plus JSON round-trips for the Hang Bug Report and the blocking-API
database so state survives app restarts and database upgrades can be
shipped to devices.

Robustness contract: the ``*_from_json`` parsers validate payloads and
raise one clear :class:`ValueError` naming the offending key on any
malformed input (never a bare ``KeyError``/``TypeError``), and the
:func:`load_report` / :func:`load_database` entry points never raise
at all — a corrupt or truncated state file (crash mid-write) falls
back to fresh state with ``recovered_from_corruption`` set, because
on-device monitoring must survive its own persistence failing.

Writing is the dual half of that contract: every state write in the
repo goes through :func:`atomic_write_text` /
:func:`atomic_write_bytes` (temp file + ``fsync`` + ``os.replace``),
so a crash mid-write can only ever lose the *new* state — the
destination either holds the complete old payload or the complete new
one, never a torn mixture.  The ``torn_write`` fault channel
(:class:`~repro.faults.FaultPlan.torn_write_rate`) simulates dying
mid-write to prove exactly that.
"""

import json
import os
import pathlib

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.report import DegradationRecord, HangBugReport, ReportEntry

#: Wire-format version for forward compatibility.
SCHEMA_VERSION = 1


def atomic_write_bytes(path, data, faults=None, label=None):
    """Crash-atomically write *data* to *path*.

    The payload lands in a same-directory temp file, is fsynced, and
    only then renamed over the destination — the two states a crash
    can leave behind are "old file intact" and "new file complete".

    A :class:`~repro.faults.FaultInjector` with a nonzero
    ``torn_write_rate`` may simulate the crash: the temp file is left
    truncated (the artifact a real mid-write death produces) and
    :class:`~repro.faults.TornWriteError` raised *before* the rename,
    leaving the destination untouched.  *label* keys that decision
    (defaults to the file name) so it is deterministic regardless of
    write order.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    if faults is not None and faults.torn_write_fault(
        label if label is not None else path.name
    ):
        from repro.faults import TornWriteError

        tmp.write_bytes(data[: len(data) // 2])
        raise TornWriteError(
            f"simulated crash mid-write of {path.name} (injected)"
        )
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        # A real failure mid-write: drop the partial temp file so it
        # cannot be mistaken for state, then let the error propagate.
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def atomic_write_text(path, text, faults=None, label=None):
    """Crash-atomically write *text* (UTF-8) to *path*.

    See :func:`atomic_write_bytes` for the atomicity contract and the
    ``torn_write`` fault seam.
    """
    atomic_write_bytes(path, text.encode("utf-8"), faults=faults,
                       label=label)


def save_report(path, report, faults=None):
    """Crash-atomically persist a Hang Bug Report to *path*."""
    atomic_write_text(path, report_to_json(report), faults=faults)


def save_database(path, db, faults=None):
    """Crash-atomically persist a blocking-API database to *path*."""
    atomic_write_text(path, database_to_json(db), faults=faults)


def _field(mapping, key, context):
    """Fetch a required *key*, raising a named ValueError when absent."""
    if not isinstance(mapping, dict):
        raise ValueError(
            f"malformed {context}: expected an object, got "
            f"{type(mapping).__name__}"
        )
    if key not in mapping:
        raise ValueError(f"malformed {context}: missing required key {key!r}")
    return mapping[key]


def detection_to_record(detection, device_id=0):
    """The anonymized telemetry record for one detection."""
    return {
        "operation": detection.root_name,
        "file": detection.root.file if detection.root else None,
        "line": detection.root.line if detection.root else None,
        "self_developed": detection.is_self_developed,
        "response_time_ms": round(detection.response_time_ms, 1),
        "occurrence_factor": round(detection.occurrence, 3),
        "device": device_id,
    }


def report_to_json(report):
    """Serialize a Hang Bug Report."""
    entries = []
    for entry in report.entries():
        entries.append({
            "operation": entry.operation,
            "action": entry.action,
            "file": entry.file,
            "line": entry.line,
            "self_developed": entry.is_self_developed,
            "occurrences": entry.occurrences,
            "devices": sorted(entry.devices),
            "total_hang_ms": entry.total_hang_ms,
            "max_occurrence_factor": entry.max_occurrence_factor,
        })
    return json.dumps({
        "schema": SCHEMA_VERSION,
        "app": report.app_name,
        "entries": entries,
        "degradations": [
            {"kind": record.kind, "detail": record.detail,
             "time_ms": record.time_ms}
            for record in report.degradations
        ],
    }, indent=2)


def report_from_json(text):
    """Rebuild a Hang Bug Report from its JSON form.

    Raises ValueError (naming the offending key) on malformed
    payloads: wrong schema, missing fields, or non-object entries.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"malformed report payload: {error}") from error
    if not isinstance(payload, dict):
        raise ValueError("malformed report payload: expected an object")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported report schema {payload.get('schema')!r}"
        )
    report = HangBugReport(_field(payload, "app", "report payload"))
    for raw in _field(payload, "entries", "report payload"):
        entry = ReportEntry(
            operation=_field(raw, "operation", "report entry"),
            file=_field(raw, "file", "report entry"),
            line=_field(raw, "line", "report entry"),
            is_self_developed=_field(raw, "self_developed", "report entry"),
            occurrences=_field(raw, "occurrences", "report entry"),
            devices=set(_field(raw, "devices", "report entry")),
            total_hang_ms=_field(raw, "total_hang_ms", "report entry"),
            max_occurrence_factor=_field(
                raw, "max_occurrence_factor", "report entry"
            ),
            # Optional for pre-crowd payloads, which had no action.
            action=raw.get("action", ""),
        )
        key = (entry.action, entry.operation, entry.file, entry.line)
        report._entries[key] = entry
    for raw in payload.get("degradations", []):
        report.degradations.append(DegradationRecord(
            kind=_field(raw, "kind", "degradation record"),
            detail=raw.get("detail", ""),
            time_ms=raw.get("time_ms", 0.0),
        ))
    return report


def load_report(text, app_name, faults=None):
    """Load a persisted report; never raises.

    A :class:`~repro.faults.FaultInjector` may corrupt the payload
    first (modeling a crash mid-write).  A payload that fails to parse
    or validate yields a *fresh* report for *app_name* with
    ``recovered_from_corruption`` set — losing history is recoverable,
    crashing the host app is not.
    """
    if faults is not None:
        text = faults.corrupt_text(text)
    try:
        return report_from_json(text)
    except ValueError:
        report = HangBugReport(app_name)
        report.recovered_from_corruption = True
        return report


def merge_reports(reports, app_name=None):
    """Merge per-device reports into one fleet report.

    This is the server-side half of the paper's deployment: each
    device uploads its own (anonymized) report; the developer sees the
    aggregate ordered by occurrences across all devices.  Degradation
    records concatenate; a merged report is marked recovered if any
    input was.
    """
    if not reports:
        raise ValueError("no reports to merge")
    names = {report.app_name for report in reports}
    if app_name is None:
        if len(names) > 1:
            raise ValueError(f"reports for different apps: {sorted(names)}")
        app_name = next(iter(names))
    merged = HangBugReport(app_name)
    for report in reports:
        for entry in report.entries():
            key = (entry.action, entry.operation, entry.file, entry.line)
            existing = merged._entries.get(key)
            if existing is None:
                existing = ReportEntry(
                    operation=entry.operation, file=entry.file,
                    line=entry.line,
                    is_self_developed=entry.is_self_developed,
                    action=entry.action,
                )
                merged._entries[key] = existing
            existing.occurrences += entry.occurrences
            existing.devices |= entry.devices
            existing.total_hang_ms += entry.total_hang_ms
            existing.max_occurrence_factor = max(
                existing.max_occurrence_factor, entry.max_occurrence_factor
            )
        merged.degradations.extend(report.degradations)
        merged.recovered_from_corruption |= report.recovered_from_corruption
    return merged


def database_to_json(db):
    """Serialize a blocking-API database (the shippable upgrade)."""
    return json.dumps({
        "schema": SCHEMA_VERSION,
        "names": db.sorted_names(),
        "runtime_discoveries": db.runtime_discoveries(),
    }, indent=2)


def database_from_json(text):
    """Rebuild a blocking-API database.

    Raises ValueError (naming the offending key) on malformed
    payloads.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"malformed database payload: {error}") from error
    if not isinstance(payload, dict):
        raise ValueError("malformed database payload: expected an object")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported database schema {payload.get('schema')!r}"
        )
    names = _field(payload, "names", "database payload")
    if not isinstance(names, list):
        raise ValueError(
            "malformed database payload: key 'names' must be a list"
        )
    db = BlockingApiDatabase(names)
    db._added_at_runtime = list(payload.get("runtime_discoveries", []))
    return db


def load_database(text, faults=None):
    """Load a persisted blocking-API database; never raises.

    Falls back to the shipped initial database (see
    :meth:`BlockingApiDatabase.initial`) with
    ``recovered_from_corruption`` set when the payload is corrupt —
    the curated list is recoverable expert knowledge, only the runtime
    discoveries since the last good write are lost.
    """
    if faults is not None:
        text = faults.corrupt_text(text)
    try:
        return database_from_json(text)
    except ValueError:
        db = BlockingApiDatabase.initial()
        db.recovered_from_corruption = True
        return db
