"""Persistence and anonymized telemetry.

The paper's privacy stance (§3.2): "all the anonymized data sent out
from the user devices only include those blocking operations that have
caused a soft hang."  This module defines exactly that wire format —
a detection record carries the blamed operation, its source location,
the hang length and occurrence factor, and nothing else (no action
sequences, no content, no identifiers beyond an opaque device id) —
plus JSON round-trips for the Hang Bug Report and the blocking-API
database so state survives app restarts and database upgrades can be
shipped to devices.
"""

import json

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.report import HangBugReport, ReportEntry

#: Wire-format version for forward compatibility.
SCHEMA_VERSION = 1


def detection_to_record(detection, device_id=0):
    """The anonymized telemetry record for one detection."""
    return {
        "operation": detection.root_name,
        "file": detection.root.file if detection.root else None,
        "line": detection.root.line if detection.root else None,
        "self_developed": detection.is_self_developed,
        "response_time_ms": round(detection.response_time_ms, 1),
        "occurrence_factor": round(detection.occurrence, 3),
        "device": device_id,
    }


def report_to_json(report):
    """Serialize a Hang Bug Report."""
    entries = []
    for entry in report.entries():
        entries.append({
            "operation": entry.operation,
            "file": entry.file,
            "line": entry.line,
            "self_developed": entry.is_self_developed,
            "occurrences": entry.occurrences,
            "devices": sorted(entry.devices),
            "total_hang_ms": entry.total_hang_ms,
            "max_occurrence_factor": entry.max_occurrence_factor,
        })
    return json.dumps({
        "schema": SCHEMA_VERSION,
        "app": report.app_name,
        "entries": entries,
    }, indent=2)


def report_from_json(text):
    """Rebuild a Hang Bug Report from its JSON form."""
    payload = json.loads(text)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported report schema {payload.get('schema')!r}"
        )
    report = HangBugReport(payload["app"])
    for raw in payload["entries"]:
        entry = ReportEntry(
            operation=raw["operation"],
            file=raw["file"],
            line=raw["line"],
            is_self_developed=raw["self_developed"],
            occurrences=raw["occurrences"],
            devices=set(raw["devices"]),
            total_hang_ms=raw["total_hang_ms"],
            max_occurrence_factor=raw["max_occurrence_factor"],
        )
        report._entries[(entry.operation, entry.file, entry.line)] = entry
    return report


def merge_reports(reports, app_name=None):
    """Merge per-device reports into one fleet report.

    This is the server-side half of the paper's deployment: each
    device uploads its own (anonymized) report; the developer sees the
    aggregate ordered by occurrences across all devices.
    """
    if not reports:
        raise ValueError("no reports to merge")
    names = {report.app_name for report in reports}
    if app_name is None:
        if len(names) > 1:
            raise ValueError(f"reports for different apps: {sorted(names)}")
        app_name = next(iter(names))
    merged = HangBugReport(app_name)
    for report in reports:
        for entry in report.entries():
            key = (entry.operation, entry.file, entry.line)
            existing = merged._entries.get(key)
            if existing is None:
                existing = ReportEntry(
                    operation=entry.operation, file=entry.file,
                    line=entry.line,
                    is_self_developed=entry.is_self_developed,
                )
                merged._entries[key] = existing
            existing.occurrences += entry.occurrences
            existing.devices |= entry.devices
            existing.total_hang_ms += entry.total_hang_ms
            existing.max_occurrence_factor = max(
                existing.max_occurrence_factor, entry.max_occurrence_factor
            )
    return merged


def database_to_json(db):
    """Serialize a blocking-API database (the shippable upgrade)."""
    return json.dumps({
        "schema": SCHEMA_VERSION,
        "names": sorted(db.names()),
        "runtime_discoveries": db.runtime_discoveries(),
    }, indent=2)


def database_from_json(text):
    """Rebuild a blocking-API database."""
    payload = json.loads(text)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported database schema {payload.get('schema')!r}"
        )
    db = BlockingApiDatabase(payload["names"])
    db._added_at_runtime = list(payload.get("runtime_discoveries", []))
    return db
