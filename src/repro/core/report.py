"""Hang Bug Report (paper Figure 2(b)).

The developer-facing summary Hang Doctor maintains: one entry per
detected soft hang bug, ordered by how often the bug was observed
across user devices, with the blamed operation, its source location,
the mean hang length, and the share of all bug occurrences it accounts
for.  Only anonymized blocking-operation records ever leave a user
device (paper §3.2's privacy note), which is what the entry fields
reflect.
"""

from dataclasses import dataclass

#: Number of occurrence-factor buckets used by root-cause signatures.
#: Ten deciles: a bug whose occurrence factor drifts a little between
#: devices (sampling jitter) still lands in the same bucket, while a
#: genuinely different manifestation (60 % vs 95 %) does not.
OCCURRENCE_BUCKETS = 10


def occurrence_bucket(factor):
    """Decile bucket of an occurrence factor (0..OCCURRENCE_BUCKETS-1).

    Factors are clamped into [0, 1] first so a slightly-out-of-range
    value (float noise) cannot create a phantom bucket.
    """
    clamped = min(max(float(factor), 0.0), 1.0)
    return min(int(clamped * OCCURRENCE_BUCKETS), OCCURRENCE_BUCKETS - 1)


@dataclass(frozen=True)
class DegradationRecord:
    """One graceful-degradation event of the monitoring substrate.

    Recorded in the report (rather than crashing) when Hang Doctor
    loses a monitor in the field: counters dying into timeout-only
    mode, an action quarantined after repeated trace failures, state
    recovered from a corrupt file.  Developers reading the report can
    weigh each device's evidence by how degraded its monitors were.
    """

    kind: str
    detail: str = ""
    time_ms: float = 0.0


@dataclass
class ReportEntry:
    """Aggregated record of one detected soft hang bug."""

    operation: str
    file: str
    line: int
    is_self_developed: bool
    occurrences: int = 0
    devices: set = None
    total_hang_ms: float = 0.0
    max_occurrence_factor: float = 0.0
    #: User action whose executions manifested the bug ("" when the
    #: recorder predates action attribution or did not know it).
    action: str = ""

    def __post_init__(self):
        if self.devices is None:
            self.devices = set()

    @property
    def mean_hang_ms(self):
        """Average hang length across the recorded occurrences."""
        return self.total_hang_ms / self.occurrences if self.occurrences else 0.0

    def root_cause_signature(self, app_name):
        """Stable fleet-wide identity of this bug.

        The crowd backend dedupes hang bugs across devices by
        ``app | action | root-cause operation | occurrence bucket``:
        the same blocking API reached from two different user actions
        is two user-facing bugs, while per-device occurrence-factor
        jitter inside one decile is the same bug.  The string is
        deterministic (no set/dict iteration) and survives the report's
        JSON round-trip unchanged, which is what lets every device
        compute it independently and the server merge on it.
        """
        return "|".join((
            app_name, self.action, self.operation,
            f"occ{occurrence_bucket(self.max_occurrence_factor)}",
        ))


class HangBugReport:
    """Accumulates detections into the developer-facing report."""

    def __init__(self, app_name):
        self.app_name = app_name
        self._entries = {}
        #: Graceful-degradation events, in occurrence order.
        self.degradations = []
        #: True when this report was rebuilt fresh because the
        #: persisted copy was corrupt (see repro.core.persistence).
        self.recovered_from_corruption = False

    def note_degradation(self, kind, detail="", time_ms=0.0):
        """Record one monitoring-degradation event."""
        self.degradations.append(
            DegradationRecord(kind=kind, detail=detail, time_ms=time_ms)
        )

    def record(self, *, operation, file, line, is_self_developed,
               response_time_ms, occurrence_factor, device_id=0,
               action=""):
        """Fold one runtime detection into the report.

        Entries are keyed by (action, operation, file, line): the same
        operation blamed under two different user actions is kept as
        two entries, because the crowd backend dedupes bugs fleet-wide
        by action-qualified root-cause signature.
        """
        key = (action, operation, file, line)
        entry = self._entries.get(key)
        if entry is None:
            entry = ReportEntry(
                operation=operation, file=file, line=line,
                is_self_developed=is_self_developed, action=action,
            )
            self._entries[key] = entry
        entry.occurrences += 1
        entry.devices.add(device_id)
        entry.total_hang_ms += response_time_ms
        entry.max_occurrence_factor = max(
            entry.max_occurrence_factor, occurrence_factor
        )

    def entries(self):
        """Entries ordered by share of occurrences (descending), as in
        the paper's example report.  Ties break on the entry key
        (action, operation, file, line), so the order — and therefore
        the serialized report — never depends on recording order."""
        return sorted(
            self._entries.values(),
            key=lambda e: (-e.occurrences, e.action, e.operation,
                           e.file or "", e.line or 0),
        )

    def total_occurrences(self):
        """Sum of occurrences across all entries."""
        return sum(entry.occurrences for entry in self._entries.values())

    def occurrence_share(self, entry):
        """Fraction of all recorded bug occurrences due to *entry*."""
        total = self.total_occurrences()
        return entry.occurrences / total if total else 0.0

    def render(self):
        """Human-readable report table (Figure 2(b) style)."""
        entries = self.entries()
        op_width = max([len("operation")]
                       + [len(e.operation) for e in entries]) + 2
        loc_width = max([len("location")]
                        + [len(f"{e.file}:{e.line}") for e in entries]) + 2
        lines = [
            f"Hang Bug Report - {self.app_name}",
            f"{'operation':<{op_width}}{'location':<{loc_width}}"
            f"{'hang(ms)':>9}{'occurr.':>9}{'share':>8}",
        ]
        for entry in entries:
            share = self.occurrence_share(entry)
            location = f"{entry.file}:{entry.line}"
            lines.append(
                f"{entry.operation:<{op_width}}{location:<{loc_width}}"
                f"{entry.mean_hang_ms:>9.0f}{entry.occurrences:>9}"
                f"{share:>7.0%}"
            )
        if self.recovered_from_corruption:
            lines.append("(state recovered from a corrupt report file)")
        for record in self.degradations:
            detail = f" {record.detail}" if record.detail else ""
            lines.append(
                f"degraded: {record.kind}{detail} "
                f"(t={record.time_ms:.0f} ms)"
            )
        return "\n".join(lines)

    def __len__(self):
        return len(self._entries)
