"""Response-time monitor.

Measures per-input-event response times exactly the way the paper's
implementation does on Android: by installing a logging printer through
``Looper.setMessageLogging``, which fires once when a message is
dequeued (``>>>>> Dispatching to ...``) and once when it finishes
(``<<<<< Finished ...``).  The response time is the difference between
the two invocations.
"""

from dataclasses import dataclass
from typing import List

from repro.sim.looper import DISPATCH_PREFIX, FINISH_PREFIX


@dataclass(frozen=True)
class EventTiming:
    """Measured timing of one input event."""

    target: str
    dispatch_ms: float
    finish_ms: float

    @property
    def response_time_ms(self):
        """Dispatch-to-finish processing time."""
        return self.finish_ms - self.dispatch_ms


class ResponseTimeMonitor:
    """Parses Looper logging lines into per-event response times."""

    def __init__(self):
        self.timings: List[EventTiming] = []
        self._pending_target = None
        self._pending_dispatch = None

    def printer(self, line, time_ms):
        """The callback handed to ``Looper.set_message_logging``."""
        if line.startswith(DISPATCH_PREFIX):
            if self._pending_target is not None:
                raise ValueError(
                    "dispatch line while a message is still in flight"
                )
            self._pending_target = line[len(DISPATCH_PREFIX):]
            self._pending_dispatch = time_ms
        elif line.startswith(FINISH_PREFIX):
            target = line[len(FINISH_PREFIX):]
            if self._pending_target != target:
                raise ValueError(
                    f"finish line for {target!r} does not match in-flight "
                    f"message {self._pending_target!r}"
                )
            self.timings.append(
                EventTiming(
                    target=target,
                    dispatch_ms=self._pending_dispatch,
                    finish_ms=time_ms,
                )
            )
            self._pending_target = None
            self._pending_dispatch = None
        else:
            raise ValueError(f"unrecognized looper logging line: {line!r}")

    def attach(self, looper):
        """Install this monitor on a looper; returns self for chaining."""
        looper.set_message_logging(self.printer)
        return self

    def response_times(self):
        """Response times (ms) of all completed events, in order."""
        return [timing.response_time_ms for timing in self.timings]

    def max_response_time(self):
        """The action-level response time: max over input events."""
        if not self.timings:
            return 0.0
        return max(self.response_times())

    def hangs(self, threshold_ms=100.0):
        """Timings of events exceeding *threshold_ms*."""
        return [t for t in self.timings if t.response_time_ms > threshold_ms]

    def reset(self):
        """Clear timings between actions."""
        self.timings.clear()
        self._pending_target = None
        self._pending_dispatch = None
