"""Phase 1: the S-Checker soft-hang-bug symptom filter.

Invoked for Uncategorized actions.  If the action's response time
exceeds the perceivable delay, the filter compares each monitored
performance event's main−render difference with its threshold; the
action shows soft-hang-bug *symptoms* if **any** condition fires
(paper §3.3.1: "if at least one of the above three conditions is
verified").  Symptomatic actions become Suspicious for the Diagnoser;
the rest are UI work and become Normal.
"""

from dataclasses import dataclass
from typing import Dict

from repro.core.event_monitor import PerformanceEventMonitor
from repro.sim.engine import NETWORK_BYTES_EVENT
from repro.sim.timeline import MAIN_THREAD


@dataclass(frozen=True)
class SymptomCheck:
    """Result of one S-Checker evaluation."""

    #: Measured main−render differences per event.
    values: Dict[str, float]
    #: Which event conditions fired (value strictly above threshold).
    fired: Dict[str, bool]

    @property
    def symptomatic(self):
        """True if any condition fired."""
        return any(self.fired.values())

    def fired_events(self):
        """Names of the events whose condition fired."""
        return [event for event, hit in self.fired.items() if hit]


class SChecker:
    """Lightweight first-phase symptom checker."""

    def __init__(self, config, device, seed=0, faults=None):
        self.config = config
        self.monitor = PerformanceEventMonitor(
            device, config.filter_events(), seed=seed, faults=faults
        )

    def check(self, execution):
        """Evaluate the filter over a whole action execution.

        Raises :class:`~repro.faults.TransientCounterError` or
        :class:`~repro.faults.CounterUnavailableError` when an attached
        fault injector fails the counter read; the caller (Hang
        Doctor) owns the retry/degradation policy.
        """
        values = self.monitor.read_differences(execution)
        if self.config.network_threshold_bytes is not None:
            # Footnote-2 extension: main-thread network activity during
            # the action is a symptom on its own (network never belongs
            # on the main thread).
            values = dict(values)
            values[NETWORK_BYTES_EVENT] = execution.timeline.total(
                MAIN_THREAD, NETWORK_BYTES_EVENT,
                execution.start_ms, execution.end_ms,
            )
        return self.evaluate(values)

    def evaluate(self, values):
        """Apply thresholds to already-measured differences."""
        fired = {}
        for event, threshold in self.config.filter_thresholds.items():
            fired[event] = values.get(event, 0.0) > threshold
        if self.config.network_threshold_bytes is not None:
            fired[NETWORK_BYTES_EVENT] = (
                values.get(NETWORK_BYTES_EVENT, 0.0)
                > self.config.network_threshold_bytes
            )
        return SymptomCheck(values=dict(values), fired=fired)
