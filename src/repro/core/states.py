"""Per-action state machine (paper Figure 3).

Each user action starts *Uncategorized* (it has never caused a soft
hang).  S-Checker moves symptomatic actions to *Suspicious* and
UI-looking ones to *Normal*; Diagnoser moves Suspicious actions to
*Hang Bug* (confirmed) or *Normal* (false positive).  Normal actions
are periodically reset to Uncategorized so that occasional bugs get
re-examined; Hang Bug actions are always deeply analyzed.
"""

import enum
from dataclasses import dataclass
from typing import List

from repro.telemetry import current as telemetry


class ActionState(enum.Enum):
    """Lifecycle state of one user action."""

    UNCATEGORIZED = "uncategorized"
    NORMAL = "normal"
    SUSPICIOUS = "suspicious"
    HANG_BUG = "hang_bug"

    @property
    def short(self):
        """One-letter label used in the paper's Figure 7 (U/N/S/H)."""
        return {"uncategorized": "U", "normal": "N",
                "suspicious": "S", "hang_bug": "H"}[self.value]


#: Legal transitions (Figure 3's arrows).
_ALLOWED = {
    (ActionState.UNCATEGORIZED, ActionState.NORMAL),      # Path A
    (ActionState.UNCATEGORIZED, ActionState.SUSPICIOUS),  # Paths B/C start
    (ActionState.SUSPICIOUS, ActionState.NORMAL),         # Path B
    (ActionState.SUSPICIOUS, ActionState.HANG_BUG),       # Path C
    (ActionState.NORMAL, ActionState.UNCATEGORIZED),      # periodic reset
    (ActionState.HANG_BUG, ActionState.HANG_BUG),         # stays
}


@dataclass(frozen=True)
class Transition:
    """One recorded state change (for tests and the Figure 7 trace)."""

    uid: int
    source: ActionState
    target: ActionState
    component: str
    time_ms: float


@dataclass
class _ActionRecord:
    state: ActionState = ActionState.UNCATEGORIZED
    executions_since_normal: int = 0


class ActionStateMachine:
    """Tracks and transitions the state of every action UID."""

    def __init__(self, reset_period=20):
        if reset_period < 1:
            raise ValueError("reset_period must be >= 1")
        self.reset_period = reset_period
        self._records = {}
        self.transitions: List[Transition] = []

    def register(self, uid):
        """Register a UID (idempotent); actions start Uncategorized."""
        self._records.setdefault(uid, _ActionRecord())

    def state(self, uid):
        """Current state of *uid*."""
        return self._records[uid].state

    def uids(self):
        """All registered UIDs."""
        return sorted(self._records)

    def transition(self, uid, target, component, time_ms=0.0):
        """Move *uid* to *target*; raises on an illegal transition."""
        record = self._records[uid]
        source = record.state
        if source == target and source is not ActionState.HANG_BUG:
            return source
        if (source, target) not in _ALLOWED:
            raise ValueError(
                f"illegal transition {source.value} -> {target.value} "
                f"for action uid {uid}"
            )
        record.state = target
        if target is ActionState.NORMAL:
            record.executions_since_normal = 0
        self.transitions.append(
            Transition(uid=uid, source=source, target=target,
                       component=component, time_ms=time_ms)
        )
        tel = telemetry()
        if tel.enabled:
            tel.count("core.state.transitions")
            tel.event(
                "core.state.transition", time_ms, uid=uid,
                source=source.value, target=target.value,
                component=component,
            )
        return target

    def note_normal_execution(self, uid, time_ms=0.0):
        """Count an execution of a Normal action; reset to
        Uncategorized every ``reset_period`` executions (paper §3.2:
        "e.g., every 20 executions of the action")."""
        record = self._records[uid]
        if record.state is not ActionState.NORMAL:
            raise ValueError(f"action uid {uid} is not Normal")
        record.executions_since_normal += 1
        if record.executions_since_normal >= self.reset_period:
            self.transition(uid, ActionState.UNCATEGORIZED,
                            component="S-Checker", time_ms=time_ms)

    def counts(self):
        """Number of actions currently in each state."""
        totals = {state: 0 for state in ActionState}
        for record in self._records.values():
            totals[record.state] += 1
        return totals
