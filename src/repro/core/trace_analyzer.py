"""Phase 2b: stack-trace analysis (root-cause attribution).

The Trace Analyzer finds the operation responsible for a soft hang by
its **occurrence factor** — the fraction of the collected stack traces
that contain it:

* If one API's occurrence factor is high (>= the configured
  threshold), that API is the root cause (paper Figure 1: camera
  ``open`` appears in ~60 % of the traces; Figure 6: HtmlCleaner
  ``clean`` in 96 %).
* Otherwise the hang is spread across many light calls, and the most
  common *caller* function — the self-developed operation driving them
  — is blamed instead.

The root cause is then classified: frames in UI classes (View, Widget,
...) are legitimate UI work; anything else on the main thread could be
moved off it and is a soft hang bug.  Self-developed operations are
told apart from library/platform APIs by their class prefix (the app's
own package), because they are reported to the developer but never
added to the known-blocking-API database.
"""

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.apps.api import is_ui_class
from repro.base.frames import Frame, occurrence_factor


@dataclass(frozen=True)
class Diagnosis:
    """Outcome of analyzing one hang's stack traces."""

    #: Root-cause frame (None when every sampled stack was idle).
    root: Optional[Frame]
    #: Occurrence factor of the root across the collected traces.
    occurrence: float
    #: True when the root cause is UI work that must stay on the main
    #: thread (i.e. the hang is NOT a soft hang bug).
    is_ui: bool
    #: True when the root cause is a self-developed operation (heavy
    #: loop / caller function) rather than a platform or library API.
    is_self_developed: bool
    #: Number of traces analyzed.
    trace_count: int
    #: The caller frame most often found directly above the root — it
    #: pins the exact call *site* when the same API is invoked from
    #: several places in the app.
    caller: Optional[Frame] = None

    @property
    def is_hang_bug(self):
        """True when a non-UI root cause was attributed."""
        return self.root is not None and not self.is_ui


class TraceAnalyzer:
    """Occurrence-factor root-cause analysis."""

    def __init__(self, occurrence_threshold=0.5, app_package=None):
        if not 0.0 < occurrence_threshold <= 1.0:
            raise ValueError("occurrence_threshold must be in (0, 1]")
        self.occurrence_threshold = occurrence_threshold
        self.app_package = app_package

    def analyze(self, traces):
        """Attribute the root cause of one hang from its stack traces.

        Unreadable traces — ``None`` entries or traces whose unwind
        failed (``frames`` is ``None``) — are skipped rather than
        raised on: a flaky sampler yields partial evidence, and the
        occurrence factors are computed over the readable traces only.
        """
        readable = [
            trace for trace in traces
            if trace is not None and trace.frames is not None
        ]
        non_idle = [trace for trace in readable if trace.frames]
        if not readable or not non_idle:
            return Diagnosis(
                root=None, occurrence=0.0, is_ui=False,
                is_self_developed=False, trace_count=len(readable),
            )

        leaf_counts = Counter(trace.leaf for trace in non_idle)
        top_leaf, _ = leaf_counts.most_common(1)[0]
        top_occurrence = occurrence_factor(readable, top_leaf)

        if top_occurrence >= self.occurrence_threshold:
            root = top_leaf
        else:
            # Hang spread over many light calls: blame the most common
            # caller function (the frame above the leaf) instead.
            root = self._dominant_caller(non_idle, readable) or top_leaf
            top_occurrence = occurrence_factor(readable, root)

        return Diagnosis(
            root=root,
            occurrence=top_occurrence,
            is_ui=is_ui_class(root.clazz),
            is_self_developed=self._is_self_developed(root),
            trace_count=len(readable),
            caller=self._caller_of(root, non_idle),
        )

    # ------------------------------------------------------------------

    def _dominant_caller(self, non_idle, all_traces):
        """Most frequent caller frame with a high occurrence factor."""
        caller_counts = Counter()
        for trace in non_idle:
            if len(trace.frames) >= 2:
                caller_counts[trace.frames[-2]] += 1
        for caller, _ in caller_counts.most_common():
            if occurrence_factor(all_traces, caller) >= self.occurrence_threshold:
                return caller
        return None

    def _is_self_developed(self, frame):
        """True when *frame* belongs to the app's own code."""
        if self.app_package is None:
            return False
        return frame.clazz.startswith(self.app_package)

    @staticmethod
    def _caller_of(root, non_idle):
        """Most common frame directly above *root* across the traces."""
        callers = Counter()
        for trace in non_idle:
            frames = trace.frames
            for index in range(len(frames) - 1, 0, -1):
                if frames[index] == root:
                    callers[frames[index - 1]] += 1
                    break
        if not callers:
            return None
        return callers.most_common(1)[0][0]
