"""Phase 2a: stack-trace collection during soft hangs.

When the Diagnoser sees the 100 ms timeout violated again, it samples
the main thread's stack until the end of the soft hang.  Collection is
the expensive part of runtime diagnosis — every sample unwinds and
serializes the stack — so the collector also counts samples for the
overhead model.
"""

from repro.sim.stacktrace import StackTraceSampler
from repro.sim.timeline import MAIN_THREAD


class TraceCollector:
    """Collects main-thread stack traces over hang windows."""

    def __init__(self, period_ms=20.0):
        self.sampler = StackTraceSampler(period_ms=period_ms)
        #: Total stack-trace samples taken (overhead accounting).
        self.samples_collected = 0

    def collect(self, execution, event_execution):
        """Sample the main thread for the duration of one hang event.

        Collection starts when the timeout is violated — 100 ms into
        the event's processing — and runs "until the end of the soft
        hang" (the event's finish).
        """
        start = event_execution.dispatch_ms
        end = event_execution.finish_ms
        traces = self.sampler.sample(
            execution.timeline, MAIN_THREAD, start, end
        )
        self.samples_collected += len(traces)
        return traces

    def collect_window(self, execution, start_ms, end_ms):
        """Sample an arbitrary window (used by baseline detectors)."""
        traces = self.sampler.sample(
            execution.timeline, MAIN_THREAD, start_ms, end_ms
        )
        self.samples_collected += len(traces)
        return traces
