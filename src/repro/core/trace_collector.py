"""Phase 2a: stack-trace collection during soft hangs.

When the Diagnoser sees the 100 ms timeout violated again, it samples
the main thread's stack until the end of the soft hang.  Collection is
the expensive part of runtime diagnosis — every sample unwinds and
serializes the stack — so the collector also counts samples for the
overhead model.

With a :class:`~repro.faults.FaultInjector` attached, a collection
window can be refused (:class:`~repro.faults.TraceCollectionError`)
— the collector counts the failure and re-raises for the Diagnoser's
quarantine policy — and surviving traces may come back truncated or
unreadable for the analyzer to skip.
"""

from repro.faults import TraceCollectionError
from repro.sim.stacktrace import StackTraceSampler
from repro.sim.timeline import MAIN_THREAD


class TraceCollector:
    """Collects main-thread stack traces over hang windows."""

    def __init__(self, period_ms=20.0, faults=None):
        self.sampler = StackTraceSampler(period_ms=period_ms, faults=faults)
        #: Total stack-trace samples taken (overhead accounting).
        self.samples_collected = 0
        #: Collection windows refused by the substrate.
        self.collection_failures = 0

    def collect(self, execution, event_execution):
        """Sample the main thread for the duration of one hang event.

        Collection starts when the timeout is violated — 100 ms into
        the event's processing — and runs "until the end of the soft
        hang" (the event's finish).
        """
        return self.collect_window(
            execution, event_execution.dispatch_ms, event_execution.finish_ms
        )

    def collect_window(self, execution, start_ms, end_ms):
        """Sample an arbitrary window (used by baseline detectors)."""
        try:
            traces = self.sampler.sample(
                execution.timeline, MAIN_THREAD, start_ms, end_ms
            )
        except TraceCollectionError:
            self.collection_failures += 1
            raise
        self.samples_collected += len(traces)
        return traces
