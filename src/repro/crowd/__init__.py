"""The crowd backend: fleet-wide ingestion, dedup, and publishing.

The server-side subsystem that closes the paper's feedback loop across
devices instead of within one: per-device Hang Bug Reports upload as
idempotent batches, the :class:`CrowdAggregator` dedupes bugs by
root-cause signature and maintains cross-device statistics, and the
merged blocking-API database plus the :class:`CrowdKnowledge`
known-bug table are published back so every device can short-circuit
straight from S-Checker to a known-bug verdict for bugs the fleet has
already paid to diagnose.

See ``docs/crowd.md`` for the pipeline walk-through and
:mod:`repro.harness.exp_crowd` for the fleet-size sweep that measures
the diagnosis-cost reduction.
"""

from repro.crowd.aggregator import (
    BugObservation,
    CrowdAggregator,
    CrowdBugStat,
    CrowdKnowledge,
    KnownBug,
    ReportBatch,
)
from repro.crowd.store import (
    aggregator_from_json,
    aggregator_to_json,
    batch_from_dict,
    batch_to_dict,
    load_aggregator,
    save_aggregator,
)

__all__ = [
    "BugObservation",
    "CrowdAggregator",
    "CrowdBugStat",
    "CrowdKnowledge",
    "KnownBug",
    "ReportBatch",
    "aggregator_from_json",
    "aggregator_to_json",
    "batch_from_dict",
    "batch_to_dict",
    "load_aggregator",
    "save_aggregator",
]
