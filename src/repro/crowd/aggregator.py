"""Fleet-wide report ingestion and hang-bug deduplication.

The paper's feedback loop ends at the device: every Hang Doctor
instance grows its own Hang Bug Report and blocking-API database, so
every device pays the full two-phase diagnosis cost for bugs the fleet
has already diagnosed.  This module is the server half that closes the
loop: devices upload their (anonymized) reports in
:class:`ReportBatch`\\ es, the :class:`CrowdAggregator` dedupes bugs by
root-cause signature (app | action | root-cause operation |
occurrence-factor bucket, see
:meth:`~repro.core.report.ReportEntry.root_cause_signature`) and keeps
cross-device statistics, and two artifacts are published back to the
fleet:

* a merged global :class:`~repro.core.blocking_db.BlockingApiDatabase`
  that devices pull to pre-seed their local copy (and that offline
  scanners consume), and
* a :class:`CrowdKnowledge` known-bug table keyed by (app, action)
  that lets a device short-circuit straight from S-Checker's
  Suspicious verdict to a known-bug diagnosis — skipping the phase-2
  trace collection entirely (see
  :meth:`repro.core.hang_doctor.HangDoctor._crowd_short_circuit`).

Ingestion is built to survive a hostile upload path (see
:mod:`repro.faults`: dropped, duplicated, and late batches):

* **idempotent** — a batch is identified by its ``batch_id``; a
  re-delivered batch is recognized and ignored;
* **order-independent** — the aggregator's state is a grow-only map
  from batch id to immutable batch content, so
  :meth:`CrowdAggregator.merge` is associative, commutative, and
  idempotent, and ingestion parallelizes through
  :mod:`repro.parallel` with byte-identical results for any worker
  count;
* **deterministic** — every derived view (statistics, knowledge,
  published database, serialization) folds batches in sorted-id order,
  never in arrival order.
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.base.frames import Frame
from repro.base.rng import substream_seed
from repro.core.blocking_db import BlockingApiDatabase
from repro.core.report import occurrence_bucket
from repro.telemetry import current as telemetry


@dataclass(frozen=True)
class BugObservation:
    """One device's aggregated record of one bug, digested at upload.

    The per-entry slice of a Hang Bug Report that crosses the wire:
    the root-cause signature plus the anonymized statistics the server
    folds.  Frozen so a batch's content can never drift after its id
    is assigned (idempotent re-delivery relies on that).
    """

    signature: str
    action: str
    operation: str
    file: str
    line: int
    is_self_developed: bool
    occurrences: int
    total_hang_ms: float
    max_occurrence_factor: float


@dataclass(frozen=True)
class ReportBatch:
    """One device's report upload for one app at one sync point."""

    batch_id: str
    app_name: str
    device_id: int
    #: Upload timestamp supplied by the caller (the harness uses the
    #: sync-round index) — drives the first/last-seen statistics.
    time_ms: float
    observations: Tuple[BugObservation, ...]

    @classmethod
    def from_report(cls, report, device_id, time_ms, batch_id=None):
        """Digest a :class:`~repro.core.report.HangBugReport`.

        Observations are emitted in sorted-signature order, so the
        batch content — and therefore everything derived from it — is
        independent of the order detections were recorded on-device.
        """
        observations = []
        for entry in report.entries():
            observations.append(BugObservation(
                signature=entry.root_cause_signature(report.app_name),
                action=entry.action,
                operation=entry.operation,
                file=entry.file,
                line=entry.line,
                is_self_developed=entry.is_self_developed,
                occurrences=entry.occurrences,
                total_hang_ms=entry.total_hang_ms,
                max_occurrence_factor=entry.max_occurrence_factor,
            ))
        observations.sort(key=lambda o: (o.signature, o.file, o.line))
        if batch_id is None:
            batch_id = f"{report.app_name}/dev{device_id}/t{time_ms:g}"
        return cls(
            batch_id=batch_id,
            app_name=report.app_name,
            device_id=device_id,
            time_ms=time_ms,
            observations=tuple(observations),
        )


@dataclass(frozen=True)
class CrowdBugStat:
    """Cross-device statistics for one deduplicated hang bug."""

    signature: str
    app_name: str
    action: str
    operation: str
    file: str
    line: int
    is_self_developed: bool
    #: Distinct devices that reported this bug, sorted.
    devices: Tuple[int, ...]
    #: Total hang occurrences across the fleet.
    hang_count: int
    total_hang_ms: float
    #: Range of per-device occurrence factors folded into this bug.
    occurrence_low: float
    occurrence_high: float
    #: Earliest / latest upload timestamp that contained the bug.
    first_seen_ms: float
    last_seen_ms: float

    @property
    def device_count(self):
        """Number of distinct devices that hit the bug."""
        return len(self.devices)

    @property
    def mean_hang_ms(self):
        """Average hang length across all fleet occurrences."""
        return self.total_hang_ms / self.hang_count if self.hang_count else 0.0


@dataclass(frozen=True)
class KnownBug:
    """A fleet-confirmed bug verdict for one (app, action)."""

    app_name: str
    action: str
    operation: str
    file: str
    line: int
    is_self_developed: bool
    #: Representative occurrence factor (the fleet-wide maximum).
    occurrence: float
    device_count: int
    hang_count: int

    def root_frame(self):
        """The root-cause :class:`~repro.base.frames.Frame`.

        Rebuilt from the qualified operation name (``package.Class.
        method``) plus the recorded source location — the shape the
        Diagnoser would have produced had the device traced the hang
        itself.
        """
        clazz, _, method = self.operation.rpartition(".")
        return Frame(clazz=clazz, method=method, file=self.file,
                     line=self.line)


class CrowdKnowledge:
    """The published known-bug table devices sync.

    Maps (app, action) to the dominant :class:`KnownBug` so the
    on-device lookup in the hang path is O(1).  Immutable after
    construction; picklable, so it ships to worker processes and into
    :class:`~repro.core.hang_doctor.HangDoctor` payloads unchanged.
    """

    def __init__(self, bugs=()):
        self._by_action: Dict[Tuple[str, str], KnownBug] = {}
        for bug in bugs:
            self._by_action[(bug.app_name, bug.action)] = bug

    def lookup(self, app_name, action):
        """The known bug for (app, action), or None."""
        return self._by_action.get((app_name, action))

    def bugs(self):
        """All known bugs, sorted by (app, action)."""
        return [self._by_action[key] for key in sorted(self._by_action)]

    def __len__(self):
        return len(self._by_action)

    def __eq__(self, other):
        return (isinstance(other, CrowdKnowledge)
                and self._by_action == other._by_action)


class CrowdAggregator:
    """Order-independent, idempotent fleet-report aggregator.

    State is a grow-only map ``batch_id -> ReportBatch``.  Because a
    batch's content is immutable and fully determined by its id, the
    union of two aggregators is well-defined regardless of overlap, so
    shards of the fleet can ingest independently (any partition, any
    order, through :mod:`repro.parallel`) and :meth:`merge` recombines
    them into the exact state one serial ingester would hold.
    """

    def __init__(self):
        self._batches: Dict[str, ReportBatch] = {}
        #: True when this aggregator was rebuilt empty because its
        #: persisted copy was corrupt (see :mod:`repro.crowd.store`).
        self.recovered_from_corruption = False

    # -------------------------------------------------------- ingestion

    def ingest(self, batch):
        """Ingest one report batch; returns False for a re-delivery.

        Idempotent by ``batch_id``: the upload path may duplicate a
        batch (a lost ack makes the device re-send), and the second
        copy must not double-count anything.
        """
        if batch.batch_id in self._batches:
            telemetry().count("crowd.batches.deduped")
            return False
        self._batches[batch.batch_id] = batch
        telemetry().count("crowd.batches.ingested")
        return True

    def ingest_report(self, report, device_id, time_ms, batch_id=None):
        """Digest and ingest a report in one step (returns the batch)."""
        batch = ReportBatch.from_report(report, device_id, time_ms,
                                        batch_id=batch_id)
        self.ingest(batch)
        return batch

    @classmethod
    def merge(cls, parts):
        """Union several aggregators' states into a new one.

        Associative, commutative, and idempotent: parts may share
        batches (a duplicated upload ingested by two shards), arrive in
        any order, or appear twice — the union keys on batch id, and
        equal ids carry equal content.  ``merge([a]) == a`` and
        ``merge([])`` is an empty aggregator.
        """
        merged = cls()
        for part in parts:
            for batch_id, batch in part._batches.items():
                merged._batches.setdefault(batch_id, batch)
            merged.recovered_from_corruption |= part.recovered_from_corruption
        return merged

    # ------------------------------------------------------ derived views

    def batch_ids(self):
        """Ingested batch ids in canonical (sorted) order."""
        return sorted(self._batches)

    def batches(self):
        """Ingested batches in canonical (sorted-id) order."""
        return [self._batches[batch_id] for batch_id in self.batch_ids()]

    def __len__(self):
        return len(self._batches)

    def __eq__(self, other):
        return (isinstance(other, CrowdAggregator)
                and self._batches == other._batches)

    def bug_stats(self):
        """Deduplicated fleet-wide bug statistics.

        Bugs dedupe by root-cause signature; statistics fold over
        batches in sorted-id order, so the result is identical for any
        ingestion order or shard assignment.  Sorted by fleet impact
        (hang count descending, signature ascending).
        """
        folded: Dict[str, dict] = {}
        for batch in self.batches():
            for obs in batch.observations:
                stat = folded.get(obs.signature)
                if stat is None:
                    stat = folded[obs.signature] = {
                        "app_name": batch.app_name,
                        "action": obs.action,
                        "operation": obs.operation,
                        "file": obs.file,
                        "line": obs.line,
                        "is_self_developed": obs.is_self_developed,
                        "devices": set(),
                        "hang_count": 0,
                        "total_hang_ms": 0.0,
                        "occurrence_low": obs.max_occurrence_factor,
                        "occurrence_high": obs.max_occurrence_factor,
                        "first_seen_ms": batch.time_ms,
                        "last_seen_ms": batch.time_ms,
                    }
                stat["devices"].add(batch.device_id)
                stat["hang_count"] += obs.occurrences
                stat["total_hang_ms"] += obs.total_hang_ms
                stat["occurrence_low"] = min(
                    stat["occurrence_low"], obs.max_occurrence_factor
                )
                stat["occurrence_high"] = max(
                    stat["occurrence_high"], obs.max_occurrence_factor
                )
                stat["first_seen_ms"] = min(
                    stat["first_seen_ms"], batch.time_ms
                )
                stat["last_seen_ms"] = max(
                    stat["last_seen_ms"], batch.time_ms
                )
                # Representative source site: the lexicographically
                # smallest seen, so shard order can never leak in.
                if (obs.file, obs.line) < (stat["file"], stat["line"]):
                    stat["file"], stat["line"] = obs.file, obs.line
        stats = [
            CrowdBugStat(
                signature=signature,
                devices=tuple(sorted(raw.pop("devices"))),
                **raw,
            )
            for signature, raw in folded.items()
        ]
        stats.sort(key=lambda s: (-s.hang_count, s.signature))
        return stats

    def occurrence_distribution(self, app_name=None, action=None,
                                operation=None):
        """Fleet occurrence-factor histogram: decile bucket -> hangs.

        Optionally filtered by app/action/operation.  Two signatures
        differing only in their occurrence bucket are the same API
        manifesting differently across the fleet; this view shows that
        spread (the per-signature stats pin each manifestation).
        """
        histogram: Dict[int, int] = {}
        for stat in self.bug_stats():
            if app_name is not None and stat.app_name != app_name:
                continue
            if action is not None and stat.action != action:
                continue
            if operation is not None and stat.operation != operation:
                continue
            bucket = occurrence_bucket(stat.occurrence_high)
            histogram[bucket] = histogram.get(bucket, 0) + stat.hang_count
        return dict(sorted(histogram.items()))

    # -------------------------------------------------------- publishing

    def knowledge(self, min_devices=1, min_hangs=1):
        """Publish the known-bug table devices sync.

        One verdict per (app, action): the dominant bug (highest hang
        count, ties on signature) among those seen on at least
        ``min_devices`` devices with at least ``min_hangs`` hangs.
        Deterministic for any ingestion order.
        """
        best: Dict[Tuple[str, str], CrowdBugStat] = {}
        for stat in self.bug_stats():  # already impact-sorted
            if stat.device_count < min_devices:
                continue
            if stat.hang_count < min_hangs:
                continue
            best.setdefault((stat.app_name, stat.action), stat)
        return CrowdKnowledge(
            KnownBug(
                app_name=stat.app_name,
                action=stat.action,
                operation=stat.operation,
                file=stat.file,
                line=stat.line,
                is_self_developed=stat.is_self_developed,
                occurrence=stat.occurrence_high,
                device_count=stat.device_count,
                hang_count=stat.hang_count,
            )
            for stat in best.values()
        )

    def publish_database(self, base=None):
        """The merged global blocking-API database upgrade.

        Starts from *base* (default: the shipped initial database) and
        adds every fleet-diagnosed blocking API — root causes that are
        real APIs, never self-developed operations — in sorted
        signature order, so publishing is byte-stable.  The additions
        are recorded as runtime discoveries: they are exactly what the
        fleet learned at runtime.
        """
        db = BlockingApiDatabase(
            base.names() if base is not None
            else BlockingApiDatabase.initial().names()
        )
        operations = sorted({
            stat.operation for stat in self.bug_stats()
            if not stat.is_self_developed
        })
        for operation in operations:
            db.add(operation)
        return db

    # ----------------------------------------------------------- sharding

    @staticmethod
    def shard_of(batch_id, shards):
        """Deterministic shard index for a batch id.

        A keyed-hash partition (stable across processes and Python
        ``PYTHONHASHSEED``), so a fleet's upload stream splits across
        ingestion workers identically on every run.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return substream_seed(0, "crowd-shard", batch_id) % shards
