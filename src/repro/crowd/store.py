"""Crowd-backend persistence.

JSON round-trips for the :class:`~repro.crowd.aggregator.CrowdAggregator`
so the server side survives restarts, following the same robustness
contract as :mod:`repro.core.persistence`: ``aggregator_from_json``
raises one clear :class:`ValueError` naming the offending key on any
malformed payload, and :func:`load_aggregator` never raises at all —
a corrupt or truncated state file falls back to a fresh (empty)
aggregator with ``recovered_from_corruption`` set.  Losing the crowd
state is recoverable (devices keep uploading, the statistics re-grow);
a crashed ingestion service is not.

Serialization folds batches in sorted-id order, so two aggregators
with equal contents — however their batches arrived — always
serialize byte-identically.

Interplay with the serve-side write-ahead journal
(:mod:`repro.serve.wal`): the ingestion service persists a snapshot
through :func:`save_aggregator` *plus* a WAL of batches acknowledged
since that snapshot.  Both writes run through the ``torn_write_rate``
seam, and recovery composes their two guarantees — a torn snapshot
write leaves the previous complete snapshot untouched
(:func:`~repro.core.persistence.atomic_write_text` renames only after
fsync), and a torn WAL append is detected by its record checksum and
cut at the last intact record — so a restart always lands on the last
consistent state, never a half-applied batch.  Batches are applied
whole (:func:`batch_from_dict` validates before
:meth:`~repro.crowd.aggregator.CrowdAggregator.ingest` runs), which is
what "never half-applied" means at this layer.
"""

import json

from repro.core.persistence import SCHEMA_VERSION, _field, atomic_write_text
from repro.crowd.aggregator import BugObservation, CrowdAggregator, ReportBatch

#: Wire-format version of the crowd store.
CROWD_SCHEMA_VERSION = SCHEMA_VERSION


def batch_to_dict(batch):
    """The canonical wire form of one :class:`ReportBatch`.

    Shared by the aggregator snapshot, the serve WAL records, and the
    HTTP upload body (see :mod:`repro.serve`), so a batch round-trips
    identically through every path.
    """
    return {
        "batch_id": batch.batch_id,
        "app": batch.app_name,
        "device": batch.device_id,
        "time_ms": batch.time_ms,
        "observations": [
            {
                "signature": obs.signature,
                "action": obs.action,
                "operation": obs.operation,
                "file": obs.file,
                "line": obs.line,
                "self_developed": obs.is_self_developed,
                "occurrences": obs.occurrences,
                "total_hang_ms": obs.total_hang_ms,
                "max_occurrence_factor": obs.max_occurrence_factor,
            }
            for obs in batch.observations
        ],
    }


def batch_from_dict(raw):
    """Rebuild one :class:`ReportBatch` from its wire form.

    Raises ValueError (naming the offending key) on malformed input —
    the shared validation path for snapshots, WAL records, and HTTP
    upload bodies.
    """
    observations = []
    for obs in _field(raw, "observations", "crowd batch"):
        observations.append(BugObservation(
            signature=_field(obs, "signature", "crowd observation"),
            action=_field(obs, "action", "crowd observation"),
            operation=_field(obs, "operation", "crowd observation"),
            file=_field(obs, "file", "crowd observation"),
            line=_field(obs, "line", "crowd observation"),
            is_self_developed=_field(
                obs, "self_developed", "crowd observation"
            ),
            occurrences=_field(obs, "occurrences", "crowd observation"),
            total_hang_ms=_field(
                obs, "total_hang_ms", "crowd observation"
            ),
            max_occurrence_factor=_field(
                obs, "max_occurrence_factor", "crowd observation"
            ),
        ))
    return ReportBatch(
        batch_id=_field(raw, "batch_id", "crowd batch"),
        app_name=_field(raw, "app", "crowd batch"),
        device_id=_field(raw, "device", "crowd batch"),
        time_ms=_field(raw, "time_ms", "crowd batch"),
        observations=tuple(observations),
    )


def aggregator_to_json(aggregator):
    """Serialize a crowd aggregator (canonical batch order)."""
    return json.dumps({
        "schema": CROWD_SCHEMA_VERSION,
        "batches": [
            batch_to_dict(batch) for batch in aggregator.batches()
        ],
    }, indent=2)


def save_aggregator(path, aggregator, faults=None, label=None):
    """Crash-atomically persist the crowd aggregator to *path*.

    Uses :func:`repro.core.persistence.atomic_write_text` (temp file +
    fsync + rename), so a crashed ingestion service restarts from the
    last complete snapshot instead of the torn file
    :func:`load_aggregator` would have to recover from.  *label* keys
    the ``torn_write`` fault seam; pass one that varies per write
    (e.g. the batch count) when the same path is rewritten repeatedly,
    so the keyed verdict does not pin every rewrite identically.
    """
    atomic_write_text(path, aggregator_to_json(aggregator), faults=faults,
                      label=label)


def aggregator_from_json(text):
    """Rebuild a crowd aggregator from its JSON form.

    Raises ValueError (naming the offending key) on malformed
    payloads: wrong schema, missing fields, or non-object batches.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"malformed crowd payload: {error}") from error
    if not isinstance(payload, dict):
        raise ValueError("malformed crowd payload: expected an object")
    if payload.get("schema") != CROWD_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported crowd schema {payload.get('schema')!r}"
        )
    batches = _field(payload, "batches", "crowd payload")
    if not isinstance(batches, list):
        raise ValueError(
            "malformed crowd payload: key 'batches' must be a list"
        )
    aggregator = CrowdAggregator()
    for raw in batches:
        aggregator.ingest(batch_from_dict(raw))
    return aggregator


def load_aggregator(text, faults=None):
    """Load a persisted crowd aggregator; never raises.

    A :class:`~repro.faults.FaultInjector` may corrupt the payload
    first (a crash mid-write on the server).  A payload that fails to
    parse or validate yields a fresh empty aggregator with
    ``recovered_from_corruption`` set — the fleet re-grows the
    statistics, while a crashed ingestion service would stop the whole
    feedback loop.
    """
    if faults is not None:
        text = faults.corrupt_text(text)
    try:
        return aggregator_from_json(text)
    except ValueError:
        aggregator = CrowdAggregator()
        aggregator.recovered_from_corruption = True
        return aggregator
