"""Runtime and offline detectors.

Hang Doctor's baselines from the paper's §4.1: Timeout-based (TI),
Utilization-based with low/high thresholds (UTL/UTH), their
combinations with the timeout (UTL+TI / UTH+TI), and a
PerfChecker-style offline source scanner.  All runtime detectors share
the :class:`~repro.detectors.base.Detector` interface and are driven
over identical app sessions by :mod:`repro.detectors.runner`, with
their monitoring activity metered for the overhead model.
"""

from repro.detectors.base import (
    ActionOutcome,
    Detection,
    Detector,
    MonitoringCost,
)
from repro.detectors.offline import OfflineDetection, OfflineScanner
from repro.detectors.runner import DetectorRun, run_detector, run_detectors
from repro.detectors.timeout import TimeoutDetector
from repro.detectors.watchdog import WatchdogDetector
from repro.detectors.utilization import (
    UtilizationDetector,
    UtilizationThresholds,
    fit_thresholds,
)

__all__ = [
    "ActionOutcome",
    "Detection",
    "Detector",
    "DetectorRun",
    "MonitoringCost",
    "OfflineDetection",
    "OfflineScanner",
    "TimeoutDetector",
    "UtilizationDetector",
    "WatchdogDetector",
    "UtilizationThresholds",
    "fit_thresholds",
    "run_detector",
    "run_detectors",
]
