"""Shared runtime-detector interface.

A runtime detector observes one :class:`~repro.sim.engine.ActionExecution`
at a time (in session order) and returns an :class:`ActionOutcome`:
what it detected, whether it paid for stack-trace collection on this
execution, and the monitoring activity it performed (metered for the
overhead model; see :mod:`repro.analysis.overhead`).

Detectors never read ground-truth labels — they see only response
times, counter readings, utilization samples, and stack traces, the
same observables a real phone exposes.
"""

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.base.frames import Frame


@dataclass(frozen=True)
class Detection:
    """One reported potential soft hang bug."""

    detector: str
    app_name: str
    action_name: str
    time_ms: float
    response_time_ms: float
    #: Root-cause frame from trace analysis (None if the detector only
    #: flags the action without attribution).
    root: Optional[Frame] = None
    #: Caller frame above the root (pins the exact call site when the
    #: same API is invoked from several places).
    caller: Optional[Frame] = None
    #: Occurrence factor of the root across the collected traces.
    occurrence: float = 0.0
    #: Trace analysis classified the root as UI work.  Hang Doctor
    #: suppresses such detections; baselines report them (their false
    #: positives).
    root_is_ui: bool = False
    #: Root cause is a self-developed operation (heavy loop).
    is_self_developed: bool = False

    @property
    def root_name(self):
        """Qualified name of the blamed operation, if attributed."""
        return self.root.qualified_name if self.root is not None else None


@dataclass
class MonitoringCost:
    """Metered monitoring activity of a detector."""

    #: Input events whose dispatch/finish times were recorded.
    rt_events: int = 0
    #: Milliseconds of execution monitored with performance counters.
    counter_window_ms: float = 0.0
    #: End-of-action counter reads.
    counter_reads: int = 0
    #: Periodic /proc utilization samples taken.
    util_samples: int = 0
    #: Stack-trace samples collected.
    trace_samples: int = 0
    #: Trace-analysis runs.
    analyses: int = 0
    #: Counter-read attempts that failed (flaky/denied substrate);
    #: failed attempts are also included in ``counter_reads`` — the
    #: syscall was paid for whether or not it returned data.
    counter_read_failures: int = 0
    #: Trace-collection windows the substrate refused.
    trace_failures: int = 0
    #: Phase-2 collections avoided because the crowd-synced known-bug
    #: database already held a verdict for the hanging action.
    kb_short_circuits: int = 0
    #: Milliseconds the detector would have sat out between failed
    #: counter-read attempts (the seeded backoff schedule of
    #: :class:`repro.base.rng.SeededBackoff`); bookkept, not simulated
    #: as elapsed time — retries stay within one action's window.
    retry_backoff_ms: float = 0.0

    def add(self, other):
        """Accumulate another cost record into this one."""
        self.rt_events += other.rt_events
        self.counter_window_ms += other.counter_window_ms
        self.counter_reads += other.counter_reads
        self.util_samples += other.util_samples
        self.trace_samples += other.trace_samples
        self.analyses += other.analyses
        self.counter_read_failures += other.counter_read_failures
        self.trace_failures += other.trace_failures
        self.kb_short_circuits += other.kb_short_circuits
        self.retry_backoff_ms += other.retry_backoff_ms
        return self


@dataclass
class ActionOutcome:
    """A detector's result for one action execution."""

    detections: List[Detection] = field(default_factory=list)
    #: Windows (start_ms, end_ms) the detector collected stack traces
    #: over.  The metrics layer scores each episode against ground
    #: truth: an episode covering a bug hang is a true positive; every
    #: other episode is a false positive (the unit the paper's Figure
    #: 8(a,b) counts, normalized to TI).
    trace_episodes: List[Tuple[float, float]] = field(default_factory=list)
    cost: MonitoringCost = field(default_factory=MonitoringCost)

    @property
    def traced(self):
        """True if any stack traces were collected on this execution."""
        return bool(self.trace_episodes)


class Detector(abc.ABC):
    """Base class for runtime detectors."""

    #: Short display name (e.g. "TI", "UTL+TI", "HD").
    name = "detector"

    @abc.abstractmethod
    def process(self, execution, device_id=0):
        """Observe one action execution; returns an ActionOutcome."""

    def reset(self):
        """Forget per-session state (default: nothing to forget)."""
