"""Offline static scanner (PerfChecker-style).

Walks an app's main-thread call sites looking for operations whose API
is in the known-blocking database — the approach of PerfChecker
(Liu et al., ICSE'14) and related offline tools.  Its blind spots are
exactly the paper's motivation:

* APIs not (yet) in the database — new or never-marked blocking APIs;
* self-developed lengthy operations (heavy loops have no API name to
  look up);
* when ``analyze_libraries`` is off (source-only scanning), known
  blocking APIs hidden behind closed-source library facades.

With ``analyze_libraries=True`` (bytecode-level scanning, the paper's
Table 5 accounting) the scanner finds every *known* blocking API, even
nested ones, and still misses 68 % of the catalog's real bugs.
"""

from dataclasses import dataclass

from repro.core.blocking_db import BlockingApiDatabase


@dataclass(frozen=True)
class OfflineDetection:
    """One call site flagged by the offline scanner."""

    app_name: str
    action_name: str
    site_id: str
    api_name: str


class OfflineScanner:
    """Static known-blocking-API scanner."""

    def __init__(self, blocking_db=None, analyze_libraries=True):
        self.blocking_db = (
            blocking_db if blocking_db is not None
            else BlockingApiDatabase.initial()
        )
        self.analyze_libraries = analyze_libraries

    def _visible(self, api):
        """Can the scanner see the blocking call at all?

        A source-level scanner (``analyze_libraries=False``) sees only
        call sites in app source: a known API invoked *inside* a
        closed-source library (facade entry point, invisible source)
        never appears in what it scans.
        """
        if self.analyze_libraries:
            return True
        return api.source_visible and api.entry_name is None

    def scan_app(self, app):
        """All flagged main-thread call sites of one app."""
        detections = []
        seen = set()
        for action in app.actions:
            for op in action.operations():
                if op.on_worker:
                    continue
                api = op.api
                if not self.blocking_db.knows(api.qualified_name):
                    continue
                if not self._visible(api):
                    continue
                if op.site_id in seen:
                    continue
                seen.add(op.site_id)
                detections.append(
                    OfflineDetection(
                        app_name=app.name,
                        action_name=action.name,
                        site_id=op.site_id,
                        api_name=api.qualified_name,
                    )
                )
        return detections

    def detected_sites(self, app):
        """Set of flagged site ids (for missed-offline accounting)."""
        return {detection.site_id for detection in self.scan_app(app)}

    def missed_bugs(self, app):
        """Ground-truth bug operations this scanner does NOT flag."""
        flagged = self.detected_sites(app)
        return [
            op for op in app.hang_bug_operations() if op.site_id not in flagged
        ]
