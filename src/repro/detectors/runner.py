"""Detector runner.

Drives one or more runtime detectors over an identical sequence of
action executions (the paper: "we use the same app user traces to test
Hang Doctor and the baselines"), aggregating detections, traced-hang
outcomes, and monitoring costs.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.metrics import traced_confusion
from repro.analysis.overhead import OverheadModel, app_baseline
from repro.detectors.base import MonitoringCost


@dataclass
class DetectorRun:
    """Aggregated result of one detector over one session."""

    detector_name: str
    executions: List = field(default_factory=list)
    outcomes: List = field(default_factory=list)
    cost: MonitoringCost = field(default_factory=MonitoringCost)

    @classmethod
    def merge(cls, parts):
        """Recombine runs of one detector over disjoint session slices.

        Executions and outcomes concatenate in the order given (so
        callers sharding a session keep session order by submitting
        shards in order); costs sum.  All parts must belong to the
        same detector.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("need at least one DetectorRun to merge")
        names = {part.detector_name for part in parts}
        if len(names) > 1:
            raise ValueError(
                f"cannot merge runs of different detectors: {sorted(names)}"
            )
        merged = cls(detector_name=parts[0].detector_name)
        for part in parts:
            merged.executions.extend(part.executions)
            merged.outcomes.extend(part.outcomes)
            merged.cost.add(part.cost)
        return merged

    @property
    def detections(self):
        """All detections, in session order."""
        return [d for outcome in self.outcomes for d in outcome.detections]

    @property
    def traced_count(self):
        """Number of executions the detector collected traces for."""
        return sum(1 for outcome in self.outcomes if outcome.traced)

    def confusion(self):
        """Figure 8-style traced-hang confusion counts."""
        return traced_confusion(self.executions, self.outcomes)

    def overhead(self, model=None):
        """Overhead percentages for this run."""
        model = model or OverheadModel()
        cpu_ms, mem_kb = app_baseline(self.executions)
        return model.overhead(self.cost, cpu_ms, mem_kb)


def run_detector(detector, executions, device_id=0):
    """Feed *executions* (in order) to one detector."""
    run = DetectorRun(detector_name=detector.name)
    for execution in executions:
        outcome = detector.process(execution, device_id=device_id)
        run.executions.append(execution)
        run.outcomes.append(outcome)
        run.cost.add(outcome.cost)
    return run


def run_detectors(detectors, executions, device_id=0):
    """Run several detectors over the same executions.

    Returns ``{detector.name: DetectorRun}``.
    """
    results: Dict[str, DetectorRun] = {}
    for detector in detectors:
        results[detector.name] = run_detector(
            detector, executions, device_id=device_id
        )
    return results
