"""Timeout-based detector (TI).

The state of the art the paper compares against (Android's ANR tool,
Jovic et al.): flag a potential soft hang bug whenever an input
event's response time exceeds a timeout, and collect stack traces for
the duration of every flagged hang.  With the ANR default of 5 s it
misses nearly every soft hang; at the 100 ms perceivable delay it
catches them all but traces every slow UI action too (Table 2), which
is both its false-positive problem and its overhead problem.

TI performs trace analysis to attribute a root cause but — unlike
Hang Doctor — reports the result unfiltered: hangs rooted in UI work
become false-positive reports.
"""

from repro.core.trace_analyzer import TraceAnalyzer
from repro.core.trace_collector import TraceCollector
from repro.detectors.base import ActionOutcome, Detection, Detector


class TimeoutDetector(Detector):
    """Flag and trace every input event slower than ``timeout_ms``."""

    def __init__(self, app, timeout_ms=100.0, trace_period_ms=20.0,
                 occurrence_threshold=0.5):
        self.app = app
        self.timeout_ms = timeout_ms
        self.collector = TraceCollector(period_ms=trace_period_ms)
        self.analyzer = TraceAnalyzer(
            occurrence_threshold=occurrence_threshold,
            app_package=app.package,
        )
        self.name = f"TI-{int(timeout_ms)}ms" if timeout_ms != 100.0 else "TI"

    def process(self, execution, device_id=0):
        outcome = ActionOutcome()
        outcome.cost.rt_events = len(execution.events)
        for event_execution in execution.events:
            rt = event_execution.response_time_ms
            if rt <= self.timeout_ms:
                continue
            before = self.collector.samples_collected
            traces = self.collector.collect(execution, event_execution)
            outcome.cost.trace_samples += (
                self.collector.samples_collected - before
            )
            diagnosis = self.analyzer.analyze(traces)
            outcome.cost.analyses += 1
            outcome.trace_episodes.append(
                (event_execution.dispatch_ms, event_execution.finish_ms)
            )
            outcome.detections.append(
                Detection(
                    detector=self.name,
                    app_name=self.app.name,
                    action_name=execution.action.name,
                    time_ms=execution.end_ms,
                    response_time_ms=rt,
                    root=diagnosis.root,
                    caller=diagnosis.caller,
                    occurrence=diagnosis.occurrence,
                    root_is_ui=diagnosis.is_ui,
                    is_self_developed=diagnosis.is_self_developed,
                )
            )
        return outcome
