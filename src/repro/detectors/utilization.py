"""Utilization-based detectors (UT, UT+TI).

Baselines modelled on server/desktop hang detectors (Pelleg et al.,
Zhu et al.): periodically sample the main thread's resource
utilizations — CPU share and memory traffic, as read from
``/proc/<pid>/stat`` and ``io`` every 100 ms — and flag a potential
soft hang bug when any utilization crosses a static threshold.

Two threshold settings bracket the design space (paper §4.1):

* **UTL** (low): the minimum utilization ever observed during a true
  bug hang.  Catches every bug but fires on ordinary busy UI work
  constantly — 8-22x the false positives of TI.
* **UTH** (high): 90 % of the peak utilization observed during bug
  hangs.  Near-zero false positives but misses ~62 % of the bugs.

``UT+TI`` gates sampling on the 100 ms timeout: utilizations are read
only *during soft hangs*, and a detection needs both the timeout and a
threshold crossing.  Cheaper, but it still lacks the render-thread
contrast that lets Hang Doctor's event filter tell bug hangs from
heavy UI hangs.
"""

from dataclasses import dataclass
from typing import Dict

from repro.core.trace_analyzer import TraceAnalyzer
from repro.core.trace_collector import TraceCollector
from repro.detectors.base import ActionOutcome, Detection, Detector
from repro.sim.timeline import MAIN_THREAD

#: Sampling period of the periodic monitor (paper: every 100 ms).
SAMPLE_PERIOD_MS = 100.0

#: The monitored utilizations.
CPU_METRIC = "cpu_share"
MEM_METRIC = "fault_rate"


def window_metrics(execution, start_ms, end_ms):
    """Main-thread utilizations over one sampling window.

    ``cpu_share``: CPU ms per wall ms (0..1).  ``fault_rate``: page
    faults per 100 ms of wall time (memory traffic proxy).
    """
    span = max(1e-9, end_ms - start_ms)
    cpu = execution.timeline.cpu_ms(MAIN_THREAD, start_ms, end_ms) / span
    faults = execution.timeline.total(
        MAIN_THREAD, "page-faults", start_ms, end_ms
    )
    return {CPU_METRIC: cpu, MEM_METRIC: faults * (100.0 / span)}


@dataclass(frozen=True)
class UtilizationThresholds:
    """Static per-metric thresholds."""

    values: Dict[str, float]

    def crossed(self, metrics):
        """True if any metric strictly exceeds its threshold."""
        return any(
            metrics.get(metric, 0.0) > threshold
            for metric, threshold in self.values.items()
        )


def fit_thresholds(training_windows, level):
    """Fit UTL ("low") or UTH ("high") thresholds from bug-hang windows.

    *training_windows* is a list of per-window metric dicts sampled
    during known bug hangs.  Low = the minimum observed (everything a
    bug ever did crosses it); high = 90 % of the peak.
    """
    if level not in ("low", "high"):
        raise ValueError(f"level must be 'low' or 'high', got {level!r}")
    if not training_windows:
        raise ValueError("no training windows")
    values = {}
    for metric in (CPU_METRIC, MEM_METRIC):
        observed = [window[metric] for window in training_windows]
        if level == "low":
            values[metric] = min(observed)
        else:
            values[metric] = 0.9 * max(observed)
    return UtilizationThresholds(values=values)


class UtilizationDetector(Detector):
    """UT (periodic) or UT+TI (hang-gated) utilization detector."""

    def __init__(self, app, thresholds, combine_timeout=False,
                 timeout_ms=100.0, trace_period_ms=20.0, label="UT"):
        self.app = app
        self.thresholds = thresholds
        self.combine_timeout = combine_timeout
        self.timeout_ms = timeout_ms
        self.collector = TraceCollector(period_ms=trace_period_ms)
        self.analyzer = TraceAnalyzer(app_package=app.package)
        self.name = label
        self._last_end_ms = None

    def reset(self):
        self._last_end_ms = None

    def process(self, execution, device_id=0):
        outcome = ActionOutcome()
        outcome.cost.rt_events = len(execution.events)
        if self.combine_timeout:
            self._process_hang_gated(execution, outcome)
        else:
            self._process_periodic(execution, outcome)
        return outcome

    # ------------------------------------------------------------------

    def _sample_windows(self, execution, start_ms, end_ms, outcome):
        """Walk 100 ms windows; returns those crossing a threshold."""
        crossed = []
        cursor = start_ms
        while cursor < end_ms:
            window_end = min(cursor + SAMPLE_PERIOD_MS, end_ms)
            metrics = window_metrics(execution, cursor, window_end)
            outcome.cost.util_samples += 1
            if self.thresholds.crossed(metrics):
                crossed.append((cursor, window_end))
            cursor = window_end
        return crossed

    def _trace_and_report(self, execution, start_ms, end_ms, rt, outcome):
        before = self.collector.samples_collected
        traces = self.collector.collect_window(execution, start_ms, end_ms)
        outcome.cost.trace_samples += self.collector.samples_collected - before
        diagnosis = self.analyzer.analyze(traces)
        outcome.cost.analyses += 1
        outcome.trace_episodes.append((start_ms, end_ms))
        outcome.detections.append(
            Detection(
                detector=self.name,
                app_name=self.app.name,
                action_name=execution.action.name,
                time_ms=execution.end_ms,
                response_time_ms=rt,
                root=diagnosis.root,
                caller=diagnosis.caller,
                occurrence=diagnosis.occurrence,
                root_is_ui=diagnosis.is_ui,
                is_self_developed=diagnosis.is_self_developed,
            )
        )

    def _process_periodic(self, execution, outcome):
        """Pure UT: the monitor runs continuously — it also burned
        samples on the idle gap since the previous action (all below
        threshold, but they cost CPU) — and every in-action sampling
        window that crosses a threshold is one detection: traces are
        dumped for that window, again and again while the alarm holds.
        """
        monitored_end = max(execution.end_ms, execution.timeline.end_ms)
        if self._last_end_ms is not None:
            idle_ms = max(0.0, execution.start_ms - self._last_end_ms)
            outcome.cost.util_samples += int(idle_ms / SAMPLE_PERIOD_MS)
        self._last_end_ms = monitored_end
        crossed = self._sample_windows(
            execution, execution.start_ms, monitored_end, outcome
        )
        for span_start, span_end in crossed:
            self._trace_and_report(
                execution, span_start, span_end,
                rt=execution.response_time_ms, outcome=outcome,
            )

    def _process_hang_gated(self, execution, outcome):
        """UT+TI: sample only during soft hangs; need both conditions.

        Sampling starts once the timeout has fired — i.e. 100 ms into
        the event's processing — so short hangs cost a single sample.
        """
        for event_execution in execution.events:
            rt = event_execution.response_time_ms
            if rt <= self.timeout_ms:
                continue
            crossed = self._sample_windows(
                execution, event_execution.dispatch_ms + self.timeout_ms,
                event_execution.finish_ms, outcome,
            )
            if crossed:
                self._trace_and_report(
                    execution, event_execution.dispatch_ms,
                    event_execution.finish_ms, rt=rt, outcome=outcome,
                )
