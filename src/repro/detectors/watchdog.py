"""Watchdog-thread baseline (BlockCanary / ANR-WatchDog style).

The popular open-source tools the paper's family of work competes
with use a *watchdog thread*: post a no-op to the main looper every
``interval_ms``; if it hasn't executed after ``block_threshold_ms``,
declare the main thread blocked and dump one stack trace.

Two structural weaknesses versus Looper-instrumented detection (TI)
and Hang Doctor, both visible in our benchmarks:

* **Sampling misses**: a hang is seen only if a ping lands at least
  ``block_threshold_ms`` before it ends — short hangs slip between
  pings (detection probability ≈ (hang − threshold) / interval).
* **Single-dump attribution**: one stack trace at the moment the
  threshold fires, instead of sampling for the hang's duration; the
  blamed frame is whatever happened to be running right then, with no
  occurrence factor to back it.
"""

from repro.core.trace_analyzer import TraceAnalyzer
from repro.detectors.base import ActionOutcome, Detection, Detector
from repro.sim.stacktrace import StackTrace
from repro.sim.timeline import MAIN_THREAD


class WatchdogDetector(Detector):
    """Ping the main thread; dump one stack on a blocked ping."""

    def __init__(self, app, block_threshold_ms=1000.0, interval_ms=1000.0,
                 occurrence_threshold=0.5):
        if block_threshold_ms <= 0 or interval_ms <= 0:
            raise ValueError("threshold and interval must be positive")
        self.app = app
        self.block_threshold_ms = block_threshold_ms
        self.interval_ms = interval_ms
        self.analyzer = TraceAnalyzer(
            occurrence_threshold=occurrence_threshold,
            app_package=app.package,
        )
        self.name = f"WD-{int(block_threshold_ms)}ms"
        #: Absolute time of the next ping (persists across executions,
        #: like a real watchdog thread).
        self._next_ping_ms = 0.0

    def reset(self):
        """Restart the ping schedule."""
        self._next_ping_ms = 0.0

    def process(self, execution, device_id=0):
        outcome = ActionOutcome()
        if self._next_ping_ms < execution.start_ms:
            self._align_schedule(execution.start_ms)
        for event_execution in execution.events:
            self._process_event(execution, event_execution, outcome)
        return outcome

    # ------------------------------------------------------------------

    def _align_schedule(self, now_ms):
        periods = int(max(0.0, now_ms - self._next_ping_ms)
                      // self.interval_ms) + 1
        self._next_ping_ms += periods * self.interval_ms

    def _process_event(self, execution, event_execution, outcome):
        """Ping during one input event's busy window."""
        busy_start = event_execution.dispatch_ms
        busy_end = event_execution.finish_ms
        while self._next_ping_ms < busy_end:
            ping = self._next_ping_ms
            self._next_ping_ms += self.interval_ms
            if ping < busy_start:
                continue
            # The ping executes when the main thread frees up.
            delay = busy_end - ping
            if delay < self.block_threshold_ms:
                continue
            dump_ms = ping + self.block_threshold_ms
            frames = execution.timeline.stack_at(MAIN_THREAD, dump_ms)
            trace = StackTrace(time_ms=dump_ms, frames=frames)
            outcome.cost.trace_samples += 1
            outcome.cost.analyses += 1
            outcome.trace_episodes.append((dump_ms, dump_ms + 1.0))
            diagnosis = self.analyzer.analyze([trace])
            outcome.detections.append(
                Detection(
                    detector=self.name,
                    app_name=execution.app.name,
                    action_name=execution.action.name,
                    time_ms=dump_ms,
                    response_time_ms=event_execution.response_time_ms,
                    root=diagnosis.root,
                    caller=diagnosis.caller,
                    occurrence=diagnosis.occurrence,
                    root_is_ui=diagnosis.is_ui,
                    is_self_developed=diagnosis.is_self_developed,
                )
            )
        # Account for the idle pings themselves (cheap, but counted).
        outcome.cost.rt_events += len(execution.events)
