"""Fault-injection substrate.

Deterministic, seeded injection of the monitoring failures a real
deployment sees — denied or dying perf counters, refused or truncated
stack sampling, corrupted on-device state files — plus the exception
vocabulary the hardened runtime absorbs.  See
:mod:`repro.faults.plan` for the declarative fault model and
:mod:`repro.faults.injector` for the injection mechanics; the chaos
experiment (:mod:`repro.harness.exp_chaos`, ``python -m repro chaos``)
sweeps fault rates and reports how much detection quality survives.
"""

from repro.faults.injector import (
    CounterUnavailableError,
    FaultInjector,
    InjectedFault,
    TornWriteError,
    TraceCollectionError,
    TransientCounterError,
)
from repro.faults.plan import FaultPlan

__all__ = [
    "CounterUnavailableError",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "TornWriteError",
    "TraceCollectionError",
    "TransientCounterError",
]
