"""Deterministic, seeded fault injection.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete failures at the runtime's instrumentation seams.  Every
decision draws from its own keyed stream
(``stream(seed, "fault", *scope, channel, n)`` — see
:mod:`repro.base.rng`), where ``n`` counts the draws on that channel,
so:

* the same (seed, scope) injects the identical fault sequence on every
  run, for any ``--workers`` count (each app's injector is a pure
  function of its per-app seed, independent of shard assignment);
* fault draws never perturb the simulator's own streams — enabling
  injection does not change what the app under test does, only what
  the monitors observe;
* a channel whose rate is zero never draws at all, so an all-zero plan
  is a true no-op.

Injected failures are :class:`InjectedFault` subclasses, which the
hardened runtime (:class:`~repro.core.hang_doctor.HangDoctor` and
friends) must absorb: a fault may degrade monitoring, never crash it.
"""

from repro.base.rng import stream
from repro.base.frames import StackTrace
from repro.faults.plan import FaultPlan


class InjectedFault(RuntimeError):
    """Base class for failures raised by the fault layer."""


class TransientCounterError(InjectedFault):
    """A counter read failed transiently; a retry may succeed."""


class CounterUnavailableError(InjectedFault):
    """The performance-counter substrate died permanently."""


class TraceCollectionError(InjectedFault):
    """Stack sampling was refused for one collection window."""


class TornWriteError(InjectedFault):
    """A state write died mid-stream, leaving a truncated temp file."""


class FaultInjector:
    """Draws per-decision faults from seeded streams.

    Parameters
    ----------
    plan: the :class:`FaultPlan` (validated on construction).
    seed: root seed of the fault streams.
    scope: extra stream keys (e.g. the app name) that decorrelate
        injectors sharing one root seed.
    """

    def __init__(self, plan=None, seed=0, scope=()):
        self.plan = (plan if plan is not None else FaultPlan()).validate()
        self.seed = seed
        self.scope = tuple(scope)
        #: Per-channel draw counters (also a cheap injection audit).
        self.draws = {}
        #: Per-channel count of faults actually fired.
        self.fired = {}

    # ------------------------------------------------------------- draws

    def _draw(self, channel):
        """The next uniform draw on *channel* (advances its counter)."""
        count = self.draws.get(channel, 0) + 1
        self.draws[channel] = count
        rng = stream(self.seed, "fault", *self.scope, channel, count)
        return float(rng.random())

    def _trip(self, channel, rate):
        """True when *channel* fires at *rate*; never draws at rate 0."""
        if rate <= 0.0:
            return False
        if self._draw(channel) < rate:
            self.fired[channel] = self.fired.get(channel, 0) + 1
            return True
        return False

    def _trip_keyed(self, channel, rate, keys):
        """A *keyed* trip: the decision depends only on (seed, scope,
        channel, keys), never on how many draws happened before it.

        Sequential counters (:meth:`_trip`) are right for a single
        in-order decision stream; the executor channels instead key
        each decision by (shard, attempt) so the verdict is identical
        no matter which worker asks, in what order, or how often other
        channels fired.  Rate 0 never draws.
        """
        if rate <= 0.0:
            return False
        self.draws[channel] = self.draws.get(channel, 0) + 1
        rng = stream(self.seed, "fault", *self.scope, channel, *keys)
        if float(rng.random()) < rate:
            self.fired[channel] = self.fired.get(channel, 0) + 1
            return True
        return False

    # ----------------------------------------------------------- counters

    def counter_read_fault(self):
        """Raise if this counter read fails (called once per attempt)."""
        if self._trip("counter-unavailable",
                      self.plan.counter_unavailable_rate):
            raise CounterUnavailableError(
                "perf counters permanently unavailable (injected)"
            )
        if self._trip("counter-transient", self.plan.counter_transient_rate):
            raise TransientCounterError(
                "transient counter read error (injected)"
            )

    def corrupt_counter_value(self, event, value):
        """Possibly undercount one reading (silent multiplexing loss)."""
        if self._trip("counter-undercount", self.plan.counter_undercount_rate):
            return value * self.plan.counter_undercount_factor
        return value

    # ------------------------------------------------------------- traces

    def trace_collection_fault(self):
        """Raise if this stack-sampling window is refused."""
        if self._trip("trace-denied", self.plan.trace_denied_rate):
            raise TraceCollectionError("stack sampling denied (injected)")

    def mangle_traces(self, traces):
        """Truncate a fraction of collected traces.

        A tripped trace loses its deepest half of frames; a trace with
        nothing left becomes *unreadable* (``frames=None``), the shape
        a real unwinder failure produces.  Untripped traces pass
        through unchanged (same objects).
        """
        if self.plan.trace_truncate_rate <= 0.0:
            return traces
        out = []
        for trace in traces:
            if not self._trip("trace-truncate", self.plan.trace_truncate_rate):
                out.append(trace)
                continue
            kept = trace.frames[: len(trace.frames) // 2]
            out.append(StackTrace(
                time_ms=trace.time_ms, frames=kept if kept else None
            ))
        return out

    # ---------------------------------------------------- report uploads

    def drop_report_batch(self):
        """True when this report-batch upload is lost in transit."""
        return self._trip("report-drop", self.plan.report_drop_rate)

    def duplicate_report_batch(self):
        """True when this report batch is delivered a second time (a
        lost ack made the device re-send); the crowd backend must
        ingest idempotently."""
        return self._trip("report-duplicate", self.plan.report_duplicate_rate)

    def delay_report_batch(self):
        """True when this report batch arrives one sync round late."""
        return self._trip("report-delay", self.plan.report_delay_rate)

    # ----------------------------------------------------------- executor

    def worker_kill_fault(self, shard, attempt):
        """True when the worker running (*shard*, *attempt*) dies.

        Keyed by (shard, attempt): the same run re-decides identically
        for any worker count, and a retried shard draws a fresh
        verdict instead of dying forever.
        """
        return self._trip_keyed("worker-kill", self.plan.worker_kill_rate,
                                (shard, attempt))

    def shard_stall_fault(self, shard, attempt):
        """True when (*shard*, *attempt*) stalls for
        ``plan.shard_stall_seconds`` before completing."""
        return self._trip_keyed("shard-stall", self.plan.shard_stall_rate,
                                (shard, attempt))

    def device_churn_fault(self, kind, round_index, slot):
        """True when fleet-membership event (*kind*, *round*, *slot*)
        fires — ``kind`` is ``"leave"`` (an enrolled device departs
        before the round) or ``"join"`` (a fresh device enrolls into
        an open slot).

        Keyed by (kind, round, slot): the whole churn schedule is a
        pure function of (seed, scope, plan), so fleet membership is
        identical for any worker count, shard packing, or injected
        executor-fault schedule — which is what lets the streaming
        harness render churn in its deterministic output.
        """
        return self._trip_keyed("device-churn", self.plan.device_churn_rate,
                                (kind, round_index, slot))

    def torn_write_fault(self, label):
        """True when the state write named *label* dies mid-stream.

        Keyed by *label* so checkpoint writes decide identically
        regardless of shard completion order.
        """
        return self._trip_keyed("torn-write", self.plan.torn_write_rate,
                                (label,))

    # ------------------------------------------------------------ network

    def request_drop_fault(self, key, attempt):
        """True when request (*key*, *attempt*) vanishes in transit.

        Keyed by (request key, attempt) — like the executor channels —
        so the verdict is identical for any client concurrency or
        request interleaving, and a retried request draws a fresh
        verdict instead of being dropped forever.
        """
        return self._trip_keyed("request-drop", self.plan.request_drop_rate,
                                (key, attempt))

    def request_delay_fault(self, key, attempt):
        """In-flight delay for (*key*, *attempt*), in milliseconds.

        Returns ``plan.request_delay_ms`` when the channel trips, else
        0.0 (and at rate 0 never draws).
        """
        if self._trip_keyed("request-delay", self.plan.request_delay_rate,
                            (key, attempt)):
            return self.plan.request_delay_ms
        return 0.0

    def connection_reset_fault(self, key, attempt):
        """True when the connection for (*key*, *attempt*) is reset
        mid-exchange — after the request may already have been
        processed, so the client cannot distinguish "never arrived"
        from "ingested but the ack was lost" and must retry into an
        idempotent server."""
        return self._trip_keyed("connection-reset",
                                self.plan.connection_reset_rate,
                                (key, attempt))

    def corrupt_response(self, text, key, attempt):
        """Possibly truncate a response payload on the wire (keyed).

        A corrupted response is indistinguishable from a garbled proxy:
        the client must fail the attempt and retry.
        """
        if self._trip_keyed("response-corrupt",
                            self.plan.response_corrupt_rate,
                            (key, attempt)):
            return text[: len(text) // 2]
        return text

    # -------------------------------------------------------- persistence

    def corrupt_text(self, text):
        """Possibly truncate a persisted JSON payload (crash mid-write)."""
        draw_channel = "persistence-corrupt"
        rate = self.plan.persistence_corrupt_rate
        if rate <= 0.0:
            return text
        draw = self._draw(draw_channel)
        if draw >= rate:
            return text
        self.fired[draw_channel] = self.fired.get(draw_channel, 0) + 1
        # Reuse the draw to pick a deterministic cut point: the file
        # lost its tail when the device died mid-write.
        cut = int(draw / rate * max(0, len(text) - 1))
        return text[:cut]

    # ------------------------------------------------------------- status

    def fired_total(self):
        """Total faults fired across all channels."""
        return sum(self.fired.values())
