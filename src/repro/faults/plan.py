"""Fault plans: which monitoring failures to inject, and how often.

On real phones the monitoring substrate itself fails routinely:
``perf_event_open`` is denied or unavailable on many kernels, counter
reads hit transient ``EINTR``-style errors, stack sampling is refused
by SELinux policies or returns truncated frames, and on-device state
files get corrupted by crashes mid-write.  A :class:`FaultPlan` is the
declarative description of that hostile environment — one rate per
failure kind, all zero by default — consumed by
:class:`~repro.faults.injector.FaultInjector`.

A plan with every rate at zero injects nothing and draws no random
numbers, so a zero plan is byte-identical to running with no fault
layer at all.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultPlan:
    """Per-subsystem fault rates (all probabilities in [0, 1])."""

    #: Per counter read: the read fails transiently (a retry may
    #: succeed — the paper prototype's Simpleperf reads occasionally
    #: return ``EINTR``/``EAGAIN``).
    counter_transient_rate: float = 0.0
    #: Per counter read: the counter file descriptor dies permanently
    #: (``perf_event_open`` revoked); every later read on the same
    #: monitor fails too.
    counter_unavailable_rate: float = 0.0
    #: Per counter value: the reading is silently undercounted, as when
    #: perf multiplexes more events than registers and extrapolates
    #: from a partial observation window.
    counter_undercount_rate: float = 0.0
    #: Multiplier applied to undercounted readings (0 <= factor < 1).
    counter_undercount_factor: float = 0.5
    #: Per trace collection: stack sampling is refused outright
    #: (ptrace/SELinux denial) — no traces come back.
    trace_denied_rate: float = 0.0
    #: Per collected trace: the unwinder returns truncated frames (the
    #: deepest half missing; fully-truncated stacks are unreadable).
    trace_truncate_rate: float = 0.0
    #: Per persistence load: the state file is corrupted (truncated
    #: JSON, as after a crash mid-write).
    persistence_corrupt_rate: float = 0.0
    #: Per report-batch upload: the batch is lost in transit (the
    #: device was offline and its retry window expired).
    report_drop_rate: float = 0.0
    #: Per report-batch upload: the batch is delivered twice (an ack
    #: was lost and the device re-sent) — ingestion must be idempotent.
    report_duplicate_rate: float = 0.0
    #: Per report-batch upload: the batch arrives one sync round late
    #: (queued behind a dead radio), after the round's database was
    #: already published.
    report_delay_rate: float = 0.0
    #: Per (shard, pool attempt): the worker process executing the
    #: shard dies outright (OOM-killed, segfaulting native code) —
    #: the pool breaks and the supervisor must re-run the shard.
    worker_kill_rate: float = 0.0
    #: Per (shard, pool attempt): the shard stalls past any deadline
    #: (a livelocked worker); the supervisor must give up waiting and
    #: re-run the shard in-process.
    shard_stall_rate: float = 0.0
    #: How long a stalled shard sleeps before completing anyway, in
    #: seconds.  Pick a value above the supervisor's deadline to force
    #: the deadline path, below it to model mere slowness.
    shard_stall_seconds: float = 0.5
    #: Per checkpoint/state write: the process dies mid-write, leaving
    #: a truncated temp file.  A crash-atomic writer must leave the
    #: destination untouched.
    torn_write_rate: float = 0.0
    #: Per (device, stream round): the device leaves the fleet before
    #: the round (battery died, app uninstalled) — and, on a separate
    #: keyed draw, a new device enrolls in its place.  Keyed by
    #: (round, device) so the churn schedule is a pure function of the
    #: seed, independent of worker count and execution order.
    device_churn_rate: float = 0.0
    #: Per (request, attempt): the HTTP request vanishes in transit —
    #: the server never sees it, the client times out and must retry.
    request_drop_rate: float = 0.0
    #: Per (request, attempt): the request is held up in flight for
    #: ``request_delay_ms`` before the server sees it.
    request_delay_rate: float = 0.0
    #: How long a delayed request sits in flight, in milliseconds.
    request_delay_ms: float = 250.0
    #: Per (request, attempt): the connection is reset mid-exchange —
    #: the client cannot tell whether the server ingested the batch,
    #: so it must retry and the server must dedupe.
    connection_reset_rate: float = 0.0
    #: Per (request, attempt): the response payload is corrupted on the
    #: wire; the client must treat it as a failure and retry.
    response_corrupt_rate: float = 0.0

    _RATE_FIELDS = (
        "counter_transient_rate",
        "counter_unavailable_rate",
        "counter_undercount_rate",
        "trace_denied_rate",
        "trace_truncate_rate",
        "persistence_corrupt_rate",
        "report_drop_rate",
        "report_duplicate_rate",
        "report_delay_rate",
        "worker_kill_rate",
        "shard_stall_rate",
        "torn_write_rate",
        "device_churn_rate",
        "request_drop_rate",
        "request_delay_rate",
        "connection_reset_rate",
        "response_corrupt_rate",
    )

    #: Channels that stress the *harness* (the supervised executor and
    #: its checkpoint writes), not the monitored runtime.  Excluded
    #: from :meth:`uniform`; hand them to the supervisor explicitly
    #: (see :func:`repro.parallel.parallel_map`).
    EXECUTOR_CHANNELS = (
        "worker_kill_rate",
        "shard_stall_rate",
        "torn_write_rate",
    )

    #: Channels that stress *fleet membership* (devices joining and
    #: leaving a long-lived streaming deployment — see
    #: :mod:`repro.harness.exp_stream`).  Excluded from :meth:`uniform`
    #: like the executor channels: churn reshapes the workload itself,
    #: not the monitored runtime, and belongs in a plan handed to the
    #: streaming harness.
    FLEET_CHANNELS = (
        "device_churn_rate",
    )

    #: Channels that stress the *upload network* between the serve
    #: client and the ingestion service (see :mod:`repro.serve`).
    #: Excluded from :meth:`uniform` for the same reason as the
    #: executor channels: they fault the delivery substrate, not the
    #: monitored runtime, and belong in a plan handed to
    #: :class:`repro.serve.client.ServeClient`.
    NETWORK_CHANNELS = (
        "request_drop_rate",
        "request_delay_rate",
        "connection_reset_rate",
        "response_corrupt_rate",
    )

    @property
    def any_faults(self):
        """True when at least one fault kind can fire."""
        return any(getattr(self, name) > 0.0 for name in self._RATE_FIELDS)

    def validate(self):
        """Raise ValueError on rates outside [0, 1]."""
        for name in self._RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if not 0.0 <= self.counter_undercount_factor < 1.0:
            raise ValueError(
                "counter_undercount_factor must be in [0, 1), got "
                f"{self.counter_undercount_factor}"
            )
        if self.shard_stall_seconds <= 0.0:
            raise ValueError(
                "shard_stall_seconds must be > 0, got "
                f"{self.shard_stall_seconds}"
            )
        if self.request_delay_ms <= 0.0:
            raise ValueError(
                f"request_delay_ms must be > 0, got {self.request_delay_ms}"
            )
        return self

    @classmethod
    def uniform(cls, rate):
        """A plan stressing every *monitored-runtime* subsystem at
        roughly one *rate*.

        Transient counter errors, trace denials/truncations,
        persistence corruption, and report-batch drops/duplicates/
        delays fire at *rate*; permanent counter death at ``rate / 4``
        (rarer in the field — one revocation kills the monitor for
        good, so an equal rate would dominate the sweep).  Three
        channel families stay at zero, pinned by
        :attr:`EXECUTOR_CHANNELS`, :attr:`NETWORK_CHANNELS`, and
        :attr:`FLEET_CHANNELS`: the executor channels
        (``worker_kill``/``shard_stall``/``torn_write``) stress the
        *harness* and belong in a plan handed to the supervisor (see
        :func:`repro.parallel.parallel_map`), the network channels
        (``request_drop``/``request_delay``/``connection_reset``/
        ``response_corrupt``) stress the *upload path* and belong in a
        plan handed to the serve client (see
        :class:`repro.serve.client.ServeClient`), and the fleet
        channel (``device_churn``) reshapes streaming fleet
        membership and belongs in a plan handed to
        :func:`repro.harness.exp_stream.stream_sweep`.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        return cls(
            counter_transient_rate=rate,
            counter_unavailable_rate=rate / 4.0,
            counter_undercount_rate=rate,
            trace_denied_rate=rate,
            trace_truncate_rate=rate,
            persistence_corrupt_rate=rate,
            report_drop_rate=rate,
            report_duplicate_rate=rate,
            report_delay_rate=rate,
        ).validate()

    def describe(self):
        """Compact ``kind=rate`` summary of the nonzero rates."""
        parts = [
            f"{name.replace('_rate', '')}={getattr(self, name):g}"
            for name in self._RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        return ", ".join(parts) if parts else "no faults"
