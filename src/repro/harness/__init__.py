"""Experiment harness.

One module per experiment family, each exposing functions that
regenerate a paper table or figure as structured data plus an ASCII
rendering.  The benchmark suite under ``benchmarks/`` is a thin shell
around these functions; ``EXPERIMENTS.md`` records paper-vs-measured
for each.
"""

from repro.harness.tables import render_table
from repro.harness.training import (
    TRAINING_BUG_SITES,
    build_ui_probe_app,
    collect_training_samples,
    training_bug_cases,
    training_ui_cases,
    validation_bug_cases,
)

__all__ = [
    "TRAINING_BUG_SITES",
    "build_ui_probe_app",
    "collect_training_samples",
    "render_table",
    "training_bug_cases",
    "training_ui_cases",
    "validation_bug_cases",
]
