"""Ablation studies over Hang Doctor's design choices.

Each function isolates one decision the paper argues for and measures
what happens when it is changed:

* ``ablate_monitoring_mode`` — main−render difference vs main-only
  counters (Table 3's claim).
* ``ablate_event_count`` — 1 vs 2 vs 3 filter events (Table 6 shows a
  single counter misses bugs).
* ``ablate_two_phase`` — the two-phase algorithm vs a phase-2-only
  detector (≈ TI): detection quality and overhead.
* ``ablate_prefix_window`` — evaluating the filter on only the first
  part of an action (Figure 5's discussion: early windows of UI work
  look bug-like).
* ``ablate_reset_period`` — the Normal→Uncategorized reset period vs
  how quickly an occasional bug that once looked like UI is caught.
* ``ablate_occurrence_threshold`` — root-cause attribution quality vs
  the occurrence-factor bar.
"""

from dataclasses import dataclass

import numpy as np

from repro.analysis.correlation import correlate, ranked_events
from repro.analysis.metrics import detection_matches_bug
from repro.analysis.overhead import OverheadModel
from repro.analysis.thresholds import fit_filter
from repro.apps.catalog import get_app
from repro.apps.sessions import SessionGenerator
from repro.core.config import HangDoctorConfig
from repro.core.hang_doctor import HangDoctor
from repro.detectors.runner import run_detector
from repro.detectors.timeout import TimeoutDetector
from repro.harness.training import (
    collect_training_samples,
    training_bug_cases,
    training_ui_cases,
    validation_bug_cases,
)
from repro.sim.engine import ExecutionEngine
from repro.sim.pmu import PmuSampler
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD


def ablate_monitoring_mode(device, seed=0, runs_per_case=8):
    """Compare main−render difference monitoring against main-only.

    Fits a filter on a training batch and evaluates it on a fresh
    held-out batch for each mode.  Returns
    ``{mode: {"top10": avg_corr, "accuracy": ..., "prune": ...}}`` —
    the paper's Table 3 claim is the ~14 % top-10 correlation gap; the
    filter-quality gap follows from it.
    """
    cases = training_bug_cases() + training_ui_cases()
    results = {}
    for mode in ("diff", "main"):
        train_engine = ExecutionEngine(device, seed=seed)
        train = collect_training_samples(
            train_engine, cases, runs_per_case=runs_per_case, mode=mode
        )
        eval_engine = ExecutionEngine(device, seed=seed + 10_000)
        held_out = collect_training_samples(
            eval_engine, cases, runs_per_case=runs_per_case, mode=mode
        )
        ranking = ranked_events(correlate(train))
        fitted = fit_filter(train, [e for e, _ in ranking])
        results[mode] = {
            "top10": float(np.mean([c for _, c in ranking[:10]])),
            "accuracy": fitted.accuracy(held_out),
            "prune": fitted.false_positive_prune_rate(held_out),
        }
    return results


def ablate_event_count(device, seed=0, runs=20, recognize_rate=0.5):
    """Validation-bug recall using only the first k filter events.

    Returns {k: recognized_bugs} for k = 1..3 (paper Table 6: a single
    counter misses several of the 23 unknown bugs).
    """
    config = HangDoctorConfig()
    events = config.filter_events()
    sampler = PmuSampler(device, events, seed=seed)
    engine = ExecutionEngine(device, seed=seed)

    per_case_rates = []
    for case in validation_bug_cases():
        action = case.app.action(case.action_name)
        hangs = 0
        fired = {event: 0 for event in events}
        for _ in range(runs):
            execution = engine.run_action(case.app, action)
            if not execution.has_soft_hang:
                continue
            if case.site_id not in execution.hang_bug_sites():
                continue
            hangs += 1
            for event in events:
                value = sampler.read_difference(
                    execution.timeline, event, MAIN_THREAD, RENDER_THREAD,
                    execution.start_ms, execution.end_ms,
                )
                if value > config.filter_thresholds[event]:
                    fired[event] += 1
        rates = {
            event: (fired[event] / hangs if hangs else 0.0)
            for event in events
        }
        per_case_rates.append(rates)

    results = {}
    for k in range(1, len(events) + 1):
        subset = events[:k]
        recognized = sum(
            1 for rates in per_case_rates
            if any(rates[event] >= recognize_rate for event in subset)
        )
        results[k] = recognized
    return results


@dataclass
class TwoPhaseAblation:
    """Two-phase Hang Doctor vs phase-2-only detection."""

    hd_traced_fp: int
    hd_traced_tp: int
    hd_overhead: float
    phase2_traced_fp: int
    phase2_traced_tp: int
    phase2_overhead: float


def ablate_two_phase(device, seed=0, app_name="K9-mail", users=2,
                     actions_per_user=50):
    """Compare the full two-phase algorithm against phase 2 alone.

    Phase-2-only traces every soft hang (no symptom filter), which is
    the Timeout baseline — the paper omits it for that reason.
    """
    app = get_app(app_name)
    engine = ExecutionEngine(device, seed=seed)
    generator = SessionGenerator(seed=seed)
    executions = []
    for session in generator.fleet_sessions(app, users, actions_per_user):
        executions.extend(
            engine.run_session(app, session.action_names, gap_ms=1000.0)
        )
    model = OverheadModel()
    hd_run = run_detector(HangDoctor(app, device, seed=seed), executions)
    ti_run = run_detector(TimeoutDetector(app, timeout_ms=100.0), executions)
    hd_counts = hd_run.confusion()
    ti_counts = ti_run.confusion()
    return TwoPhaseAblation(
        hd_traced_fp=hd_counts.fp,
        hd_traced_tp=hd_counts.tp,
        hd_overhead=hd_run.overhead(model).average_percent,
        phase2_traced_fp=ti_counts.fp,
        phase2_traced_tp=ti_counts.tp,
        phase2_overhead=ti_run.overhead(model).average_percent,
    )


def ablate_prefix_window(device, seed=0, runs_per_case=8, prefix_share=0.3):
    """False-positive rate of the (scale-free) context-switch symptom
    when evaluated on an action prefix vs the whole action.

    The paper's Figure 5 discussion: at the beginning of an action the
    main thread computes positions and runs handler code before the
    render thread gets any work, so the main−render difference looks
    bug-like.  S-Checker therefore "conservatively counts the
    performance events until the end of the action execution".
    Returns {"full": fp_rate, "prefix": fp_rate} over training UI
    cases, using the positive-context-switch-difference condition
    (thresholds on accumulated counts are not prefix-comparable).
    """
    sampler = PmuSampler(device, ("context-switches",), seed=seed)
    engine = ExecutionEngine(device, seed=seed)

    fired = {"full": 0, "prefix": 0}
    total = 0
    for case in training_ui_cases():
        action = case.app.action(case.action_name)
        collected = 0
        for _ in range(runs_per_case * 4):
            if collected >= runs_per_case:
                break
            execution = engine.run_action(case.app, action)
            if not execution.has_soft_hang:
                continue
            collected += 1
            total += 1
            span = execution.end_ms - execution.start_ms
            for label, end in (
                ("full", execution.end_ms),
                ("prefix", execution.start_ms + prefix_share * span),
            ):
                value = sampler.read_difference(
                    execution.timeline, "context-switches", MAIN_THREAD,
                    RENDER_THREAD, execution.start_ms, end,
                )
                if value > 0:
                    fired[label] += 1
    return {label: count / total for label, count in fired.items()}


def _occasional_bug_app():
    """A probe app whose bug manifests rarely inside a UI-hang action.

    The common case is a UI hang (S-Checker parks the action in
    Normal); the bug manifests on ~15 % of executions — the scenario
    the paper's periodic Normal→Uncategorized reset exists for.
    """
    from repro.apps import android_apis as apis
    from repro.apps.app import AppSpec
    from repro.apps.catalog_helpers import action, op

    from dataclasses import replace as dc

    rare = apis.blocking_api(
        "parseFeed", "org.probe.FeedParser", mean_ms=600.0,
        manifest_prob=0.15, fast_ms=5.0, cpu_share=0.8, pages=1500,
    )
    # UI side hangs only occasionally (~25 %), and when it does the
    # filter correctly sends the action to Normal — where the rare bug
    # then hides until the periodic reset.
    refresh = action(
        "refresh", "onRefresh",
        op(rare, "refreshFeed", "FeedFragment.java"),
        op(dc(apis.INFLATE, mean_ms=60.0, sigma=0.4), "rebuildFeedUi",
           "FeedFragment.java"),
        op(dc(apis.SET_TEXT, mean_ms=30.0), "updateBadge",
           "FeedFragment.java"),
    )
    return AppSpec(
        name="OccasionalProbe", package="org.probe", category="Tools",
        downloads=0, commit="0000000", actions=(refresh,),
    )


def ablate_reset_period(device, seed=0, periods=(5, 20, 60), rounds=400,
                        trials=6):
    """Mean executions needed to catch an occasional bug hidden behind
    an occasionally-UI-hanging action, per reset period.

    Once S-Checker classifies a UI-caused hang as Normal, only the
    periodic reset gives the rare bug another chance; a longer period
    delays detection.  Undetected trials count as *rounds*.  Returns
    {period: mean_executions_to_detect}.
    """
    app = _occasional_bug_app()
    results = {}
    for period in periods:
        latencies = []
        for trial in range(trials):
            config = HangDoctorConfig(normal_reset_period=period)
            engine = ExecutionEngine(device, seed=seed * 1000 + trial)
            doctor = HangDoctor(app, device, config=config, seed=seed)
            detected_at = rounds
            for index in range(1, rounds + 1):
                execution = engine.run_action(app, app.action("refresh"))
                outcome = doctor.process(execution)
                if outcome.detections:
                    detected_at = index
                    break
            latencies.append(detected_at)
        results[period] = float(np.mean(latencies))
    return results


def ablate_occurrence_threshold(device, seed=0,
                                thresholds=(0.3, 0.5, 0.7, 0.9),
                                executions_per_action=10):
    """Root-cause attribution accuracy vs the occurrence-factor bar.

    Runs TI (which traces every hang) over bug-bearing apps and checks
    what fraction of bug-caused traced hangs get attributed to a
    ground-truth bug site under each occurrence threshold.
    """
    apps = [get_app(name) for name in ("K9-mail", "AndStatus", "QKSMS")]
    results = {}
    for threshold in thresholds:
        correct = 0
        total = 0
        for app in apps:
            engine = ExecutionEngine(device, seed=seed)
            names = [
                action.name for action in app.actions
                for _ in range(executions_per_action)
            ]
            executions = engine.run_session(app, names, gap_ms=500.0)
            detector = TimeoutDetector(
                app, timeout_ms=100.0, occurrence_threshold=threshold
            )
            run = run_detector(detector, executions)
            for execution, outcome in zip(run.executions, run.outcomes):
                if not execution.bug_caused_hang():
                    continue
                for detection in outcome.detections:
                    total += 1
                    if detection_matches_bug(app, detection):
                        correct += 1
        results[threshold] = correct / total if total else 0.0
    return results


def ablate_watchdog(device, seed=0, app_names=("K9-mail", "QKSMS"),
                    executions_per_action=12):
    """Compare watchdog-thread tools (BlockCanary / ANR-WatchDog
    style) against Looper-instrumented detection and Hang Doctor.

    Returns {detector: (tp, fp, fn, overhead_percent)} over identical
    sessions.  The watchdog's sampling mechanism misses short hangs
    and its single stack dump cannot build an occurrence factor.
    """
    from repro.analysis.overhead import OverheadModel
    from repro.detectors.runner import run_detectors
    from repro.detectors.watchdog import WatchdogDetector

    model = OverheadModel()
    totals = {}
    for app_name in app_names:
        app = get_app(app_name)
        engine = ExecutionEngine(device, seed=seed)
        names = [
            action.name for action in app.actions
            for _ in range(executions_per_action)
        ]
        executions = engine.run_session(app, names, gap_ms=900.0)
        detectors = [
            TimeoutDetector(app, timeout_ms=100.0),
            WatchdogDetector(app, block_threshold_ms=100.0,
                             interval_ms=500.0),
            HangDoctor(app, device, seed=seed),
        ]
        for name, run in run_detectors(detectors, executions).items():
            counts = run.confusion()
            overhead = run.overhead(model).average_percent
            tp, fp, fn, over = totals.get(name, (0, 0, 0, 0.0))
            totals[name] = (tp + counts.tp, fp + counts.fp,
                            fn + counts.fn, over + overhead)
    return {
        name: (tp, fp, fn, over / len(app_names))
        for name, (tp, fp, fn, over) in totals.items()
    }


def ablate_jank_filter(device, seed=0, runs_per_case=8,
                       jank_threshold=0.75):
    """An alternative phase-1 filter: classify a hang as a bug when
    the dropped-frame (jank) ratio during the hang exceeds a bar.

    Frames freeze during bug hangs and keep flowing during UI hangs,
    so jank is a plausible single signal; this ablation measures how
    it stacks up against the shipped three-counter filter on the
    training cases.  Returns {"jank": (recall, prune),
    "counters": (recall, prune)}.
    """
    from repro.core.schecker import SChecker
    from repro.sim.jank import hang_frame_stats

    config = HangDoctorConfig()
    schecker = SChecker(config, device, seed=seed)
    engine = ExecutionEngine(device, seed=seed)

    outcomes = {"jank": {"tp": 0, "fn": 0, "fp": 0, "tn": 0},
                "counters": {"tp": 0, "fn": 0, "fp": 0, "tn": 0}}
    for case in training_bug_cases() + training_ui_cases():
        action = case.app.action(case.action_name)
        collected = 0
        for _ in range(runs_per_case * 4):
            if collected >= runs_per_case:
                break
            execution = engine.run_action(case.app, action)
            if not execution.has_soft_hang:
                continue
            if case.is_hang_bug and not execution.bug_caused_hang():
                continue
            collected += 1
            verdicts = {
                "jank": hang_frame_stats(execution, device).jank_ratio
                        > jank_threshold,
                "counters": schecker.check(execution).symptomatic,
            }
            for name, fired in verdicts.items():
                bucket = outcomes[name]
                if case.is_hang_bug and fired:
                    bucket["tp"] += 1
                elif case.is_hang_bug:
                    bucket["fn"] += 1
                elif fired:
                    bucket["fp"] += 1
                else:
                    bucket["tn"] += 1

    def digest(bucket):
        recall = bucket["tp"] / max(1, bucket["tp"] + bucket["fn"])
        prune = bucket["tn"] / max(1, bucket["tn"] + bucket["fp"])
        return recall, prune

    return {name: digest(bucket) for name, bucket in outcomes.items()}
