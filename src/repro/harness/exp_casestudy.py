"""Case-study experiments: Figures 6 and 7 (K9-mail walk-throughs).

Figure 6: how Hang Doctor finds the root cause of K9-mail's Open-email
hang — S-Checker flags the first manifested hang (positive
context-switch difference), and on the next manifestation the
Diagnoser's stack traces pin ``HtmlCleaner.clean`` with a ~96 %
occurrence factor.

Figure 7: state transitioning on UI actions — Folders is filtered to
Normal by S-Checker on its first hang; Inbox (bug-like symptoms)
becomes Suspicious, costs one stack-trace collection, is cleared to
Normal by the Diagnoser, and is never traced again.
"""

from dataclasses import dataclass
from typing import List

from repro.core.hang_doctor import HangDoctor
from repro.core.states import ActionState
from repro.apps.catalog import get_app
from repro.sim.engine import ExecutionEngine


@dataclass
class Figure6Result:
    """The detection story of one soft hang bug."""

    action_name: str
    #: Execution index (1-based) where S-Checker flagged the action.
    schecker_execution: int
    schecker_response_ms: float
    schecker_values: dict
    #: Execution index where the Diagnoser confirmed the bug.
    diagnoser_execution: int
    diagnoser_response_ms: float
    root_operation: str
    root_file: str
    root_line: int
    occurrence_factor: float
    traces_collected: int
    sample_trace: str

    def render(self):
        """Narrative rendering of the walk-through."""
        values = ", ".join(
            f"{event}={value:.3g}" for event, value in
            self.schecker_values.items()
        )
        return (
            f"Figure 6 - K9-mail '{self.action_name}' runtime diagnosis\n"
            f"execution #{self.schecker_execution}: soft hang of "
            f"{self.schecker_response_ms:.0f} ms; S-Checker reads {values} "
            f"-> Suspicious\n"
            f"execution #{self.diagnoser_execution}: soft hang of "
            f"{self.diagnoser_response_ms:.0f} ms; Diagnoser collects "
            f"{self.traces_collected} stack traces\n"
            f"root cause: {self.root_operation} "
            f"({self.root_file}:{self.root_line}), occurrence factor "
            f"{self.occurrence_factor:.0%}\n"
            f"sample stack trace: {self.sample_trace}"
        )


def figure6(device, seed=0, max_executions=40):
    """Reproduce Figure 6's detection walk-through on K9-mail."""
    app = get_app("K9-mail")
    action = app.action("open_email")
    engine = ExecutionEngine(device, seed=seed)
    doctor = HangDoctor(app, device, seed=seed)

    schecker_execution = None
    schecker_rt = 0.0
    schecker_values = {}
    for index in range(1, max_executions + 1):
        execution = engine.run_action(app, action)
        state_before = doctor.state_of("open_email")
        outcome = doctor.process(execution)
        state_after = doctor.state_of("open_email")

        if (state_before is ActionState.UNCATEGORIZED
                and state_after is ActionState.SUSPICIOUS):
            schecker_execution = index
            schecker_rt = execution.response_time_ms
            schecker_values = doctor.schecker.check(execution).values

        if outcome.detections:
            detection = outcome.detections[0]
            traces = doctor.diagnoser.collector.sampler.sample(
                execution.timeline, "main",
                execution.events[0].dispatch_ms,
                execution.events[0].finish_ms,
            )
            non_idle = [t for t in traces if t.frames]
            sample = str(non_idle[0]) if non_idle else "<idle>"
            return Figure6Result(
                action_name=action.name,
                schecker_execution=schecker_execution or index,
                schecker_response_ms=schecker_rt,
                schecker_values=schecker_values,
                diagnoser_execution=index,
                diagnoser_response_ms=detection.response_time_ms,
                root_operation=detection.root.qualified_name,
                root_file=detection.root.file,
                root_line=detection.root.line,
                occurrence_factor=detection.occurrence,
                traces_collected=outcome.cost.trace_samples,
                sample_trace=sample,
            )
    raise RuntimeError(
        "Hang Doctor did not confirm the K9-mail bug within "
        f"{max_executions} executions"
    )


@dataclass
class Figure7Step:
    """One executed action in the Figure 7 trace."""

    index: int
    action_name: str
    response_ms: float
    component: str
    traced: bool
    state_after: str


@dataclass
class Figure7Result:
    """State-transition trace over K9-mail's Folders/Inbox actions."""

    steps: List[Figure7Step]

    def traces_for(self, action_name):
        """How many executions of one action were stack-traced."""
        return sum(
            1 for step in self.steps
            if step.action_name == action_name and step.traced
        )

    def final_state(self, action_name):
        """Last observed state letter (U/N/S/H) of one action."""
        states = [
            step.state_after for step in self.steps
            if step.action_name == action_name
        ]
        return states[-1] if states else None

    def render(self):
        """ASCII rendering of the result."""
        lines = ["Figure 7 - K9-mail UI actions: state transitioning"]
        for step in self.steps:
            traced = " traced" if step.traced else ""
            lines.append(
                f"  #{step.index:02d} {step.action_name:8s} "
                f"rt={step.response_ms:6.0f}ms  {step.component:9s} "
                f"-> {step.state_after}{traced}"
            )
        lines.append(
            f"stack-trace collections: folders={self.traces_for('folders')}, "
            f"inbox={self.traces_for('inbox')}"
        )
        return "\n".join(lines)


def figure7(device, seed=0, rounds=5, config=None):
    """Reproduce Figure 7's Folders/Inbox transition trace.

    Runs alternating Folders and Inbox executions until Inbox has been
    through its Suspicious round-trip; Folders should be filtered to
    Normal by S-Checker without any stack-trace collection.
    """
    app = get_app("K9-mail")
    engine = ExecutionEngine(device, seed=seed)
    doctor = HangDoctor(app, device, config=config, seed=seed)

    steps = []
    index = 0
    for _ in range(rounds):
        for name in ("folders", "inbox"):
            index += 1
            execution = engine.run_action(app, app.action(name))
            before = doctor.state_of(name)
            outcome = doctor.process(execution)
            after = doctor.state_of(name)
            if before is ActionState.UNCATEGORIZED and before != after:
                component = "S-Checker"
            elif before in (ActionState.SUSPICIOUS, ActionState.HANG_BUG) \
                    and outcome.traced:
                component = "Diagnoser"
            else:
                component = "-"
            steps.append(
                Figure7Step(
                    index=index,
                    action_name=name,
                    response_ms=execution.response_time_ms,
                    component=component,
                    traced=outcome.traced,
                    state_after=after.short,
                )
            )
    return Figure7Result(steps=steps)
