"""Chaos experiment: detection quality under monitoring faults.

The paper deploys Hang Doctor on real phones, where the monitoring
substrate itself fails routinely — ``perf_event_open`` denied, counter
reads erroring, stack sampling refused, state files corrupted.  This
experiment answers the deployment question that implies: *how much
detection quality survives when the monitors are flaky?*

For each fault rate the sweep deploys Hang Doctor on a set of catalog
apps exactly the way the Table 5 fleet study does — per-app seeds via
:func:`~repro.harness.exp_fleet.fleet_app_seed`, the same session
generator, one :func:`~repro.detectors.runner.run_detector` pass per
user — but with a :class:`~repro.faults.FaultPlan` (scaled by the
rate) attached, then reports the precision/recall/overhead degradation
curve against the fault-free (rate 0) row.  Because every app's run is
a pure function of (device, root seed, rate, app), the sweep shards
per (rate, app) across worker processes through
:mod:`repro.parallel`, and any ``--workers`` count yields
byte-identical output.

At rate 0 the fault layer draws no random numbers and injects nothing,
so the rate-0 cells reproduce the fault-free per-app Table 5
``bugs_detected`` numbers bit-for-bit (same users/actions), and the
confusion/overhead columns equal an unfaulted
:class:`~repro.core.hang_doctor.HangDoctor` run over the same
executions — the Figure 8 measurement machinery applied to the fleet
sessions.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.metrics import ConfusionCounts, detected_bug_sites
from repro.apps.catalog import get_app
from repro.apps.sessions import SessionGenerator
from repro.checkpoint import ShardJournal, checkpointed_map, run_key
from repro.core.hang_doctor import HangDoctor
from repro.core.persistence import load_report, report_to_json
from repro.detectors.runner import DetectorRun, run_detector
from repro.faults import FaultPlan
from repro.harness.exp_comparison import FIGURE8_APPS
from repro.harness.exp_fleet import fleet_app_seed
from repro.harness.tables import render_table
from repro.parallel import ExecutionReport
from repro.sim.engine import ExecutionEngine
from repro.telemetry import current as telemetry

#: Default fault-rate grid of the sweep.
DEFAULT_RATES = (0.0, 0.02, 0.05, 0.1, 0.2, 0.4)

#: Default app set: the representative apps of the paper's Figure 8.
CHAOS_APPS = FIGURE8_APPS


@dataclass(frozen=True)
class ChaosCell:
    """One (fault rate, app) deployment."""

    rate: float
    app_name: str
    #: Distinct ground-truth bug sites detected (Table 5's BD column).
    bugs_detected: int
    #: Traced-hang confusion counts (Figure 8's currency).
    tp: int
    fp: int
    fn: int
    overhead_percent: float
    #: Failed counter-read attempts across the deployment.
    counter_read_failures: int
    #: Refused trace-collection windows.
    trace_failures: int
    #: The doctor ended the deployment in timeout-only mode.
    degraded: bool
    #: Actions quarantined by the Diagnoser.
    quarantined: int
    #: The end-of-deployment report reload hit corruption and recovered.
    state_recovered: bool
    #: Total faults the injector fired (audit of the fault layer).
    faults_fired: int


@dataclass
class ChaosResult:
    """The full fault-rate sweep."""

    cells: List[ChaosCell]
    rates: Tuple[float, ...]
    apps: Tuple[str, ...]
    #: How the sweep actually executed (retries, fallbacks, checkpoint
    #: hits); advisory only — never part of the rendered output, so
    #: two runs with different reports still render byte-identically.
    execution: Optional[ExecutionReport] = field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def merge(cls, parts):
        """Recombine shard results in submission order."""
        parts = list(parts)
        if not parts:
            raise ValueError("need at least one ChaosResult to merge")
        cells = []
        for part in parts:
            cells.extend(part.cells)
        rates = []
        for part in parts:
            for rate in part.rates:
                if rate not in rates:
                    rates.append(rate)
        return cls(cells=cells, rates=tuple(rates), apps=parts[0].apps)

    def row(self, rate):
        """Aggregate one rate's cells across apps."""
        cells = [cell for cell in self.cells if cell.rate == rate]
        if not cells:
            raise KeyError(f"no cells for fault rate {rate}")
        counts = ConfusionCounts()
        for cell in cells:
            counts.add(ConfusionCounts(tp=cell.tp, fp=cell.fp, fn=cell.fn))
        return {
            "rate": rate,
            "bugs_detected": sum(cell.bugs_detected for cell in cells),
            "precision": counts.precision,
            "recall": counts.recall,
            "overhead_percent": (
                sum(cell.overhead_percent for cell in cells) / len(cells)
            ),
            "counter_read_failures": sum(
                cell.counter_read_failures for cell in cells
            ),
            "trace_failures": sum(cell.trace_failures for cell in cells),
            "degraded": sum(1 for cell in cells if cell.degraded),
            "quarantined": sum(cell.quarantined for cell in cells),
            "recovered": sum(1 for cell in cells if cell.state_recovered),
            "faults_fired": sum(cell.faults_fired for cell in cells),
        }

    def baseline(self):
        """The fault-free (lowest-rate) row the curve is read against."""
        return self.row(min(self.rates))

    def render(self):
        """ASCII rendering: the degradation curve vs the rate-0 row."""
        headers = ("rate", "bugs", "precision", "recall", "overhead%",
                   "ctr-fail", "trc-fail", "degraded", "quarant.",
                   "recovered")
        rows = []
        for rate in self.rates:
            row = self.row(rate)
            rows.append((
                f"{rate:g}", row["bugs_detected"],
                round(row["precision"], 3), round(row["recall"], 3),
                round(row["overhead_percent"], 3),
                row["counter_read_failures"], row["trace_failures"],
                row["degraded"], row["quarantined"], row["recovered"],
            ))
        table = render_table(
            headers, rows,
            title=(
                f"Chaos sweep - {len(self.apps)} apps, "
                f"fault rates {[f'{r:g}' for r in self.rates]}"
            ),
        )
        base = self.baseline()
        worst = self.row(max(self.rates))
        return (
            f"{table}\n"
            f"degradation at rate {max(self.rates):g} vs fault-free: "
            f"precision {base['precision']:.3f} -> "
            f"{worst['precision']:.3f}, "
            f"recall {base['recall']:.3f} -> {worst['recall']:.3f}, "
            f"bugs {base['bugs_detected']} -> {worst['bugs_detected']}; "
            f"no run crashed - every fault was absorbed as degradation"
        )


def _chaos_cell(payload):
    """Deploy Hang Doctor on one app at one fault rate (module-level so
    the process pool can pickle it); returns a :class:`ChaosCell`.

    Mirrors :func:`repro.harness.exp_fleet._run_fleet_app` exactly —
    same engine/seed/session structure — so the rate-0 cell reproduces
    the fleet study's fault-free numbers bit-for-bit.
    """
    device, seed, rate, app_name, users, actions_per_user = payload
    tel = telemetry()
    with tel.track(f"chaos/rate{rate:g}/{app_name}"):
        tel.count("chaos.cells")
        app = get_app(app_name)
        plan = FaultPlan.uniform(rate)
        app_seed = fleet_app_seed(seed, app_name)
        engine = ExecutionEngine(device, seed=app_seed)
        doctor = HangDoctor(app, device, seed=app_seed, faults=plan)
        generator = SessionGenerator(seed=seed)
        runs = []
        for session in generator.fleet_sessions(app, users,
                                                actions_per_user):
            executions = engine.run_session(
                app, session.action_names, gap_ms=1000.0
            )
            runs.append(run_detector(doctor, executions,
                                     device_id=session.user_id))
        run = DetectorRun.merge(runs)
        counts = run.confusion()
        # End-of-deployment upload: persist the report and reload it
        # through the same fault injector (a crash mid-write corrupts
        # the file at persistence_corrupt_rate).
        restored = load_report(report_to_json(doctor.report), app.name,
                               faults=doctor.faults)
    return ChaosCell(
        rate=rate,
        app_name=app_name,
        bugs_detected=len(detected_bug_sites(app, run.detections)),
        tp=counts.tp,
        fp=counts.fp,
        fn=counts.fn,
        overhead_percent=run.overhead().average_percent,
        counter_read_failures=run.cost.counter_read_failures,
        trace_failures=run.cost.trace_failures,
        degraded=doctor.degraded,
        quarantined=len(doctor.diagnoser.quarantined_actions()),
        state_recovered=restored.recovered_from_corruption,
        faults_fired=(
            doctor.faults.fired_total() if doctor.faults is not None else 0
        ),
    )


def chaos_sweep(device, seed=0, rates=DEFAULT_RATES, apps=None, users=2,
                actions_per_user=40, workers=1, checkpoint=None,
                resume=False, report=None, executor_faults=None):
    """Sweep fault rates over a fleet of apps; returns a ChaosResult.

    ``workers`` shards the sweep per (rate, app) through the
    supervised pool; every cell is a pure function of its payload, so
    any worker count yields byte-identical output.  ``checkpoint``
    names a journal directory where each completed cell is persisted
    the moment it finishes; with ``resume`` a restarted sweep skips
    the journaled cells, and the merged result is byte-identical to an
    uninterrupted run.  ``report`` (an
    :class:`~repro.parallel.ExecutionReport`) collects supervision
    events — it is also attached to the result as ``execution``.
    ``executor_faults`` is a :class:`~repro.faults.FaultInjector`
    whose ``worker_kill``/``shard_stall`` channels stress the
    supervisor itself.
    """
    apps = tuple(apps) if apps else CHAOS_APPS
    rates = tuple(rates)
    if not rates:
        raise ValueError("need at least one fault rate")
    if report is None:
        report = ExecutionReport()
    shards = [
        (device, seed, rate, app_name, users, actions_per_user)
        for rate in rates
        for app_name in apps
    ]
    keys = [f"{rate!r}|{app_name}" for rate in rates for app_name in apps]
    journal = None
    if checkpoint is not None:
        journal = ShardJournal(
            checkpoint,
            run_key("chaos", device.name, seed, rates, apps, users,
                    actions_per_user),
            faults=executor_faults,
            report=report,
        ).open(resume=resume)
    elif resume:
        raise ValueError("resume requires a checkpoint directory")
    cells = checkpointed_map(_chaos_cell, shards, keys, journal,
                             workers=workers, report=report,
                             faults=executor_faults)
    return ChaosResult(cells=list(cells), rates=rates, apps=apps,
                       execution=report)
