"""Head-to-head comparison: Figure 8 (a,b,c).

Runs Hang Doctor and the baselines (TI, UTL, UTH, UTL+TI, UTH+TI) over
*identical* executions of representative apps and counts, per the
paper's methodology, the soft hangs each detector paid stack-trace
collection for: bug-caused traced hangs are true positives, UI-caused
traced hangs are false positives, bug-caused untraced hangs are false
negatives.  Counts are normalized to TI (which traces every hang and
therefore has no false negatives).  Overhead comes from the metered
monitoring costs through the cost model of
:mod:`repro.analysis.overhead`.
"""

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.overhead import OverheadModel
from repro.apps.catalog import get_app
from repro.apps.sessions import SessionGenerator
from repro.core.hang_doctor import HangDoctor
from repro.detectors.runner import run_detectors
from repro.detectors.timeout import TimeoutDetector
from repro.detectors.utilization import (
    UtilizationDetector,
    fit_thresholds,
    window_metrics,
)
from repro.harness.tables import render_table
from repro.harness.training import training_bug_cases, validation_bug_cases
from repro.parallel import parallel_map
from repro.sim.engine import ExecutionEngine
from repro.telemetry import current as telemetry

#: The representative apps of the paper's Figure 8.
FIGURE8_APPS = (
    "AndStatus", "CycleStreets", "K9-mail", "Omni-Notes", "UOITDC Booking",
)

DETECTOR_ORDER = ("TI", "UTL", "UTH", "UTL+TI", "UTH+TI", "HD")


def fit_utilization_thresholds(device, seed=0, runs_per_case=6):
    """Fit the UTL/UTH baselines' static thresholds from bug hang
    windows (paper §4.1: low = minimum resource utilization observed
    during soft hang bugs, high = 90 % of the peak).  The baselines
    get the benefit of observing *every* known bug's utilization —
    training and validation alike — mirroring the paper's setup where
    the thresholds are derived from the observed soft hang bugs."""
    engine = ExecutionEngine(device, seed=seed)
    windows = []
    for case in training_bug_cases() + validation_bug_cases():
        action = case.app.action(case.action_name)
        collected = 0
        for _ in range(runs_per_case * 4):
            if collected >= runs_per_case:
                break
            execution = engine.run_action(case.app, action)
            if not (execution.has_soft_hang and execution.bug_caused_hang()):
                continue
            collected += 1
            for event_execution in execution.hang_events():
                cursor = event_execution.dispatch_ms
                while cursor < event_execution.finish_ms:
                    end = min(cursor + 100.0, event_execution.finish_ms)
                    windows.append(window_metrics(execution, cursor, end))
                    cursor = end
    return fit_thresholds(windows, "low"), fit_thresholds(windows, "high")


def build_detectors(app, device, low, high, seed=0):
    """The paper's detector lineup for one app."""
    return [
        TimeoutDetector(app, timeout_ms=100.0),
        UtilizationDetector(app, low, combine_timeout=False, label="UTL"),
        UtilizationDetector(app, high, combine_timeout=False, label="UTH"),
        UtilizationDetector(app, low, combine_timeout=True, label="UTL+TI"),
        UtilizationDetector(app, high, combine_timeout=True, label="UTH+TI"),
        HangDoctor(app, device, seed=seed),
    ]


@dataclass
class Figure8AppResult:
    """One app's detector comparison."""

    app_name: str
    #: detector -> (tp, fp, fn) over traced hangs.
    confusion: Dict[str, tuple]
    #: detector -> overhead percent (mean of CPU and memory %).
    overhead: Dict[str, float]


@dataclass
class Figure8Result:
    """The full Figure 8 comparison."""

    apps: List[Figure8AppResult]

    @classmethod
    def merge(cls, parts):
        """Recombine per-app shard results in submission order."""
        apps = []
        for part in parts:
            apps.extend(
                part.apps if isinstance(part, Figure8Result) else [part]
            )
        return cls(apps=apps)

    def detector_names(self):
        """Detectors present, in the canonical order where known."""
        present = list(self.apps[0].confusion)
        ordered = [name for name in DETECTOR_ORDER if name in present]
        ordered += [name for name in present if name not in ordered]
        return ordered

    def normalized(self, metric):
        """Per-app TP or FP normalized to TI; plus the average row."""
        index = 0 if metric == "tp" else 1
        table = {}
        for app_result in self.apps:
            base = max(1, app_result.confusion["TI"][index])
            table[app_result.app_name] = {
                name: counts[index] / base
                for name, counts in app_result.confusion.items()
            }
        averages = {
            name: float(np.mean([
                table[app.app_name][name] for app in self.apps
            ]))
            for name in self.detector_names()
        }
        table["Average"] = averages
        return table

    def overheads(self):
        """Per-app overhead percentages plus the average row."""
        table = {
            app.app_name: dict(app.overhead) for app in self.apps
        }
        table["Average"] = {
            name: float(np.mean([app.overhead[name] for app in self.apps]))
            for name in self.detector_names()
        }
        return table

    def render(self):
        """ASCII rendering of the result."""
        names = self.detector_names()
        blocks = []
        for metric, title in (("tp", "(a) True positives, normalized to TI"),
                              ("fp", "(b) False positives, normalized to TI")):
            data = self.normalized(metric)
            rows = [
                [row] + [round(data[row][det], 3) for det in names]
                for row in data
            ]
            blocks.append(render_table(
                ["App"] + names, rows, title=f"Figure 8{title}",
            ))
        over = self.overheads()
        rows = [
            [row] + [round(over[row][det], 2) for det in names]
            for row in over
        ]
        blocks.append(render_table(
            ["App"] + names, rows, title="Figure 8(c) Overhead (%)",
        ))
        return "\n\n".join(blocks)


def _figure8_shard(payload):
    """Run the whole detector lineup over one app (module-level so the
    process pool can pickle it); returns a :class:`Figure8AppResult`."""
    (device, seed, app_name, users, actions_per_user, low, high,
     overhead_model) = payload
    # Track per app (not per shard): semantic names keep the trace
    # independent of how shards landed on workers.
    with telemetry().track(f"figure8/{app_name}"):
        app = get_app(app_name)
        generator = SessionGenerator(seed=seed)
        engine = ExecutionEngine(device, seed=seed)
        executions = []
        for session in generator.fleet_sessions(app, users,
                                                actions_per_user):
            executions.extend(
                engine.run_session(app, session.action_names, gap_ms=1000.0)
            )
        detectors = build_detectors(app, device, low, high, seed=seed)
        runs = run_detectors(detectors, executions)
        confusion = {}
        overhead = {}
        for name, run in runs.items():
            counts = run.confusion()
            confusion[name] = (counts.tp, counts.fp, counts.fn)
            overhead[name] = run.overhead(overhead_model).average_percent
    return Figure8AppResult(
        app_name=app_name, confusion=confusion, overhead=overhead
    )


def figure8(device, seed=0, users=2, actions_per_user=60, app_names=None,
            overhead_model=None, workers=1, thresholds=None):
    """Reproduce Figure 8's detection-performance and overhead study.

    ``workers`` shards the study at app granularity; every app's
    executions and detector runs depend only on (device, seed, app),
    so any worker count yields identical results.  *thresholds* can
    supply precomputed ``(low, high)`` utilization thresholds to skip
    the fitting pass (useful for sweeps that reuse one fit).
    """
    app_names = app_names or FIGURE8_APPS
    overhead_model = overhead_model or OverheadModel()
    low, high = thresholds or fit_utilization_thresholds(device, seed=seed)
    shards = [
        (device, seed, app_name, users, actions_per_user, low, high,
         overhead_model)
        for app_name in app_names
    ]
    results = parallel_map(_figure8_shard, shards, workers=workers)
    return Figure8Result(apps=list(results))
