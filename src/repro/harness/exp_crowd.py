"""Crowd experiment: fleet-size sweep of the shared-diagnosis payoff.

The paper's feedback loop is per-device: every Hang Doctor instance
pays the full two-phase cost for every bug, even when another device
already diagnosed it.  The crowd backend (:mod:`repro.crowd`) shares
diagnoses fleet-wide, and this experiment measures what that buys: for
each fleet size, devices run in *sync rounds* — run sessions, upload
their Hang Bug Reports as batches, pull the freshly published
known-bug table and merged blocking-API database before the next
round — and the sweep reports the **diagnosis-cost reduction curve**:
phase-2 trace collections per device-round versus the isolated-device
baseline (the same devices and sessions with no crowd sync, i.e. the
paper's deployment model).

Decomposition and determinism: a device's round is a pure function of
(device profile, root seed, device index, round index, published
knowledge), seeded through keyed substreams so it is independent of
fleet size and shard assignment.  Rounds are sequential (the feedback
loop), devices within a round shard across workers through
:mod:`repro.parallel`, and ingestion folds through the
order-independent :meth:`~repro.crowd.CrowdAggregator.merge`, so any
``--workers`` count renders byte-identically.  The upload path runs
through the fault seams of :mod:`repro.faults` — batches may be
dropped, duplicated, or delivered a round late — and ingestion
idempotency keeps duplicated deliveries from double-counting; at fault
rate 0 no fault stream is ever drawn and repeat runs are bit-equal.

Because a larger fleet's device set is a superset of a smaller one's
and every upload only *adds* knowledge, the published table at each
round grows with fleet size, so the per-device-round collection count
is monotone nonincreasing in fleet size: one device's diagnosis
spares every other device the collection.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.metrics import detected_bug_sites
from repro.apps.catalog import get_app
from repro.apps.sessions import SessionGenerator
from repro.base.rng import substream_seed
from repro.checkpoint import ShardJournal, checkpointed_map, run_key
from repro.core.blocking_db import BlockingApiDatabase
from repro.core.hang_doctor import HangDoctor
from repro.crowd import CrowdAggregator, CrowdKnowledge, ReportBatch
from repro.detectors.runner import run_detector
from repro.faults import FaultInjector, FaultPlan
from repro.harness.tables import render_table
from repro.parallel import ExecutionReport
from repro.sim.engine import ExecutionEngine
from repro.telemetry import current as telemetry

#: Default fleet sizes of the sweep (devices per fleet).
DEFAULT_FLEET_SIZES = (1, 2, 4, 8)

#: Default app set: a representative slice of the Figure 8 apps.
CROWD_APPS = ("AndStatus", "K9-mail")


def crowd_device_seed(seed, device_index, round_index):
    """Per-(device, round) seed, derived from the root seed.

    Keyed-hash derivation (like
    :func:`~repro.harness.exp_fleet.fleet_app_seed`) makes a device's
    round independent of fleet size, worker count, and every other
    device's rounds — which is what lets fleets of different sizes
    share the same per-device behaviour and makes the superset
    argument (bigger fleet, more knowledge, fewer collections) hold.
    """
    return substream_seed(seed, "crowd", device_index, round_index)


@dataclass(frozen=True)
class CrowdDeviceRound:
    """One device's results for one sync round (all apps)."""

    device_index: int
    round_index: int
    #: Phase-2 trace collections the device paid for this round.
    phase2_collections: int
    #: Collections avoided via the crowd known-bug table.
    kb_short_circuits: int
    #: Ground-truth bug sites detected, as (app_name, site_id) pairs.
    detected_sites: Tuple[Tuple[str, str], ...]
    #: Report batches to upload (one per app with a non-empty report).
    batches: Tuple[ReportBatch, ...]


def _crowd_device_round(payload):
    """Run one device for one sync round (module-level so the process
    pool can pickle it); returns a :class:`CrowdDeviceRound`.

    The device runs every app of the study with the crowd-synced
    knowledge and blocking-database snapshot published at the start of
    the round, then digests its per-app Hang Bug Reports into upload
    batches stamped with the round index.

    The payload's trailing *track* element names the telemetry track
    the round's records land on (e.g. ``crowd/fleet4/d1/r0``) — it has
    to travel in the payload because the baseline and the fleet's
    round 0 are otherwise byte-identical payloads, and shard-derived
    names would move with the worker count.
    """
    (device, seed, app_names, device_index, round_index, actions,
     knowledge, db_names, track) = payload
    tel = telemetry()
    with tel.track(track):
        tel.count("crowd.device_rounds")
        round_seed = crowd_device_seed(seed, device_index, round_index)
        generator = SessionGenerator(seed=round_seed)
        phase2 = 0
        shorts = 0
        sites = []
        batches = []
        for app_name in app_names:
            app = get_app(app_name)
            app_seed = substream_seed(round_seed, app_name)
            engine = ExecutionEngine(device, seed=app_seed)
            doctor = HangDoctor(
                app, device, seed=app_seed,
                blocking_db=BlockingApiDatabase(db_names),
                crowd_kb=knowledge,
            )
            session = generator.user_session(
                app, user_id=device_index, actions_per_user=actions
            )
            executions = engine.run_session(app, session.action_names,
                                            gap_ms=1000.0)
            run = run_detector(doctor, executions, device_id=device_index)
            phase2 += doctor.phase2_collections
            shorts += doctor.kb_short_circuits
            sites.extend(
                (app_name, site)
                for site in sorted(detected_bug_sites(app, run.detections))
            )
            if len(doctor.report):
                batches.append(ReportBatch.from_report(
                    doctor.report, device_id=device_index,
                    time_ms=float(round_index),
                    batch_id=(
                        f"{app_name}/dev{device_index}/round{round_index}"
                    ),
                ))
    return CrowdDeviceRound(
        device_index=device_index,
        round_index=round_index,
        phase2_collections=phase2,
        kb_short_circuits=shorts,
        detected_sites=tuple(sites),
        batches=tuple(batches),
    )


@dataclass(frozen=True)
class CrowdCell:
    """One fleet size's full deployment."""

    fleet_size: int
    rounds: int
    #: Phase-2 collections the crowd-synced fleet paid for.
    phase2_collections: int
    #: Same devices and sessions, isolated (no crowd sync).
    baseline_collections: int
    kb_short_circuits: int
    #: Distinct ground-truth bug sites the fleet detected.
    bugs_detected: int
    baseline_bugs_detected: int
    #: Known bugs in the final published table.
    known_bugs: int
    #: Blocking APIs the published database added over the shipped one.
    new_blocking_apis: int
    batches_ingested: int
    batches_dropped: int
    batches_duplicated: int
    batches_late: int
    #: Re-deliveries the aggregator recognized and ignored.
    duplicates_ignored: int

    @property
    def collections_per_device_round(self):
        """Phase-2 collections per device per round (the cost curve)."""
        return self.phase2_collections / (self.fleet_size * self.rounds)

    @property
    def baseline_per_device_round(self):
        """Isolated-device collections per device per round."""
        return self.baseline_collections / (self.fleet_size * self.rounds)

    @property
    def avoided_fraction(self):
        """Fraction of the baseline's collections the crowd avoided."""
        if not self.baseline_collections:
            return 0.0
        return 1.0 - self.phase2_collections / self.baseline_collections


@dataclass
class CrowdSweepResult:
    """The full fleet-size sweep."""

    cells: List[CrowdCell]
    fleet_sizes: Tuple[int, ...]
    apps: Tuple[str, ...]
    rounds: int
    fault_rate: float
    #: How the sweep actually executed (supervision events, checkpoint
    #: hits); advisory — never part of the rendered output.
    execution: Optional[ExecutionReport] = field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def merge(cls, parts):
        """Recombine shard results (disjoint fleet-size slices) in
        submission order."""
        parts = list(parts)
        if not parts:
            raise ValueError("need at least one CrowdSweepResult to merge")
        cells = []
        fleet_sizes = []
        for part in parts:
            cells.extend(part.cells)
            for size in part.fleet_sizes:
                if size not in fleet_sizes:
                    fleet_sizes.append(size)
        return cls(cells=cells, fleet_sizes=tuple(fleet_sizes),
                   apps=parts[0].apps, rounds=parts[0].rounds,
                   fault_rate=parts[0].fault_rate)

    def cell(self, fleet_size):
        """The cell for one fleet size."""
        for cell in self.cells:
            if cell.fleet_size == fleet_size:
                return cell
        raise KeyError(f"no cell for fleet size {fleet_size}")

    def render(self):
        """ASCII rendering: the diagnosis-cost reduction curve."""
        headers = ("fleet", "phase2", "base", "p2/dev-rd", "base/dev-rd",
                   "avoided", "shortcut", "bugs", "known", "new-APIs",
                   "batches", "drop/dup/late")
        rows = []
        for cell in self.cells:
            rows.append((
                cell.fleet_size,
                cell.phase2_collections,
                cell.baseline_collections,
                f"{cell.collections_per_device_round:.2f}",
                f"{cell.baseline_per_device_round:.2f}",
                f"{cell.avoided_fraction:.0%}",
                cell.kb_short_circuits,
                f"{cell.bugs_detected}/{cell.baseline_bugs_detected}",
                cell.known_bugs,
                cell.new_blocking_apis,
                cell.batches_ingested,
                f"{cell.batches_dropped}/{cell.batches_duplicated}"
                f"/{cell.batches_late}",
            ))
        table = render_table(
            headers, rows,
            title=(
                f"Crowd sweep - {len(self.apps)} apps, {self.rounds} sync "
                f"rounds, fault rate {self.fault_rate:g}"
            ),
        )
        largest = self.cell(max(self.fleet_sizes))
        return (
            f"{table}\n"
            f"at fleet size {largest.fleet_size}: "
            f"{largest.avoided_fraction:.0%} of the isolated-device "
            f"baseline's phase-2 collections avoided "
            f"({largest.baseline_collections} -> "
            f"{largest.phase2_collections}); one device's diagnosis "
            f"spares the rest of the fleet the trace collection"
        )


def _ingest_round(aggregator, arrivals, new_results, faults, stats):
    """Upload phase of one round: deliver late batches from the
    previous round, then this round's uploads through the fault seams.

    Returns the merged aggregator and the batches delayed into the
    next round.  Ingestion order is the deterministic submission order
    (late arrivals first, then device order), and fault decisions are
    drawn serially here in the parent, so worker count never reaches
    the fault streams.
    """
    tel = telemetry()
    round_agg = CrowdAggregator()
    for batch in arrivals:
        if not round_agg.ingest(batch):
            stats["duplicates_ignored"] += 1
        stats["batches_ingested"] += 1
    delayed = []
    for result in new_results:
        for batch in result.batches:
            if faults is not None and faults.drop_report_batch():
                stats["batches_dropped"] += 1
                tel.count("crowd.batches.dropped")
                tel.event("crowd.batch.dropped", batch.time_ms,
                          batch=batch.batch_id)
                continue
            if faults is not None and faults.delay_report_batch():
                stats["batches_late"] += 1
                tel.count("crowd.batches.delayed")
                tel.event("crowd.batch.delayed", batch.time_ms,
                          batch=batch.batch_id)
                delayed.append(batch)
                continue
            if not round_agg.ingest(batch):
                stats["duplicates_ignored"] += 1
            stats["batches_ingested"] += 1
            if faults is not None and faults.duplicate_report_batch():
                stats["batches_duplicated"] += 1
                stats["batches_ingested"] += 1
                tel.count("crowd.batches.duplicated")
                tel.event("crowd.batch.duplicated", batch.time_ms,
                          batch=batch.batch_id)
                if not round_agg.ingest(batch):
                    stats["duplicates_ignored"] += 1
    return CrowdAggregator.merge([aggregator, round_agg]), delayed


def _run_fleet(device, seed, apps, fleet_size, rounds, actions, fault_rate,
               workers, baseline, journal=None, report=None):
    """Deploy one crowd-synced fleet; returns its :class:`CrowdCell`.

    *baseline* maps (device_index, round_index) to the isolated
    :class:`CrowdDeviceRound` of the same device and sessions.
    *journal* checkpoints each device round under a key naming
    (fleet size, round, device) — safe even though rounds feed forward,
    because the published knowledge entering round *n* is itself a
    pure function of the sweep parameters already in the run key.
    """
    faults = None
    if fault_rate > 0.0:
        plan = FaultPlan(
            report_drop_rate=fault_rate,
            report_duplicate_rate=fault_rate,
            report_delay_rate=fault_rate,
        )
        faults = FaultInjector(plan, seed=seed,
                               scope=("crowd-upload", fleet_size))
    aggregator = CrowdAggregator()
    pending = []
    stats = {
        "batches_ingested": 0, "batches_dropped": 0,
        "batches_duplicated": 0, "batches_late": 0,
        "duplicates_ignored": 0,
    }
    phase2 = 0
    shorts = 0
    sites = set()
    tel = telemetry()
    with tel.track(f"crowd/fleet{fleet_size}"):
        for round_index in range(rounds):
            with tel.span("crowd.round", fleet=fleet_size,
                          round=round_index):
                knowledge = aggregator.knowledge()
                db_names = tuple(
                    aggregator.publish_database().sorted_names()
                )
                tel.event(
                    "crowd.publish", float(round_index),
                    fleet=fleet_size, known_bugs=len(knowledge),
                    blocking_apis=len(db_names),
                )
                payloads = [
                    (device, seed, apps, device_index, round_index,
                     actions, knowledge, db_names,
                     f"crowd/fleet{fleet_size}/d{device_index}"
                     f"/r{round_index}")
                    for device_index in range(fleet_size)
                ]
                keys = [
                    f"fleet{fleet_size}|r{round_index}|d{device_index}"
                    for device_index in range(fleet_size)
                ]
                results = checkpointed_map(
                    _crowd_device_round, payloads, keys, journal,
                    workers=workers, report=report,
                )
                for result in results:
                    phase2 += result.phase2_collections
                    shorts += result.kb_short_circuits
                    sites.update(result.detected_sites)
                aggregator, pending = _ingest_round(
                    aggregator, pending, results, faults, stats
                )
        if pending:
            # Batches still in flight when the sweep ends arrive late
            # but arrive: flush them so the final statistics converge.
            aggregator, _ = _ingest_round(aggregator, pending, (), None,
                                          stats)
    knowledge = aggregator.knowledge()
    published = aggregator.publish_database()
    baseline_cells = [
        baseline[(device_index, round_index)]
        for device_index in range(fleet_size)
        for round_index in range(rounds)
    ]
    baseline_sites = set()
    for cell in baseline_cells:
        baseline_sites.update(cell.detected_sites)
    return CrowdCell(
        fleet_size=fleet_size,
        rounds=rounds,
        phase2_collections=phase2,
        baseline_collections=sum(
            cell.phase2_collections for cell in baseline_cells
        ),
        kb_short_circuits=shorts,
        bugs_detected=len(sites),
        baseline_bugs_detected=len(baseline_sites),
        known_bugs=len(knowledge),
        new_blocking_apis=len(published.runtime_discoveries()),
        **stats,
    )


def crowd_sweep(device, seed=0, fleet_sizes=DEFAULT_FLEET_SIZES, rounds=3,
                apps=None, actions_per_round=40, fault_rate=0.0, workers=1,
                checkpoint=None, resume=False, report=None):
    """Sweep fleet sizes; returns a :class:`CrowdSweepResult`.

    ``workers`` shards the per-round device runs through the
    supervised pool; every device round is a pure function of its
    payload and ingestion is order-independent, so any worker count
    yields byte-identical output.  ``fault_rate`` drives the
    upload-path fault seams (drop / duplicate / delay); rate 0 never
    draws from the fault streams.  ``checkpoint``/``resume`` journal
    every completed device round (baseline and crowd-synced) so a
    killed sweep restarts where it left off, byte-identically;
    ``report`` collects supervision events (also attached to the
    result as ``execution``).
    """
    apps = tuple(apps) if apps else CROWD_APPS
    fleet_sizes = tuple(fleet_sizes)
    if not fleet_sizes or min(fleet_sizes) < 1:
        raise ValueError(f"fleet sizes must be >= 1, got {fleet_sizes}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
    if report is None:
        report = ExecutionReport()
    journal = None
    if checkpoint is not None:
        journal = ShardJournal(
            checkpoint,
            run_key("crowd", device.name, seed, fleet_sizes, rounds, apps,
                    actions_per_round, fault_rate),
            report=report,
        ).open(resume=resume)
    elif resume:
        raise ValueError("resume requires a checkpoint directory")
    # Isolated-device baseline: the same (device, round) runs with no
    # crowd sync — knowledge empty, database as shipped.  Pure per
    # payload, so it shards freely.
    base_payloads = [
        (device, seed, apps, device_index, round_index, actions_per_round,
         CrowdKnowledge(), tuple(BlockingApiDatabase.initial()),
         f"crowd/base/d{device_index}/r{round_index}")
        for device_index in range(max(fleet_sizes))
        for round_index in range(rounds)
    ]
    base_keys = [
        f"base|d{device_index}|r{round_index}"
        for device_index in range(max(fleet_sizes))
        for round_index in range(rounds)
    ]
    base_results = checkpointed_map(_crowd_device_round, base_payloads,
                                    base_keys, journal, workers=workers,
                                    report=report)
    baseline = {
        (result.device_index, result.round_index): result
        for result in base_results
    }
    cells = [
        _run_fleet(device, seed, apps, fleet_size, rounds,
                   actions_per_round, fault_rate, workers, baseline,
                   journal=journal, report=report)
        for fleet_size in fleet_sizes
    ]
    return CrowdSweepResult(
        cells=cells, fleet_sizes=fleet_sizes, apps=apps, rounds=rounds,
        fault_rate=fault_rate, execution=report,
    )
