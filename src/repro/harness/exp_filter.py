"""Filter-design experiments: Tables 3-4, Figures 4-5.

Table 3: Pearson correlation of all 46 events with soft hang bugs, in
the main−render difference representation vs the main-thread-only one.

Table 4: training-set sensitivity (75 % and 50 % subsets keep the top
events stable).

Figure 4: per-sample distributions of the three selected events with
their thresholds, plus the fitted filter's training performance
(paper: 100 % bug recall, 64 % of UI false positives pruned, 81 %
accuracy).

Figure 5: context-switch time series of main and render thread for a
bug hang and a UI hang — the early part of a UI action looks bug-like,
which is why S-Checker counts to the end of the action.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.correlation import correlate, ranked_events
from repro.analysis.sensitivity import sensitivity_analysis
from repro.analysis.thresholds import FilterFit, fit_filter
from repro.core.config import HangDoctorConfig
from repro.harness.tables import render_table
from repro.harness.training import (
    build_ui_probe_app,
    collect_training_samples,
    training_bug_cases,
    training_ui_cases,
)
from repro.sim.engine import ExecutionEngine
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD


def training_samples(device, seed=0, runs_per_case=10, mode="diff"):
    """Labelled counter samples over the paper's training set."""
    engine = ExecutionEngine(device, seed=seed)
    cases = training_bug_cases() + training_ui_cases()
    return collect_training_samples(
        engine, cases, runs_per_case=runs_per_case, mode=mode
    )


@dataclass
class Table3Result:
    """Top-correlated events for both monitoring modes."""

    diff_ranking: List[Tuple[str, float]]
    main_ranking: List[Tuple[str, float]]

    def top_average(self, mode="diff", k=10):
        """Average coefficient of the top-*k* events of one mode."""
        ranking = self.diff_ranking if mode == "diff" else self.main_ranking
        return float(np.mean([c for _, c in ranking[:k]]))

    def improvement_percent(self, k=10):
        """How much the difference representation improves the top-k
        average correlation (paper: ~14 %)."""
        main = self.top_average("main", k)
        diff = self.top_average("diff", k)
        return 100.0 * (diff - main) / main if main else 0.0

    def render(self, k=10):
        """ASCII rendering of the top-*k* rows."""
        rows = []
        for index in range(k):
            d_event, d_coef = self.diff_ranking[index]
            m_event, m_coef = self.main_ranking[index]
            rows.append((d_event, round(d_coef, 3), m_event, round(m_coef, 3)))
        rows.append((
            "AVERAGE", round(self.top_average("diff", k), 3),
            "AVERAGE", round(self.top_average("main", k), 3),
        ))
        table = render_table(
            ("event (main-render)", "corr", "event (main only)", "corr"),
            rows, title="Table 3 - Top correlated performance events",
        )
        return (
            f"{table}\n"
            f"difference representation improves top-{k} average "
            f"correlation by {self.improvement_percent(k):.1f}%"
        )


def table3(device, seed=0, runs_per_case=10):
    """Reproduce Table 3's two correlation analyses."""
    diff_samples = training_samples(device, seed, runs_per_case, mode="diff")
    main_samples = training_samples(device, seed, runs_per_case, mode="main")
    return Table3Result(
        diff_ranking=ranked_events(correlate(diff_samples)),
        main_ranking=ranked_events(correlate(main_samples)),
    )


@dataclass
class Table4Result:
    """Sensitivity of the ranking to training subsets."""

    rankings: Dict[float, List[Tuple[str, float]]]

    def top_events(self, fraction, k=5):
        """Names of the top-*k* events for one training fraction."""
        return [event for event, _ in self.rankings[fraction][:k]]

    def stable_top_k(self, k=5):
        """True if the top-*k* event set is identical across subsets."""
        tops = [self.top_events(f, k) for f in self.rankings]
        return all(set(top) == set(tops[0]) for top in tops)

    def render(self, k=10):
        """ASCII rendering of the top-*k* rows."""
        fractions = sorted(self.rankings, reverse=True)
        headers = ["rank"] + [f"{int(f * 100)}% set" for f in fractions]
        rows = []
        for index in range(k):
            row = [index + 1]
            for fraction in fractions:
                event, coef = self.rankings[fraction][index]
                row.append(f"{event} ({coef:.3f})")
            rows.append(row)
        table = render_table(
            headers, rows, title="Table 4 - Training-set sensitivity"
        )
        return (
            f"{table}\n"
            f"top-5 event set stable across subsets: {self.stable_top_k(5)}"
        )


def table4(device, seed=0, runs_per_case=10, fractions=(1.0, 0.75, 0.5)):
    """Reproduce Table 4's subset sensitivity analysis."""
    samples = training_samples(device, seed, runs_per_case, mode="diff")
    result = sensitivity_analysis(samples, fractions=fractions, seed=seed)
    return Table4Result(
        rankings={f: list(r) for f, r in result.rankings.items()}
    )


@dataclass
class Figure4Result:
    """Distribution + threshold statistics for the filter events."""

    #: event -> (sorted bug values, sorted ui values)
    distributions: Dict[str, Tuple[List[float], List[float]]]
    thresholds: Dict[str, float]
    #: event -> (bug exceedance rate, ui exceedance rate)
    exceedance: Dict[str, Tuple[float, float]]
    fitted: FilterFit
    recall: float
    prune_rate: float
    accuracy: float

    def render(self):
        """ASCII rendering of the result."""
        rows = []
        for event, threshold in self.thresholds.items():
            bug_rate, ui_rate = self.exceedance[event]
            rows.append((
                event, f"{threshold:.3g}",
                f"{bug_rate:.0%}", f"{ui_rate:.0%}",
            ))
        table = render_table(
            ("event", "threshold", "HB above", "UI above"), rows,
            title="Figure 4 - Soft hang bug symptoms (main-render "
                  "differences)",
        )
        fitted = ", ".join(
            f"{event} > {value:.3g}"
            for event, value in self.fitted.thresholds.items()
        )
        return (
            f"{table}\n"
            f"fitted filter        : {fitted}\n"
            f"training bug recall  : {self.recall:.0%}\n"
            f"UI false pos. pruned : {self.prune_rate:.0%}\n"
            f"overall accuracy     : {self.accuracy:.0%}"
        )


def figure4(device, seed=0, runs_per_case=10, config=None):
    """Reproduce Figure 4's distributions and the filter fit."""
    config = config or HangDoctorConfig()
    samples = training_samples(device, seed, runs_per_case, mode="diff")
    ranking = ranked_events(correlate(samples))
    fitted = fit_filter(samples, [event for event, _ in ranking])

    distributions = {}
    exceedance = {}
    for event, threshold in config.filter_thresholds.items():
        bug_values = sorted(
            (s.values[event] for s in samples if s.is_hang_bug), reverse=True
        )
        ui_values = sorted(
            (s.values[event] for s in samples if not s.is_hang_bug),
            reverse=True,
        )
        distributions[event] = (bug_values, ui_values)
        exceedance[event] = (
            float(np.mean([v > threshold for v in bug_values])),
            float(np.mean([v > threshold for v in ui_values])),
        )

    shipped = FilterFit(thresholds=dict(config.filter_thresholds))
    tp, fp, fn, tn = shipped.confusion(samples)
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    return Figure4Result(
        distributions=distributions,
        thresholds=dict(config.filter_thresholds),
        exceedance=exceedance,
        fitted=fitted,
        recall=recall,
        prune_rate=shipped.false_positive_prune_rate(samples),
        accuracy=shipped.accuracy(samples),
    )


@dataclass
class Figure5Result:
    """Context-switch time series for one bug hang and one UI hang."""

    #: (time_s, main count, render count) per window.
    bug_series: List[Tuple[float, float, float]]
    ui_series: List[Tuple[float, float, float]]
    #: Fraction of early windows (first 0.6 s) of the UI action where
    #: the main-render difference is positive (bug-like).
    ui_early_positive: float
    #: Same over the whole action (should be low).
    ui_total_positive: float

    def render(self):
        """ASCII rendering of the two series."""
        def fmt(series):
            return "  ".join(
                f"{t:.1f}s:{int(m)}/{int(r)}" for t, m, r in series[:12]
            )
        return (
            "Figure 5 - context-switch counts per 100 ms window "
            "(main/render)\n"
            f"  soft hang bug action: {fmt(self.bug_series)}\n"
            f"  UI-API action       : {fmt(self.ui_series)}\n"
            f"  UI windows with bug-like (positive) difference: "
            f"{self.ui_early_positive:.0%} early vs "
            f"{self.ui_total_positive:.0%} overall"
        )


def figure5(device, seed=0, window_ms=100.0):
    """Reproduce Figure 5's main/render context-switch traces."""
    engine = ExecutionEngine(device, seed=seed)

    from repro.apps.catalog import get_app

    k9 = get_app("K9-mail")  # Figure 6's app, as in the paper
    bug_execution = _first_matching(
        engine, k9, "open_email",
        lambda ex: ex.has_soft_hang and ex.bug_caused_hang(),
    )
    probe = build_ui_probe_app()
    ui_action_name = probe.actions[1].name  # inflate probe
    ui_execution = _first_matching(
        engine, probe, ui_action_name, lambda ex: ex.has_soft_hang
    )

    bug_series = _series(bug_execution, window_ms)
    ui_series = _series(ui_execution, window_ms)
    ui_span_s = (ui_execution.end_ms - ui_execution.start_ms) / 1000.0
    early = [m - r for t, m, r in ui_series if t <= 0.4 * ui_span_s]
    total = [m - r for _, m, r in ui_series]
    return Figure5Result(
        bug_series=bug_series,
        ui_series=ui_series,
        ui_early_positive=(
            float(np.mean([d > 0 for d in early])) if early else 0.0
        ),
        ui_total_positive=(
            float(np.mean([d > 0 for d in total])) if total else 0.0
        ),
    )


def _first_matching(engine, app, action_name, predicate, attempts=50):
    action = app.action(action_name)
    for _ in range(attempts):
        execution = engine.run_action(app, action)
        if predicate(execution):
            return execution
    raise RuntimeError(
        f"no execution of {app.name}/{action_name} matched the predicate"
    )


def _series(execution, window_ms):
    series = []
    cursor = execution.start_ms
    while cursor < execution.end_ms:
        window_end = min(cursor + window_ms, execution.end_ms)
        main = execution.timeline.total(
            MAIN_THREAD, "context-switches", cursor, window_end
        )
        render = execution.timeline.total(
            RENDER_THREAD, "context-switches", cursor, window_end
        )
        series.append(
            ((cursor - execution.start_ms) / 1000.0, main, render)
        )
        cursor = window_end
    return series
