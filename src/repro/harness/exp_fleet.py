"""Fleet experiments: Tables 5 and 6.

Table 5: run Hang Doctor in the wild over the 114-app corpus (16
catalog apps with bugs + generated clean apps), count the new soft
hang bugs it finds per app (BD) and how many of them a
PerfChecker-style offline scanner misses (MO).  Paper: 34 bugs, 23
(68 %) missed offline.

Table 6: for each previously-unknown (validation) bug, which of the
three filter events recognizes it (fires in at least half of its bug
hangs).  Paper: context-switches 18/23, task-clock 12/23, page-faults
12/23, union 23/23.

The fleet study decomposes at *app* granularity: each app's simulated
deployment depends only on (device, root seed, app), thanks to the
per-app seed derivation of :func:`fleet_app_seed`.  ``table5`` shards
the corpus across worker processes (``workers=N``) through
:func:`repro.parallel.parallel_map`; shard results are partial
:class:`Table5Result` objects recombined by :meth:`Table5Result.merge`,
so the parallel output is bit-identical to the serial one regardless
of worker count.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import detected_bug_sites
from repro.apps.catalog import TABLE5_APPS
from repro.apps.corpus import FLEET_SIZE, build_corpus
from repro.apps.sessions import SessionGenerator
from repro.base.rng import substream_seed
from repro.core.blocking_db import BlockingApiDatabase
from repro.core.config import HangDoctorConfig
from repro.core.hang_doctor import HangDoctor
from repro.detectors.offline import OfflineScanner
from repro.detectors.runner import run_detector
from repro.harness.tables import render_table
from repro.harness.training import validation_bug_cases
from repro.checkpoint import ShardJournal, checkpointed_map, run_key
from repro.parallel import ExecutionReport, chunk_indices, resolve_workers
from repro.sim.engine import ExecutionEngine
from repro.sim.pmu import PmuSampler
from repro.sim.timeline import MAIN_THREAD, RENDER_THREAD
from repro.telemetry import current as telemetry


def fleet_app_seed(seed, app_name):
    """Per-app seed for the fleet study, derived from the root seed.

    Every app must consume its *own* RNG streams: seeding each app's
    engine and Hang Doctor with the raw root seed would make all 114
    apps draw identical noise sequences (identical S-Checker sampling
    error, identical trace jitter), cross-correlating the fleet
    statistics.  Deriving through the keyed hash also makes an app's
    run independent of its corpus position, which is what lets shards
    execute on any worker in any order.
    """
    return substream_seed(seed, "fleet", app_name)


@dataclass
class Table5Row:
    """Per-app outcome of the fleet run."""

    app_name: str
    category: str
    downloads: int
    commit: str
    issue_id: int
    bugs_detected: int
    missed_offline: int
    ground_truth_bugs: int


@dataclass
class Table5Result:
    """Fleet-wide Hang Doctor results."""

    rows: List[Table5Row]
    apps_tested: int
    clean_apps_flagged: int
    #: Unknown blocking APIs added to the database at runtime.
    new_blocking_apis: List[str]
    #: How the fleet run actually executed (supervision events,
    #: checkpoint hits); advisory — never part of the rendered output.
    execution: Optional[ExecutionReport] = field(
        default=None, compare=False, repr=False
    )

    @property
    def total_detected(self):
        """Bugs Hang Doctor found across the fleet."""
        return sum(row.bugs_detected for row in self.rows)

    @property
    def total_missed_offline(self):
        """Detected bugs the offline scanner misses."""
        return sum(row.missed_offline for row in self.rows)

    @property
    def missed_offline_percent(self):
        """Share of detections missed offline (paper: 68 %).

        NaN when nothing was detected: an empty fleet run has no
        offline-scanner performance to report, and ``0.0`` would read
        as "a perfect offline scanner" in the summary line.
        """
        if not self.total_detected:
            return float("nan")
        return 100.0 * self.total_missed_offline / self.total_detected

    @classmethod
    def merge(cls, parts):
        """Recombine partial results from corpus shards.

        Rows concatenate in shard order (shards are contiguous corpus
        slices, so this restores corpus order); counters sum; runtime
        blocking-API discoveries deduplicate first-seen-first — each
        shard grows its own database from the same initial state, so
        dropping repeats reproduces exactly what one shared database
        would have recorded serially.
        """
        parts = list(parts)
        rows = []
        apps_tested = 0
        clean_flagged = 0
        seen = set()
        discoveries = []
        for part in parts:
            rows.extend(part.rows)
            apps_tested += part.apps_tested
            clean_flagged += part.clean_apps_flagged
            for name in part.new_blocking_apis:
                if name not in seen:
                    seen.add(name)
                    discoveries.append(name)
        return cls(
            rows=rows,
            apps_tested=apps_tested,
            clean_apps_flagged=clean_flagged,
            new_blocking_apis=discoveries,
        )

    def render(self):
        """ASCII rendering of the result."""
        rows = [
            (row.app_name, row.category, row.issue_id,
             f"{row.bugs_detected} ({row.missed_offline})",
             row.ground_truth_bugs)
            for row in self.rows
        ]
        rows.append((
            "TOTAL", "", "",
            f"{self.total_detected} ({self.total_missed_offline})",
            sum(row.ground_truth_bugs for row in self.rows),
        ))
        table = render_table(
            ("App Name", "Category", "Issue", "BD (MO)", "truth"),
            rows, title=f"Table 5 - {self.apps_tested} apps tested",
        )
        percent = self.missed_offline_percent
        share = "n/a" if math.isnan(percent) else f"{percent:.0f}%"
        return (
            f"{table}\n"
            f"{share} of detected bugs are "
            f"missed by the offline scanner; "
            f"{len(self.new_blocking_apis)} new blocking APIs added to "
            f"the database; {self.clean_apps_flagged} clean apps "
            f"wrongly flagged"
        )


def _run_fleet_app(app, device, seed, users, actions_per_user, config,
                   generator, scanner, blocking_db, crowd_kb=None):
    """Deploy Hang Doctor on one app of the corpus.

    Returns ``(row, clean_flagged)``: a :class:`Table5Row` for catalog
    (bug-bearing) apps or ``None`` for generated clean ones, plus 1 if
    a clean app was wrongly flagged.  *crowd_kb* (a
    :class:`~repro.crowd.CrowdKnowledge`) lets the device short-circuit
    fleet-diagnosed bugs instead of re-collecting traces.
    """
    app_seed = fleet_app_seed(seed, app.name)
    engine = ExecutionEngine(device, seed=app_seed)
    doctor = HangDoctor(
        app, device, config=config, blocking_db=blocking_db, seed=app_seed,
        crowd_kb=crowd_kb,
    )
    detections = []
    is_catalog = bool(app.hang_bug_operations())
    app_users = users if is_catalog else max(1, users // 2)
    per_user = actions_per_user if is_catalog else actions_per_user // 3
    for session in generator.fleet_sessions(app, app_users, per_user):
        executions = engine.run_session(
            app, session.action_names, gap_ms=1000.0
        )
        run = run_detector(doctor, executions, device_id=session.user_id)
        detections.extend(run.detections)
    detected_sites = detected_bug_sites(app, detections)
    if not is_catalog:
        return None, (1 if detections else 0)
    offline_sites = scanner.detected_sites(app)
    missed = [s for s in detected_sites if s not in offline_sites]
    row = Table5Row(
        app_name=app.name,
        category=app.category,
        downloads=app.downloads,
        commit=app.commit,
        issue_id=app.issue_id or 0,
        bugs_detected=len(detected_sites),
        missed_offline=len(missed),
        ground_truth_bugs=len(app.hang_bug_operations()),
    )
    return row, 0


def _table5_shard(payload):
    """Run one contiguous slice of the corpus (module-level so the
    process pool can pickle it); returns a partial :class:`Table5Result`."""
    (device, seed, users, actions_per_user, corpus_size, config,
     indices, blocking_names, crowd_kb) = payload
    apps = build_corpus(seed=seed, size=corpus_size)
    generator = SessionGenerator(seed=seed)
    if blocking_names is None:
        blocking_db = BlockingApiDatabase.initial()
    else:
        # Crowd-synced deployment: start from the fleet's published
        # database, so the scanner and runtime agree on what is known.
        blocking_db = BlockingApiDatabase(blocking_names)
    scanner = OfflineScanner(blocking_db=BlockingApiDatabase(
        blocking_db.names()
    ))
    rows = []
    clean_flagged = 0
    tel = telemetry()
    for index in indices:
        # Track per app, not per shard: Table 5 shards are worker-count
        # slices, so shard-derived names would break the byte-identity
        # of traces across --workers.
        with tel.track(f"fleet/{apps[index].name}"):
            tel.count("fleet.apps.run")
            row, flagged = _run_fleet_app(
                apps[index], device, seed, users, actions_per_user,
                config, generator, scanner, blocking_db, crowd_kb=crowd_kb,
            )
        if row is not None:
            rows.append(row)
        clean_flagged += flagged
    return Table5Result(
        rows=rows,
        apps_tested=len(indices),
        clean_apps_flagged=clean_flagged,
        new_blocking_apis=blocking_db.runtime_discoveries(),
    )


def table5(device, seed=0, users=4, actions_per_user=60,
           corpus_size=FLEET_SIZE, config=None, workers=1,
           blocking_names=None, crowd_kb=None, checkpoint=None,
           resume=False, report=None):
    """Reproduce Table 5's fleet study (scaled-down user base).

    ``workers`` shards the corpus across processes; any worker count
    yields byte-identical results (per-app seeds make every app's run
    independent of corpus position and shard assignment).
    ``checkpoint``/``resume`` journal completed corpus shards so a
    killed run restarts where it left off; shards are worker-count
    slices, so a resume only reuses the journal when ``workers``
    matches (anything else re-runs from scratch, never mixes slices).
    ``report`` collects supervision events (also attached to the
    result as ``execution``).

    The two crowd hooks run the fleet as crowd-synced devices instead
    of isolated ones: *blocking_names* pre-seeds every device's (and
    the offline scanner's) blocking-API database — e.g. the
    ``sorted_names()`` of a published
    :meth:`~repro.crowd.CrowdAggregator.publish_database` — and
    *crowd_kb* (a :class:`~repro.crowd.CrowdKnowledge`) lets devices
    short-circuit fleet-diagnosed bugs without re-collecting traces.
    Defaults reproduce the paper's isolated deployment unchanged.
    A crowd-synced run is never journaled: the knowledge snapshot is
    not part of the run key, so stale shards could not be detected.
    """
    if blocking_names is not None:
        blocking_names = tuple(sorted(blocking_names))
    if report is None:
        report = ExecutionReport()
    slices = chunk_indices(corpus_size, resolve_workers(workers))
    shards = [
        (device, seed, users, actions_per_user, corpus_size, config, indices,
         blocking_names, crowd_kb)
        for indices in slices
    ]
    keys = [f"t5|{indices[0]}-{indices[-1]}" for indices in slices]
    journal = None
    if checkpoint is not None and crowd_kb is None:
        journal = ShardJournal(
            checkpoint,
            run_key("table5", device.name, seed, users, actions_per_user,
                    corpus_size, repr(config), blocking_names,
                    resolve_workers(workers)),
            report=report,
        ).open(resume=resume)
    elif resume and checkpoint is None:
        raise ValueError("resume requires a checkpoint directory")
    parts = checkpointed_map(_table5_shard, shards, keys, journal,
                             workers=workers, report=report)
    result = Table5Result.merge(parts)
    result.execution = report
    return result


@dataclass
class Table6Row:
    """Per-app counter attribution for validation bugs."""

    app_name: str
    new_bugs: int
    by_event: Dict[str, int]


@dataclass
class Table6Result:
    """Which filter event recognizes each previously-unknown bug."""

    rows: List[Table6Row]
    events: Tuple[str, ...]
    undetected: List[str]

    def totals(self):
        """Per-event recognition totals across apps."""
        totals = {event: 0 for event in self.events}
        for row in self.rows:
            for event in self.events:
                totals[event] += row.by_event.get(event, 0)
        return totals

    @property
    def total_bugs(self):
        """All validation bugs covered by the table."""
        return sum(row.new_bugs for row in self.rows)

    def render(self):
        """ASCII rendering of the result.

        A genuine count of zero renders as ``0``; ``-`` is reserved
        for events the run never measured (absent from ``by_event``).
        """
        headers = ["App Name", "New Bugs"] + [
            event.replace("context-switches", "ctx-sw") for event in
            self.events
        ]
        rows = []
        for row in self.rows:
            cells = [row.app_name, row.new_bugs]
            cells += [
                row.by_event[event] if event in row.by_event else "-"
                for event in self.events
            ]
            rows.append(cells)
        totals = self.totals()
        rows.append(
            ["TOTAL", self.total_bugs]
            + [totals[event] for event in self.events]
        )
        table = render_table(
            headers, rows,
            title="Table 6 - Validation bugs recognized per filter event",
        )
        undetected = (
            f"\nbugs not recognized by any event: {self.undetected}"
            if self.undetected else "\nall validation bugs recognized"
        )
        return table + undetected


def table6(device, seed=0, runs=25, config=None, recognize_rate=0.5):
    """Reproduce Table 6's per-counter validation-bug attribution."""
    config = (config or HangDoctorConfig()).validate()
    events = config.filter_events()
    sampler = PmuSampler(device, events, seed=seed)
    engine = ExecutionEngine(device, seed=seed)

    per_app: Dict[str, Table6Row] = {}
    undetected = []
    for case in validation_bug_cases():
        action = case.app.action(case.action_name)
        hangs = 0
        fired = {event: 0 for event in events}
        for _ in range(runs):
            execution = engine.run_action(case.app, action)
            if not execution.has_soft_hang:
                continue
            if case.site_id not in execution.hang_bug_sites():
                continue
            hangs += 1
            for event in events:
                value = sampler.read_difference(
                    execution.timeline, event, MAIN_THREAD, RENDER_THREAD,
                    execution.start_ms, execution.end_ms,
                )
                if value > config.filter_thresholds[event]:
                    fired[event] += 1
        row = per_app.setdefault(
            case.app.name,
            Table6Row(app_name=case.app.name, new_bugs=0,
                      by_event={event: 0 for event in events}),
        )
        row.new_bugs += 1
        recognized = False
        for event in events:
            if hangs and fired[event] / hangs >= recognize_rate:
                row.by_event[event] += 1
                recognized = True
        if not recognized:
            undetected.append(f"{case.key}:{case.site_id}")
    ordered = [
        per_app[app.name] for app in TABLE5_APPS if app.name in per_app
    ]
    return Table6Result(rows=ordered, events=events, undetected=undetected)
