"""Motivation experiments: Figure 1 and Table 2.

Figure 1: the buggy vs fixed main-thread timeline of A Better Camera's
Resume action — moving ``Camera.open`` to a worker thread cuts the
response time from ~423 ms to ~160 ms.

Table 2: the timeout-value dilemma.  Running a pure timeout detector
over the eight Table 1 apps at 5 s / 1 s / 500 ms / 100 ms shows that
only the 100 ms threshold catches all 19 known bugs — at the price of
tracing every slow UI action (33 false-positive actions).
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.metrics import detected_bug_sites, false_positive_actions
from repro.apps.catalog import get_app
from repro.apps.motivation import MOTIVATION_APPS
from repro.detectors.timeout import TimeoutDetector
from repro.detectors.runner import run_detector
from repro.harness.tables import render_table
from repro.sim.engine import ExecutionEngine
from repro.sim.timeline import MAIN_THREAD

#: The timeout sweep of Table 2 (ANR default down to perceivable).
TABLE2_TIMEOUTS_MS = (5000.0, 1000.0, 500.0, 100.0)


@dataclass
class Figure1Result:
    """Mean per-operation timings of the buggy and fixed app."""

    buggy_breakdown: List[Tuple[str, float]]
    buggy_response_ms: float
    fixed_response_ms: float
    moved_api: str

    def render(self):
        """ASCII rendering of the result."""
        rows = [(name, round(ms, 1)) for name, ms in self.buggy_breakdown]
        table = render_table(
            ("operation", "mean ms"), rows,
            title="Figure 1 - A Better Camera 'resume' main-thread breakdown",
        )
        return (
            f"{table}\n"
            f"buggy response time : {self.buggy_response_ms:7.1f} ms\n"
            f"fixed response time : {self.fixed_response_ms:7.1f} ms "
            f"(moved {self.moved_api} to a worker thread)"
        )


def figure1(device, seed=0, runs=30):
    """Reproduce Figure 1's buggy vs fixed response times."""
    app = get_app("A Better Camera")
    resume = app.action("resume")
    open_site = next(
        op for op in resume.operations() if op.api.name == "open"
    )
    fixed_app = app.fixed(site_ids={open_site.site_id})

    engine = ExecutionEngine(device, seed=seed)
    per_op: Dict[str, List[float]] = {}
    buggy_rts = []
    for _ in range(runs):
        execution = engine.run_action(app, resume)
        buggy_rts.append(execution.response_time_ms)
        for event_execution in execution.events:
            for op_execution in event_execution.op_executions:
                if op_execution.thread != MAIN_THREAD:
                    continue
                name = op_execution.op.api.qualified_name
                per_op.setdefault(name, []).append(op_execution.duration_ms)

    fixed_engine = ExecutionEngine(device, seed=seed)
    fixed_rts = [
        fixed_engine.run_action(fixed_app, fixed_app.action("resume"))
        .response_time_ms
        for _ in range(runs)
    ]
    breakdown = [
        (name, float(np.mean(values))) for name, values in per_op.items()
    ]
    breakdown.sort(key=lambda pair: pair[1], reverse=True)
    return Figure1Result(
        buggy_breakdown=breakdown,
        buggy_response_ms=float(np.mean(buggy_rts)),
        fixed_response_ms=float(np.mean(fixed_rts)),
        moved_api=open_site.api.qualified_name,
    )


@dataclass
class Table2Result:
    """Per-app, per-timeout TP/FP counts of pure timeout detection."""

    #: app name -> {timeout_ms: (tp, fp)}
    per_app: Dict[str, Dict[float, Tuple[int, int]]]
    #: app name -> number of ground-truth bugs
    bug_counts: Dict[str, int]

    def totals(self):
        """{timeout: (tp_total, fp_total)} across apps."""
        totals = {}
        for timeout in TABLE2_TIMEOUTS_MS:
            tp = sum(counts[timeout][0] for counts in self.per_app.values())
            fp = sum(counts[timeout][1] for counts in self.per_app.values())
            totals[timeout] = (tp, fp)
        return totals

    def total_bugs(self):
        """Ground-truth bug count across the motivation apps."""
        return sum(self.bug_counts.values())

    def render(self):
        """ASCII rendering of the result."""
        headers = ["App Name"]
        headers += [f"TP@{_label(t)}" for t in TABLE2_TIMEOUTS_MS]
        headers += [f"FP@{_label(t)}" for t in TABLE2_TIMEOUTS_MS]
        rows = []
        for app_name, counts in self.per_app.items():
            row = [app_name]
            row += [counts[t][0] for t in TABLE2_TIMEOUTS_MS]
            row += [counts[t][1] for t in TABLE2_TIMEOUTS_MS]
            rows.append(row)
        totals = self.totals()
        total_row = ["TOTAL"]
        total_row += [
            f"{totals[t][0]}/{self.total_bugs()}" for t in TABLE2_TIMEOUTS_MS
        ]
        total_row += [totals[t][1] for t in TABLE2_TIMEOUTS_MS]
        rows.append(total_row)
        return render_table(
            headers, rows,
            title="Table 2 - Timeout-based detection (distinct bugs / "
                  "distinct FP actions)",
        )


def _label(timeout_ms):
    if timeout_ms >= 1000:
        return f"{timeout_ms / 1000:.0f}s"
    return f"{timeout_ms:.0f}ms"


def table2(device, seed=0, executions_per_action=15):
    """Reproduce Table 2's timeout sweep over the Table 1 apps."""
    per_app = {}
    bug_counts = {}
    for app in MOTIVATION_APPS:
        engine = ExecutionEngine(device, seed=seed)
        names = [
            action.name for action in app.actions
            for _ in range(executions_per_action)
        ]
        executions = engine.run_session(app, names, gap_ms=500.0)
        counts = {}
        for timeout in TABLE2_TIMEOUTS_MS:
            detector = TimeoutDetector(app, timeout_ms=timeout)
            run = run_detector(detector, executions)
            tp_sites = detected_bug_sites(app, run.detections)
            fp_actions = false_positive_actions(app, run.detections)
            counts[timeout] = (len(tp_sites), len(fp_actions))
        per_app[app.name] = counts
        bug_counts[app.name] = len(app.hang_bug_operations())
    return Table2Result(per_app=per_app, bug_counts=bug_counts)
