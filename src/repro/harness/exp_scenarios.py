"""Scenario sweep: per-archetype detection quality over generated fleets.

Deploys Hang Doctor on a taxonomy-generated fleet
(:mod:`repro.scenarios`) exactly the way the Table 5 study deploys it
on the paper corpus — per-app seeds via
:func:`~repro.harness.exp_fleet.fleet_app_seed`, the same session
generator, one :func:`~repro.detectors.runner.run_detector` pass per
user — and scores every app against its archetype's ground truth,
producing a precision/recall/false-positive table per archetype.

Scoring (all at the granularity the paper's Table 5 uses):

* **TP** — distinct ground-truth bug *sites* a detection named
  (:func:`~repro.analysis.metrics.detected_bug_sites`).
* **FN** — ground-truth sites never named.
* **FP** — distinct *actions* blamed without a real bug root
  (:func:`~repro.analysis.metrics.false_positive_actions`).
* **apps flagged** / **FPR** — bug-free apps with at least one
  detection, as a fraction of the archetype's apps; the number the
  ``render_jank_benign`` archetype exists to pressure.

The sweep decomposes at app granularity: fleet generation is
index-addressable and every app's run is a pure function of (device,
root seed, app).  Shards pack by *weight*, not count — archetypes
cost different amounts to simulate, so the elastic scheduler's cost
model (:mod:`repro.sched.cost`) prices each index by its archetype
and :func:`~repro.sched.pack_by_weight` balances the load across
workers.  Merging sorts cells back into fleet order, so any
``--workers`` count, packing, checkpoint resume, or repeat run
renders byte-identical output.
"""

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.metrics import (
    detected_bug_sites,
    false_positive_actions,
)
from repro.apps.sessions import SessionGenerator
from repro.checkpoint import ShardJournal, checkpointed_map, run_key
from repro.core.blocking_db import BlockingApiDatabase
from repro.core.hang_doctor import HangDoctor
from repro.detectors.offline import OfflineScanner
from repro.detectors.runner import run_detector
from repro.harness.exp_fleet import fleet_app_seed
from repro.harness.tables import render_table
from repro.parallel import ExecutionReport, resolve_workers
from repro.scenarios import (
    ARCHETYPES,
    DEFAULT_MIX,
    TAXONOMY,
    assign_archetypes,
    generate_fleet,
    parse_mix,
    render_mix,
)
from repro.sched import CostModel, pack_by_weight
from repro.sim.engine import ExecutionEngine
from repro.telemetry import current as telemetry


@dataclass(frozen=True)
class ScenarioCell:
    """One app's deployment outcome."""

    index: int
    archetype: str
    app_name: str
    #: Ground-truth hang-bug sites in the app.
    truth_sites: int
    #: Distinct ground-truth sites detections named (TP).
    detected_sites: int
    #: Of the detected sites, how many an offline scan also finds.
    offline_sites: int
    #: Distinct actions blamed without a real bug root (FP).
    fp_actions: int
    #: Soft hangs observed across the deployment (context column).
    hangs: int
    detections: int


@dataclass
class ScenarioResult:
    """The full fleet sweep, labelled per archetype."""

    cells: List[ScenarioCell]
    size: int
    #: Normalized ``((archetype, fraction), ...)`` mix.
    mix: Tuple[Tuple[str, float], ...]
    users: int
    actions_per_user: int
    #: How the sweep actually executed; advisory — never rendered.
    execution: Optional[ExecutionReport] = field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def merge(cls, parts):
        """Recombine shard results into fleet order.

        Shards are weight-balanced index *sets* (not contiguous
        slices), so cells are sorted by fleet index — which makes the
        merge independent of packing, worker count, and part order.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("need at least one ScenarioResult to merge")
        cells = []
        for part in parts:
            cells.extend(part.cells)
        cells.sort(key=lambda cell: cell.index)
        first = parts[0]
        return cls(
            cells=cells, size=first.size, mix=first.mix,
            users=first.users, actions_per_user=first.actions_per_user,
        )

    def archetypes(self):
        """Archetype names present, in taxonomy order."""
        present = {cell.archetype for cell in self.cells}
        return [a.name for a in TAXONOMY if a.name in present]

    def row(self, archetype):
        """Aggregate one archetype's cells."""
        cells = [c for c in self.cells if c.archetype == archetype]
        if not cells:
            raise KeyError(f"no cells for archetype {archetype!r}")
        tp = sum(c.detected_sites for c in cells)
        truth = sum(c.truth_sites for c in cells)
        fp = sum(c.fp_actions for c in cells)
        clean_apps = [c for c in cells if c.truth_sites == 0]
        flagged = sum(
            1 for c in clean_apps if c.detections or c.fp_actions
        )
        return {
            "archetype": archetype,
            "apps": len(cells),
            "truth": truth,
            "tp": tp,
            "fn": truth - tp,
            "fp": fp,
            "precision": tp / (tp + fp) if tp + fp else float("nan"),
            "recall": tp / truth if truth else float("nan"),
            "apps_flagged": flagged,
            "fpr": (
                flagged / len(clean_apps) if clean_apps else float("nan")
            ),
            "hangs": sum(c.hangs for c in cells),
            "offline": sum(c.offline_sites for c in cells),
        }

    @staticmethod
    def _ratio(value):
        return "n/a" if math.isnan(value) else f"{value:.3f}"

    def render(self):
        """ASCII rendering: one row per archetype plus a TOTAL row."""
        headers = ("archetype", "apps", "truth", "TP", "FN", "FP",
                   "precision", "recall", "flagged", "FPR", "hangs")
        rows = []
        totals = {"apps": 0, "truth": 0, "tp": 0, "fp": 0, "hangs": 0,
                  "apps_flagged": 0, "offline": 0}
        for archetype in self.archetypes():
            row = self.row(archetype)
            for key in totals:
                totals[key] += row[key]
            rows.append((
                archetype, row["apps"], row["truth"], row["tp"],
                row["fn"], row["fp"], self._ratio(row["precision"]),
                self._ratio(row["recall"]), row["apps_flagged"],
                self._ratio(row["fpr"]), row["hangs"],
            ))
        tp, fp = totals["tp"], totals["fp"]
        truth = totals["truth"]
        rows.append((
            "TOTAL", totals["apps"], truth, tp, truth - tp, fp,
            self._ratio(tp / (tp + fp) if tp + fp else float("nan")),
            self._ratio(tp / truth if truth else float("nan")),
            totals["apps_flagged"], "", totals["hangs"],
        ))
        table = render_table(
            headers, rows,
            title=(
                f"Scenario sweep - {self.size} apps, "
                f"mix {render_mix(self.mix)}"
            ),
        )
        offline = totals["offline"]
        offline_share = (
            "n/a" if not tp else f"{100.0 * (tp - offline) / tp:.0f}%"
        )
        return (
            f"{table}\n"
            f"{offline_share} of detected bug sites are invisible to "
            f"offline scanning; benign-archetype apps wrongly flagged: "
            f"{totals['apps_flagged']}"
        )


def _run_scenario_app(entry, device, seed, users, actions_per_user,
                      config, generator, scanner, blocking_db):
    """Deploy Hang Doctor on one generated app; returns a ScenarioCell.

    Mirrors :func:`repro.harness.exp_fleet._run_fleet_app` — same
    engine/seed/session structure — so scenario numbers are directly
    comparable to the Table 5 fleet study's.
    """
    app = entry.app
    app_seed = fleet_app_seed(seed, app.name)
    engine = ExecutionEngine(device, seed=app_seed)
    doctor = HangDoctor(
        app, device, config=config, blocking_db=blocking_db,
        seed=app_seed,
    )
    detections = []
    hangs = 0
    for session in generator.fleet_sessions(app, users, actions_per_user):
        executions = engine.run_session(
            app, session.action_names, gap_ms=1000.0
        )
        run = run_detector(doctor, executions, device_id=session.user_id)
        detections.extend(run.detections)
        hangs += sum(
            1 for execution in executions if execution.has_soft_hang
        )
    detected = detected_bug_sites(app, detections)
    offline = scanner.detected_sites(app)
    return ScenarioCell(
        index=entry.index,
        archetype=entry.archetype,
        app_name=app.name,
        truth_sites=len(app.hang_bug_operations()),
        detected_sites=len(detected),
        offline_sites=len(detected & offline),
        fp_actions=len(false_positive_actions(app, detections)),
        hangs=hangs,
        detections=len(detections),
    )


def _scenario_shard(payload):
    """Run one contiguous slice of the fleet (module-level so the
    process pool can pickle it); returns a partial ScenarioResult."""
    (device, seed, size, mix, users, actions_per_user, config,
     indices) = payload
    fleet = generate_fleet(size, mix=mix, seed=seed, indices=indices)
    generator = SessionGenerator(seed=seed)
    blocking_db = BlockingApiDatabase.initial()
    scanner = OfflineScanner(
        blocking_db=BlockingApiDatabase(blocking_db.names())
    )
    cells = []
    tel = telemetry()
    for entry in fleet:
        # Track per app, not per shard: shards are worker-count
        # slices, so shard-derived names would break trace
        # byte-identity across --workers.
        with tel.track(f"scenarios/{entry.app.name}"):
            tel.count("scenarios.apps.run")
            cells.append(_run_scenario_app(
                entry, device, seed, users, actions_per_user, config,
                generator, scanner, blocking_db,
            ))
    return ScenarioResult(
        cells=cells, size=size, mix=mix, users=users,
        actions_per_user=actions_per_user,
    )


def scenario_sweep(device, seed=0, size=1000, mix=DEFAULT_MIX, users=2,
                   actions_per_user=12, config=None, workers=1,
                   checkpoint=None, resume=False, report=None):
    """Sweep a generated scenario fleet; returns a ScenarioResult.

    ``size`` and ``mix`` parameterize the fleet (see
    :func:`repro.scenarios.parse_mix` for the mix syntax).  ``workers``
    shards the fleet through the supervised pool as *weight-balanced*
    index sets: each index is priced by its archetype through the
    scheduler's cost model, so a worker drawing the expensive
    archetypes gets fewer apps.  Per-app seeds and index-addressable
    generation make every cell a pure function of its payload, and the
    merge sorts by index, so any worker count yields byte-identical
    output.  ``checkpoint``/``resume`` journal completed shards the
    moment they finish, exactly like the other sweeps; shards are
    worker-count packings, so a resume only reuses the journal when
    ``workers`` matches.
    """
    mix = parse_mix(mix)
    if size <= 0:
        raise ValueError("size must be positive")
    if report is None:
        report = ExecutionReport()
    assignment = assign_archetypes(mix, size)
    cost_model = CostModel.from_trajectory()
    weights = [
        cost_model.archetype_weight(assignment[index][0])
        for index in range(size)
    ]
    groups = pack_by_weight(weights, resolve_workers(workers))
    shards = [
        (device, seed, size, mix, users, actions_per_user, config,
         indices)
        for indices in groups
    ]
    keys = [
        f"sc|{indices[0]}-{indices[-1]}x{len(indices)}"
        for indices in groups
    ]
    journal = None
    if checkpoint is not None:
        journal = ShardJournal(
            checkpoint,
            run_key("scenarios", device.name, seed, size, repr(mix),
                    users, actions_per_user, repr(config),
                    resolve_workers(workers)),
            report=report,
        ).open(resume=resume)
    elif resume:
        raise ValueError("resume requires a checkpoint directory")
    parts = checkpointed_map(_scenario_shard, shards, keys, journal,
                             workers=workers, report=report)
    result = ScenarioResult.merge(parts)
    result.execution = report
    return result


#: Re-exported for callers that want to label results themselves.
ARCHETYPE_NAMES = tuple(a.name for a in TAXONOMY)

__all__ = [
    "ARCHETYPES",
    "ARCHETYPE_NAMES",
    "ScenarioCell",
    "ScenarioResult",
    "scenario_sweep",
]
