"""Seed-stability of the headline results.

A single-seed reproduction can be a lucky draw.  This experiment
repeats the headline measurements across independent seeds and
summarizes their spread, so EXPERIMENTS.md's claims ("Table 5
reproduces exactly") can be read as typical behaviour, not a
cherry-pick:

* Table 5's bugs-detected / missed-offline totals,
* Figure 8's Hang Doctor TP/FP ratios vs TI,
* the S-Checker filter's training recall/prune under refits.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.correlation import correlate, ranked_events
from repro.analysis.thresholds import fit_filter
from repro.harness.exp_comparison import figure8
from repro.harness.exp_fleet import table5
from repro.harness.exp_filter import training_samples
from repro.harness.tables import render_table


@dataclass(frozen=True)
class StabilityResult:
    """Per-metric samples across seeds."""

    #: metric name -> list of per-seed values.
    metrics: Dict[str, List[float]]
    seeds: Tuple[int, ...]

    def mean(self, metric):
        """Across-seed mean of one metric."""
        return float(np.mean(self.metrics[metric]))

    def std(self, metric):
        """Across-seed standard deviation of one metric."""
        return float(np.std(self.metrics[metric]))

    def spread(self, metric):
        """(min, max) across seeds."""
        values = self.metrics[metric]
        return min(values), max(values)

    def render(self):
        """ASCII table: mean / std / min / max per metric."""
        rows = []
        for metric in self.metrics:
            lo, hi = self.spread(metric)
            rows.append((
                metric, round(self.mean(metric), 3),
                round(self.std(metric), 3), round(lo, 3), round(hi, 3),
            ))
        return render_table(
            ("metric", "mean", "std", "min", "max"), rows,
            title=f"Seed stability over seeds {list(self.seeds)}",
        )


def fleet_stability(device, seeds=(3, 7, 13), users=3,
                    actions_per_user=60):
    """Table 5's totals across seeds."""
    metrics = {"bugs_detected": [], "missed_offline": [],
               "clean_flagged": []}
    for seed in seeds:
        result = table5(device, seed=seed, users=users,
                        actions_per_user=actions_per_user)
        metrics["bugs_detected"].append(float(result.total_detected))
        metrics["missed_offline"].append(float(result.total_missed_offline))
        metrics["clean_flagged"].append(float(result.clean_apps_flagged))
    return StabilityResult(metrics=metrics, seeds=tuple(seeds))


def comparison_stability(device, seeds=(2, 5, 11), users=2,
                         actions_per_user=50):
    """Figure 8's Hang Doctor averages across seeds."""
    metrics = {"hd_tp_ratio": [], "hd_fp_ratio": [], "hd_overhead": [],
               "ti_overhead": []}
    for seed in seeds:
        result = figure8(device, seed=seed, users=users,
                         actions_per_user=actions_per_user)
        tp = result.normalized("tp")["Average"]
        fp = result.normalized("fp")["Average"]
        over = result.overheads()["Average"]
        metrics["hd_tp_ratio"].append(tp["HD"])
        metrics["hd_fp_ratio"].append(fp["HD"])
        metrics["hd_overhead"].append(over["HD"])
        metrics["ti_overhead"].append(over["TI"])
    return StabilityResult(metrics=metrics, seeds=tuple(seeds))


def filter_stability(device, seeds=(7, 21, 42), runs_per_case=8):
    """The refitted filter's quality across training realizations."""
    metrics = {"recall": [], "prune": [], "events": []}
    for seed in seeds:
        samples = training_samples(device, seed=seed,
                                   runs_per_case=runs_per_case)
        ranking = [e for e, _ in ranked_events(correlate(samples))]
        fitted = fit_filter(samples, ranking)
        tp, fp, fn, tn = fitted.confusion(samples)
        metrics["recall"].append(tp / (tp + fn))
        metrics["prune"].append(tn / (tn + fp) if (tn + fp) else 0.0)
        metrics["events"].append(float(len(fitted.thresholds)))
    return StabilityResult(metrics=metrics, seeds=tuple(seeds))
