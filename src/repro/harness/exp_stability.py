"""Seed-stability of the headline results.

A single-seed reproduction can be a lucky draw.  This experiment
repeats the headline measurements across independent seeds and
summarizes their spread, so EXPERIMENTS.md's claims ("Table 5
reproduces exactly") can be read as typical behaviour, not a
cherry-pick:

* Table 5's bugs-detected / missed-offline totals,
* Figure 8's Hang Doctor TP/FP ratios vs TI,
* the S-Checker filter's training recall/prune under refits.

Each seed's measurement is independent of every other seed's, so the
sweeps shard per seed across worker processes (``workers=N``) through
:func:`repro.parallel.parallel_map`; single-seed partial results merge
back via :meth:`StabilityResult.merge` in seed order, keeping the
output identical to a serial sweep.
"""

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.correlation import correlate, ranked_events
from repro.analysis.thresholds import fit_filter
from repro.apps.corpus import FLEET_SIZE
from repro.checkpoint import ShardJournal, checkpointed_map, run_key
from repro.harness.exp_comparison import figure8
from repro.harness.exp_fleet import table5
from repro.harness.exp_filter import training_samples
from repro.harness.tables import render_table
from repro.parallel import ExecutionReport, parallel_map


@dataclass(frozen=True)
class StabilityResult:
    """Per-metric samples across seeds."""

    #: metric name -> list of per-seed values.
    metrics: Dict[str, List[float]]
    seeds: Tuple[int, ...]
    #: How the sweep actually executed (supervision events, checkpoint
    #: hits); advisory — never part of the rendered output.
    execution: Optional[ExecutionReport] = field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def merge(cls, parts):
        """Concatenate per-seed partial results in submission order."""
        parts = list(parts)
        if not parts:
            return cls(metrics={}, seeds=())
        metrics = {name: [] for name in parts[0].metrics}
        seeds = []
        for part in parts:
            if set(part.metrics) != set(metrics):
                raise ValueError(
                    f"cannot merge stability results over different "
                    f"metrics: {sorted(metrics)} vs {sorted(part.metrics)}"
                )
            for name in metrics:
                metrics[name].extend(part.metrics[name])
            seeds.extend(part.seeds)
        return cls(metrics=metrics, seeds=tuple(seeds))

    def mean(self, metric):
        """Across-seed mean of one metric."""
        return float(np.mean(self.metrics[metric]))

    def std(self, metric):
        """Across-seed standard deviation of one metric."""
        return float(np.std(self.metrics[metric]))

    def spread(self, metric):
        """(min, max) across seeds."""
        values = self.metrics[metric]
        return min(values), max(values)

    def render(self):
        """ASCII table: mean / std / min / max per metric."""
        rows = []
        for metric in self.metrics:
            lo, hi = self.spread(metric)
            rows.append((
                metric, round(self.mean(metric), 3),
                round(self.std(metric), 3), round(lo, 3), round(hi, 3),
            ))
        return render_table(
            ("metric", "mean", "std", "min", "max"), rows,
            title=f"Seed stability over seeds {list(self.seeds)}",
        )


def _fleet_stability_shard(payload):
    """Table 5 totals for one seed (module-level for the process pool)."""
    device, seed, users, actions_per_user, corpus_size = payload
    result = table5(device, seed=seed, users=users,
                    actions_per_user=actions_per_user,
                    corpus_size=corpus_size)
    return StabilityResult(
        metrics={
            "bugs_detected": [float(result.total_detected)],
            "missed_offline": [float(result.total_missed_offline)],
            "clean_flagged": [float(result.clean_apps_flagged)],
        },
        seeds=(seed,),
    )


def fleet_stability(device, seeds=(3, 7, 13), users=3,
                    actions_per_user=60, corpus_size=FLEET_SIZE,
                    workers=1, checkpoint=None, resume=False,
                    report=None):
    """Table 5's totals across seeds.

    ``checkpoint``/``resume`` journal each seed's completed shard so a
    killed sweep restarts where it left off, byte-identically.
    """
    if report is None:
        report = ExecutionReport()
    shards = [
        (device, seed, users, actions_per_user, corpus_size)
        for seed in seeds
    ]
    journal = None
    if checkpoint is not None:
        journal = ShardJournal(
            checkpoint,
            run_key("stability", device.name, tuple(seeds), users,
                    actions_per_user, corpus_size),
            report=report,
        ).open(resume=resume)
    elif resume:
        raise ValueError("resume requires a checkpoint directory")
    result = StabilityResult.merge(checkpointed_map(
        _fleet_stability_shard, shards, [f"seed|{s}" for s in seeds],
        journal, workers=workers, report=report,
    ))
    return dataclasses.replace(result, execution=report)


def _comparison_stability_shard(payload):
    """Figure 8 averages for one seed (module-level for the pool)."""
    device, seed, users, actions_per_user = payload
    result = figure8(device, seed=seed, users=users,
                     actions_per_user=actions_per_user)
    tp = result.normalized("tp")["Average"]
    fp = result.normalized("fp")["Average"]
    over = result.overheads()["Average"]
    return StabilityResult(
        metrics={
            "hd_tp_ratio": [tp["HD"]],
            "hd_fp_ratio": [fp["HD"]],
            "hd_overhead": [over["HD"]],
            "ti_overhead": [over["TI"]],
        },
        seeds=(seed,),
    )


def comparison_stability(device, seeds=(2, 5, 11), users=2,
                         actions_per_user=50, workers=1):
    """Figure 8's Hang Doctor averages across seeds."""
    shards = [(device, seed, users, actions_per_user) for seed in seeds]
    return StabilityResult.merge(
        parallel_map(_comparison_stability_shard, shards, workers=workers)
    )


def _filter_stability_shard(payload):
    """One training realization's filter quality (module-level)."""
    device, seed, runs_per_case = payload
    samples = training_samples(device, seed=seed,
                               runs_per_case=runs_per_case)
    ranking = [e for e, _ in ranked_events(correlate(samples))]
    fitted = fit_filter(samples, ranking)
    tp, fp, fn, tn = fitted.confusion(samples)
    return StabilityResult(
        metrics={
            "recall": [tp / (tp + fn)],
            "prune": [tn / (tn + fp) if (tn + fp) else 0.0],
            "events": [float(len(fitted.thresholds))],
        },
        seeds=(seed,),
    )


def filter_stability(device, seeds=(7, 21, 42), runs_per_case=8, workers=1):
    """The refitted filter's quality across training realizations."""
    shards = [(device, seed, runs_per_case) for seed in seeds]
    return StabilityResult.merge(
        parallel_map(_filter_stability_shard, shards, workers=workers)
    )
