"""Continuous fleet mode: a long-lived crowd sweep with churn.

The crowd sweep (:mod:`repro.harness.exp_crowd`) deploys a fixed fleet
for a fixed number of sync rounds.  A real deployment never looks like
that: devices join and leave mid-study, the knowledge base republishes
on a cadence rather than per upload, and the scheduler has to keep the
pool busy as the fleet reshapes around it.  ``stream_sweep`` models
exactly that — one long-lived run of *rounds* sync rounds over a fleet
whose membership evolves on a **seeded churn schedule**, dispatched
through the elastic scheduler (:mod:`repro.sched`) so stragglers are
stolen from and dead workers reshard instead of serializing the round.

Determinism contract (the acceptance criteria of the stream smokes):

* **Churn is data, not timing.**  Join/leave events draw from the
  keyed ``device_churn`` fault channel — the verdict for (kind, round,
  slot) depends only on (seed, churn rate), never on draw order — so
  the membership schedule, and with it every published snapshot and
  every device round, is identical for any worker count.
* **Executor failures are timing, not data.**  ``worker_kill_rate`` /
  ``shard_stall_rate`` storms (and real crashes) change *where* work
  runs, never *what* it computes: every device round is a pure
  function of its payload and results merge in key order.  Rendered
  output is byte-identical between a stormed and an unharmed run, and
  the journal run key deliberately excludes the executor knobs so a
  killed run resumes under a different storm.
* **Scheduling telemetry is advisory.**  Steal/reshard counts depend
  on real wall-clock timing, so they live in the
  :class:`~repro.parallel.ExecutionReport` (``--verbose`` /
  ``--report-json``) and on the advisory telemetry channel
  (``stream.sched`` events, one per round) — never in rendered output.
* **Crowd equivalence.**  With churn off, executor faults off, and
  ``publish_every=1``, a static fleet of size *n* reruns the crowd
  sweep's deployment exactly: same per-(device, round) seeds, same
  publish→run→ingest order, same final pending-batch flush — the
  stream's aggregate totals reproduce the ``crowd`` cell bit for bit
  (defended by ``tests/test_sched.py``).
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.checkpoint import ShardJournal, run_key
from repro.core.blocking_db import BlockingApiDatabase
from repro.crowd import CrowdAggregator
from repro.faults import FaultInjector, FaultPlan
from repro.harness.exp_crowd import (
    CROWD_APPS,
    _crowd_device_round,
    _ingest_round,
)
from repro.harness.tables import render_table
from repro.parallel import ExecutionReport
from repro.sched import CostModel, ElasticScheduler
from repro.telemetry import current as telemetry

#: Default sync rounds of a stream run.
DEFAULT_ROUNDS = 6

#: Floor on the auto-sized straggler deadline (seconds) — a spurious
#: steal only wastes work, but not below this.
MIN_DEADLINE = 5.0

#: Safety factor between the cost model's wall-clock estimate for one
#: device round and the steal deadline derived from it.
DEADLINE_FACTOR = 200.0

#: Per-round batch-accounting keys (the crowd sweep's stats contract).
_STAT_KEYS = ("batches_ingested", "batches_dropped", "batches_duplicated",
              "batches_late", "duplicates_ignored")


def stream_deadline(cost_model, app_count, actions):
    """Straggler deadline sized from the perf-trajectory anchor.

    Coarse on purpose: stealing too early costs duplicate work (never
    correctness), stealing too late costs latency.  Returns ``None``
    when the cost model has no wall-clock anchor — stealing then waits
    for an explicit ``deadline``.
    """
    weight = cost_model.device_round_weight(app_count, actions)
    estimate = cost_model.estimate_seconds(weight, actions)
    if estimate is None:
        return None
    return max(MIN_DEADLINE, DEADLINE_FACTOR * estimate)


@dataclass(frozen=True)
class StreamRound:
    """One sync round of the stream — deterministic fields only.

    Everything here is a pure function of (seed, stream parameters):
    membership comes off the keyed churn schedule, the published
    snapshot and device results off pure per-payload functions, and
    upload-fault outcomes off serial parent-side draws.  Timing-driven
    scheduling activity (steals, reshards) is deliberately absent —
    it lives in the execution report.
    """

    round_index: int
    #: Device ids that ran this round (after churn), ascending.
    fleet: Tuple[int, ...]
    joined: Tuple[int, ...]
    left: Tuple[int, ...]
    #: Whether this round refreshed the published snapshot.
    published: bool
    #: Known bugs / blocking APIs in the snapshot the round ran with.
    known_bugs: int
    blocking_apis: int
    phase2_collections: int
    kb_short_circuits: int
    batches_ingested: int
    batches_dropped: int
    batches_duplicated: int
    batches_late: int
    duplicates_ignored: int

    @property
    def collections_per_device(self):
        """Phase-2 collections per member this round (the cost curve)."""
        return self.phase2_collections / max(1, len(self.fleet))


@dataclass
class StreamResult:
    """A full continuous-fleet run: the per-round time series plus the
    final aggregate the last round's snapshot was drawn from."""

    rounds: List[StreamRound]
    fleet_size: int
    churn_rate: float
    publish_every: int
    apps: Tuple[str, ...]
    fault_rate: float
    #: Aggregate totals including the final pending-batch flush —
    #: comparable field-for-field with a crowd-sweep cell.
    phase2_collections: int = 0
    kb_short_circuits: int = 0
    bugs_detected: int = 0
    known_bugs: int = 0
    new_blocking_apis: int = 0
    batches_ingested: int = 0
    batches_dropped: int = 0
    batches_duplicated: int = 0
    batches_late: int = 0
    duplicates_ignored: int = 0
    #: Total device-rounds actually run (fleet sizes summed over rounds).
    device_rounds: int = 0
    #: How the run executed (steals, reshards, retries, checkpoint
    #: hits); advisory — never part of the rendered output.
    execution: Optional[ExecutionReport] = field(
        default=None, compare=False, repr=False
    )

    def final_summary(self):
        """The crowd-comparable aggregate as a plain dict."""
        return {
            "phase2_collections": self.phase2_collections,
            "kb_short_circuits": self.kb_short_circuits,
            "bugs_detected": self.bugs_detected,
            "known_bugs": self.known_bugs,
            "new_blocking_apis": self.new_blocking_apis,
            "batches_ingested": self.batches_ingested,
            "batches_dropped": self.batches_dropped,
            "batches_duplicated": self.batches_duplicated,
            "batches_late": self.batches_late,
            "duplicates_ignored": self.duplicates_ignored,
        }

    def render(self):
        """ASCII rendering: the per-round time series + final totals."""
        headers = ("round", "fleet", "join", "leave", "pub", "known",
                   "APIs", "phase2", "p2/dev", "shortcut", "batches",
                   "drop/dup/late")
        rows = []
        for entry in self.rounds:
            rows.append((
                entry.round_index,
                len(entry.fleet),
                "+" + ",".join(str(d) for d in entry.joined)
                if entry.joined else "-",
                "-" + ",".join(str(d) for d in entry.left)
                if entry.left else "-",
                "yes" if entry.published else "-",
                entry.known_bugs,
                entry.blocking_apis,
                entry.phase2_collections,
                f"{entry.collections_per_device:.2f}",
                entry.kb_short_circuits,
                entry.batches_ingested,
                f"{entry.batches_dropped}/{entry.batches_duplicated}"
                f"/{entry.batches_late}",
            ))
        table = render_table(
            headers, rows,
            title=(
                f"Stream - {len(self.apps)} apps, {len(self.rounds)} "
                f"rounds, fleet {self.fleet_size}, churn "
                f"{self.churn_rate:g}, publish every {self.publish_every}, "
                f"fault rate {self.fault_rate:g}"
            ),
        )
        first = self.rounds[0]
        last = self.rounds[-1]
        return (
            f"{table}\n"
            f"aggregate: {self.phase2_collections} phase-2 collection(s) "
            f"over {self.device_rounds} device-round(s), "
            f"{self.known_bugs} known bug(s) published, "
            f"{self.new_blocking_apis} blocking API(s) discovered; "
            f"per-device cost {first.collections_per_device:.2f} -> "
            f"{last.collections_per_device:.2f} "
            f"(round {first.round_index} -> {last.round_index})"
        )


def _churn_round(faults, round_index, members, next_id, fleet_size):
    """Apply the keyed churn schedule for one round.

    Joins draw per nominal slot (so the arrival rate tracks the
    configured fleet size), then leaves draw per current member;
    the last member never leaves — a fleet that empties has no round
    to run and no uploads to republish, so the stream would stall
    semantically.  Returns (members, next_id, joined, left), members
    ascending.  Every verdict is keyed by (kind, round, id): the
    schedule is a pure function of (seed, churn rate) and identical
    for any worker count or executor-failure schedule.
    """
    joined = []
    left = []
    if faults is not None:
        for slot in range(fleet_size):
            if faults.device_churn_fault("join", round_index, slot):
                joined.append(next_id)
                members = members + [next_id]
                next_id += 1
        for member in sorted(members):
            if len(members) <= 1:
                break
            if faults.device_churn_fault("leave", round_index, member):
                members = [m for m in members if m != member]
                left.append(member)
    return sorted(members), next_id, tuple(joined), tuple(left)


def stream_sweep(device, seed=0, rounds=DEFAULT_ROUNDS, fleet_size=4,
                 churn_rate=0.0, publish_every=1, apps=None,
                 actions_per_round=40, fault_rate=0.0,
                 worker_kill_rate=0.0, shard_stall_rate=0.0, workers=1,
                 checkpoint=None, resume=False, report=None,
                 deadline=None):
    """Run the continuous fleet; returns a :class:`StreamResult`.

    ``churn_rate`` drives the keyed join/leave schedule;
    ``publish_every`` sets the knowledge-republish cadence (1 = every
    round, the crowd sweep's behaviour); ``fault_rate`` drives the
    upload-path seams exactly as in the crowd sweep.
    ``worker_kill_rate`` / ``shard_stall_rate`` inject an executor
    storm for the elastic scheduler to absorb — they never change
    rendered output and are deliberately excluded from the checkpoint
    run key, so a killed run resumes under any storm.  ``deadline``
    overrides the cost-model-sized straggler deadline (wall seconds;
    only timing, never output).
    """
    apps = tuple(apps) if apps else CROWD_APPS
    if fleet_size < 1:
        raise ValueError(f"fleet_size must be >= 1, got {fleet_size}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if publish_every < 1:
        raise ValueError(
            f"publish_every must be >= 1, got {publish_every}"
        )
    for name, rate in (("churn_rate", churn_rate),
                       ("fault_rate", fault_rate),
                       ("worker_kill_rate", worker_kill_rate),
                       ("shard_stall_rate", shard_stall_rate)):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {rate}")
    if report is None:
        report = ExecutionReport()
    journal = None
    if checkpoint is not None:
        # The run key spans everything that shapes output — and
        # nothing that only shapes timing: workers, the executor-storm
        # rates, and the deadline are all absent on purpose.
        journal = ShardJournal(
            checkpoint,
            run_key("stream", device.name, seed, rounds, fleet_size,
                    churn_rate, publish_every, apps, actions_per_round,
                    fault_rate),
            report=report,
        ).open(resume=resume)
    elif resume:
        raise ValueError("resume requires a checkpoint directory")
    churn = None
    if churn_rate > 0.0:
        churn = FaultInjector(FaultPlan(device_churn_rate=churn_rate),
                              seed=seed, scope=("stream-churn",))
    upload = None
    if fault_rate > 0.0:
        upload = FaultInjector(
            FaultPlan(report_drop_rate=fault_rate,
                      report_duplicate_rate=fault_rate,
                      report_delay_rate=fault_rate),
            seed=seed, scope=("stream-upload",),
        )
    storm = None
    if worker_kill_rate > 0.0 or shard_stall_rate > 0.0:
        storm = FaultInjector(
            FaultPlan(worker_kill_rate=worker_kill_rate,
                      shard_stall_rate=shard_stall_rate),
            seed=seed, scope=("stream-exec",),
        )
    cost_model = CostModel.from_trajectory()
    if deadline is None:
        deadline = stream_deadline(cost_model, len(apps),
                                   actions_per_round)
    scheduler = ElasticScheduler(
        workers=workers, cost_model=cost_model, faults=storm,
        journal=journal, report=report, deadline=deadline, seed=seed,
    )
    members = list(range(fleet_size))
    next_id = fleet_size
    aggregator = CrowdAggregator()
    pending = []
    snapshot = None
    series = []
    sites = set()
    totals = dict.fromkeys(_STAT_KEYS, 0)
    total_phase2 = 0
    total_shorts = 0
    device_rounds = 0
    tel = telemetry()
    with tel.track("stream"):
        for round_index in range(rounds):
            with tel.span("stream.round", round=round_index):
                members, next_id, joined, left = _churn_round(
                    churn, round_index, members, next_id, fleet_size
                )
                report.churn_events += len(joined) + len(left)
                published = round_index % publish_every == 0
                if published or snapshot is None:
                    snapshot = (
                        aggregator.knowledge(),
                        tuple(aggregator.publish_database().sorted_names()),
                    )
                knowledge, db_names = snapshot
                tel.event(
                    "stream.publish", float(round_index),
                    fleet=len(members), known_bugs=len(knowledge),
                    blocking_apis=len(db_names), refreshed=published,
                )
                payloads = [
                    (device, seed, apps, device_index, round_index,
                     actions_per_round, knowledge, db_names,
                     f"stream/d{device_index}/r{round_index}")
                    for device_index in members
                ]
                keys = [
                    f"stream|r{round_index}|d{device_index}"
                    for device_index in members
                ]
                weights = [
                    cost_model.device_round_weight(len(apps),
                                                   actions_per_round)
                ] * len(payloads)
                steals_before = report.steals
                reshards_before = report.reshards
                results = scheduler.map(_crowd_device_round, payloads,
                                        keys, weights=weights)
                tel.advisory_event(
                    "stream.sched", round=round_index,
                    steals=report.steals - steals_before,
                    reshards=report.reshards - reshards_before,
                    dispatch_rounds=scheduler.dispatch_rounds,
                )
                phase2 = sum(r.phase2_collections for r in results)
                shorts = sum(r.kb_short_circuits for r in results)
                for result in results:
                    sites.update(result.detected_sites)
                stats = dict.fromkeys(_STAT_KEYS, 0)
                aggregator, pending = _ingest_round(
                    aggregator, pending, results, upload, stats
                )
                for key in _STAT_KEYS:
                    totals[key] += stats[key]
                total_phase2 += phase2
                total_shorts += shorts
                device_rounds += len(members)
                # Deterministic per-round accounting on the trace
                # channel: pure function of (seed, stream params), so
                # the ops plane's round-domain rollups can be rebuilt
                # from trace.jsonl alone, bit for bit.
                tel.event(
                    "stream.round.stats", float(round_index),
                    round=round_index, fleet=len(members),
                    phase2_collections=phase2, kb_short_circuits=shorts,
                    **stats,
                )
                series.append(StreamRound(
                    round_index=round_index,
                    fleet=tuple(members),
                    joined=joined,
                    left=left,
                    published=published,
                    known_bugs=len(knowledge),
                    blocking_apis=len(db_names),
                    phase2_collections=phase2,
                    kb_short_circuits=shorts,
                    **stats,
                ))
        if pending:
            # Batches still in flight when the stream ends arrive late
            # but arrive — same flush the crowd sweep performs, so the
            # static-fleet aggregate converges to the crowd cell.
            stats = dict.fromkeys(_STAT_KEYS, 0)
            aggregator, _ = _ingest_round(aggregator, pending, (), None,
                                          stats)
            for key in _STAT_KEYS:
                totals[key] += stats[key]
    published_db = aggregator.publish_database()
    return StreamResult(
        rounds=series,
        fleet_size=fleet_size,
        churn_rate=churn_rate,
        publish_every=publish_every,
        apps=apps,
        fault_rate=fault_rate,
        phase2_collections=total_phase2,
        kb_short_circuits=total_shorts,
        bugs_detected=len(sites),
        known_bugs=len(aggregator.knowledge()),
        new_blocking_apis=len(published_db.runtime_discoveries()),
        device_rounds=device_rounds,
        execution=report,
        **totals,
    )
