"""The paper's published numbers, as checkable data.

Every quantitative claim this reproduction targets is encoded as a
:class:`Claim` with the paper's value and a tolerance expressing how
tightly a simulator-substrate reproduction should match ("shape" vs
"exact").  :func:`verify_claims` evaluates a set of measured values
and produces a verdict table — the machine-readable core of
EXPERIMENTS.md.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.harness.tables import render_table


@dataclass(frozen=True)
class Claim:
    """One quantitative claim from the paper."""

    key: str
    #: Where in the paper the number comes from.
    source: str
    #: The paper's published value.
    paper_value: float
    #: Acceptable absolute deviation for a "holds" verdict (None means
    #: directional-only: just compare the sign of (measured - ref)).
    tolerance: Optional[float] = None
    #: For directional claims: measured must be on this side of
    #: paper_value ("<=", ">=").
    direction: Optional[str] = None

    def verdict(self, measured):
        """'holds' / 'close' / 'deviates' for a measured value."""
        if self.direction == "<=":
            return "holds" if measured <= self.paper_value else "deviates"
        if self.direction == ">=":
            return "holds" if measured >= self.paper_value else "deviates"
        delta = abs(measured - self.paper_value)
        if delta <= self.tolerance:
            return "holds"
        if delta <= 2 * self.tolerance:
            return "close"
        return "deviates"


#: The reproduction's target claims (paper section in `source`).
PAPER_CLAIMS = {
    claim.key: claim for claim in (
        # Figure 1
        Claim("fig1_buggy_ms", "Fig. 1", 423.0, tolerance=30.0),
        Claim("fig1_fixed_ms", "Fig. 1", 160.0, tolerance=20.0),
        # Table 2 (totals at each timeout)
        Claim("t2_tp_5s", "Table 2", 0.0, tolerance=0.0),
        Claim("t2_tp_1s", "Table 2", 1.0, tolerance=0.0),
        Claim("t2_tp_500ms", "Table 2", 2.0, tolerance=1.0),
        Claim("t2_tp_100ms", "Table 2", 19.0, tolerance=0.0),
        Claim("t2_fp_500ms", "Table 2", 8.0, tolerance=3.0),
        Claim("t2_fp_100ms", "Table 2", 33.0, tolerance=5.0),
        # Table 3
        Claim("t3_top_corr", "Table 3(a)", 0.658, tolerance=0.1),
        Claim("t3_diff_gain_pct", "Table 3", 14.0, tolerance=8.0),
        # Figure 4 / filter
        Claim("fig4_recall", "Fig. 4", 1.0, tolerance=0.05),
        Claim("fig4_prune", "Fig. 4", 0.64, tolerance=0.2),
        Claim("fig4_accuracy", "Fig. 4", 0.81, tolerance=0.1),
        # Table 5
        Claim("t5_bugs", "Table 5", 34.0, tolerance=2.0),
        Claim("t5_missed_offline_pct", "Table 5", 68.0, tolerance=6.0),
        # Table 6
        Claim("t6_union", "Table 6", 23.0, tolerance=0.0),
        # Figure 8
        Claim("fig8_hd_tp", "Fig. 8(a)", 0.80, tolerance=0.15),
        Claim("fig8_hd_fp", "Fig. 8(b)", 0.10, direction="<="),
        Claim("fig8_utl_fp", "Fig. 8(b)", 8.0, direction=">="),
        Claim("fig8_uth_tp", "Fig. 8(a)", 0.55, direction="<="),
        Claim("fig8_ti_overhead", "Fig. 8(c)", 2.26, tolerance=0.8),
        Claim("fig8_hd_cheaper_than_ti", "Fig. 8(c)", 1.0, direction="<="),
    )
}


@dataclass(frozen=True)
class ClaimCheck:
    """One evaluated claim."""

    claim: Claim
    measured: float
    verdict: str


def verify_claims(measured: Dict[str, float], claims=None):
    """Evaluate measured values against the paper claims.

    Returns a list of :class:`ClaimCheck` (unknown keys are rejected,
    claims without measurements are skipped).
    """
    claims = claims or PAPER_CLAIMS
    unknown = set(measured) - set(claims)
    if unknown:
        raise KeyError(f"measurements for unknown claims: {sorted(unknown)}")
    checks = []
    for key, value in measured.items():
        claim = claims[key]
        checks.append(
            ClaimCheck(claim=claim, measured=float(value),
                       verdict=claim.verdict(float(value)))
        )
    return checks


def render_checks(checks):
    """Verdict table over evaluated claims."""
    rows = []
    for check in sorted(checks, key=lambda c: c.claim.source):
        rows.append((
            check.claim.key, check.claim.source,
            round(check.claim.paper_value, 3),
            round(check.measured, 3), check.verdict,
        ))
    return render_table(
        ("claim", "source", "paper", "measured", "verdict"), rows,
        title="Paper-claim verification",
    )


def collect_measurements(device, seed=0):
    """Run the experiments needed to evaluate every claim.

    This is the heavyweight path behind ``verify_reproduction`` — a
    full regeneration of the headline experiments.
    """
    from repro.harness import exp_comparison, exp_filter, exp_fleet, \
        exp_motivation

    measured = {}

    fig1 = exp_motivation.figure1(device, seed=seed or 5)
    measured["fig1_buggy_ms"] = fig1.buggy_response_ms
    measured["fig1_fixed_ms"] = fig1.fixed_response_ms

    t2 = exp_motivation.table2(device, seed=seed or 5)
    totals = t2.totals()
    measured["t2_tp_5s"] = totals[5000.0][0]
    measured["t2_tp_1s"] = totals[1000.0][0]
    measured["t2_tp_500ms"] = totals[500.0][0]
    measured["t2_tp_100ms"] = totals[100.0][0]
    measured["t2_fp_500ms"] = totals[500.0][1]
    measured["t2_fp_100ms"] = totals[100.0][1]

    t3 = exp_filter.table3(device, seed=seed or 7)
    measured["t3_top_corr"] = t3.diff_ranking[0][1]
    measured["t3_diff_gain_pct"] = t3.improvement_percent()

    fig4 = exp_filter.figure4(device, seed=seed or 7)
    measured["fig4_recall"] = fig4.recall
    measured["fig4_prune"] = fig4.prune_rate
    measured["fig4_accuracy"] = fig4.accuracy

    t5 = exp_fleet.table5(device, seed=seed or 7, users=5,
                          actions_per_user=80)
    measured["t5_bugs"] = t5.total_detected
    measured["t5_missed_offline_pct"] = t5.missed_offline_percent

    t6 = exp_fleet.table6(device, seed=seed or 11)
    measured["t6_union"] = t6.total_bugs - len(t6.undetected)

    fig8 = exp_comparison.figure8(device, seed=seed or 2)
    tp = fig8.normalized("tp")["Average"]
    fp = fig8.normalized("fp")["Average"]
    over = fig8.overheads()["Average"]
    measured["fig8_hd_tp"] = tp["HD"]
    measured["fig8_hd_fp"] = fp["HD"]
    measured["fig8_utl_fp"] = fp["UTL"]
    measured["fig8_uth_tp"] = tp["UTH"]
    measured["fig8_ti_overhead"] = over["TI"]
    measured["fig8_hd_cheaper_than_ti"] = over["HD"] / over["TI"]
    return measured


def verify_reproduction(device, seed=0):
    """Full claim verification; returns (checks, rendered table)."""
    measured = collect_measurements(device, seed=seed)
    checks = verify_claims(measured)
    return checks, render_checks(checks)
