"""One-button reproduction.

:func:`generate_all` runs every paper experiment end to end and writes
the rendered artifacts to a directory — the same content the benchmark
suite archives, callable from scripts and from
``python -m repro reproduce``.
"""

import pathlib
import time

from repro.harness import (
    exp_casestudy,
    exp_comparison,
    exp_filter,
    exp_fleet,
    exp_motivation,
)

#: (artifact name, experiment callable) in paper order.  Each callable
#: takes (device, seed) and returns an object with ``render()``.
EXPERIMENTS = (
    ("figure1", lambda device, seed: exp_motivation.figure1(
        device, seed=seed)),
    ("table2", lambda device, seed: exp_motivation.table2(
        device, seed=seed)),
    ("table3", lambda device, seed: exp_filter.table3(device, seed=seed)),
    ("table4", lambda device, seed: exp_filter.table4(device, seed=seed)),
    ("figure4", lambda device, seed: exp_filter.figure4(device, seed=seed)),
    ("figure5", lambda device, seed: exp_filter.figure5(device, seed=seed)),
    ("figure6", lambda device, seed: exp_casestudy.figure6(
        device, seed=3 if seed == 0 else seed)),
    ("figure7", lambda device, seed: exp_casestudy.figure7(
        device, seed=1 if seed == 0 else seed)),
    ("table5", lambda device, seed: exp_fleet.table5(
        device, seed=7 if seed == 0 else seed, users=5,
        actions_per_user=80)),
    ("table6", lambda device, seed: exp_fleet.table6(
        device, seed=11 if seed == 0 else seed)),
    ("figure8", lambda device, seed: exp_comparison.figure8(
        device, seed=2 if seed == 0 else seed)),
)


def generate_all(device, out_dir, seed=0, progress=None):
    """Run every experiment; write ``<name>.txt`` files to *out_dir*.

    *progress(name, seconds)* is called after each experiment.
    Returns {name: rendered text}.
    """
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    rendered = {}
    for name, runner in EXPERIMENTS:
        started = time.perf_counter()
        result = runner(device, seed)
        text = result.render()
        (out_path / f"{name}.txt").write_text(text + "\n")
        rendered[name] = text
        if progress is not None:
            progress(name, time.perf_counter() - started)
    return rendered
