"""One-button reproduction.

:func:`generate_all` runs every paper experiment end to end and writes
the rendered artifacts to a directory — the same content the benchmark
suite archives, callable from scripts and from
``python -m repro reproduce``.
"""

import pathlib
import time

from repro.core.persistence import atomic_write_text
from repro.telemetry import current as telemetry
from repro.harness import (
    exp_casestudy,
    exp_comparison,
    exp_filter,
    exp_fleet,
    exp_motivation,
)

#: (artifact name, experiment callable) in paper order.  Each callable
#: takes (device, seed, workers) and returns an object with
#: ``render()``; only the app-sharded experiments (Table 5, Figure 8)
#: use the worker count — for every experiment the output is
#: identical regardless of it.
EXPERIMENTS = (
    ("figure1", lambda device, seed, workers=1: exp_motivation.figure1(
        device, seed=seed)),
    ("table2", lambda device, seed, workers=1: exp_motivation.table2(
        device, seed=seed)),
    ("table3", lambda device, seed, workers=1: exp_filter.table3(
        device, seed=seed)),
    ("table4", lambda device, seed, workers=1: exp_filter.table4(
        device, seed=seed)),
    ("figure4", lambda device, seed, workers=1: exp_filter.figure4(
        device, seed=seed)),
    ("figure5", lambda device, seed, workers=1: exp_filter.figure5(
        device, seed=seed)),
    ("figure6", lambda device, seed, workers=1: exp_casestudy.figure6(
        device, seed=3 if seed == 0 else seed)),
    ("figure7", lambda device, seed, workers=1: exp_casestudy.figure7(
        device, seed=1 if seed == 0 else seed)),
    ("table5", lambda device, seed, workers=1: exp_fleet.table5(
        device, seed=7 if seed == 0 else seed, users=5,
        actions_per_user=80, workers=workers)),
    ("table6", lambda device, seed, workers=1: exp_fleet.table6(
        device, seed=11 if seed == 0 else seed)),
    ("figure8", lambda device, seed, workers=1: exp_comparison.figure8(
        device, seed=2 if seed == 0 else seed, workers=workers)),
)


def generate_all(device, out_dir, seed=0, progress=None, workers=1):
    """Run every experiment; write ``<name>.txt`` files to *out_dir*.

    *progress(name, seconds)* is called after each experiment.
    *workers* shards the fleet-scale experiments across processes
    without changing any output.  Returns {name: rendered text}.
    """
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    rendered = {}
    tel = telemetry()
    with tel.track("reproduce"):
        for name, runner in EXPERIMENTS:
            started = time.perf_counter()
            # One tick-clock span per artifact (wall time is for the
            # progress line only — it never enters the trace).
            with tel.span(f"reproduce.{name}"):
                result = runner(device, seed, workers)
                text = result.render()
            # Crash-atomic so an interrupted reproduction never leaves
            # a half-written artifact to be diffed against.
            atomic_write_text(out_path / f"{name}.txt", text + "\n")
            rendered[name] = text
            if progress is not None:
                progress(name, time.perf_counter() - started)
    return rendered
