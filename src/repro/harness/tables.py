"""ASCII table rendering for experiment output."""


def _format_cell(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-2:
            return f"{value:.3g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers, rows, title=None):
    """Render a list-of-rows table with aligned columns."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
