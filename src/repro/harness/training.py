"""Training and validation set construction (paper §3.3.1).

The paper trains S-Checker on 10 well-known soft hang bugs (ones that
offline tools also detect) plus 11 UI-APIs, and validates on the
previously-unknown bugs of Table 5 that offline tools miss.  None of
the training bugs appear in the validation set.

A *case* is (app, action, ground-truth label); running a case's action
and keeping hang executions yields labelled counter samples for the
correlation/threshold analyses.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.correlation import CounterSample, collect_samples
from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog import TABLE5_APPS, get_app
from repro.apps.catalog_helpers import op, ui_action
from repro.sim.counters import ALL_EVENTS
from repro.sim.pmu import PmuSampler


@dataclass(frozen=True)
class Case:
    """One labelled (app, action) workload."""

    app: AppSpec
    action_name: str
    is_hang_bug: bool
    #: Site id of the targeted bug (None for UI cases).
    site_id: str = None

    @property
    def key(self):
        """Readable case identifier (app/action)."""
        return f"{self.app.name}/{self.action_name}"


#: (app name, action name) of the 10 training bugs: well-known blocking
#: APIs from Table 5 apps that offline tools detect too.
TRAINING_BUG_SITES: Tuple[Tuple[str, str], ...] = (
    ("DashClock", "save_settings"),
    ("AndStatus", "scroll_timeline"),
    ("CycleStreets", "open_itinerary"),
    ("OwnTracks", "load_track"),
    ("StickerCamera", "take_photo"),
    ("StickerCamera", "apply_sticker"),
    ("StickerCamera", "save_photo"),
    ("AntennaPod", "play_episode"),
    ("Sage Math", "cache_cell"),
    ("Lens-Launcher", "load_app_icons"),
)


def build_ui_probe_app(copies=3, sigma=0.55):
    """An app with one action per training UI-API.

    Each action repeats its UI API a few times so that executions
    reliably exceed the 100 ms perceivable delay — the paper samples
    *soft hangs* caused by UI-APIs, not fast paths.  Durations get a
    wide spread (*sigma*): the paper's UI samples come from real apps
    whose layouts/lists vary hugely in size, giving the UI class the
    long tail visible in Figure 4.
    """
    from dataclasses import replace

    actions = []
    for api in apis.TRAINING_UI_APIS:
        label = api.name.strip("<>").replace(".", "_")
        spread = replace(api, sigma=sigma)
        actions.append(
            ui_action(
                f"ui_{label}_{api.clazz.rsplit('.', 1)[-1]}",
                *([spread] * copies),
                caller=f"probe{label.title()}",
            )
        )
    return AppSpec(
        name="UiProbe", package="com.repro.uiprobe", category="Tools",
        downloads=0, commit="0000000", actions=tuple(actions),
    )


def training_bug_cases():
    """The 10 known-bug training cases."""
    cases = []
    for app_name, action_name in TRAINING_BUG_SITES:
        app = get_app(app_name)
        action = app.action(action_name)
        bug_ops = action.hang_bug_operations()
        if not bug_ops:
            raise ValueError(
                f"training case {app_name}/{action_name} has no bug"
            )
        cases.append(
            Case(
                app=app, action_name=action_name, is_hang_bug=True,
                site_id=bug_ops[0].site_id,
            )
        )
    return cases


def training_ui_cases(copies=3):
    """The 11 UI-API training cases (one per training UI API)."""
    probe = build_ui_probe_app(copies=copies)
    return [
        Case(app=probe, action_name=action.name, is_hang_bug=False)
        for action in probe.actions
    ]


def validation_bug_cases():
    """The previously-unknown bugs of Table 5 (missed offline).

    One case per (action, bug site); excludes every training bug.
    """
    training_keys = set(TRAINING_BUG_SITES)
    cases = []
    for app in TABLE5_APPS:
        for action in app.actions:
            for bug_op in action.hang_bug_operations():
                if bug_op.api.known_blocking:
                    continue  # known bugs are training material
                if (app.name, action.name) in training_keys:
                    continue
                cases.append(
                    Case(
                        app=app, action_name=action.name, is_hang_bug=True,
                        site_id=bug_op.site_id,
                    )
                )
    return cases


def collect_training_samples(engine, cases, runs_per_case=10, mode="diff",
                             events=ALL_EVENTS, max_attempts_factor=6):
    """Run each case until *runs_per_case* labelled hang samples exist.

    Bug cases contribute only executions whose soft hang is actually
    caused by the bug (the paper samples "user actions that have soft
    hangs caused by the soft hang bugs ... in the training set"); UI
    cases contribute any hang execution.
    """
    sampler = PmuSampler(engine.device, events, seed=engine.seed)
    samples: List[CounterSample] = []
    for case in cases:
        action = case.app.action(case.action_name)
        collected = 0
        attempts = 0
        while collected < runs_per_case:
            attempts += 1
            if attempts > runs_per_case * max_attempts_factor:
                raise RuntimeError(
                    f"case {case.key} rarely hangs as labelled; "
                    f"collected {collected}/{runs_per_case}"
                )
            execution = engine.run_action(case.app, action)
            if not execution.has_soft_hang:
                continue
            if case.is_hang_bug and not execution.bug_caused_hang():
                continue
            samples.append(
                collect_samples(
                    execution, case.is_hang_bug, mode=mode, events=events,
                    sampler=sampler, source=case.key,
                )
            )
            collected += 1
    return samples
