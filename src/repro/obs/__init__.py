"""The ops plane: exposition, rollups, SLOs, and profiling views.

``repro.obs`` turns the raw deterministic telemetry of
:mod:`repro.telemetry` into operable signals (see the "Ops plane"
section of ``docs/observability.md``):

* :mod:`repro.obs.prometheus` — Prometheus text exposition of any
  :class:`~repro.telemetry.MetricsRegistry`, served live by
  ``repro.serve`` as ``GET /metrics``;
* :mod:`repro.obs.rollup` — fixed-window rollups of trace records and
  harness results, with the registry's associative merge and hence
  byte-identical ``rollups.jsonl`` across workers and resume;
* :mod:`repro.obs.slo` — declarative objectives, error budgets, and
  multi-window burn-rate alerts on ``alerts.jsonl``;
* :mod:`repro.obs.profile` — collapsed-stack flamegraph export and
  self-time attribution;
* :mod:`repro.obs.dash` — the ``repro dash`` terminal dashboard.

Like the telemetry package it builds on, ``repro.obs`` imports
nothing from the harness or serve layers — those call *into* it.
"""

from repro.obs.dash import render_dash
from repro.obs.exports import (
    OBS_FILENAMES,
    build_rollup,
    write_obs_exports,
)
from repro.obs.profile import (
    collapse_stacks,
    flamegraph_text,
    self_time_rows,
)
from repro.obs.prometheus import (
    CONTENT_TYPE,
    render_prometheus,
    split_labels,
)
from repro.obs.rollup import (
    DEFAULT_WINDOW_MS,
    Rollup,
    bucket_quantile,
    records_from_jsonl,
    rollup_from_session,
)
from repro.obs.slo import (
    DEFAULT_LONG_WINDOWS,
    DEFAULT_OBJECTIVES,
    PAGE_BURN,
    TICKET_BURN,
    alerts_to_jsonl,
    evaluate_slos,
    render_slo_table,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_LONG_WINDOWS",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_WINDOW_MS",
    "OBS_FILENAMES",
    "PAGE_BURN",
    "Rollup",
    "TICKET_BURN",
    "alerts_to_jsonl",
    "bucket_quantile",
    "build_rollup",
    "collapse_stacks",
    "evaluate_slos",
    "flamegraph_text",
    "records_from_jsonl",
    "render_dash",
    "render_prometheus",
    "render_slo_table",
    "rollup_from_session",
    "self_time_rows",
    "split_labels",
    "write_obs_exports",
]
