"""``repro dash`` — a terminal dashboard over a telemetry directory.

Reads the deterministic exports of a ``--telemetry-dir`` (or any
directory holding ``trace.jsonl``), rebuilds the rollup/SLO/profile
views in-process, and renders one plain-text page: SLO status, the
busiest rollup windows, and the heaviest spans by self time.  Pure
function of the directory's bytes — rendering the same directory
twice produces identical text.
"""

import pathlib

from repro.obs.profile import self_time_rows
from repro.obs.rollup import (
    DEFAULT_WINDOW_MS,
    Rollup,
    records_from_jsonl,
)
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    evaluate_slos,
    render_slo_table,
)


def load_records(directory):
    """The ``trace.jsonl`` records of *directory* ([] when absent)."""
    path = pathlib.Path(directory) / "trace.jsonl"
    if not path.exists():
        return []
    return records_from_jsonl(path)


def _format_index(index):
    return str(index)


def _window_lines(rollup, limit):
    rows = rollup.rows()
    lines = []
    for row in rows[:limit]:
        cells = [f"{row['domain']}[{_format_index(row['index'])}]"]
        for name, value in row["counters"].items():
            cells.append(f"{name}={value}")
        for name, entry in row["histograms"].items():
            p95 = entry["p95"]
            cells.append(
                f"{name}: n={entry['count']} "
                f"p95={'>' if p95 is None else ''}"
                f"{'inf' if p95 is None else f'{p95:g}'}"
            )
        for name, value in row["derived"].items():
            cells.append(f"{name}={value:g}")
        lines.append("  " + " ".join(cells))
    if len(rows) > limit:
        lines.append(f"  ... {len(rows) - limit} more window(s)")
    return lines


def render_dash(directory, window_ms=DEFAULT_WINDOW_MS,
                objectives=DEFAULT_OBJECTIVES, limit=8):
    """The full dashboard text for *directory*."""
    records = load_records(directory)
    rollup = Rollup(window_ms=window_ms).add_records(records)
    statuses, alerts = evaluate_slos(rollup, objectives=objectives)
    lines = [f"== ops dashboard: {directory} =="]
    lines.append("")
    lines.append("-- SLOs --")
    lines.append(render_slo_table(statuses))
    lines.append("")
    lines.append(f"-- alerts ({len(alerts)}) --")
    if not alerts:
        lines.append("  (none)")
    for alert in alerts[:limit]:
        lines.append(
            f"  [{alert['severity']}] {alert['objective']} "
            f"{alert['domain']}[{_format_index(alert['index'])}] "
            f"burn short={alert['burn_short']:g} "
            f"long={alert['burn_long']:g}"
        )
    if len(alerts) > limit:
        lines.append(f"  ... {len(alerts) - limit} more alert(s)")
    lines.append("")
    lines.append(f"-- rollup windows ({len(rollup)}) --")
    if not len(rollup):
        lines.append("  (no windows — was the run traced?)")
    lines.extend(_window_lines(rollup, limit))
    lines.append("")
    lines.append("-- top spans by self time --")
    rows = self_time_rows(records, limit=limit)
    if not rows:
        lines.append("  (no spans recorded)")
    for row in rows:
        lines.append(
            f"  {row['name']:<28} x{row['count']:<5} "
            f"self={row['total_self']:.3f} mean={row['mean_self']:.3f}"
        )
    return "\n".join(lines)
