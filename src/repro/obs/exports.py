"""The ops plane's export files: rollups, alerts, flamegraph.

One entry point, :func:`write_obs_exports`, turns a telemetry session
(or raw records read back from ``trace.jsonl``) plus optional harness
results into the three deterministic ops-plane files.  They ride the
same byte-identity guarantee as the PR 5 exports: identical across
``--workers`` counts, repeat runs, and SIGKILL + resume, which the
``obs-smoke`` CI job byte-diffs for.
"""

import pathlib

from repro.obs.profile import flamegraph_text
from repro.obs.rollup import DEFAULT_WINDOW_MS, Rollup
from repro.obs.slo import DEFAULT_OBJECTIVES, alerts_to_jsonl, evaluate_slos

#: Filenames written by :func:`write_obs_exports`.
OBS_FILENAMES = ("rollups.jsonl", "alerts.jsonl", "flamegraph.txt")


def build_rollup(records=None, stream=None, chaos=None, scenarios=None,
                 window_ms=DEFAULT_WINDOW_MS):
    """Fold every provided input into one :class:`Rollup`."""
    rollup = Rollup(window_ms=window_ms)
    if records is not None:
        rollup.add_records(records)
    if stream is not None:
        rollup.add_stream(stream)
    if chaos is not None:
        rollup.add_chaos(chaos)
    if scenarios is not None:
        rollup.add_scenarios(scenarios)
    return rollup


def write_obs_exports(directory, session=None, records=None, stream=None,
                      chaos=None, scenarios=None,
                      window_ms=DEFAULT_WINDOW_MS,
                      objectives=DEFAULT_OBJECTIVES):
    """Write :data:`OBS_FILENAMES` into *directory*; returns the paths.

    *session* supplies trace records (and the flamegraph); *records*
    may be passed instead when working offline from ``trace.jsonl``.
    Harness results (*stream*, *chaos*, *scenarios*) enrich the rollup
    with their respective window domains.
    """
    if records is None and session is not None:
        records = session.records
    records = records if records is not None else ()
    rollup = build_rollup(
        records=records, stream=stream, chaos=chaos,
        scenarios=scenarios, window_ms=window_ms,
    )
    _, alerts = evaluate_slos(rollup, objectives=objectives)
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    contents = {
        "rollups.jsonl": rollup.to_jsonl(),
        "alerts.jsonl": alerts_to_jsonl(alerts),
        "flamegraph.txt": flamegraph_text(records),
    }
    paths = []
    for name, text in contents.items():
        path = directory / name
        path.write_text(text)
        paths.append(path)
    return paths
