"""Profiling views: collapsed stacks and self-time attribution.

Turns the deterministic span trace into the two classic profiling
artifacts: a collapsed-stack file (``frame;frame;frame count``, the
input format of Brendan Gregg's ``flamegraph.pl`` and of speedscope)
and a per-phase self-time table.  Both operate on *records* — live
:class:`~repro.telemetry.SpanRecord` objects or ``trace.jsonl``
dicts — so they work in-process and offline.

Stacks are reconstructed from the trace's ``(track, depth,
containment)`` structure: a span's parent is the innermost span on
the same track one level shallower whose time range contains it, and
each stack line is ``track;ancestor;...;span``.  Counts are the
span's *self* time (duration minus direct children) in integer
microseconds, clamped at zero; lines sort lexicographically — with
deterministic span times, the export is byte-identical whenever the
trace is.
"""

from repro.obs.rollup import _norm


def _spans_by_track(records):
    by_track = {}
    for record in records:
        kind, name, start, end, attrs = _norm(record)
        if kind != "span":
            continue
        if isinstance(record, dict):
            track = record.get("track", "")
            depth = record.get("depth", 0)
        else:
            track = record.track
            depth = record.depth
        by_track.setdefault(track, []).append(
            (name, float(start), float(end), depth)
        )
    return by_track


def _self_time(span, spans):
    name, start, end, depth = span
    child_time = sum(
        c_end - c_start
        for _, c_start, c_end, c_depth in spans
        if c_depth == depth + 1 and c_start >= start and c_end <= end
    )
    return max((end - start) - child_time, 0.0)


def _parent(span, spans):
    """The innermost containing span one level shallower, or None."""
    _, start, end, depth = span
    best = None
    for candidate in spans:
        _, c_start, c_end, c_depth = candidate
        if (c_depth == depth - 1 and c_start <= start and c_end >= end):
            if best is None or c_start >= best[1]:
                best = candidate
    return best


def collapse_stacks(records):
    """Collapsed-stack lines for *records*, sorted, with counts in µs.

    Zero-self-time stacks are kept (count 0) so the frame inventory is
    stable across runs whose timing differs only in attribution.
    """
    totals = {}
    for track, spans in _spans_by_track(records).items():
        for span in spans:
            frames = [span[0]]
            node = span
            while node[3] > 0:
                parent = _parent(node, spans)
                if parent is None:
                    break
                frames.append(parent[0])
                node = parent
            frames.append(track)
            stack = ";".join(reversed(frames))
            micros = int(round(_self_time(span, spans) * 1000))
            totals[stack] = totals.get(stack, 0) + micros
    return [f"{stack} {count}" for stack, count in sorted(totals.items())]


def flamegraph_text(records):
    """The full ``flamegraph.txt`` export (trailing newline)."""
    lines = collapse_stacks(records)
    return "".join(line + "\n" for line in lines)


def self_time_rows(records, limit=10):
    """Per-span-name self-time table from *records*.

    Mirrors :func:`repro.telemetry.top_spans_by_self_time` but works
    on raw records (including ``trace.jsonl`` dicts): rows carry
    ``name``, ``count``, ``total_self``, ``mean_self``, sorted by
    total self time descending then name.
    """
    totals = {}
    for spans in _spans_by_track(records).values():
        for span in spans:
            entry = totals.setdefault(span[0], [0, 0.0])
            entry[0] += 1
            entry[1] += _self_time(span, spans)
    rows = [
        {
            "name": name,
            "count": count,
            "total_self": total,
            "mean_self": total / count if count else 0.0,
        }
        for name, (count, total) in totals.items()
    ]
    rows.sort(key=lambda row: (-row["total_self"], row["name"]))
    return rows[:limit]
