"""Prometheus text exposition for :class:`~repro.telemetry.MetricsRegistry`.

Renders any registry in the Prometheus text format (version 0.0.4):
one ``# TYPE`` header per metric family, counters and gauges as plain
samples, histograms as cumulative ``_bucket`` series (``le`` labels,
``+Inf`` last) plus ``_sum`` and ``_count``.  The rendering is fully
deterministic — families sort by exposition name, series within a
family sort by their label string — so two registries with equal
contents render byte-identically regardless of insertion order.

Labels ride inside registry metric names via
:func:`repro.telemetry.labeled` (``name{key=value,...}``, keys
sorted); :func:`split_labels` is the inverse.  Dots and dashes in
metric names become underscores on the way out, the only rewriting
Prometheus requires.
"""

#: Content-Type of the exposition format served on ``GET /metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def split_labels(name):
    """Split an encoded metric name into ``(base, labels_dict)``.

    The inverse of :func:`repro.telemetry.labeled`; names without an
    encoded label block come back with an empty dict.
    """
    if not name.endswith("}") or "{" not in name:
        return name, {}
    base, _, block = name.partition("{")
    labels = {}
    for pair in block[:-1].split(","):
        key, _, value = pair.partition("=")
        labels[key] = value
    return base, labels


def _exposition_name(base):
    """Registry name -> Prometheus metric name (dots/dashes to ``_``)."""
    return base.replace(".", "_").replace("-", "_")


def _escape(value):
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_block(labels, extra=None):
    """Render a label dict (plus optional ``le``) as ``{...}`` or ``""``.

    Ordinary labels sort by key; ``le`` always renders last, matching
    the conventional exposition layout for histogram buckets.
    """
    parts = [
        f'{key}="{_escape(labels[key])}"' for key in sorted(labels)
    ]
    if extra is not None:
        parts.append(f'le="{extra}"')
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _number(value):
    """Render a sample value: integers bare, floats via ``%g``."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return f"{value:g}"


def _families(state):
    """Group a registry state snapshot into exposition families.

    Returns ``{prom_name: (type, [(labels, payload), ...])}`` where
    *payload* is a plain value for counters/gauges and the histogram
    state list for histograms.
    """
    families = {}

    def series(section, kind):
        for name, payload in section.items():
            base, labels = split_labels(name)
            family = families.setdefault(_exposition_name(base), (kind, []))
            if family[0] != kind:
                raise ValueError(
                    f"metric family {base!r} is both {family[0]} and {kind}"
                )
            family[1].append((labels, payload))

    series(state.get("counters", {}), "counter")
    series(state.get("gauges", {}), "gauge")
    series(state.get("histograms", {}), "histogram")
    return families


def render_prometheus(registry):
    """The full exposition text for *registry* (trailing newline).

    Accepts a :class:`~repro.telemetry.MetricsRegistry` or a
    :meth:`~repro.telemetry.MetricsRegistry.state` snapshot dict, so
    the same renderer serves live registries and journaled states.
    """
    state = registry if isinstance(registry, dict) else registry.state()
    lines = []
    for prom_name in sorted(_families(state)):
        kind, entries = _families(state)[prom_name]
        lines.append(f"# TYPE {prom_name} {kind}")
        entries.sort(key=lambda entry: _label_block(entry[0]))
        for labels, payload in entries:
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{prom_name}{_label_block(labels)} {_number(payload)}"
                )
                continue
            bounds, counts, total, value_sum = payload
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += count
                lines.append(
                    f"{prom_name}_bucket"
                    f"{_label_block(labels, extra=_number(float(bound)))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{prom_name}_bucket{_label_block(labels, extra='+Inf')} "
                f"{total}"
            )
            lines.append(
                f"{prom_name}_sum{_label_block(labels)} "
                f"{_number(float(value_sum))}"
            )
            lines.append(f"{prom_name}_count{_label_block(labels)} {total}")
    return "".join(line + "\n" for line in lines)
