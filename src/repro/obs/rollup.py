"""Windowed rollups: folding raw telemetry into operable time series.

A :class:`Rollup` partitions observations into fixed windows, each
backed by its own :class:`~repro.telemetry.MetricsRegistry`.  Windows
live in three domains:

* ``sim`` — fixed sim-clock windows (``floor(start_ms / window_ms)``)
  fed from trace records: doctor/execute/collect span durations become
  histograms, verdict events become counters;
* ``round`` — one window per stream sync round, fed from
  ``stream.round.stats`` events or :class:`StreamRound` objects;
* ``sweep`` — one window per chaos/scenario sweep cell.

Because each window is a registry, the whole rollup inherits the
registry's associative + commutative merge: shard rollups fold into
the parent in any order, and the exported ``rollups.jsonl`` is
byte-identical across ``--workers`` counts, repeat runs, and
SIGKILL + resume.  Derived statistics (percentiles, overhead %,
availability) are computed *at render time* from integer bucket
counts and counter sums — never from floats accumulated in merge
order — which is what keeps the derivation deterministic.

Percentiles are bucket-resolution by construction: the reported pNN
is the smallest histogram bucket bound covering that rank, or null
when the rank falls in the +inf bucket.
"""

import json

from repro.telemetry import MetricsRegistry

#: Default sim-clock window width (milliseconds).
DEFAULT_WINDOW_MS = 1000.0

#: Quantiles reported for every histogram in every window.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

#: Per-round batch-accounting counters mirrored from the stream.
_ROUND_STATS = (
    "batches_ingested", "batches_dropped", "batches_duplicated",
    "batches_late", "duplicates_ignored",
)


def _norm(record):
    """Normalize a record to ``(kind, name, start, end, attrs)``.

    Accepts both live :class:`~repro.telemetry.SpanRecord` objects and
    the dict form read back from ``trace.jsonl``, so rollups can be
    built in-process or offline from an export directory.
    """
    if isinstance(record, dict):
        return (
            record.get("type"), record.get("name"),
            record.get("start_ms", 0.0), record.get("end_ms", 0.0),
            record.get("attrs") or {},
        )
    return record.kind, record.name, record.start, record.end, record.attrs


def _index_key(index):
    """Sort key tolerating mixed int/str window indices."""
    if isinstance(index, bool) or not isinstance(index, (int, float)):
        return (1, str(index))
    return (0, float(index), "")


def bucket_quantile(bounds, counts, q):
    """The smallest bucket bound covering rank ``q`` (or None).

    *bounds*/*counts* come from
    :meth:`~repro.telemetry.MetricsRegistry.histogram_buckets`;
    *counts* has the +inf bucket last.  Integer cumulative counts
    against ``q * total`` keep the answer independent of observation
    and merge order.  A rank landing in the +inf bucket has no finite
    bound to report, hence None.
    """
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= rank:
            return bound
    return None


def _round9(value):
    return round(value, 9)


class Rollup:
    """Fixed-window aggregation of telemetry into per-window registries."""

    def __init__(self, window_ms=DEFAULT_WINDOW_MS):
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms}")
        self.window_ms = float(window_ms)
        #: ``(domain, index) -> MetricsRegistry``
        self._windows = {}

    def window(self, domain, index):
        """The registry backing window ``(domain, index)`` (created)."""
        key = (domain, index)
        registry = self._windows.get(key)
        if registry is None:
            registry = self._windows[key] = MetricsRegistry()
        return registry

    def __len__(self):
        return len(self._windows)

    def windows(self, domain=None):
        """Sorted ``(domain, index, registry)`` triples, optionally
        restricted to one domain."""
        return [
            (dom, index, registry)
            for (dom, index), registry in sorted(
                self._windows.items(),
                key=lambda item: (item[0][0], _index_key(item[0][1])),
            )
            if domain is None or dom == domain
        ]

    # ------------------------------------------------------------ inputs

    def add_records(self, records):
        """Fold trace records (live or ``trace.jsonl`` dicts) in.

        Spans land in the ``sim`` domain window of their *start* time;
        ``stream.round.stats`` events land in the ``round`` domain.
        Unknown record names are ignored — the rollup is a view, not a
        validator.
        """
        for record in records:
            kind, name, start, end, attrs = _norm(record)
            if name == "stream.round.stats":
                self._add_round_stats(attrs)
                continue
            window = None
            if kind == "span":
                duration = max(float(end) - float(start), 0.0)
                if name == "core.action.process":
                    window = self._sim_window(start)
                    window.count("actions")
                    window.observe("doctor_ms", duration)
                    if attrs.get("hang"):
                        window.count("hangs")
                        window.observe("hang_ms", duration)
                elif name == "sim.action.execute":
                    window = self._sim_window(start)
                    window.count("executions")
                    window.observe("exec_ms", duration)
                elif name == "core.diagnoser.collect":
                    window = self._sim_window(start)
                    window.count("collections")
                    window.observe("collect_ms", duration)
            elif kind == "event":
                if name == "core.schecker.verdict":
                    verdict = attrs.get("verdict", "unknown")
                    self._sim_window(start).count(f"verdict.{verdict}")
                elif name == "core.kb.short_circuit":
                    self._sim_window(start).count("short_circuits")
                elif name == "core.degraded.enter":
                    self._sim_window(start).count("degraded_entries")
                elif name == "core.diagnoser.quarantine":
                    self._sim_window(start).count("quarantines")
        return self

    def _sim_window(self, start_ms):
        return self.window("sim", int(float(start_ms) // self.window_ms))

    def _add_round_stats(self, attrs):
        window = self.window("round", int(attrs.get("round", 0)))
        window.count("rounds")
        window.count("fleet", int(attrs.get("fleet", 0)))
        window.count("phase2_collections",
                     int(attrs.get("phase2_collections", 0)))
        window.count("kb_short_circuits",
                     int(attrs.get("kb_short_circuits", 0)))
        for key in _ROUND_STATS:
            window.count(key, int(attrs.get(key, 0)))

    def add_stream(self, result):
        """Fold a :class:`~repro.harness.exp_stream.StreamResult` in."""
        for entry in result.rounds:
            self._add_round_stats({
                "round": entry.round_index,
                "fleet": len(entry.fleet),
                "phase2_collections": entry.phase2_collections,
                "kb_short_circuits": entry.kb_short_circuits,
                "batches_ingested": entry.batches_ingested,
                "batches_dropped": entry.batches_dropped,
                "batches_duplicated": entry.batches_duplicated,
                "batches_late": entry.batches_late,
                "duplicates_ignored": entry.duplicates_ignored,
            })
        return self

    def add_chaos(self, result):
        """Fold a chaos sweep's cells into the ``sweep`` domain."""
        for cell in result.cells:
            window = self.window(
                "sweep", f"chaos|{cell.rate:g}|{cell.app_name}"
            )
            window.count("cells")
            window.count("tp", cell.tp)
            window.count("fp", cell.fp)
            window.count("fn", cell.fn)
            window.count("bugs_detected", cell.bugs_detected)
            window.count("counter_read_failures",
                         cell.counter_read_failures)
            window.count("trace_failures", cell.trace_failures)
            window.count("faults_fired", cell.faults_fired)
            window.gauge_set("overhead_percent", cell.overhead_percent)
        return self

    def add_scenarios(self, result):
        """Fold scenario-sweep cells into the ``sweep`` domain."""
        for cell in result.cells:
            window = self.window(
                "sweep", f"scenario|{cell.archetype}|{cell.index}"
            )
            window.count("cells")
            window.count("tp", len(cell.detected_sites & cell.truth_sites))
            window.count(
                "fp",
                len(cell.detected_sites - cell.truth_sites)
                + cell.fp_actions,
            )
            window.count("fn", len(cell.truth_sites - cell.detected_sites))
            window.count("hangs", cell.hangs)
        return self

    # ------------------------------------------------------------- merge

    def state(self):
        """Picklable snapshot: plain builtins keyed by domain/index."""
        return {
            "window_ms": self.window_ms,
            "windows": [
                [domain, index, registry.state()]
                for (domain, index), registry in sorted(
                    self._windows.items(),
                    key=lambda item: (item[0][0], _index_key(item[0][1])),
                )
            ],
        }

    def merge_state(self, state):
        """Fold a :meth:`state` snapshot in (associative+commutative)."""
        if float(state["window_ms"]) != self.window_ms:
            raise ValueError(
                f"window_ms differs: {self.window_ms} vs "
                f"{state['window_ms']}"
            )
        for domain, index, registry_state in state["windows"]:
            self.window(domain, index).merge_state(registry_state)
        return self

    def merge(self, other):
        """Fold another rollup into this one."""
        return self.merge_state(other.state())

    # ------------------------------------------------------------ render

    def rows(self):
        """Deterministic per-window rows with derived statistics.

        Each row carries the window's raw counters, per-histogram
        ``count``/``sum``/quantiles, and a ``derived`` block
        (overhead %, ingest availability, precision/recall) computed
        from integers at render time.  Rows sort by
        ``(domain, index)``.
        """
        rows = []
        for (domain, index), registry in sorted(
            self._windows.items(),
            key=lambda item: (item[0][0], _index_key(item[0][1])),
        ):
            state = registry.state()
            counters = dict(sorted(state["counters"].items()))
            histograms = {}
            for name in sorted(state["histograms"]):
                buckets = registry.histogram_buckets(name)
                total, value_sum = registry.histogram_summary(name)
                entry = {"count": total, "sum": _round9(value_sum)}
                for label, q in QUANTILES:
                    entry[label] = bucket_quantile(*buckets, q)
                histograms[name] = entry
            row = {
                "domain": domain,
                "index": index,
                "counters": counters,
                "histograms": histograms,
                "derived": self._derived(registry, counters, state),
            }
            rows.append(row)
        return rows

    def _derived(self, registry, counters, state):
        derived = {}
        exec_total, exec_sum = registry.histogram_summary("exec_ms")
        collect_total, collect_sum = registry.histogram_summary(
            "collect_ms"
        )
        if exec_total and exec_sum > 0:
            derived["overhead_pct"] = _round9(
                100.0 * collect_sum / exec_sum
            )
        ingested = counters.get("batches_ingested")
        dropped = counters.get("batches_dropped")
        if ingested is not None and dropped is not None:
            offered = ingested + dropped
            if offered:
                derived["availability"] = _round9(ingested / offered)
        tp = counters.get("tp")
        if tp is not None:
            fp = counters.get("fp", 0)
            fn = counters.get("fn", 0)
            if tp + fp:
                derived["precision"] = _round9(tp / (tp + fp))
            if tp + fn:
                derived["recall"] = _round9(tp / (tp + fn))
        if counters.get("actions"):
            derived["hang_rate"] = _round9(
                counters.get("hangs", 0) / counters["actions"]
            )
        overhead_gauge = state["gauges"].get("overhead_percent")
        if overhead_gauge is not None:
            derived["overhead_pct"] = _round9(overhead_gauge)
        return dict(sorted(derived.items()))

    def to_jsonl(self):
        """``rollups.jsonl`` text: one compact JSON row per window."""
        return "".join(
            json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
            for row in self.rows()
        )


def records_from_jsonl(path):
    """Load ``trace.jsonl`` records (dicts) from *path*."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def rollup_from_session(session, window_ms=DEFAULT_WINDOW_MS):
    """Build a rollup from a live telemetry session's records."""
    return Rollup(window_ms=window_ms).add_records(session.records)
