"""SLO evaluation and multi-window burn-rate alerting over rollups.

An objective is declarative: a name, a target ratio, a rollup window
domain, and a rule for classifying each window's events as *good* or
*bad*.  Three rule kinds cover the reproduction's health questions:

* ``latency`` — good events are histogram observations at or under a
  threshold (resolved against the fixed bucket bounds, so the split
  is exact and integer);
* ``ratio`` — good/bad are two named counters (e.g. ingested vs
  dropped batches, true vs false positives);
* ``window`` — each window is itself one event, good when a derived
  statistic stays under a ceiling (e.g. overhead %).

The error budget is the classic SRE formulation: over the evaluated
range, ``allowed_bad = (1 - target) x total`` events; the budget is
exhausted when observed bad events exceed it.  Burn rate per window
is ``(bad / total) / (1 - target)`` — 1.0 means burning exactly the
budget over the range.  Alerts use the standard multi-window pairing:
a window fires when both its own burn (short) and the trailing
``long_windows``-window burn (long) clear a threshold — >= 14.4 pages,
>= 3.0 tickets.  Everything is integer arithmetic plus fixed-order
float division, so ``alerts.jsonl`` is byte-identical whenever the
rollup is.
"""

import json

from repro.obs.rollup import _index_key

#: Multi-window burn thresholds (Google SRE workbook's fast/slow pair).
PAGE_BURN = 14.4
TICKET_BURN = 3.0

#: Trailing windows of the long burn condition.
DEFAULT_LONG_WINDOWS = 6

#: Cap for rendering an effectively infinite burn (target == 1.0
#: with any bad event) — JSON has no Infinity.
_BURN_CAP = 1e9

#: Default objectives of the reproduction's ops plane.  Targets are
#: deliberately modest: they express "the doctor is behaving like the
#: paper says it should", not aspirational five-nines.
DEFAULT_OBJECTIVES = (
    {
        "name": "detection-latency",
        "kind": "latency",
        "domain": "sim",
        "histogram": "doctor_ms",
        "threshold_ms": 200.0,
        "target": 0.50,
    },
    {
        "name": "precision-floor",
        "kind": "ratio",
        "domain": "sweep",
        "good": "tp",
        "bad": "fp",
        "target": 0.80,
    },
    {
        "name": "overhead-ceiling",
        "kind": "window",
        "domain": "sim",
        "derived": "overhead_pct",
        "ceiling": 50.0,
        "target": 0.75,
    },
    {
        "name": "ingest-availability",
        "kind": "ratio",
        "domain": "round",
        "good": "batches_ingested",
        "bad": "batches_dropped",
        "target": 0.95,
    },
)


def _latency_split(registry, histogram, threshold_ms):
    """``(good, bad)`` observations at/under vs over *threshold_ms*.

    The threshold resolves to the histogram's fixed bucket bounds:
    every bucket whose upper bound is <= threshold counts as good.
    """
    buckets = registry.histogram_buckets(histogram)
    if buckets is None:
        return 0, 0
    bounds, counts = buckets
    good = sum(
        count for bound, count in zip(bounds, counts)
        if bound <= threshold_ms
    )
    return good, sum(counts) - good


def _window_events(objective, index, registry, row):
    """Classify one window's events as ``(good, bad)`` per the rule."""
    kind = objective["kind"]
    if kind == "latency":
        return _latency_split(
            registry, objective["histogram"], objective["threshold_ms"]
        )
    if kind == "ratio":
        return (
            registry.counter_value(objective["good"]),
            registry.counter_value(objective["bad"]),
        )
    if kind == "window":
        value = row["derived"].get(objective["derived"])
        if value is None:
            return 0, 0
        return (1, 0) if value <= objective["ceiling"] else (0, 1)
    raise ValueError(f"unknown objective kind {kind!r}")


def _burn(good, bad, target):
    """Burn rate of (good, bad) against *target*, capped, 6 decimals."""
    total = good + bad
    if total == 0 or bad == 0:
        return 0.0
    error_budget = 1.0 - target
    if error_budget <= 0.0:
        return _BURN_CAP
    return round(min((bad / total) / error_budget, _BURN_CAP), 6)


def evaluate_slos(rollup, objectives=DEFAULT_OBJECTIVES,
                  long_windows=DEFAULT_LONG_WINDOWS):
    """Evaluate *objectives* against *rollup*.

    Returns ``(statuses, alerts)``: one status dict per objective
    (good/bad totals, allowed bad, budget remaining, ``exhausted``)
    and a flat, deterministically ordered alert list ready for
    ``alerts.jsonl``.
    """
    rows = {
        (row["domain"], row["index"]): row for row in rollup.rows()
    }
    statuses = []
    alerts = []
    for objective in objectives:
        domain = objective["domain"]
        target = float(objective["target"])
        windows = [
            (index, registry, rows[(dom, index)])
            for dom, index, registry in rollup.windows(domain)
        ]
        series = []
        total_good = 0
        total_bad = 0
        for index, registry, row in windows:
            good, bad = _window_events(objective, index, registry, row)
            series.append((index, good, bad))
            total_good += good
            total_bad += bad
        total = total_good + total_bad
        allowed_bad = round((1.0 - target) * total, 9)
        for position, (index, good, bad) in enumerate(series):
            tail = series[max(0, position - long_windows + 1):position + 1]
            long_good = sum(entry[1] for entry in tail)
            long_bad = sum(entry[2] for entry in tail)
            burn_short = _burn(good, bad, target)
            burn_long = _burn(long_good, long_bad, target)
            severity = None
            if burn_short >= PAGE_BURN and burn_long >= PAGE_BURN:
                severity = "page"
            elif burn_short >= TICKET_BURN and burn_long >= TICKET_BURN:
                severity = "ticket"
            if severity is not None:
                alerts.append({
                    "objective": objective["name"],
                    "domain": domain,
                    "index": index,
                    "severity": severity,
                    "burn_short": burn_short,
                    "burn_long": burn_long,
                })
        statuses.append({
            "objective": objective["name"],
            "kind": objective["kind"],
            "domain": domain,
            "target": target,
            "good": total_good,
            "bad": total_bad,
            "total": total,
            "allowed_bad": allowed_bad,
            "budget_remaining": round(allowed_bad - total_bad, 9),
            "exhausted": total_bad > allowed_bad,
            "alerts": sum(
                1 for alert in alerts
                if alert["objective"] == objective["name"]
            ),
        })
    alerts.sort(key=lambda alert: (
        alert["objective"], alert["domain"], _index_key(alert["index"]),
    ))
    return statuses, alerts


def alerts_to_jsonl(alerts):
    """``alerts.jsonl`` text: one compact JSON alert per line."""
    return "".join(
        json.dumps(alert, sort_keys=True, separators=(",", ":")) + "\n"
        for alert in alerts
    )


def render_slo_table(statuses):
    """Human-readable SLO summary, one line per objective."""
    lines = ["objective             target   good/bad        budget  state"]
    for status in statuses:
        state = "EXHAUSTED" if status["exhausted"] else "ok"
        if status["total"] == 0:
            state = "no-data"
        lines.append(
            f"{status['objective']:<20} {status['target']:>7.2%} "
            f"{status['good']:>6}/{status['bad']:<6} "
            f"{status['budget_remaining']:>9.2f}  {state}"
        )
    return "\n".join(lines)
