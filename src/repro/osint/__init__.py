"""OS-level integration (the paper's future-work direction).

The paper ships Hang Doctor inside each app so developers need no OS
modification, but notes the methodology "could be generalized and
integrated into the OS as a more general framework that improves the
currently used ANR tool".  This package builds that framework:

* :class:`~repro.osint.anr.AnrWatchdog` — the stock Android baseline:
  a 5-second Application-Not-Responding dialog, which (paper §2.2)
  misses essentially every soft hang.
* :class:`~repro.osint.service.OsHangService` — a system service that
  supervises every foreground app with a per-app Hang Doctor instance,
  shares one blocking-API database across all of them, and aggregates
  a system-wide report (so one user's AndStatus hang warns the
  developer of every app that calls the same API).
"""

from repro.osint.anr import AnrEvent, AnrWatchdog
from repro.osint.service import OsHangService, SystemReport

__all__ = ["AnrEvent", "AnrWatchdog", "OsHangService", "SystemReport"]
