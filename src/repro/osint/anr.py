"""The stock ANR watchdog (Android's built-in hang detector).

Android shows the "Application Not Responding" dialog when the main
thread fails to process input for 5 seconds.  The paper's Section 2.2
uses it as the canonical example of a timeout that is far too long for
soft hangs: at 5 s it catches none of the 19 known bugs in the
motivation apps.  It exists here as the baseline the OS service
improves on.
"""

from dataclasses import dataclass
from typing import List

#: Android's input-dispatch ANR timeout.
ANR_TIMEOUT_MS = 5000.0


@dataclass(frozen=True)
class AnrEvent:
    """One ANR dialog occurrence."""

    app_name: str
    action_name: str
    response_time_ms: float
    time_ms: float


class AnrWatchdog:
    """Flags input events slower than the ANR timeout."""

    def __init__(self, timeout_ms=ANR_TIMEOUT_MS):
        if timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive")
        self.timeout_ms = timeout_ms
        self.events: List[AnrEvent] = []

    def observe(self, execution):
        """Check one action execution; returns newly raised ANRs."""
        raised = []
        for event_execution in execution.events:
            if event_execution.response_time_ms > self.timeout_ms:
                anr = AnrEvent(
                    app_name=execution.app.name,
                    action_name=execution.action.name,
                    response_time_ms=event_execution.response_time_ms,
                    time_ms=event_execution.finish_ms,
                )
                self.events.append(anr)
                raised.append(anr)
        return raised
