"""System-wide hang service.

One :class:`OsHangService` supervises every installed app: it lazily
creates a per-app :class:`~repro.core.hang_doctor.HangDoctor` on the
app's first foreground execution, shares a single
known-blocking-API database across all of them (a bug learned from one
app immediately protects the rest at the next offline scan), keeps the
legacy ANR watchdog running for hard hangs, and aggregates every
detection into a system report the platform vendor can triage.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.blocking_db import BlockingApiDatabase
from repro.core.config import HangDoctorConfig
from repro.core.hang_doctor import HangDoctor
from repro.detectors.base import Detection
from repro.osint.anr import AnrWatchdog


@dataclass
class SystemReport:
    """Fleet-wide aggregation of detections and ANRs."""

    detections: List[Detection] = field(default_factory=list)
    anr_events: List = field(default_factory=list)

    def by_app(self):
        """{app name: [detections]}, most-affected apps first."""
        per_app: Dict[str, List[Detection]] = {}
        for detection in self.detections:
            per_app.setdefault(detection.app_name, []).append(detection)
        return dict(
            sorted(per_app.items(), key=lambda kv: len(kv[1]), reverse=True)
        )

    def by_api(self):
        """{root operation: occurrence count} across all apps."""
        counts: Dict[str, int] = {}
        for detection in self.detections:
            if detection.root_name is not None:
                counts[detection.root_name] = (
                    counts.get(detection.root_name, 0) + 1
                )
        return dict(
            sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
        )

    def render(self):
        """Human-readable system report."""
        lines = ["System-wide soft hang report"]
        lines.append(f"  soft hang bug detections : {len(self.detections)}")
        lines.append(f"  legacy ANR dialogs       : {len(self.anr_events)}")
        lines.append("  top blocking operations:")
        for name, count in list(self.by_api().items())[:10]:
            lines.append(f"    {count:4d}x {name}")
        return "\n".join(lines)


class OsHangService:
    """Per-app Hang Doctors behind one OS-level facade."""

    def __init__(self, device, config=None, seed=0):
        self.device = device
        self.config = config or HangDoctorConfig()
        self.seed = seed
        #: One database for the whole device (the paper's feedback loop,
        #: system-wide).
        self.blocking_db = BlockingApiDatabase.initial()
        self.anr = AnrWatchdog()
        self.report = SystemReport()
        self._doctors: Dict[str, HangDoctor] = {}

    def doctor_for(self, app):
        """The (lazily created) Hang Doctor supervising *app*."""
        doctor = self._doctors.get(app.package)
        if doctor is None:
            doctor = HangDoctor(
                app, self.device, config=self.config,
                blocking_db=self.blocking_db, seed=self.seed,
            )
            self._doctors[app.package] = doctor
        return doctor

    def supervised_apps(self):
        """Packages currently supervised."""
        return sorted(self._doctors)

    def observe(self, execution, device_id=0):
        """Route one foreground execution to its app's doctor."""
        doctor = self.doctor_for(execution.app)
        outcome = doctor.process(execution, device_id=device_id)
        self.report.detections.extend(outcome.detections)
        self.report.anr_events.extend(self.anr.observe(execution))
        return outcome

    def cross_app_discoveries(self):
        """Blocking APIs learned at runtime, shared device-wide."""
        return self.blocking_db.runtime_discoveries()
