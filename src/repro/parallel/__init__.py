"""Process-parallel experiment execution.

The fleet-scale experiments (Table 5's 114-app study, Figure 8's
detector comparison, the seed-stability sweeps) decompose naturally at
*app* granularity: after the per-app seed derivation of
:func:`repro.harness.exp_fleet.fleet_app_seed`, every app's simulated
deployment is a pure function of (device, root seed, app), so shards
can run on any worker in any order and merge back into the exact
result a serial run produces.

:func:`parallel_map` is the one primitive: an ordered map over work
items that shards across a supervised
:class:`concurrent.futures.ProcessPoolExecutor` — per-shard deadlines,
bounded retry after worker crashes, in-process re-runs as the last
resort — and degrades gracefully to in-process execution when
``workers=1``, when the work is too small to shard, or when the
payload cannot cross a process boundary (non-picklable configs).
Every degradation is accounted in an :class:`ExecutionReport` instead
of happening silently.
"""

from repro.parallel.executor import (
    ExecutionReport,
    PartialResult,
    chunk_indices,
    parallel_map,
    resolve_workers,
)

__all__ = [
    "ExecutionReport",
    "PartialResult",
    "chunk_indices",
    "parallel_map",
    "resolve_workers",
]
