"""The worker-pool primitive behind every ``--workers`` flag.

Experiments submit *shards* — small picklable descriptions of a slice
of work — to :func:`parallel_map` together with a module-level shard
function.  Results come back in submission order, so callers can merge
them deterministically regardless of which worker finished first.

Fallback policy: correctness never depends on the pool.  Anything that
prevents process-level execution (a single worker, one-item inputs, a
payload that cannot be pickled, a sandbox that forbids subprocesses, a
pool whose workers died) silently downgrades to a plain in-process
loop over the same shard function, which by construction yields the
identical result.  Exceptions raised *by the shard function itself*
are real errors and always propagate.
"""

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool


def resolve_workers(workers):
    """Normalize a ``--workers`` value to a positive int.

    ``None`` and ``0`` mean "one worker per CPU"; negative counts are
    rejected.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def chunk_indices(count, chunks):
    """Split ``range(count)`` into at most *chunks* contiguous runs.

    Chunks are as even as possible (sizes differ by at most one) and
    concatenate back to ``range(count)``, so order-sensitive merges
    stay trivial.

    >>> chunk_indices(5, 2)
    [(0, 1, 2), (3, 4)]
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    chunks = max(1, min(chunks, count)) if count else 0
    out = []
    start = 0
    for position in range(chunks):
        size = count // chunks + (1 if position < count % chunks else 0)
        out.append(tuple(range(start, start + size)))
        start += size
    return out


def _picklable(payload):
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


def parallel_map(fn, items, workers=1, chunksize=1):
    """Ordered ``[fn(item) for item in items]`` over a process pool.

    *fn* must be a module-level callable for process execution; the
    in-process fallback has no such restriction.  Worker exceptions
    propagate to the caller; infrastructure failures (pickling, pool
    breakage, subprocess limits) fall back to the serial loop.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if not _picklable((fn, items)):
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (BrokenProcessPool, OSError, PermissionError, RuntimeError) as error:
        if isinstance(error, RuntimeError) and not _is_pool_startup_error(error):
            raise
        return [fn(item) for item in items]


def _is_pool_startup_error(error):
    """True for RuntimeErrors raised by pool startup, not by the task.

    ``multiprocessing`` signals missing OS support (no semaphores, no
    forking) via RuntimeError; those should downgrade, while a
    RuntimeError raised inside the shard function must surface.
    """
    text = str(error).lower()
    return any(
        marker in text
        for marker in ("process", "fork", "spawn", "semaphore", "synchroniz")
    )
