"""The worker-pool primitive behind every ``--workers`` flag.

Experiments submit *shards* — small picklable descriptions of a slice
of work — to :func:`parallel_map` together with a module-level shard
function.  Results come back in submission order, so callers can merge
them deterministically regardless of which worker finished first.

Fallback policy: correctness never depends on the pool.  Anything that
prevents process-level execution (a single worker, one-item inputs, a
payload that cannot be pickled, a sandbox that forbids subprocesses, a
pool whose workers died) silently downgrades to a plain in-process
loop over the same shard function, which by construction yields the
identical result.  Exceptions raised *by the shard function itself*
are real errors and always propagate: workers catch them and ship
them back tagged in a :class:`_ShardFailure` sentinel, so the parent
re-raises the original exception and never mistakes it for pool
infrastructure failing (nor vice versa — anything the pool machinery
itself raises is, by construction, infrastructure).
"""

import functools
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool


def resolve_workers(workers):
    """Normalize a ``--workers`` value to a positive worker count.

    ``None`` and ``0`` both mean "one worker per CPU"; any positive
    int is used as-is; negative counts are rejected.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    workers = int(workers)
    if workers < 0:
        raise ValueError(
            f"workers must be >= 0 (0 or None = one worker per CPU), "
            f"got {workers}"
        )
    return workers


def chunk_indices(count, chunks):
    """Split ``range(count)`` into at most *chunks* contiguous runs.

    Chunks are as even as possible (sizes differ by at most one) and
    concatenate back to ``range(count)``, so order-sensitive merges
    stay trivial.

    >>> chunk_indices(5, 2)
    [(0, 1, 2), (3, 4)]
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    chunks = max(1, min(chunks, count)) if count else 0
    out = []
    start = 0
    for position in range(chunks):
        size = count // chunks + (1 if position < count % chunks else 0)
        out.append(tuple(range(start, start + size)))
        start += size
    return out


def _picklable(payload):
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


class _ShardFailure:
    """Sentinel carrying an exception the shard function raised.

    Workers return this instead of raising, which keeps the two error
    classes apart by *type*: a shard-function exception crosses the
    process boundary inside a sentinel, while anything raised by
    ``pool.map`` itself is pool infrastructure.  (The old scheme
    string-matched RuntimeError messages for "process"/"fork"/... and
    swallowed shard RuntimeErrors that happened to mention those
    words.)
    """

    __slots__ = ("error",)

    def __init__(self, error):
        self.error = error


def _guarded(fn, item):
    """Run one shard, returning exceptions as tagged sentinels."""
    try:
        return fn(item)
    except Exception as error:  # noqa: BLE001 - re-raised by the parent
        return _ShardFailure(error)


def parallel_map(fn, items, workers=1, chunksize=1):
    """Ordered ``[fn(item) for item in items]`` over a process pool.

    *fn* must be a module-level callable for process execution; the
    in-process fallback has no such restriction.  Worker exceptions
    propagate to the caller; infrastructure failures (pickling, pool
    breakage, subprocess limits) fall back to the serial loop.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if not _picklable((fn, items)):
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            results = list(pool.map(
                functools.partial(_guarded, fn), items, chunksize=chunksize
            ))
    except (BrokenProcessPool, OSError, PermissionError, RuntimeError):
        # Shard-function exceptions never escape pool.map (they come
        # back as _ShardFailure values), so whatever raised here is the
        # pool itself: no semaphores, no fork support, dead workers.
        # The serial loop reproduces the result — or the error — with
        # no pool in the way.
        return [fn(item) for item in items]
    for result in results:
        if isinstance(result, _ShardFailure):
            raise result.error
    return results
