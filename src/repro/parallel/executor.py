"""The supervised worker-pool primitive behind every ``--workers`` flag.

Experiments submit *shards* — small picklable descriptions of a slice
of work — to :func:`parallel_map` together with a module-level shard
function.  Results come back in submission order, so callers can merge
them deterministically regardless of which worker finished first.

Supervision policy: correctness never depends on the pool, and no pool
failure is silent.  The supervisor runs each shard as its own future
and watches three failure classes:

* **Worker crashes** (a dead process breaks the whole
  :class:`~concurrent.futures.process.BrokenProcessPool`): finished
  results are kept, the pool is rebuilt after an exponential backoff,
  and only the unfinished shards are re-submitted — up to *retries*
  times, after which the stragglers run in-process.
* **Deadlines** (*deadline* seconds of waiting per shard): a shard
  that stalls past its deadline is abandoned to the pool and re-run
  in-process, so one livelocked worker cannot wedge the sweep.
* **Pool unavailability** (pickling, subprocess limits, sandboxes):
  the whole call degrades to the in-process loop.

Every one of those decisions is recorded in an
:class:`ExecutionReport` — retries, crashes, deadline hits, fallbacks
— which experiments surface through their results (``--verbose`` on
the CLI) instead of the old silent downgrade.  Because shard functions
are pure, a shard re-run in-process or on a fresh pool returns the
byte-identical result, so supervision never changes experiment output.

Exceptions raised *by the shard function itself* are real errors and
always propagate: workers catch them and ship them back tagged in a
:class:`_ShardFailure` sentinel, so the parent re-raises the original
exception of the earliest failing shard (in submission order, for any
completion order) and never mistakes it for pool infrastructure
failing — nor vice versa: anything the pool machinery itself raises
is, by construction, infrastructure.

A :class:`~repro.faults.FaultInjector` whose plan enables the
``worker_kill`` / ``shard_stall`` channels exercises the supervisor
deterministically: kill and stall verdicts are keyed by
(shard, attempt), so they reproduce for any worker count, and the
in-process last resort never injects — the escape hatch stays safe.
"""

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import List

from repro.telemetry import absorb_value, collect_shard
from repro.telemetry import active as _telemetry_active
from repro.telemetry import current as _telemetry_current

#: Exit status an injected worker kill dies with (visible in the
#: pool's stderr noise; any nonzero status breaks the pool the same).
KILLED_EXIT_CODE = 87


@dataclass
class ExecutionReport:
    """Structured account of how a supervised run actually executed.

    All counters stay zero on a clean run; nothing here ever feeds
    back into shard results, so two runs with different reports still
    produce byte-identical experiment output.
    """

    #: Shards submitted across all :func:`parallel_map` calls sharing
    #: this report.
    shards: int = 0
    #: Process pools created (1 on a clean parallel run).
    pool_attempts: int = 0
    #: Pool breakages observed (each one means >= 1 worker died).
    worker_crashes: int = 0
    #: Shards re-submitted to a rebuilt pool after a crash.
    shard_retries: int = 0
    #: Shards whose result wait exceeded the deadline.
    deadline_hits: int = 0
    #: Shards re-run in-process as the last resort.
    in_process_shards: int = 0
    #: Whole calls that wanted a pool but had to run serially.
    serial_fallbacks: int = 0
    #: Shards restored from a checkpoint journal instead of re-run.
    checkpoint_hits: int = 0
    #: Checkpoint writes that died mid-stream (torn; journal entry
    #: discarded, shard re-runs on resume).
    torn_writes: int = 0
    #: Work items stolen from stragglers by the elastic scheduler
    #: (reclaimed past a seeded deadline and repacked onto the rest of
    #: the pool — see :mod:`repro.sched`).
    steals: int = 0
    #: Work items dynamically resharded after a worker death (their
    #: shard died with the pool and the scheduler repacked them).
    reshards: int = 0
    #: Fleet-membership changes (devices joining or leaving a
    #: streaming deployment — see :mod:`repro.harness.exp_stream`).
    churn_events: int = 0
    #: Human-readable event log, in occurrence order.
    events: List[str] = field(default_factory=list)

    def record(self, kind, detail=""):
        """Append one event to the log.

        Mirrored onto the telemetry advisory channel (as
        ``executor.<kind>``) when a session is active, so supervision
        shows up in the trace exports without ever entering the
        deterministic channel.
        """
        self.events.append(f"{kind}: {detail}" if detail else kind)
        _telemetry_current().advisory_event(f"executor.{kind}",
                                            detail=detail)

    def to_dict(self):
        """Machine-readable snapshot: counters, events, degraded flag.

        The payload behind ``--report-json`` and the telemetry
        ``execution.json`` export; all values are JSON builtins.
        """
        return {
            "shards": self.shards,
            "pool_attempts": self.pool_attempts,
            "worker_crashes": self.worker_crashes,
            "shard_retries": self.shard_retries,
            "deadline_hits": self.deadline_hits,
            "in_process_shards": self.in_process_shards,
            "serial_fallbacks": self.serial_fallbacks,
            "checkpoint_hits": self.checkpoint_hits,
            "torn_writes": self.torn_writes,
            "steals": self.steals,
            "reshards": self.reshards,
            "churn_events": self.churn_events,
            "degraded": self.degraded,
            "events": list(self.events),
        }

    @property
    def degraded(self):
        """True when anything other than clean pool execution happened."""
        return bool(
            self.worker_crashes or self.deadline_hits
            or self.in_process_shards or self.serial_fallbacks
            or self.torn_writes
        )

    def merge(self, other):
        """Fold another report's counters and events into this one."""
        self.shards += other.shards
        self.pool_attempts += other.pool_attempts
        self.worker_crashes += other.worker_crashes
        self.shard_retries += other.shard_retries
        self.deadline_hits += other.deadline_hits
        self.in_process_shards += other.in_process_shards
        self.serial_fallbacks += other.serial_fallbacks
        self.checkpoint_hits += other.checkpoint_hits
        self.torn_writes += other.torn_writes
        self.steals += other.steals
        self.reshards += other.reshards
        self.churn_events += other.churn_events
        self.events.extend(other.events)
        return self

    def describe(self):
        """Multi-line summary (the ``--verbose`` CLI output)."""
        lines = [
            f"execution: {self.shards} shard(s), "
            f"{self.pool_attempts} pool attempt(s)"
            + (", clean" if not self.degraded else ""),
        ]
        counters = (
            ("worker crashes", self.worker_crashes),
            ("shard retries", self.shard_retries),
            ("deadline hits", self.deadline_hits),
            ("in-process re-runs", self.in_process_shards),
            ("serial fallbacks", self.serial_fallbacks),
            ("checkpoint hits", self.checkpoint_hits),
            ("torn checkpoint writes", self.torn_writes),
            ("items stolen from stragglers", self.steals),
            ("items resharded after worker loss", self.reshards),
            ("fleet churn events", self.churn_events),
        )
        for name, value in counters:
            if value:
                lines.append(f"  {name}: {value}")
        for event in self.events:
            lines.append(f"  - {event}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PartialResult:
    """Outcome of a reclaim-mode :func:`parallel_map` call.

    Reclaim mode (``reclaim=True``) hands scheduling policy back to
    the caller: instead of forcing every shard to completion (pool
    rebuilds, in-process last resort), the supervisor runs one pool
    attempt and *returns* whatever finished, plus the indices it could
    not finish — so an elastic scheduler (:mod:`repro.sched`) can
    split, repack, and redistribute the unfinished work instead of
    serializing it.
    """

    #: Completed shard results, by submission index.
    values: dict
    #: Indices whose result wait exceeded the deadline (stragglers —
    #: candidates for work stealing).
    stalled: tuple
    #: Indices whose shard died with the pool or never got submitted
    #: (candidates for dynamic resharding).
    crashed: tuple

    @property
    def unfinished(self):
        """All indices not completed, ascending."""
        return tuple(sorted(set(self.stalled) | set(self.crashed)))


def resolve_workers(workers):
    """Normalize a ``--workers`` value to a positive worker count.

    ``None`` and ``0`` both mean "one worker per CPU"; any positive
    int (or int-convertible string) is used as-is; negative and
    non-integer counts are rejected.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    try:
        count = int(workers)
    except (TypeError, ValueError):
        raise ValueError(f"workers must be an integer, got {workers!r}")
    if count != float(workers):
        raise ValueError(f"workers must be an integer, got {workers!r}")
    if count < 0:
        raise ValueError(
            f"workers must be >= 0 (0 or None = one worker per CPU), "
            f"got {count}"
        )
    return count


def chunk_indices(count, chunks):
    """Split ``range(count)`` into at most *chunks* contiguous runs.

    Chunks are as even as possible (sizes differ by at most one) and
    concatenate back to ``range(count)``, so order-sensitive merges
    stay trivial.

    >>> chunk_indices(5, 2)
    [(0, 1, 2), (3, 4)]
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    chunks = max(1, min(chunks, count)) if count else 0
    out = []
    start = 0
    for position in range(chunks):
        size = count // chunks + (1 if position < count % chunks else 0)
        out.append(tuple(range(start, start + size)))
        start += size
    return out


def _picklable(payload):
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


class _ShardFailure:
    """Sentinel carrying an exception the shard function raised.

    Workers return this instead of raising, which keeps the two error
    classes apart by *type*: a shard-function exception crosses the
    process boundary inside a sentinel, while anything raised by the
    pool machinery itself is infrastructure.  (The old scheme
    string-matched RuntimeError messages for "process"/"fork"/... and
    swallowed shard RuntimeErrors that happened to mention those
    words.)
    """

    __slots__ = ("error",)

    def __init__(self, error):
        self.error = error


def _guarded(fn, item, collect=False):
    """Run one shard, returning exceptions as tagged sentinels.

    With *collect* the shard runs under a fresh telemetry sub-session
    and the return value is a :class:`~repro.telemetry.ShardTelemetry`
    carrier (value + records + metrics) for the parent to absorb;
    failures are never wrapped, so the sentinel contract is unchanged.
    """
    try:
        if collect:
            return collect_shard(fn, item)
        return fn(item)
    except Exception as error:  # noqa: BLE001 - re-raised by the parent
        return _ShardFailure(error)


def _supervised(fn, item, shard, attempt, faults, collect=False):
    """Worker-side shard entry: inject executor faults, then run.

    Kill/stall verdicts are keyed by (shard, attempt) so they are
    identical for any worker count and completion order; the kill only
    fires inside a real worker process — the in-process last resort
    must never take the parent down with it.
    """
    if faults is not None and multiprocessing.parent_process() is not None:
        if faults.worker_kill_fault(shard, attempt):
            os._exit(KILLED_EXIT_CODE)
        if faults.shard_stall_fault(shard, attempt):
            time.sleep(faults.plan.shard_stall_seconds)
    return _guarded(fn, item, collect)


def _serial(fn, items, on_result=None, collect=False):
    """The in-process reference loop (also the correctness oracle)."""
    results = []
    for index, item in enumerate(items):
        value = _guarded(fn, item, collect)
        if on_result is not None and not isinstance(value, _ShardFailure):
            on_result(index, value)
        results.append(value)
    return results


def _raise_first_failure(results):
    """Re-raise the earliest shard error in submission order."""
    for result in results:
        if isinstance(result, _ShardFailure):
            raise result.error
    return results


def _collect(results, index, value, on_result):
    """Store one shard result, notifying *on_result* the first time."""
    results[index] = value
    if on_result is not None and not isinstance(value, _ShardFailure):
        on_result(index, value)


def _drain(futures, results, deadline, report, on_result,
           submitted=None):
    """Collect finished futures; classify timeouts and pool breakage.

    Returns ``(stalled, crashed)`` index lists: *stalled* shards blew
    their deadline (they re-run in-process — a stalled shard would
    stall again on a fresh pool, its verdict being a pure function of
    the shard), *crashed* shards died with the pool (they retry on a
    rebuilt one).

    *submitted* maps each index to its ``time.monotonic()`` submission
    timestamp.  Each shard's deadline is measured from *that* moment,
    not from when the drain loop finally waits on its future: the
    shards drain in index order, so by the time a stalled shard's turn
    comes it has already been running for as long as every
    earlier-indexed shard's wait took — granting it a fresh full
    deadline on top would let a slow-but-progressing pool extend a
    stalled shard several deadlines' worth of wall time.
    """
    stalled = []
    crashed = []
    broken = False
    for index in sorted(futures):
        future = futures[index]
        try:
            # After a pool break every unfinished future fails fast,
            # so skipping the wait just avoids a pointless deadline.
            if broken:
                timeout = 0
            elif deadline is None:
                timeout = None
            else:
                elapsed = time.monotonic() - submitted[index]
                timeout = max(0.0, deadline - elapsed)
            _collect(results, index, future.result(timeout=timeout),
                     on_result)
        except FutureTimeoutError:
            if broken:
                crashed.append(index)
                continue
            report.deadline_hits += 1
            report.record("deadline", f"shard {index} exceeded "
                          f"{deadline:g}s since submission")
            stalled.append(index)
        except BrokenProcessPool:
            if not broken:
                broken = True
                report.worker_crashes += 1
                report.record("worker-crash",
                              f"pool broke waiting on shard {index}")
            crashed.append(index)
    return stalled, crashed


def parallel_map(fn, items, workers=1, chunksize=1, deadline=None,
                 retries=2, backoff=0.05, faults=None, report=None,
                 on_result=None, shard_tracks=None, reclaim=False):
    """Ordered ``[fn(item) for item in items]`` over a supervised pool.

    *fn* must be a module-level callable for process execution; the
    in-process paths have no such restriction.  Worker exceptions
    propagate to the caller (earliest failing shard first);
    infrastructure failures are supervised per the module docstring
    and accounted in *report* (an :class:`ExecutionReport`).

    Parameters beyond the classic four: *deadline* is the per-shard
    result wait in seconds (``None`` = wait forever); *retries* bounds
    pool rebuilds after crashes; *backoff* seeds the exponential sleep
    between rebuilds; *faults* is a :class:`~repro.faults.FaultInjector`
    whose ``worker_kill``/``shard_stall`` channels exercise the
    supervisor.  *chunksize* is accepted for backward compatibility
    and ignored — supervision needs per-shard futures.

    *on_result(index, value)* fires the first time each shard's result
    is collected, in whatever order shards actually complete — the
    hook checkpoint journals use to persist progress incrementally, so
    a kill mid-run only loses in-flight shards.  When a telemetry
    session is active, the *value* passed to the hook is the shard's
    :class:`~repro.telemetry.ShardTelemetry` carrier, so journaled
    entries replay the shard's telemetry on resume.

    *shard_tracks* names the default telemetry track per item (same
    length as *items*; checkpointed maps pass their journal keys).
    Ignored without an active session; without it, stable
    ``shard/m<map>.<index>`` names are generated.  Shard code that
    sets its own semantic track scopes overrides the default either
    way.

    With *reclaim* the call runs at most one pool attempt and returns
    a :class:`PartialResult` instead of a list: stalled and crashed
    shards come back *unfinished* (no pool rebuild, no in-process
    rerun) so the caller — the elastic scheduler — can repack them.
    The serial paths (one worker, unpicklable payloads, no pool)
    still complete everything; only genuinely supervised execution can
    leave work unfinished.  Shard-function exceptions raise either
    way.
    """
    del chunksize  # per-shard submission supersedes chunked map
    items = list(items)
    workers = resolve_workers(workers)
    if report is None:
        report = ExecutionReport()
    report.shards += len(items)
    collect = _telemetry_active()
    tracks = None
    if collect:
        if shard_tracks is not None:
            tracks = [str(track) for track in shard_tracks]
            if len(tracks) != len(items):
                raise ValueError(
                    f"need one shard track per item, got {len(tracks)} "
                    f"for {len(items)} items"
                )
        else:
            map_seq = _telemetry_current().next_map_seq()
            tracks = [
                f"shard/m{map_seq}.{index}" for index in range(len(items))
            ]

    def finish(values):
        # Absorb shard telemetry carriers (submission order, so the
        # per-track renumbering is deterministic) and unwrap values;
        # failures stay sentinels for _raise_first_failure.
        if collect:
            values = [
                value if isinstance(value, _ShardFailure)
                else absorb_value(value, tracks[index])
                for index, value in enumerate(values)
            ]
        return _raise_first_failure(values)

    def finish_partial(values, stalled, crashed):
        # Reclaim-mode epilogue: absorb and unwrap only what finished
        # (ascending index, so per-track renumbering stays
        # deterministic), raise the earliest completed failure, and
        # hand the unfinished indices back to the caller.
        if collect:
            values = {
                index: (value if isinstance(value, _ShardFailure)
                        else absorb_value(value, tracks[index]))
                for index, value in sorted(values.items())
            }
        _raise_first_failure([values[i] for i in sorted(values)])
        return PartialResult(values=dict(values),
                             stalled=tuple(sorted(stalled)),
                             crashed=tuple(sorted(crashed)))

    if workers <= 1 or len(items) <= 1:
        values = _serial(fn, items, on_result, collect)
        if reclaim:
            return finish_partial(dict(enumerate(values)), (), ())
        return finish(values)
    if not _picklable((fn, items, faults)):
        report.serial_fallbacks += 1
        report.record("serial-fallback", "payload not picklable")
        values = _serial(fn, items, on_result, collect)
        if reclaim:
            return finish_partial(dict(enumerate(values)), (), ())
        return finish(values)

    results = {}
    pending = list(range(len(items)))
    stalled = []
    attempt = 0
    while pending and attempt <= retries:
        if attempt:
            report.shard_retries += len(pending)
            time.sleep(backoff * (2 ** (attempt - 1)))
        report.pool_attempts += 1
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            )
        except (OSError, PermissionError, RuntimeError) as error:
            # The pool never came up (no fork support, subprocess
            # limits, sandboxing) — nothing was partially executed, so
            # the serial loop is the clean degradation.
            report.serial_fallbacks += 1
            report.record(
                "serial-fallback",
                f"pool unavailable ({type(error).__name__}: {error})",
            )
            for index in pending:
                _collect(results, index,
                         _guarded(fn, items[index], collect), on_result)
            pending = []
            break
        futures = {}
        submitted = {}
        unsubmitted = []
        for index in pending:
            try:
                futures[index] = pool.submit(_supervised, fn, items[index],
                                             index, attempt, faults,
                                             collect)
                submitted[index] = time.monotonic()
            except BrokenProcessPool:
                # A worker died while we were still submitting; the
                # rest of this batch retries on the rebuilt pool.
                unsubmitted = [i for i in pending if i not in futures]
                report.worker_crashes += 1
                report.record("worker-crash", "pool broke during submission")
                break
        timed_out, crashed = _drain(futures, results, deadline, report,
                                    on_result, submitted)
        stalled.extend(timed_out)
        pending = crashed + unsubmitted
        # Never block on a stalled worker: abandoned shards keep their
        # process busy until the sleep/livelock ends, and the
        # supervisor has already moved on.
        pool.shutdown(wait=not timed_out, cancel_futures=True)
        if reclaim:
            # The scheduler wants the unfinished work back, not a
            # rebuilt pool: one attempt, then report what's left.
            return finish_partial(results, stalled, pending)
        attempt += 1

    if reclaim:
        # Reached only through the pool-unavailable serial fallback,
        # which completed everything in-process.
        return finish_partial(results, stalled, pending)
    for index in pending + stalled:
        # Last resort: the pool kept dying or the shard kept stalling.
        # Shard functions are pure, so the in-process run returns the
        # byte-identical result; executor faults are not injected here
        # (the escape hatch must always terminate).
        if index in pending:
            report.record("in-process", f"shard {index} after "
                          f"{retries + 1} pool attempt(s)")
        report.in_process_shards += 1
        _collect(results, index, _guarded(fn, items[index], collect),
                 on_result)
    return finish([results[i] for i in range(len(items))])
