"""Taxonomy-driven scenario generation.

A seeded, property-based generator that procedurally emits fleets of
thousands of :class:`~repro.apps.app.AppSpec`s from a declarative
archetype taxonomy — the paper's main-thread-blocking family plus the
failure modes the related work catalogs (async-wait hangs, IPC waits,
lifecycle races) and the true-negative pressure (render-side jank) a
soft-hang detector must not flag.  See ``docs/scenarios.md``.
"""

from repro.scenarios.generator import (
    GeneratedApp,
    generate_fleet,
    scenario_app,
)
from repro.scenarios.taxonomy import (
    ARCHETYPES,
    DEFAULT_MIX,
    TAXONOMY,
    Archetype,
    assign_archetypes,
    parse_mix,
    render_mix,
)

__all__ = [
    "ARCHETYPES",
    "Archetype",
    "DEFAULT_MIX",
    "GeneratedApp",
    "TAXONOMY",
    "assign_archetypes",
    "generate_fleet",
    "parse_mix",
    "render_mix",
    "scenario_app",
]
