"""Archetype templates: composable app builders over the API pools.

Every builder has the same shape — ``build(rng, name, package) ->
AppSpec`` — and draws everything it needs from the *rng* it is given,
so a generated app is a pure function of ``(archetype, rng stream)``.
All builders share the :func:`~repro.apps.corpus.app_profile` prefix
(category, downloads, commit) and, for the bug archetypes, a clean-app
action body (:func:`~repro.apps.corpus.clean_actions`) that the bug
actions are appended to: a bug-bearing app is a clean app plus its
bugs, the way real apps are.

Ground truth falls out of the operation model: an operation is a soft
hang bug iff its API ``can_hang`` and it runs on the main thread
(:attr:`repro.apps.app.Operation.is_hang_bug`), so the metrics layer
scores generated apps the same way it scores the hand-modelled
catalog.  The archetypes:

``clean``
    :func:`repro.apps.corpus.clean_app` verbatim — UI and light work
    only, zero ground-truth bugs.
``main_thread_blocking``
    The paper's own family: clean body plus 1-2 actions that call a
    hang-capable blocking/compute API on the main thread.
``async_task_hang``
    PersisDroid's anatomy: work correctly offloaded to a worker, then
    re-serialized by a synchronous main-thread wait (``AsyncTask.get``,
    ``Future.get``...).  The *wait* is the ground-truth bug; the worker
    operation is not.
``ipc_wait_hang``
    A synchronous binder round trip (provider query, package-manager
    lookup) on the main thread.
``lifecycle_callback_race``
    A blocking call inside a lifecycle callback (``onResume``/
    ``onCreate``) that only manifests when it loses its race with the
    background warm-up — ``manifest_prob`` drawn low, so the bug site
    is ground truth that rarely hangs (recall pressure).
``render_jank_benign``
    True-negative pressure: genuinely slow, render-heavy UI work.  The
    hangs are real (response > 100 ms) but every root cause is a UI
    class the detector must rule out.  Zero ground-truth bugs; any
    HANG_BUG verdict here is a false positive.
"""

from dataclasses import replace

from repro.apps import android_apis as apis
from repro.apps.app import AppSpec
from repro.apps.catalog_helpers import action, op
from repro.apps.corpus import app_profile, clean_actions, clean_app

#: Main-thread blocking/compute APIs long enough to be hang bugs
#: (filters out sub-100 ms movable calls like camera setParameters).
BLOCKING_POOL = tuple(
    api for api in apis.KNOWN_BLOCKING_APIS + apis.UNKNOWN_BLOCKING_APIS
    if api.can_hang
)

#: Render-heavy UI APIs — the work that lights up the render thread,
#: which is exactly what lets the S-Checker rule these hangs out.
RENDER_POOL = tuple(
    api for api in apis.ALL_UI_APIS if api.render_share >= 0.4
)

#: Lifecycle callbacks the race archetype hides its bug inside.
_LIFECYCLE_HANDLERS = ("onResume", "onCreate", "onActivityResult")


def _pick(rng, pool):
    """Draw one API from *pool*."""
    return pool[int(rng.integers(len(pool)))]


def build_clean(rng, name, package):
    """The ``clean`` archetype — the legacy corpus generator itself."""
    return clean_app(rng, name, package)


def build_main_thread_blocking(rng, name, package):
    """Clean body + 1-2 main-thread blocking calls (the paper's bugs)."""
    category, downloads, commit = app_profile(rng)
    actions = list(clean_actions(rng))
    for bug in range(int(rng.integers(1, 3))):
        api = _pick(rng, BLOCKING_POOL)
        actions.append(action(
            f"load_{bug}", f"onLoad{bug}",
            op(api, f"loadContent{bug}"),
            op(_pick(rng, apis.LIGHT_APIS), f"loadContent{bug}"),
        ))
    return AppSpec(
        name=name, package=package, category=category,
        downloads=downloads, commit=commit, actions=tuple(actions),
    )


def build_async_task_hang(rng, name, package):
    """Worker-offloaded I/O re-serialized by a synchronous wait."""
    category, downloads, commit = app_profile(rng)
    actions = list(clean_actions(rng))
    for bug in range(int(rng.integers(1, 3))):
        background = _pick(rng, BLOCKING_POOL)
        wait = _pick(rng, apis.ASYNC_WAIT_APIS)
        actions.append(action(
            f"await_{bug}", f"onRefresh{bug}",
            # The offloaded work is correct (not a bug site) ...
            op(background, f"backgroundWork{bug}", on_worker=True),
            # ... blocking the main thread on its result is the bug.
            op(wait, f"awaitResult{bug}"),
            op(_pick(rng, apis.LIGHT_APIS), f"awaitResult{bug}"),
        ))
    return AppSpec(
        name=name, package=package, category=category,
        downloads=downloads, commit=commit, actions=tuple(actions),
    )


def build_ipc_wait_hang(rng, name, package):
    """Synchronous binder IPC on the main thread."""
    category, downloads, commit = app_profile(rng)
    actions = list(clean_actions(rng))
    for bug in range(int(rng.integers(1, 3))):
        api = _pick(rng, apis.IPC_APIS)
        actions.append(action(
            f"query_{bug}", f"onQuery{bug}",
            op(api, f"queryProvider{bug}"),
            op(_pick(rng, apis.LIGHT_APIS), f"queryProvider{bug}"),
        ))
    return AppSpec(
        name=name, package=package, category=category,
        downloads=downloads, commit=commit, actions=tuple(actions),
    )


def build_lifecycle_callback_race(rng, name, package):
    """A blocking call in a lifecycle callback that rarely manifests.

    The callback races a background warm-up; only when it loses does
    the blocking call run slow.  ``manifest_prob`` is drawn in
    [0.15, 0.45], so the site is a ground-truth bug most deployments
    under-observe.
    """
    category, downloads, commit = app_profile(rng)
    actions = list(clean_actions(rng))
    api = _pick(rng, BLOCKING_POOL)
    probability = round(0.15 + 0.30 * float(rng.random()), 3)
    handler = _LIFECYCLE_HANDLERS[
        int(rng.integers(len(_LIFECYCLE_HANDLERS)))
    ]
    racy = replace(api, manifest_prob=probability)
    actions.append(action(
        "lifecycle_init", handler,
        op(racy, "initOnCallback"),
        op(_pick(rng, apis.LIGHT_APIS), "initOnCallback"),
    ))
    return AppSpec(
        name=name, package=package, category=category,
        downloads=downloads, commit=commit, actions=tuple(actions),
    )


def build_render_jank_benign(rng, name, package):
    """Slow render-heavy UI work — hangs without bugs.

    Each action is built around a *single* heavy render-side UI call
    (plus light bookkeeping), so phase-2 trace analysis — if the
    S-Checker's counter filter ever lets a hang through — attributes a
    UI-class leaf with a dominant occurrence factor and correctly
    rules the hang benign.
    """
    category, downloads, commit = app_profile(rng)
    actions = []
    for index in range(int(rng.integers(3, 6))):
        api = _pick(rng, RENDER_POOL)
        # Always perceivably slow: draw the manifested mean in
        # [140, 400) ms regardless of the base API's default.
        mean_ms = round(140.0 + 260.0 * float(rng.random()), 1)
        heavy = replace(api, mean_ms=mean_ms, sigma=0.3)
        actions.append(action(
            f"render_{index}", "onScroll",
            op(heavy, f"bindRow{index}"),
            op(_pick(rng, apis.LIGHT_APIS), f"bindRow{index}"),
        ))
    return AppSpec(
        name=name, package=package, category=category,
        downloads=downloads, commit=commit, actions=tuple(actions),
    )
