"""Seeded, index-addressable scenario-fleet generation.

The generator turns ``(size, mix, seed)`` into a fleet of labelled
:class:`GeneratedApp` records.  Determinism contract:

* App *k* of an archetype is drawn from the stream keyed
  ``(seed, "scenario", archetype, k)`` — a pure function of those
  three values, independent of mix, fleet size, shard assignment, and
  generation order.
* :func:`generate_fleet` with ``indices`` materializes only the
  requested slice, byte-identical to the same positions of the full
  fleet — this is what lets the sweep harness shard generation across
  worker processes.
"""

from dataclasses import dataclass

from repro.apps.app import AppSpec
from repro.base.rng import stream
from repro.scenarios.taxonomy import (
    ARCHETYPES,
    DEFAULT_MIX,
    assign_archetypes,
)


@dataclass(frozen=True)
class GeneratedApp:
    """One labelled app of a scenario fleet."""

    #: Position in the fleet.
    index: int
    #: Ground-truth archetype label (canonical name).
    archetype: str
    app: AppSpec


def scenario_app(archetype_name, ordinal, seed=0):
    """Generate app *ordinal* of one archetype (a pure function)."""
    archetype = ARCHETYPES[archetype_name]
    rng = stream(seed, "scenario", archetype.name, ordinal)
    return archetype.build(
        rng,
        f"{archetype.prefix}-{ordinal:04d}",
        f"com.scenario.{archetype.alias}{ordinal:04d}",
    )


def generate_fleet(size, mix=DEFAULT_MIX, seed=0, indices=None):
    """Generate a scenario fleet (or, with *indices*, a slice of one).

    Returns :class:`GeneratedApp` records in the order of *indices*
    (the whole fleet in position order by default).  Generating a
    slice draws exactly the apps at those positions — nothing else —
    so shards of any size recompose into the full fleet.
    """
    assignment = assign_archetypes(mix, size)
    positions = range(size) if indices is None else indices
    fleet = []
    for position in positions:
        name, ordinal = assignment[position]
        fleet.append(GeneratedApp(
            index=position,
            archetype=name,
            app=scenario_app(name, ordinal, seed=seed),
        ))
    return fleet
