"""The declarative archetype taxonomy and mix arithmetic.

An :class:`Archetype` names one failure mode (or non-failure mode) the
generator can emit, with its builder template and whether its apps
carry ground-truth bugs.  A *mix* assigns each archetype a fraction of
the fleet; :func:`parse_mix` accepts the CLI's compact
``clean=0.5,blocking=0.2,...`` syntax (full names or short aliases)
and :func:`assign_archetypes` turns a mix into a deterministic
per-index assignment.

Two properties the assignment guarantees:

* **Index-addressable** — the archetype (and its per-archetype
  ordinal) at fleet index *i* depends only on (mix, i), so a shard can
  generate exactly its slice of a fleet without materializing the
  rest.
* **Mix-stable streams** — app *k* of an archetype is always drawn
  from the stream keyed ``(seed, "scenario", archetype, k)``: changing
  the mix or fleet size changes *which* apps appear, never what app
  ``(archetype, k)`` looks like, and no two archetypes ever share a
  stream.
"""

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.scenarios import archetypes


@dataclass(frozen=True)
class Archetype:
    """One entry of the taxonomy."""

    #: Canonical name (used in tables, ground-truth labels, run keys).
    name: str
    #: Short CLI alias (``--mix clean=0.5,async=0.2``).
    alias: str
    #: App-name prefix (``AsyncApp-0042``).
    prefix: str
    #: Whether generated apps carry ground-truth hang-bug sites.
    has_bugs: bool
    #: One-line description for docs and ``render()`` footers.
    description: str
    #: ``build(rng, name, package) -> AppSpec`` template.
    build: Callable

    def __repr__(self):  # stable across runs, safe inside run keys
        return f"Archetype({self.name})"


#: The taxonomy, in canonical (rendering and tie-break) order.
TAXONOMY: Tuple[Archetype, ...] = (
    Archetype(
        "clean", "clean", "CleanApp", False,
        "UI and light work only; zero ground-truth bugs",
        archetypes.build_clean,
    ),
    Archetype(
        "main_thread_blocking", "blocking", "BlockApp", True,
        "blocking/compute API on the main thread (the paper's family)",
        archetypes.build_main_thread_blocking,
    ),
    Archetype(
        "async_task_hang", "async", "AsyncApp", True,
        "worker-offloaded work re-serialized by a synchronous wait",
        archetypes.build_async_task_hang,
    ),
    Archetype(
        "ipc_wait_hang", "ipc", "IpcApp", True,
        "synchronous binder IPC round trip on the main thread",
        archetypes.build_ipc_wait_hang,
    ),
    Archetype(
        "lifecycle_callback_race", "race", "RaceApp", True,
        "blocking lifecycle callback that rarely loses its race",
        archetypes.build_lifecycle_callback_race,
    ),
    Archetype(
        "render_jank_benign", "render", "RenderApp", False,
        "slow render-heavy UI work the detector must not flag",
        archetypes.build_render_jank_benign,
    ),
)

#: Lookup by canonical name.
ARCHETYPES = {archetype.name: archetype for archetype in TAXONOMY}

#: Lookup by canonical name *or* CLI alias.
_BY_ANY_NAME = {
    **{archetype.alias: archetype for archetype in TAXONOMY},
    **ARCHETYPES,
}

#: The acceptance-criteria mix: mostly clean, the paper's family next,
#: the new archetypes as the tail.
DEFAULT_MIX = (
    "clean=0.5,blocking=0.2,async=0.15,ipc=0.05,race=0.05,render=0.05"
)


def parse_mix(spec):
    """Normalize a mix spec into ``((name, fraction), ...)``.

    *spec* is either the compact string syntax
    (``"clean=0.5,async=0.5"``, names or aliases), a mapping, or an
    already-parsed tuple (returned re-normalized).  Fractions must be
    positive and are normalized to sum to 1; entries come back in
    taxonomy order regardless of spelling order.
    """
    if isinstance(spec, str):
        pairs = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            key, separator, value = chunk.partition("=")
            if not separator:
                raise ValueError(
                    f"mix entry {chunk!r} is not name=fraction"
                )
            pairs.append((key.strip(), float(value)))
    else:
        pairs = [(key, float(value)) for key, value in dict(spec).items()]
    weights = {}
    for key, value in pairs:
        archetype = _BY_ANY_NAME.get(key)
        if archetype is None:
            raise ValueError(
                f"unknown archetype {key!r}; known: "
                f"{[a.name for a in TAXONOMY]} "
                f"(aliases {[a.alias for a in TAXONOMY]})"
            )
        if value <= 0:
            raise ValueError(
                f"archetype {key!r} needs a positive fraction, "
                f"got {value!r}"
            )
        if archetype.name in weights:
            raise ValueError(f"archetype {archetype.name!r} given twice")
        weights[archetype.name] = value
    if not weights:
        raise ValueError("empty mix")
    total = sum(weights.values())
    return tuple(
        (archetype.name, weights[archetype.name] / total)
        for archetype in TAXONOMY
        if archetype.name in weights
    )


def assign_archetypes(mix, size):
    """Deterministic largest-remainder interleave of *mix* over *size*.

    Returns a list of ``(archetype_name, ordinal)`` pairs, one per
    fleet index: position *i* goes to the archetype with the largest
    quota deficit ``fraction * (i + 1) - emitted`` (ties break in
    taxonomy order), and *ordinal* counts that archetype's apps so
    far.  The result interleaves archetypes evenly — any prefix of the
    fleet is itself approximately on-mix, which keeps small smoke
    fleets representative and checkpoint shards balanced.
    """
    mix = parse_mix(mix)
    if size < 0:
        raise ValueError("size must be >= 0")
    emitted = {name: 0 for name, _ in mix}
    assignment = []
    for position in range(size):
        best_name = None
        best_deficit = None
        for name, fraction in mix:
            deficit = fraction * (position + 1) - emitted[name]
            if best_deficit is None or deficit > best_deficit:
                best_name, best_deficit = name, deficit
        assignment.append((best_name, emitted[best_name]))
        emitted[best_name] += 1
    return assignment


def render_mix(mix):
    """Compact human rendering of a parsed mix (alias=fraction)."""
    return ",".join(
        f"{ARCHETYPES[name].alias}={fraction:g}"
        for name, fraction in parse_mix(mix)
    )
