"""Elastic, failure-driven shard scheduling for fleet-scale sweeps.

Sits between the harnesses and :func:`repro.parallel.parallel_map`:
a :class:`CostModel` turns archetype taxonomy and perf-trajectory
calibration into relative shard weights, :func:`pack_by_weight` packs
items into balanced weighted shards, and :class:`ElasticScheduler`
drives the dispatch loop — stealing work from stragglers, resharding
after worker loss, journaling every decision through the checkpoint
layer before acting on it.  Scheduling never changes output bytes:
every work item is pure and results merge in key order.
"""

from repro.sched.cost import ARCHETYPE_WEIGHTS, REFERENCE_ACTIONS, CostModel
from repro.sched.scheduler import (
    DEADLINE_JITTER,
    MAX_IDLE_ROUNDS,
    ElasticScheduler,
    pack_by_weight,
)

__all__ = [
    "ARCHETYPE_WEIGHTS",
    "REFERENCE_ACTIONS",
    "CostModel",
    "DEADLINE_JITTER",
    "MAX_IDLE_ROUNDS",
    "ElasticScheduler",
    "pack_by_weight",
]
