"""The per-archetype / per-app cost model behind shard weights.

Static sharding splits work by *count*; at fleet scale that is wrong
twice over — archetypes cost different amounts to simulate (a
render-jank app emits far more UI events per action than a clean one;
a blocking-API app pays phase-2 trace collections a clean app never
does), and device rounds scale with how many apps and actions each
device runs.  A :class:`CostModel` turns those structural facts into a
relative *weight* per work item, which the elastic scheduler
(:mod:`repro.sched.scheduler`) packs into balanced shards.

Two calibration sources, both optional:

* **The archetype taxonomy** (PR 8): :data:`ARCHETYPE_WEIGHTS` carries
  one relative weight per archetype, measured from per-archetype
  sweep timings on the reference machine.  Unknown archetypes weigh
  ``1.0`` — an uncalibrated app is an average app.
* **The perf trajectory** (PR 6): :meth:`CostModel.from_trajectory`
  reads the committed ``BENCH_engine.json`` / ``BENCH_scenarios.json``
  baselines to anchor weights to wall seconds
  (:meth:`CostModel.estimate_seconds`), which the scheduler uses to
  pick straggler deadlines.  A missing or unreadable trajectory just
  means no wall-clock anchor — weights still work.

Weights steer *scheduling only*.  Every work item is a pure function
of its payload, so a wrong weight can cost wall time, never
correctness: rendered output is byte-identical for any cost model.
"""

import json
import pathlib

#: Relative simulation cost per archetype, calibrated against the
#: ``clean`` archetype (= 1.0) from per-archetype scenario-sweep
#: timings.  Bug-bearing archetypes pay detection work (phase-2 trace
#: collections, diagnosis) on top of event accrual; render-jank apps
#: pay for dense UI event streams despite carrying no bugs.
ARCHETYPE_WEIGHTS = {
    "clean": 1.0,
    "main_thread_blocking": 1.45,
    "async_task_hang": 1.4,
    "ipc_wait_hang": 1.35,
    "lifecycle_callback_race": 1.15,
    "render_jank_benign": 1.25,
}

#: Reference actions-per-round a weight of 1.0 corresponds to (the
#: crowd sweep's default round length).
REFERENCE_ACTIONS = 40.0


class CostModel:
    """Maps work items to relative shard weights.

    Parameters
    ----------
    archetype_weights: per-archetype relative weights (defaults to
        :data:`ARCHETYPE_WEIGHTS`; unknown names weigh 1.0).
    ms_per_action: wall-clock anchor — simulated milliseconds of
        engine time per user action on the calibration machine, or
        ``None`` when no trajectory is available.
    """

    def __init__(self, archetype_weights=None, ms_per_action=None):
        self.archetype_weights = dict(
            ARCHETYPE_WEIGHTS if archetype_weights is None
            else archetype_weights
        )
        self.ms_per_action = ms_per_action

    # -------------------------------------------------------- weights

    def archetype_weight(self, archetype):
        """Relative cost of one app of *archetype* (1.0 if unknown)."""
        return float(self.archetype_weights.get(archetype, 1.0))

    def app_weight(self, archetype, actions=None):
        """Weight of one app deployment: archetype cost, scaled by the
        session length when given."""
        weight = self.archetype_weight(archetype)
        if actions is not None:
            weight *= max(1.0, float(actions)) / REFERENCE_ACTIONS
        return weight

    def device_round_weight(self, app_count, actions):
        """Weight of one device sync round: *app_count* catalog apps,
        *actions* user actions each.  Catalog apps are hand-modelled
        (no archetype label), so they weigh like the average app."""
        return max(1, int(app_count)) * (
            max(1.0, float(actions)) / REFERENCE_ACTIONS
        )

    # ------------------------------------------------------ wall clock

    def estimate_seconds(self, weight, actions=REFERENCE_ACTIONS):
        """Predicted wall seconds for a shard of total *weight*, or
        ``None`` without a trajectory anchor.

        The anchor is deliberately coarse — it sizes straggler
        deadlines (an order-of-magnitude question), not billing.
        """
        if self.ms_per_action is None:
            return None
        return float(weight) * float(actions) * self.ms_per_action / 1000.0

    # ----------------------------------------------------- calibration

    @classmethod
    def from_trajectory(cls, bench_dir=None, archetype_weights=None):
        """Build a model anchored to the committed perf trajectory.

        Reads ``BENCH_engine.json``'s full-mode columnar
        ms-per-action when present; any missing, unreadable, or
        unexpected file degrades to an unanchored model — the
        trajectory is a calibration convenience, never a dependency.
        """
        if bench_dir is None:
            bench_dir = (
                pathlib.Path(__file__).resolve().parents[3] / "benchmarks"
            )
        ms_per_action = None
        try:
            payload = json.loads(
                (pathlib.Path(bench_dir) / "BENCH_engine.json").read_text()
            )
            entry = payload["entries"]["full_mode.columnar_ms_per_action"]
            value = float(entry["value"])
            if value > 0.0:
                ms_per_action = value
        except (OSError, ValueError, KeyError, TypeError):
            ms_per_action = None
        return cls(archetype_weights=archetype_weights,
                   ms_per_action=ms_per_action)

    def describe(self):
        """One-line summary for logs and docs."""
        anchor = (
            "unanchored" if self.ms_per_action is None
            else f"{self.ms_per_action:g} ms/action"
        )
        weights = ", ".join(
            f"{name}={weight:g}"
            for name, weight in sorted(self.archetype_weights.items())
        )
        return f"cost model ({anchor}): {weights}"
