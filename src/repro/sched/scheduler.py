"""The elastic shard scheduler between harnesses and the executor.

Static sharding (``chunk_indices`` + one :func:`parallel_map` call)
assigns every shard once and forces each to completion where it
landed.  A long-lived fleet run needs more: shards that cost different
amounts must pack by *weight*, a straggler must not hold the round
hostage (its work is *stolen* past a seeded deadline and repacked
onto the rest of the pool), and a worker death must *reshard* the
in-flight work instead of serializing it in the parent.

:class:`ElasticScheduler` implements that loop on top of the
supervised executor's reclaim mode
(:func:`repro.parallel.parallel_map` with ``reclaim=True``):

1. Pack pending items into weighted shards (deterministic LPT, see
   :func:`pack_by_weight`) — one shard per live worker slot.
2. Write-ahead the assignment to the checkpoint journal's
   reassignment log, then dispatch the round.
3. Reclaim whatever stalled (a *steal*: the items repack next round,
   accounted in ``ExecutionReport.steals``) or died with a worker (a
   *reshard*, accounted in ``reshards``) — each decision journaled
   *before* it is acted on.
4. Repeat until done; if two consecutive rounds make no progress, a
   final non-reclaim dispatch (the supervisor's own rebuild/in-process
   machinery, faults disabled) guarantees termination.

The determinism contract, inherited from the executor and defended by
``tests/test_sched.py``: every work item is a pure function of its
payload and results merge in submission-key order, so rendered output
is byte-identical for any worker count, any packing, and **any
failure schedule** — injected or real, including none at all.
Scheduling telemetry (steals, reshards, round counts) lives on the
advisory channel and in the :class:`~repro.parallel.ExecutionReport`,
never in deterministic output.
"""

import heapq

from repro.base.rng import stream
from repro.faults import FaultInjector
from repro.parallel import ExecutionReport, parallel_map, resolve_workers
from repro.sched.cost import CostModel
from repro.telemetry import absorb_value
from repro.telemetry import current as _telemetry_current

#: Seeded jitter band on the per-round steal deadline: each round's
#: deadline is the base deadline times 1 + U[0, DEADLINE_JITTER).
DEADLINE_JITTER = 0.5

#: Consecutive zero-progress dispatch rounds tolerated before the
#: scheduler falls back to the supervisor's forced-completion path.
MAX_IDLE_ROUNDS = 2


def pack_by_weight(weights, bins):
    """Pack ``range(len(weights))`` into at most *bins* weighted groups.

    Deterministic longest-processing-time packing: items are placed
    heaviest-first (ties broken by index) onto the currently lightest
    bin (ties broken by bin number).  Returns a list of tuples of
    ascending indices; empty bins are dropped, non-empty bins come
    back in bin order, and the tuples partition ``range(len(weights))``.

    >>> pack_by_weight([3.0, 1.0, 1.0, 1.0], 2)
    [(0,), (1, 2, 3)]
    """
    count = len(weights)
    if bins < 1 and count:
        raise ValueError(f"bins must be >= 1, got {bins}")
    bins = max(1, min(bins, count)) if count else 0
    order = sorted(range(count), key=lambda i: (-float(weights[i]), i))
    loads = [(0.0, number) for number in range(bins)]
    heapq.heapify(loads)
    packed = [[] for _ in range(bins)]
    for index in order:
        load, number = heapq.heappop(loads)
        packed[number].append(index)
        heapq.heappush(loads, (load + float(weights[index]), number))
    return [tuple(sorted(group)) for group in packed if group]


def _run_group(payload):
    """Execute one packed shard (module-level so the pool can pickle
    it): run each item in key order, return the values in that order."""
    fn, pairs = payload
    return [fn(item) for _key, item in pairs]


class ElasticScheduler:
    """Weight-packing, work-stealing, resharding dispatch loop.

    Parameters
    ----------
    workers: worker processes (``0``/``None`` = one per CPU).
    cost_model: :class:`~repro.sched.cost.CostModel` used when a
        :meth:`map` call passes no explicit weights (items weigh 1.0
        without either).
    faults: optional :class:`~repro.faults.FaultInjector` whose
        executor channels (``worker_kill``/``shard_stall``) are
        re-scoped per dispatch round — a shard killed in round *r*
        draws a fresh verdict in round *r + 1*, so injected storms
        exercise stealing and resharding without livelocking the loop.
    journal: optional :class:`~repro.checkpoint.ShardJournal`; completed
        shards are journaled the moment they finish (content-keyed, so
        an interrupted run resumes from its last completed shard) and
        every assignment/steal/reshard is write-ahead logged.
    report: :class:`~repro.parallel.ExecutionReport` accounting the
        run (``steals``/``reshards`` on top of the supervisor's own
        counters).
    deadline: base straggler deadline in wall seconds (jittered per
        round from the seeded stream; ``None`` disables stealing).
    seed: seeds the deadline-jitter stream only — scheduling decisions
        never touch the work items' own streams.
    """

    def __init__(self, workers=1, cost_model=None, faults=None,
                 journal=None, report=None, deadline=None, seed=0):
        self.workers = resolve_workers(workers)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.faults = faults
        self.journal = journal
        self.report = report if report is not None else ExecutionReport()
        self.deadline = deadline
        self.seed = seed
        #: Dispatch rounds issued across all :meth:`map` calls.
        self.dispatch_rounds = 0

    # ------------------------------------------------------------ helpers

    def _round_deadline(self, round_number):
        if self.deadline is None:
            return None
        jitter = float(
            stream(self.seed, "sched", "deadline", round_number).random()
        )
        return self.deadline * (1.0 + DEADLINE_JITTER * jitter)

    def _round_faults(self, round_number):
        """Per-round injector: same plan, round-scoped streams."""
        if self.faults is None:
            return None
        return FaultInjector(
            self.faults.plan, seed=self.faults.seed,
            scope=(*self.faults.scope, "dispatch", round_number),
        )

    def _group_key(self, member_keys):
        """Content key of a packed shard (stable across runs that pack
        identically, so resumes restore whole groups)."""
        return "grp|" + "+".join(member_keys)

    def _restore(self, group_key):
        if self.journal is None:
            return False, None
        hit, value = self.journal.load(group_key)
        if not hit:
            return False, None
        _telemetry_current().advisory_event("checkpoint.restore",
                                            shard=group_key)
        return True, absorb_value(value, group_key)

    def _log(self, kind, **record):
        if self.journal is not None:
            self.journal.log_reassignment(kind, **record)

    # ---------------------------------------------------------------- map

    def map(self, fn, items, keys, weights=None):
        """Ordered ``[fn(item) for item in items]``, elastically.

        *keys* name the items (unique, stable across runs — they key
        journal entries and the reassignment log).  *weights* are the
        relative shard weights (defaults to 1.0 per item; pass
        cost-model weights for heterogeneous work).  Item exceptions
        propagate exactly as :func:`parallel_map`'s do.
        """
        items = list(items)
        keys = [str(key) for key in keys]
        if len(items) != len(keys):
            raise ValueError(
                f"need one key per item, got {len(keys)} keys for "
                f"{len(items)} items"
            )
        if len(set(keys)) != len(keys):
            raise ValueError("item keys must be unique within one map")
        if weights is None:
            weights = [1.0] * len(items)
        weights = [float(weight) for weight in weights]
        if len(weights) != len(items):
            raise ValueError(
                f"need one weight per item, got {len(weights)} for "
                f"{len(items)} items"
            )
        # Deterministic dispatch accounting: counted at map() entry as
        # a pure function of the inputs, never of dispatch rounds or
        # journal hits — so the metrics export survives resume and
        # executor storms byte-identically.
        tel = _telemetry_current()
        tel.count("sched.maps")
        tel.count("sched.items.mapped", len(items))
        self.report.shards += 0  # parallel_map accounts per dispatch
        done = {}
        pending = list(range(len(items)))
        idle_rounds = 0
        while pending:
            round_number = self.dispatch_rounds
            self.dispatch_rounds += 1
            groups = pack_by_weight([weights[i] for i in pending],
                                    min(self.workers, len(pending)))
            # Map positions within `pending` back to original indices.
            groups = [tuple(pending[p] for p in group) for group in groups]
            group_keys = [
                self._group_key([keys[i] for i in group])
                for group in groups
            ]
            # Serve journaled groups without dispatching them.
            live_groups = []
            live_keys = []
            for group, group_key in zip(groups, group_keys):
                hit, value = self._restore(group_key)
                if hit:
                    for index, item_value in zip(group, value):
                        done[keys[index]] = item_value
                    self.report.checkpoint_hits += len(group)
                    self.report.record(
                        "checkpoint",
                        f"restored {len(group)} item(s) from "
                        f"{group_key!r}",
                    )
                else:
                    live_groups.append(group)
                    live_keys.append(group_key)
            if not live_groups:
                pending = [
                    i for i in pending if keys[i] not in done
                ]
                continue
            # Write-ahead the assignment before acting on it.
            self._log(
                "assign", round=round_number,
                shards=[
                    [keys[i] for i in group] for group in live_groups
                ],
            )
            payloads = [
                (fn, [(keys[i], items[i]) for i in group])
                for group in live_groups
            ]

            def journal_group(position, value, _keys=live_keys):
                if self.journal is not None:
                    self.journal.record(_keys[position], value)

            partial = parallel_map(
                _run_group, payloads, workers=self.workers,
                deadline=self._round_deadline(round_number),
                faults=self._round_faults(round_number),
                report=self.report, on_result=journal_group,
                shard_tracks=live_keys, reclaim=True,
            )
            for position, value in partial.values.items():
                for index, item_value in zip(live_groups[position], value):
                    done[keys[index]] = item_value
            # Steals and reshards: journal the decision, then let the
            # next round's packing redistribute the reclaimed items.
            for position in partial.stalled:
                stolen = [keys[i] for i in live_groups[position]]
                self.report.steals += len(stolen)
                self.report.record(
                    "steal",
                    f"round {round_number}: reclaimed {len(stolen)} "
                    f"item(s) from straggler shard {position}",
                )
                self._log("steal", round=round_number, items=stolen)
            for position in partial.crashed:
                lost = [keys[i] for i in live_groups[position]]
                self.report.reshards += len(lost)
                self.report.record(
                    "reshard",
                    f"round {round_number}: resharding {len(lost)} "
                    f"item(s) after worker loss",
                )
                self._log("reshard", round=round_number, items=lost)
            before = len(pending)
            pending = [i for i in pending if keys[i] not in done]
            idle_rounds = idle_rounds + 1 if len(pending) == before else 0
            if pending and idle_rounds >= MAX_IDLE_ROUNDS:
                # Escape hatch: the storm keeps eating every dispatch.
                # Hand the remainder to the supervisor's forced path
                # (pool rebuilds + in-process last resort, no
                # injection) — it always terminates.
                self.report.record(
                    "sched-fallback",
                    f"{len(pending)} item(s) after {idle_rounds} idle "
                    f"round(s); forcing completion",
                )
                self._log("fallback",
                          items=[keys[i] for i in pending])
                forced_keys = [self._group_key([keys[i]])
                               for i in pending]

                def journal_forced(position, value, _keys=forced_keys):
                    if self.journal is not None:
                        self.journal.record(_keys[position], value)

                values = parallel_map(
                    _run_group,
                    [(fn, [(keys[i], items[i])]) for i in pending],
                    workers=self.workers, report=self.report,
                    on_result=journal_forced, shard_tracks=forced_keys,
                )
                for index, value in zip(pending, values):
                    done[keys[index]] = value[0]
                pending = []
        return [done[key] for key in keys]
