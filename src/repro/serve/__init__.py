"""The live crowd ingestion service.

PR 3 built the crowd backend as a *batch library*: sync rounds are
synchronous function calls into
:class:`~repro.crowd.aggregator.CrowdAggregator`.  This package stands
that backend up as a long-running asyncio HTTP service (``repro
serve``): devices POST their
:class:`~repro.crowd.aggregator.ReportBatch`\\ es, the aggregator
absorbs them incrementally — the CRDT merge already makes that safe
under concurrency, duplication, and reordering — and rolling
:class:`~repro.crowd.aggregator.CrowdKnowledge` snapshots are
published through the existing atomic-write persistence.

Robustness is the headline, layered bottom-up:

* :mod:`repro.serve.wal` — a crash-safe, checksum-framed write-ahead
  batch journal: a batch is acknowledged only after its WAL record is
  fsynced, so an acked batch survives SIGKILL and is replayed
  idempotently on restart (CRDT dedup makes replay free);
* :mod:`repro.serve.state` — recovery composition: last complete
  snapshot (atomic writes keep it complete) plus the WAL tail cut at
  the last intact record;
* :mod:`repro.serve.service` — the asyncio HTTP tier: bounded ingest
  queue and per-tenant token buckets with 429 + ``Retry-After``
  admission control, health/readiness endpoints, rolling snapshot
  publication, and graceful drain on shutdown;
* :mod:`repro.serve.client` — the deterministic upload client: seeded
  exponential-backoff-plus-jitter retries
  (:class:`~repro.base.rng.SeededBackoff`), per-request timeouts, a
  circuit breaker, and the :mod:`repro.faults` network channels
  (request_drop / request_delay / connection_reset /
  response_corrupt) injected at the wire;
* :mod:`repro.serve.loadgen` — the ``repro serve-bench`` stress
  harness: thousands of simulated devices, throughput / latency
  percentiles / shed rate / retry counts, and the byte-identity check
  against the batch baseline.

The service's own timing (wall clock, socket scheduling) is
nondeterministic and stays on the telemetry *advisory* channel; the
deterministic guarantee is about *content*: at network fault rate 0
the final published snapshot is byte-identical to the synchronous
batch path over the same fleet, for any client concurrency and across
a mid-run server SIGKILL + restart.  See ``docs/serve.md``.
"""

from repro.serve.client import ClientStats, DeliveryError, ServeClient
from repro.serve.loadgen import LoadgenReport, run_bench
from repro.serve.service import IngestService
from repro.serve.state import ServiceState
from repro.serve.wal import BatchJournal

__all__ = [
    "BatchJournal",
    "ClientStats",
    "DeliveryError",
    "IngestService",
    "LoadgenReport",
    "ServeClient",
    "ServiceState",
    "run_bench",
]
