"""The deterministic upload client.

One :class:`ServeClient` is one device's view of the ingestion
service.  Its job is to make at-least-once delivery *boring*: every
failure mode of the upload path — refused connections, timeouts,
resets mid-exchange, corrupted responses, 429 shedding, 503 drains —
funnels into the same loop: wait a seeded backoff delay, try again,
up to ``max_attempts``.  The server's idempotent ingestion turns
at-least-once into exactly-once.

Determinism: every retry *decision* is reproducible.  Backoff delays
come from :class:`~repro.base.rng.SeededBackoff` (exponential +
decorrelated jitter, keyed per client), injected network faults come
from the :mod:`repro.faults` network channels keyed by
``(batch_id, attempt)`` — independent of concurrency or scheduling —
and the circuit breaker's thresholds and cooldowns are fixed
functions of the observed failure sequence.  What stays wall-clock
(actual socket latencies) only stretches time between decisions; it
never changes which batches are delivered, which is why fault-rate-0
runs publish byte-identical snapshots at any concurrency.

The circuit breaker trips after ``breaker_threshold`` *consecutive*
failures: further attempts first sit out a seeded cooldown (the
half-open probe), so a down server costs one probe per cooldown
instead of a retry storm.  A success closes the breaker and resets
both backoff schedules.
"""

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro.base.rng import SeededBackoff
from repro.crowd.store import batch_to_dict


class DeliveryError(RuntimeError):
    """A batch could not be delivered within ``max_attempts``."""


@dataclass
class ClientStats:
    """One client's delivery bookkeeping (wall-clock parts advisory)."""

    delivered: int = 0
    duplicates: int = 0
    attempts: int = 0
    #: Attempts beyond the first, per outcome class.
    retries: int = 0
    shed_429: int = 0
    unavailable_503: int = 0
    timeouts: int = 0
    connection_errors: int = 0
    corrupt_responses: int = 0
    server_errors: int = 0
    injected_drops: int = 0
    injected_delays: int = 0
    injected_resets: int = 0
    breaker_opens: int = 0
    failed: int = 0
    #: Wall-clock milliseconds per *successful* upload (first byte of
    #: the first attempt to the final ack) — advisory only.
    latencies_ms: list = field(default_factory=list)

    def merge(self, other):
        """Fold another client's stats into this one."""
        for name in ("delivered", "duplicates", "attempts", "retries",
                     "shed_429", "unavailable_503", "timeouts",
                     "connection_errors", "corrupt_responses",
                     "server_errors", "injected_drops", "injected_delays",
                     "injected_resets", "breaker_opens", "failed"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.latencies_ms.extend(other.latencies_ms)
        return self


class _Breaker:
    """Consecutive-failure circuit breaker with seeded cooldowns."""

    def __init__(self, threshold, cooldown):
        self.threshold = threshold
        self.cooldown = cooldown  # a SeededBackoff
        self.consecutive = 0
        self.open = False

    def failure_ms(self):
        """Record a failure; returns the cooldown to sit out (0 when
        the breaker stays closed)."""
        self.consecutive += 1
        if self.threshold > 0 and self.consecutive >= self.threshold:
            just_opened = not self.open
            self.open = True
            return self.cooldown.next_ms(), just_opened
        return 0.0, False

    def success(self):
        """Close the breaker and rewind its cooldown schedule."""
        self.consecutive = 0
        self.open = False
        self.cooldown.reset()


class ServeClient:
    """Seeded-retry HTTP client for one simulated device."""

    def __init__(self, host, port, seed=0, key="client", *, faults=None,
                 tenant=None, timeout_s=5.0, max_attempts=25,
                 base_backoff_ms=25.0, cap_backoff_ms=2000.0,
                 breaker_threshold=5, sleep_scale=1.0,
                 sleep=asyncio.sleep, clock=time.monotonic):
        self.host = host
        self.port = port
        self.faults = faults
        self.tenant = tenant
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        #: Seeded delay schedule shared by retries and 429 floors.
        self.backoff = SeededBackoff(seed, "serve-client", key,
                                     base_ms=base_backoff_ms,
                                     cap_ms=cap_backoff_ms)
        self.breaker = _Breaker(
            breaker_threshold,
            SeededBackoff(seed, "serve-breaker", key,
                          base_ms=4.0 * base_backoff_ms,
                          cap_ms=8.0 * cap_backoff_ms),
        )
        #: Multiplier on every slept delay — stress runs compress
        #: simulated-milliseconds into real time without changing any
        #: decision (the schedule is the deterministic record).
        self.sleep_scale = sleep_scale
        self._sleep = sleep
        self._clock = clock
        self.stats = ClientStats()

    # ------------------------------------------------------------ uploads

    async def upload(self, batch):
        """Deliver one batch at-least-once; returns the server verdict
        (``"ingested"`` or ``"duplicate"``).

        Raises :class:`DeliveryError` when ``max_attempts`` run out —
        the server never acknowledged, so nothing was lost, and the
        caller may retry the whole upload later.
        """
        body = json.dumps(batch_to_dict(batch))
        started = self._clock()
        for attempt in range(1, self.max_attempts + 1):
            self.stats.attempts += 1
            if attempt > 1:
                self.stats.retries += 1
            outcome, retry_after_s = await self._attempt(
                batch.batch_id, attempt, body
            )
            if outcome in ("ingested", "duplicate"):
                self.breaker.success()
                self.backoff.reset()
                self.stats.delivered += 1
                if outcome == "duplicate":
                    self.stats.duplicates += 1
                self.stats.latencies_ms.append(
                    (self._clock() - started) * 1000.0
                )
                return outcome
            if outcome == "fatal":
                break
            cooldown_ms, just_opened = self.breaker.failure_ms()
            if just_opened:
                self.stats.breaker_opens += 1
            if attempt == self.max_attempts:
                break  # no point sleeping before giving up
            delay_ms = max(self.backoff.next_ms(), cooldown_ms,
                           retry_after_s * 1000.0)
            await self._sleep(delay_ms / 1000.0 * self.sleep_scale)
        self.stats.failed += 1
        raise DeliveryError(
            f"{batch.batch_id}: no ack after {self.max_attempts} attempts"
        )

    async def _attempt(self, batch_id, attempt, body):
        """One wire attempt; returns (outcome, retry_after_seconds).

        Outcomes: ``"ingested"``/``"duplicate"`` (acked), ``"retry"``
        (transient — back off and go again), ``"fatal"`` (the server
        rejected the batch itself; retrying cannot help).
        """
        faults = self.faults
        if faults is not None:
            delay_ms = faults.request_delay_fault(batch_id, attempt)
            if delay_ms > 0.0:
                self.stats.injected_delays += 1
                await self._sleep(delay_ms / 1000.0 * self.sleep_scale)
            if faults.request_drop_fault(batch_id, attempt):
                # The request vanishes: the client can only time out.
                self.stats.injected_drops += 1
                self.stats.timeouts += 1
                return "retry", 0.0
        try:
            status, headers, payload = await asyncio.wait_for(
                self._exchange(batch_id, attempt, body),
                timeout=self.timeout_s,
            )
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            return "retry", 0.0
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self.stats.connection_errors += 1
            return "retry", 0.0
        except ValueError:
            # Garbled response (possibly the response_corrupt channel):
            # the ack is unreadable, so treat as undelivered and retry
            # into the idempotent server.
            self.stats.corrupt_responses += 1
            return "retry", 0.0
        try:
            retry_after = float(headers.get("retry-after", "0") or "0")
        except ValueError:
            retry_after = 0.0
        if status == 200:
            return payload.get("status", "ingested"), 0.0
        if status == 429:
            self.stats.shed_429 += 1
            return "retry", retry_after
        if status == 503:
            self.stats.unavailable_503 += 1
            return "retry", retry_after
        if status >= 500:
            self.stats.server_errors += 1
            return "retry", retry_after
        # 4xx other than shedding: the batch itself is malformed.
        return "fatal", 0.0

    async def _exchange(self, batch_id, attempt, body):
        """One POST /v1/batches over a fresh connection."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = body.encode("utf-8")
            headers = [
                "POST /v1/batches HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}",
                "Connection: close",
            ]
            if self.tenant is not None:
                headers.append(f"X-Tenant: {self.tenant}")
            writer.write(
                ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1")
            )
            writer.write(payload)
            await writer.drain()
            if (self.faults is not None
                    and self.faults.connection_reset_fault(batch_id,
                                                           attempt)):
                # Reset after the request is on the wire: the server
                # may well have ingested it — the ambiguous failure
                # idempotency exists for.
                self.stats.injected_resets += 1
                raise ConnectionResetError("injected reset mid-exchange")
            raw = await reader.read()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        text = raw.decode("utf-8", errors="replace")
        if self.faults is not None:
            text = self.faults.corrupt_response(text, batch_id, attempt)
        head, _, body_text = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ValueError(f"malformed response: {lines[0]!r}")
        status = int(parts[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, json.loads(body_text)

    # ------------------------------------------------------------ queries

    async def get(self, path):
        """GET *path*; returns the decoded JSON payload."""
        _, body_text = await self.get_raw(path)
        return json.loads(body_text)

    async def get_raw(self, path):
        """GET *path*; returns ``(head_text, body_text)`` undecoded.

        The raw form serves non-JSON endpoints (``/metrics``) and
        tests that assert on headers.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write((
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1"))
            await writer.drain()
            raw = await reader.read()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        head, _, body_text = raw.decode("utf-8").partition("\r\n\r\n")
        return head, body_text
