"""Load generator + stress harness for the ingestion service.

``repro serve-bench`` drives a simulated device fleet against an
:class:`~repro.serve.service.IngestService` — spawned in-process, or a
``--connect`` address for an externally managed server (the CI smoke
job uses that to SIGKILL and restart the server mid-run) — and reports
throughput, latency percentiles, shed rate, and retry counts.

Two fleet modes share one contract — the batch set is a pure function
of the fleet parameters, never of timing:

* **synthetic** (default): thousands of devices' batches drawn from
  keyed streams, cheap enough to stress the admission and WAL path at
  fleet scale;
* **real**: every device round runs the full Hang Doctor session
  pipeline
  through :func:`repro.harness.exp_crowd._crowd_device_round` with
  empty crowd knowledge — exactly the isolated-device rounds the
  batch ``crowd_sweep`` runs, preserving the deterministic per-device
  telemetry tracks.

:func:`baseline_snapshot_json` is the referee: the same batch set
folded through the synchronous batch path (a serial
:class:`~repro.crowd.aggregator.CrowdAggregator`), serialized
canonically.  At network fault rate 0 the service's final published
snapshot must equal it byte for byte — for any client concurrency,
any shedding, and across a mid-run server kill + restart.
"""

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.base.rng import stream, substream_seed
from repro.crowd.aggregator import BugObservation, CrowdAggregator, ReportBatch
from repro.crowd.store import aggregator_to_json
from repro.faults import FaultInjector, FaultPlan
from repro.serve.client import ClientStats, DeliveryError, ServeClient
from repro.serve.service import IngestService

#: Operation pool the synthetic fleet draws bug signatures from.
_SYNTH_OPERATIONS = (
    "android.database.sqlite.SQLiteDatabase.query",
    "java.io.File.exists",
    "android.content.SharedPreferences$Editor.commit",
    "java.net.URL.openConnection",
    "android.graphics.BitmapFactory.decodeFile",
    "org.json.JSONObject.getJSONArray",
)

_SYNTH_APPS = ("K9-mail", "AndStatus", "APV-pdf", "BarcodeScanner")


def synthetic_fleet_batches(seed, devices, rounds, apps=_SYNTH_APPS):
    """The synthetic fleet's upload set: one batch per (device, round,
    observed app), drawn from keyed streams.

    Pure function of its arguments — device d's batches are identical
    whatever the fleet size around it, mirroring the keyed-substream
    discipline of :func:`repro.harness.exp_crowd.crowd_device_seed`.
    Returns ``[(device_index, [batches...]), ...]``.
    """
    fleet = []
    for device_index in range(devices):
        batches = []
        for round_index in range(rounds):
            rng = stream(seed, "serve-loadgen", device_index, round_index)
            for app_name in apps:
                if float(rng.random()) > 0.6:
                    continue
                observations = []
                for op_index in range(1 + int(rng.integers(0, 3))):
                    operation = _SYNTH_OPERATIONS[
                        int(rng.integers(0, len(_SYNTH_OPERATIONS)))
                    ]
                    action = f"action{int(rng.integers(0, 6))}"
                    occurrence = round(
                        0.3 + 0.7 * float(rng.random()), 3
                    )
                    bucket = int(occurrence * 10.0)
                    observations.append(BugObservation(
                        signature=(
                            f"{app_name}|{action}|{operation}|b{bucket}"
                        ),
                        action=action,
                        operation=operation,
                        file=f"{app_name}/src/Main{op_index}.java",
                        line=100 + int(rng.integers(0, 400)),
                        is_self_developed=bool(rng.random() < 0.2),
                        occurrences=1 + int(rng.integers(0, 9)),
                        total_hang_ms=round(
                            120.0 + 900.0 * float(rng.random()), 1
                        ),
                        max_occurrence_factor=occurrence,
                    ))
                if not observations:
                    continue
                observations = sorted(
                    observations,
                    key=lambda o: (o.signature, o.file, o.line),
                )
                batches.append(ReportBatch(
                    batch_id=(
                        f"{app_name}/dev{device_index}/round{round_index}"
                    ),
                    app_name=app_name,
                    device_id=device_index,
                    time_ms=float(round_index),
                    observations=tuple(observations),
                ))
        fleet.append((device_index, batches))
    return fleet


def real_fleet_batches(device_profile, seed, devices, rounds, apps,
                       actions, workers=1):
    """The real fleet's upload set: full Hang Doctor device rounds.

    Runs :func:`repro.harness.exp_crowd._crowd_device_round` with
    empty crowd knowledge — byte-for-byte the isolated-device rounds
    ``crowd_sweep`` uses as its baseline — so the live service's
    ingest of these batches is directly comparable to the batch
    sweep's aggregator over the same fleet.
    """
    from repro.checkpoint import checkpointed_map
    from repro.core.blocking_db import BlockingApiDatabase
    from repro.crowd import CrowdKnowledge
    from repro.harness.exp_crowd import _crowd_device_round

    db_names = tuple(BlockingApiDatabase.initial())
    payloads = [
        (device_profile, seed, tuple(apps), device_index, round_index,
         actions, CrowdKnowledge(), db_names,
         f"crowd/base/d{device_index}/r{round_index}")
        for device_index in range(devices)
        for round_index in range(rounds)
    ]
    keys = [
        f"base|d{device_index}|r{round_index}"
        for device_index in range(devices)
        for round_index in range(rounds)
    ]
    results = checkpointed_map(_crowd_device_round, payloads, keys, None,
                               workers=workers)
    fleet = {device_index: [] for device_index in range(devices)}
    for result in results:
        fleet[result.device_index].extend(result.batches)
    return sorted(fleet.items())


def baseline_snapshot_json(fleet):
    """The synchronous batch path over the same fleet: every batch
    folded into one serial aggregator, serialized canonically.

    This is the referee for the service's byte-identity contract; the
    canonical sorted-batch serialization makes delivery order — live
    or batch, any concurrency — irrelevant.
    """
    aggregator = CrowdAggregator()
    for _, batches in fleet:
        for batch in batches:
            aggregator.ingest(batch)
    return aggregator_to_json(aggregator)


def percentile(values, q):
    """The *q*-quantile (0..1) of *values* by nearest-rank."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class LoadgenReport:
    """The stress harness's scorecard.

    Delivery counts are deterministic at fault rate 0; timing fields
    (throughput, latencies) are wall-clock and advisory.
    """

    devices: int
    batches_total: int
    stats: ClientStats
    elapsed_s: float
    undelivered: List[str] = field(default_factory=list)
    #: Set when the run compared the published snapshot against the
    #: batch baseline: True/False; None when no comparison ran.
    snapshot_matches: Optional[bool] = None

    @property
    def throughput(self):
        """Acked uploads per wall-clock second."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.stats.delivered / self.elapsed_s

    @property
    def shed_rate(self):
        """Fraction of attempts answered 429."""
        if not self.stats.attempts:
            return 0.0
        return self.stats.shed_429 / self.stats.attempts

    def render(self):
        """Human-readable scorecard."""
        stats = self.stats
        lat = stats.latencies_ms
        lines = [
            f"serve-bench - {self.devices} devices, "
            f"{self.batches_total} batches",
            f"  delivered    : {stats.delivered} "
            f"({stats.duplicates} acked as duplicates, "
            f"{stats.failed} undelivered)",
            f"  attempts     : {stats.attempts} "
            f"({stats.retries} retries)",
            f"  shed         : {stats.shed_429} x 429 "
            f"({self.shed_rate:.1%} of attempts), "
            f"{stats.unavailable_503} x 503",
            f"  failures     : {stats.timeouts} timeouts, "
            f"{stats.connection_errors} connection errors, "
            f"{stats.corrupt_responses} corrupt responses, "
            f"{stats.server_errors} 5xx",
            f"  injected     : {stats.injected_drops} drops, "
            f"{stats.injected_delays} delays, "
            f"{stats.injected_resets} resets",
            f"  breaker      : opened {stats.breaker_opens}x",
            f"  throughput   : {self.throughput:.0f} acks/s "
            f"({self.elapsed_s:.2f}s wall)",
            f"  latency ms   : p50 {percentile(lat, 0.50):.1f}  "
            f"p90 {percentile(lat, 0.90):.1f}  "
            f"p99 {percentile(lat, 0.99):.1f}  "
            f"max {(max(lat) if lat else 0.0):.1f}",
        ]
        if self.snapshot_matches is not None:
            verdict = "yes" if self.snapshot_matches else "NO"
            lines.append(f"  snapshot == batch baseline : {verdict}")
        return "\n".join(lines)


async def drive_fleet(host, port, fleet, seed=0, plan=None, concurrency=16,
                      sleep_scale=1.0, timeout_s=5.0, max_attempts=25,
                      breaker_threshold=5, tenant_by_app=True):
    """Upload every fleet batch through per-device clients.

    Returns ``(merged ClientStats, undelivered batch ids)``.  One
    client (own backoff schedule, own breaker) per device; at most
    *concurrency* devices in flight.  Fault decisions key on
    (batch_id, attempt) so the injected sequence is independent of
    concurrency and scheduling.
    """
    plan = plan if plan is not None else FaultPlan()
    semaphore = asyncio.Semaphore(concurrency)
    total = ClientStats()
    undelivered = []

    async def run_device(device_index, batches):
        async with semaphore:
            faults = (
                FaultInjector(plan, seed=seed, scope=("serve-net",))
                if plan.any_faults else None
            )
            client = ServeClient(
                host, port,
                seed=substream_seed(seed, "serve-device", device_index),
                key=f"dev{device_index}", faults=faults,
                timeout_s=timeout_s, max_attempts=max_attempts,
                breaker_threshold=breaker_threshold,
                sleep_scale=sleep_scale,
            )
            for batch in batches:
                if tenant_by_app:
                    client.tenant = batch.app_name
                try:
                    await client.upload(batch)
                except DeliveryError:
                    undelivered.append(batch.batch_id)
            total.merge(client.stats)

    await asyncio.gather(*(
        run_device(device_index, batches)
        for device_index, batches in fleet
    ))
    return total, sorted(undelivered)


def run_bench(state_dir, *, devices=200, rounds=2, seed=0,
              mode="synthetic", apps=None, actions=12,
              device_profile=None, workers=1, concurrency=32,
              fault_rate=0.0, request_delay_ms=5.0, connect=None,
              max_queue=64, tenant_rate=0.0, tenant_burst=32,
              snapshot_every=512,
              sleep_scale=0.05, timeout_s=5.0, max_attempts=25,
              breaker_threshold=5, baseline_out=None):
    """The ``repro serve-bench`` entry point; returns a
    :class:`LoadgenReport`.

    With *connect* None an :class:`IngestService` is spawned
    in-process, drained at the end (publishing the final snapshot),
    and its snapshot compared byte-for-byte against
    :func:`baseline_snapshot_json` (``snapshot_matches`` on the
    report).  With *connect* ``(host, port)`` the harness only drives
    the fleet — lifecycle (and any mid-run SIGKILL) belongs to the
    caller — and *baseline_out* writes the baseline for external
    comparison.
    """
    if mode == "synthetic":
        fleet = synthetic_fleet_batches(seed, devices, rounds)
    elif mode == "real":
        if device_profile is None:
            raise ValueError("real mode needs a device profile")
        fleet = real_fleet_batches(
            device_profile, seed, devices, rounds,
            apps if apps else ("K9-mail", "AndStatus"), actions,
            workers=workers,
        )
    else:
        raise ValueError(f"unknown fleet mode {mode!r}")
    baseline = baseline_snapshot_json(fleet)
    if baseline_out is not None:
        import pathlib

        pathlib.Path(baseline_out).write_text(baseline)
    plan = FaultPlan(
        request_drop_rate=fault_rate,
        request_delay_rate=fault_rate,
        connection_reset_rate=fault_rate,
        response_corrupt_rate=fault_rate,
        request_delay_ms=request_delay_ms,
    ).validate()
    batches_total = sum(len(batches) for _, batches in fleet)

    async def _run():
        service = None
        if connect is None:
            service = await IngestService(
                state_dir, max_queue=max_queue, tenant_rate=tenant_rate,
                tenant_burst=tenant_burst, snapshot_every=snapshot_every,
            ).start()
            host, port = service.host, service.port
        else:
            host, port = connect
        started = time.monotonic()
        stats, undelivered = await drive_fleet(
            host, port, fleet, seed=seed, plan=plan,
            concurrency=concurrency, sleep_scale=sleep_scale,
            timeout_s=timeout_s, max_attempts=max_attempts,
            breaker_threshold=breaker_threshold,
            tenant_by_app=tenant_rate > 0.0,
        )
        elapsed = time.monotonic() - started
        matches = None
        if service is not None:
            await service.stop()
            matches = service.state.snapshot_bytes() == baseline.encode(
                "utf-8"
            )
        return stats, undelivered, elapsed, matches

    stats, undelivered, elapsed, matches = asyncio.run(_run())
    return LoadgenReport(
        devices=devices, batches_total=batches_total, stats=stats,
        elapsed_s=elapsed, undelivered=undelivered,
        snapshot_matches=matches,
    )
