"""The asyncio HTTP ingestion tier.

One :class:`IngestService` owns a :class:`~repro.serve.state.
ServiceState` and serves a small HTTP/1.1 surface over plain asyncio
streams (the repo is stdlib-only by design — no aiohttp):

* ``POST /v1/batches`` — upload one ReportBatch (the wire form of
  :func:`repro.crowd.store.batch_to_dict`).  Acknowledged with 200
  only after the batch's WAL record is fsynced; the body says whether
  it was ``ingested`` or recognized as a ``duplicate``.
* ``GET /healthz`` — liveness: 200 whenever the process can answer.
* ``GET /readyz`` — readiness: 200 while accepting uploads, 503 once
  draining.
* ``GET /v1/stats`` — ingestion counters as JSON.
* ``GET /metrics`` — the same counters (plus request-latency
  histograms) in Prometheus text exposition format, rendered from the
  same snapshot the stats JSON uses (see ``docs/serve.md`` for the
  consistency contract).
* ``POST /v1/publish`` — force a snapshot publication.

**Admission control.**  Two independent gates shed load *before* it
costs anything durable, both answering 429 with a ``Retry-After``
header the client's seeded backoff honors:

* a bounded ingest queue — depth beyond ``max_queue`` means the
  fsync pipeline is saturated and new uploads are shed;
* per-tenant token buckets (``tenant_rate``/``tenant_burst`` per
  second, tenant = the ``X-Tenant`` header, defaulting to the batch's
  app) — one chatty fleet cannot starve the rest.

**The write path.**  Handlers enqueue ``(batch, future)`` and await
the future; a single writer task drains the queue in groups, journals
the group under one fsync (group commit), applies it to the
aggregator, and only then resolves the futures.  A torn journal
append fails the *whole* group with 500 — the journal is repaired and
no batch of the group is acknowledged, so "acked" and "durable" stay
synonyms even under injected write faults.

**Shutdown.**  :meth:`IngestService.stop` drains: readiness flips to
503, new uploads are refused with 503 + ``Retry-After``, the queue is
flushed through the writer, a final snapshot is published, and only
then does the socket close.  SIGKILL instead of drain is the WAL's
job: acked batches replay on restart.

Everything timing-related (latencies, queue depths, publish cadence)
is wall-clock and lands on the telemetry *advisory* channel only; the
deterministic channel stays byte-identical whether or not a service
ran in-process.
"""

import asyncio
import json
import time

from repro.crowd.store import batch_from_dict
from repro.obs.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.prometheus import render_prometheus
from repro.serve.state import ServiceState
from repro.telemetry import MetricsRegistry, labeled
from repro.telemetry import current as telemetry

#: Default bound on batches queued for the fsync pipeline.
DEFAULT_MAX_QUEUE = 256
#: Default batches per snapshot publication.
DEFAULT_SNAPSHOT_EVERY = 512
#: Largest accepted request body, in bytes.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: The ``/v1/stats`` counter keys, in their wire order.  The JSON
#: shape predates the registry migration and is pinned byte-for-byte:
#: these keys first, then ``queue_depth`` and ``batches``.
STATS_KEYS = (
    "ingested", "duplicates", "replayed", "shed_queue", "shed_tenant",
    "rejected_draining", "bad_requests", "publishes",
    "publish_failures", "write_failures",
)

#: Routes the service understands; anything else is labeled ``other``
#: in the per-request metrics so stray paths cannot explode series
#: cardinality.
_KNOWN_PATHS = ("/healthz", "/metrics", "/readyz", "/v1/batches",
                "/v1/publish", "/v1/stats")

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _TokenBucket:
    """One tenant's admission budget: *rate* tokens/s, *burst* deep."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate, burst, now):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def admit(self, now):
        """Take one token; returns (admitted, retry_after_seconds)."""
        self.tokens = min(
            self.burst, self.tokens + (now - self.stamp) * self.rate
        )
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method, path, headers, body):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


class IngestService:
    """The live crowd ingestion service (one state dir, one socket)."""

    def __init__(self, state_dir, host="127.0.0.1", port=0, *,
                 max_queue=DEFAULT_MAX_QUEUE,
                 snapshot_every=DEFAULT_SNAPSHOT_EVERY,
                 tenant_rate=0.0, tenant_burst=32,
                 retry_after_s=0.25, faults=None,
                 clock=time.monotonic):
        self.state = ServiceState(state_dir, faults=faults)
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.snapshot_every = snapshot_every
        #: Per-tenant admitted batches per second; 0 disables the gate.
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.retry_after_s = retry_after_s
        self.clock = clock
        #: The single counter source.  Every number the service
        #: reports — ``/v1/stats`` JSON, the :attr:`stats` view, and
        #: the ``/metrics`` exposition — is a view over this registry,
        #: mirroring the ``HangDoctor.metrics`` pattern.
        self.metrics = MetricsRegistry()
        # Pre-register every stats counter at zero so a fresh scrape
        # of /metrics lists the same counters /v1/stats reports.
        for key in STATS_KEYS:
            self.metrics.count(f"serve.{key}", 0)
        self._queue = None
        self._writer_task = None
        self._server = None
        self._draining = False
        self._since_publish = 0
        self._buckets = {}

    # ----------------------------------------------------------- lifecycle

    async def start(self):
        """Recover state, start the writer, bind the socket."""
        self.state.recover()
        self._meter("replayed", self.state.replayed)
        telemetry().advisory_event(
            "serve.start", replayed=self.state.replayed,
            torn_tail_cut=self.state.torn_tail_cut,
            batches=len(self.state.aggregator),
        )
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._writer_task = asyncio.ensure_future(self._writer())
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        """Graceful drain: refuse new work, flush, publish, close."""
        self._draining = True
        if self._queue is not None:
            await self._queue.join()
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        self._publish(final=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.state.close()
        telemetry().advisory_event(
            "serve.stop",
            ingested=self.metrics.counter_value("serve.ingested"),
            publishes=self.metrics.counter_value("serve.publishes"),
        )

    async def abort(self):
        """Die without draining or publishing (a SIGKILL stand-in).

        Tests use this to leave behind exactly what a killed process
        leaves: the last published snapshot plus the fsynced WAL tail.
        Pending uploads never get their ack — their clients retry
        against the restarted service.
        """
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.state.close()

    async def serve_forever(self):
        """Block until the server socket closes."""
        await self._server.wait_closed()

    @property
    def address(self):
        """The bound ``host:port``."""
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------- metrics

    def _meter(self, key, n=1):
        """Increment one service counter (``serve.<key>``)."""
        self.metrics.count(f"serve.{key}", n)

    @property
    def stats(self):
        """The ingestion counters as a plain dict (a registry view)."""
        return {
            key: self.metrics.counter_value(f"serve.{key}")
            for key in STATS_KEYS
        }

    def _snapshot(self):
        """One consistent registry snapshot (the scrape contract).

        Queue depth and aggregated-batch count are sampled into gauges
        immediately before the state copy, all within one event-loop
        step with no await in between — so every value in a scraped
        ``/v1/stats`` or ``/metrics`` response describes the same
        instant, never a queue depth newer than its counters.
        """
        depth = self._queue.qsize() if self._queue is not None else 0
        self.metrics.gauge_set("serve.queue.depth", float(depth))
        self.metrics.gauge_set(
            "serve.batches.aggregated", float(len(self.state.aggregator))
        )
        return self.metrics.state()

    def _observe_request(self, path, status, elapsed_ms):
        """Per-request latency, labeled by route and status class."""
        route = path if path in _KNOWN_PATHS else "other"
        self.metrics.observe(
            labeled("serve.http.latency_ms", route=route,
                    status=f"{status // 100}xx"),
            elapsed_ms,
        )

    # ---------------------------------------------------------- the writer

    async def _writer(self):
        """Drain the queue in groups: journal, fsync once, apply, ack."""
        while True:
            group = [await self._queue.get()]
            while not self._queue.empty() and len(group) < 64:
                group.append(self._queue.get_nowait())
            try:
                self.state.log([batch for batch, _ in group])
            except Exception as error:
                self._meter("write_failures", len(group))
                telemetry().advisory_event(
                    "serve.write_failure", batches=len(group),
                    error=type(error).__name__,
                )
                for _, future in group:
                    if not future.done():
                        future.set_result(("error", str(error)))
                    self._queue.task_done()
                continue
            for batch, future in group:
                if self.state.ingest(batch):
                    self._meter("ingested")
                    status = "ingested"
                else:
                    self._meter("duplicates")
                    status = "duplicate"
                self._since_publish += 1
                if not future.done():
                    future.set_result((status, None))
                self._queue.task_done()
            if self._since_publish >= self.snapshot_every:
                self._publish()

    def _publish(self, final=False):
        """Publish a snapshot; failures are survivable (WAL keeps all)."""
        try:
            self.state.publish()
        except Exception as error:
            self._meter("publish_failures")
            telemetry().advisory_event(
                "serve.publish_failure", error=type(error).__name__,
            )
            return
        self._meter("publishes")
        self._since_publish = 0
        telemetry().advisory_event(
            "serve.publish", batches=len(self.state.aggregator),
            final=final,
        )

    # -------------------------------------------------------- the handler

    async def _handle(self, reader, writer):
        started = self.clock()
        try:
            request = await self._read_request(reader)
            if request is None:
                self._observe_request(
                    "other", 400, (self.clock() - started) * 1000.0
                )
                await self._respond(writer, 400, {"error": "bad request"})
                return
            status, payload, headers = await self._route(request)
            self._observe_request(
                request.path, status, (self.clock() - started) * 1000.0
            )
            await self._respond(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request):
        """Dispatch one request; returns (status, payload, headers)."""
        key = (request.method, request.path)
        if key == ("GET", "/healthz"):
            return 200, {"status": "ok"}, {}
        if key == ("GET", "/readyz"):
            if self._draining:
                return 503, {"status": "draining"}, {}
            return 200, {"status": "ready"}, {}
        if key == ("GET", "/v1/stats"):
            snapshot = self._snapshot()
            counters = snapshot["counters"]
            stats = {
                name: counters.get(f"serve.{name}", 0)
                for name in STATS_KEYS
            }
            stats["queue_depth"] = int(
                snapshot["gauges"]["serve.queue.depth"]
            )
            stats["batches"] = int(
                snapshot["gauges"]["serve.batches.aggregated"]
            )
            return 200, stats, {}
        if key == ("GET", "/metrics"):
            return 200, render_prometheus(self._snapshot()), {
                "Content-Type": _PROM_CONTENT_TYPE
            }
        if key == ("POST", "/v1/publish"):
            self._publish()
            return 200, {"published": len(self.state.aggregator)}, {}
        if key == ("POST", "/v1/batches"):
            return await self._ingest_request(request)
        if request.path in _KNOWN_PATHS:
            return 405, {"error": "method not allowed"}, {}
        return 404, {"error": "no such endpoint"}, {}

    async def _ingest_request(self, request):
        """The upload path: admission gates, then the durable queue."""
        if self._draining:
            self._meter("rejected_draining")
            return 503, {"error": "draining"}, {
                "Retry-After": f"{self.retry_after_s:g}"
            }
        try:
            batch = batch_from_dict(json.loads(request.body))
        except ValueError as error:
            self._meter("bad_requests")
            return 400, {"error": str(error)}, {}
        tenant = request.headers.get("x-tenant", batch.app_name)
        admitted, wait_s = self._admit(tenant)
        if not admitted:
            self._meter("shed_tenant")
            telemetry().advisory_event("serve.shed", gate="tenant",
                                       tenant=tenant)
            return 429, {"error": "tenant rate exceeded"}, {
                "Retry-After": f"{wait_s:g}"
            }
        future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((batch, future))
        except asyncio.QueueFull:
            self._meter("shed_queue")
            telemetry().advisory_event("serve.shed", gate="queue",
                                       tenant=tenant)
            return 429, {"error": "ingest queue full"}, {
                "Retry-After": f"{self.retry_after_s:g}"
            }
        status, detail = await future
        if status == "error":
            return 500, {"error": detail}, {}
        return 200, {"status": status, "batch_id": batch.batch_id}, {}

    def _admit(self, tenant):
        """The per-tenant token-bucket gate."""
        if self.tenant_rate <= 0.0:
            return True, 0.0
        now = self.clock()
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = _TokenBucket(
                self.tenant_rate, float(self.tenant_burst), now
            )
        return bucket.admit(now)

    # ------------------------------------------------------------- wire IO

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on malformed input."""
        line = await reader.readline()
        parts = line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers = {}
        while True:
            line = await reader.readline()
            text = line.decode("latin-1").rstrip("\r\n")
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return _Request(method, path, headers, body.decode("utf-8"))

    async def _respond(self, writer, status, payload, headers=None):
        headers = dict(headers or {})
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = headers.pop(
                "Content-Type", "text/plain; charset=utf-8"
            )
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = headers.pop("Content-Type", "application/json")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()
