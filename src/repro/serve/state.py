"""Service state: snapshot + write-ahead journal, composed for recovery.

The durable state of the ingestion service is two files in one
directory:

* ``snapshot.json`` — the last published aggregator snapshot, written
  through :func:`repro.crowd.store.save_aggregator` (atomic: temp file
  + fsync + rename, so it is always a *complete* old or new payload);
* ``wal.jsonl`` — the :class:`~repro.serve.wal.BatchJournal` of
  batches acknowledged since that snapshot.

:meth:`ServiceState.recover` composes their guarantees: load the
snapshot (:func:`~repro.crowd.store.load_aggregator` never raises; a
corrupt file — impossible under the atomic writer, but disks lie —
falls back to empty with ``recovered_from_corruption`` set), then
replay the journal cut at its last intact record.  Because ingestion
dedupes by batch id, replay is idempotent: a batch that made it into
the snapshot *and* still sits in the journal (crash between snapshot
and journal reset) counts once.  The result is always the last
consistent state — every acknowledged batch present exactly once,
nothing half-applied.
"""

import pathlib

from repro.crowd.aggregator import CrowdAggregator
from repro.crowd.store import load_aggregator, save_aggregator
from repro.serve.wal import BatchJournal

#: File names inside a service state directory.
SNAPSHOT_NAME = "snapshot.json"
WAL_NAME = "wal.jsonl"


class ServiceState:
    """The ingestion service's durable aggregator state."""

    def __init__(self, directory, faults=None):
        self.directory = pathlib.Path(directory)
        self.snapshot_path = self.directory / SNAPSHOT_NAME
        self.wal = BatchJournal(self.directory / WAL_NAME)
        #: Optional :class:`~repro.faults.FaultInjector` driving the
        #: ``torn_write_rate`` seam on snapshot and journal writes.
        self.faults = faults
        self.aggregator = CrowdAggregator()
        #: Batches replayed from the journal at recovery.
        self.replayed = 0
        #: True when recovery cut a torn record off the journal tail.
        self.torn_tail_cut = False

    # ----------------------------------------------------------- recovery

    def recover(self):
        """Rebuild the aggregator from snapshot + journal; open the
        journal for appending.  Never raises on damaged state."""
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.snapshot_path.exists():
            self.aggregator = load_aggregator(
                self.snapshot_path.read_text()
            )
        batches, self.torn_tail_cut = self.wal.replay()
        for batch in batches:
            self.aggregator.ingest(batch)
        self.replayed = len(batches)
        self.wal.open()
        return self

    def close(self):
        """Close the journal handle."""
        self.wal.close()

    # ---------------------------------------------------------- ingestion

    def log(self, batches):
        """Durably journal *batches* (append each, one fsync).

        Group commit: the service's writer drains its queue and logs
        the whole group under a single fsync before acknowledging any
        of it.  On an injected torn append the journal is repaired
        (truncated back to the last good record) and the error
        propagates — none of the group may be acknowledged.
        """
        try:
            for batch in batches:
                self.wal.append(batch, faults=self.faults)
        except BaseException:
            self.wal.repair()
            raise
        self.wal.sync()

    def ingest(self, batch):
        """Apply one journaled batch; False for a duplicate."""
        return self.aggregator.ingest(batch)

    # --------------------------------------------------------- publishing

    def publish(self):
        """Atomically publish the snapshot, then reset the journal.

        A torn snapshot write (injected or real) leaves the previous
        snapshot untouched and the journal intact — the error
        propagates and the next publish retries with nothing lost.  A
        crash *between* the two steps replays snapshot-held batches
        from the journal on restart; dedup makes that free.
        """
        save_aggregator(self.snapshot_path, self.aggregator,
                        faults=self.faults,
                        label=f"snapshot:{len(self.aggregator)}")
        self.wal.reset()

    def snapshot_bytes(self):
        """The current published snapshot's raw bytes (b"" if none)."""
        if not self.snapshot_path.exists():
            return b""
        return self.snapshot_path.read_bytes()
