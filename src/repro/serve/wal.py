"""Crash-safe write-ahead batch journal.

The durability half of the ingestion service's "never lose an acked
batch" contract: before a POST is acknowledged, its batch is appended
to this journal and fsynced.  A restart replays the journal into the
aggregator — idempotently, because ingestion dedupes by batch id — so
the only batches a SIGKILL can lose are ones whose clients never got
an ack (and whose seeded retries will re-deliver them).

Record framing: one line per batch,

    ``<sha256[:12] of payload> <canonical-JSON payload>\\n``

The checksum makes a torn tail *detectable*: a crash mid-append leaves
a final line that is truncated (no newline), checksum-mismatched, or
unparsable, and :meth:`BatchJournal.replay` cuts the journal at the
last intact record instead of propagating garbage — the journal-side
half of the recovery contract documented in :mod:`repro.crowd.store`.
A batch is therefore either fully in the journal or not in it at all;
nothing half-applied can reach the aggregator.

The ``torn_write_rate`` fault seam simulates the crash without killing
the process: :meth:`append` writes half the record and raises
:class:`~repro.faults.TornWriteError`.  A live service that survives
the injection must call :meth:`repair` (truncate back to the last good
offset) before appending again — exactly what replay-after-restart
would have done.
"""

import hashlib
import json
import os
import pathlib

from repro.crowd.store import batch_from_dict, batch_to_dict

#: Hex digits of the record checksum (48 bits: torn-tail detection,
#: not cryptography).
_CHECKSUM_LEN = 12


def _record_line(batch):
    """The framed journal line for one batch (canonical JSON)."""
    payload = json.dumps(batch_to_dict(batch), sort_keys=True,
                         separators=(",", ":"))
    checksum = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return f"{checksum[:_CHECKSUM_LEN]} {payload}\n"


class BatchJournal:
    """Append-only, checksum-framed, fsynced batch journal."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._handle = None
        #: Byte offset of the journal end after the last intact record
        #: (what :meth:`repair` truncates back to).
        self._good_offset = 0
        #: Records appended (and synced) through this handle.
        self.appended = 0

    # ----------------------------------------------------------- lifecycle

    def open(self):
        """Open the journal for appending (creating it if missing)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")
        self._good_offset = self._handle.tell()
        return self

    def close(self):
        """Close the append handle (safe to call twice)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------- writing

    def append(self, batch, faults=None):
        """Append one batch record (buffered; call :meth:`sync` to ack).

        With a :class:`~repro.faults.FaultInjector` whose
        ``torn_write_rate`` trips for this batch, half the record is
        written and flushed and
        :class:`~repro.faults.TornWriteError` raised — the artifact a
        real crash mid-append leaves.  The caller must either die (a
        restart's replay cuts the tail) or :meth:`repair` before the
        next append.
        """
        if self._handle is None:
            raise RuntimeError("journal is not open")
        line = _record_line(batch).encode("utf-8")
        if faults is not None and faults.torn_write_fault(
            f"wal:{batch.batch_id}"
        ):
            from repro.faults import TornWriteError

            self._handle.write(line[: len(line) // 2])
            self._handle.flush()
            raise TornWriteError(
                f"simulated crash mid-append of {batch.batch_id} (injected)"
            )
        self._handle.write(line)
        self.appended += 1

    def sync(self):
        """Flush and fsync everything appended so far.

        Only after this returns may the batches be acknowledged: the
        records are on disk and a SIGKILL can no longer lose them.
        """
        if self._handle is None:
            raise RuntimeError("journal is not open")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._good_offset = self._handle.tell()

    def repair(self):
        """Truncate back to the last synced record boundary.

        The live-process recovery from a torn append: equivalent to
        what :meth:`replay` would have reconstructed after a real
        crash, without restarting.
        """
        if self._handle is None:
            raise RuntimeError("journal is not open")
        self._handle.flush()
        self._handle.truncate(self._good_offset)
        self._handle.seek(self._good_offset)

    def reset(self):
        """Empty the journal (call only *after* a snapshot landed).

        Crash ordering is safe in both directions: the snapshot write
        is atomic, and a crash between snapshot and reset merely
        replays batches the snapshot already holds — idempotent.
        """
        if self._handle is None:
            raise RuntimeError("journal is not open")
        self._handle.truncate(0)
        self._handle.seek(0)
        os.fsync(self._handle.fileno())
        self._good_offset = 0

    # ------------------------------------------------------------- replay

    def replay(self):
        """Read the journal; returns ``(batches, torn_tail)``.

        Parses records in append order, verifying each line's checksum
        and payload, and stops at the first damaged record — the torn
        tail of a crash mid-append.  Everything before it is intact by
        construction (records are only acked after fsync), so the
        returned prefix *is* the last consistent state.
        """
        if not self.path.exists():
            return [], False
        batches = []
        for line in self.path.read_bytes().split(b"\n"):
            if not line:
                continue
            batch = _parse_record(line)
            if batch is None:
                # The torn tail: a crash mid-append left a truncated
                # or garbled record.  Cut here — everything before it
                # was fsynced whole, and a truncation that happens to
                # end mid-payload cannot fake the checksum.
                return batches, True
            batches.append(batch)
        return batches, False


def _parse_record(line):
    """Decode one journal line; None when damaged."""
    try:
        text = line.decode("utf-8")
        checksum, _, payload = text.partition(" ")
        if len(checksum) != _CHECKSUM_LEN or not payload:
            return None
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        if digest[:_CHECKSUM_LEN] != checksum:
            return None
        return batch_from_dict(json.loads(payload))
    except (ValueError, UnicodeDecodeError):
        return None
