"""Android-like execution simulator.

This package replaces the hardware/OS substrate the paper measured on
(LG V10 smartphone, Android runtime, Simpleperf): a discrete-event model
of an app's main thread, render thread, scheduler, memory system, and
performance-event counters.  Detection code in :mod:`repro.core` and
:mod:`repro.detectors` consumes only the artifacts a real phone would
expose — response times, counter readings, and stack-trace samples.
"""

from repro.base.rng import stream
from repro.sim.counters import (
    ALL_EVENTS,
    CounterModel,
    FILTER_EVENTS,
    KERNEL_EVENTS,
    PMU_EVENTS,
)
from repro.sim.device import ALL_DEVICES, DeviceProfile, GALAXY_S3, LG_V10, NEXUS_5
from repro.sim.engine import (
    ActionExecution,
    ExecutionEngine,
    InputEventExecution,
    OperationExecution,
    PERCEIVABLE_DELAY_MS,
)
from repro.sim.jank import FrameStats, execution_frame_stats, frame_stats, hang_frame_stats
from repro.sim.looper import DispatchRecord, Looper, Message
from repro.sim.pmu import PmuSampler
from repro.sim.stacktrace import Frame, StackTrace, StackTraceSampler, occurrence_factor
from repro.sim.timeline import (
    MAIN_THREAD,
    RENDER_THREAD,
    Segment,
    Timeline,
    WORKER_THREAD,
)

__all__ = [
    "ALL_DEVICES",
    "ALL_EVENTS",
    "ActionExecution",
    "CounterModel",
    "DeviceProfile",
    "DispatchRecord",
    "ExecutionEngine",
    "FILTER_EVENTS",
    "FrameStats",
    "Frame",
    "GALAXY_S3",
    "InputEventExecution",
    "KERNEL_EVENTS",
    "LG_V10",
    "Looper",
    "MAIN_THREAD",
    "Message",
    "NEXUS_5",
    "OperationExecution",
    "PERCEIVABLE_DELAY_MS",
    "PMU_EVENTS",
    "PmuSampler",
    "RENDER_THREAD",
    "Segment",
    "StackTrace",
    "StackTraceSampler",
    "Timeline",
    "WORKER_THREAD",
    "execution_frame_stats",
    "frame_stats",
    "hang_frame_stats",
    "occurrence_factor",
    "stream",
]
