"""Performance-event counter model.

Simulates the 46 performance events the paper samples with Simpleperf
on the LG V10: 9 kernel software events (counted exactly by the OS) and
37 PMU hardware events (counted by a limited set of registers; see
:mod:`repro.sim.pmu` for the multiplexing error that a register
shortage introduces).

The model's causal structure follows the paper's Section 3.3.1:

* **Scheduling/memory events** (context-switches, task-clock,
  cpu-clock, page-faults, minor-faults, cpu-migrations) are dictated by
  OS decisions — how long a thread ran, how often it blocked, how many
  fresh pages it touched.  They depend on the *role* of the thread
  during an operation, not on the operation's source code, which is why
  they discriminate soft hang bugs from UI work.
* **Microarchitectural events** (instructions, caches, branches, TLBs)
  scale with CPU time but carry a large per-API multiplier
  (:meth:`repro.apps.api.ApiSpec.uarch_profile`): each API "may have
  more or less instructions compared to UI-APIs", so these events
  correlate poorly with hang bugs.

Columnar core
-------------
The PMU block is a pure multiplicative DAG: every hardware count is a
base expression (of CPU time, the DVFS factor, and the per-API uarch
multipliers) times one lognormal noise factor.  :data:`_PMU_NODES`
spells that DAG out in the exact historical draw order, which lets the
model draw the whole noise vector with **one** pooled
``rng.lognormal(0, sigmas)`` call instead of 37 scalar draws.  numpy
``Generator`` fills array draws element-by-element from the same bit
stream a scalar loop would consume, so the pooled full-mode draw is
**bit-identical** to the historical scalar sequence — rendered outputs
do not change.  Lazy models restrict the pooled vector to the
dependency closure of the PMU events actually requested (partial-PMU
mode), and :meth:`CounterModel.segment_batch` extends the pooling
across all segments of an action for the engine's fleet-scale fast
path.  See ``docs/perf.md`` for the full determinism contract.
"""

import math

import numpy as np

from repro.base.kinds import ApiKind
from repro.sim import memory, scheduler

#: Kernel software events (exact counting, no PMU registers needed).
KERNEL_EVENTS = (
    "context-switches",
    "cpu-migrations",
    "page-faults",
    "minor-faults",
    "major-faults",
    "task-clock",
    "cpu-clock",
    "alignment-faults",
    "emulation-faults",
)

#: PMU hardware events (subject to register multiplexing).
PMU_EVENTS = (
    "cpu-cycles",
    "instructions",
    "cache-references",
    "cache-misses",
    "branch-instructions",
    "branch-misses",
    "stalled-cycles-frontend",
    "stalled-cycles-backend",
    "L1-dcache-loads",
    "L1-dcache-load-misses",
    "L1-dcache-stores",
    "L1-dcache-store-misses",
    "L1-icache-loads",
    "L1-icache-load-misses",
    "LLC-loads",
    "LLC-load-misses",
    "LLC-stores",
    "LLC-store-misses",
    "dTLB-loads",
    "dTLB-load-misses",
    "iTLB-loads",
    "iTLB-load-misses",
    "branch-loads",
    "branch-load-misses",
    "raw-l1-dcache",
    "raw-l1-dcache-refill",
    "raw-l1-icache",
    "raw-l1-icache-refill",
    "raw-l1-dtlb-refill",
    "raw-l1-itlb-refill",
    "raw-branch-pred",
    "raw-branch-mispred",
    "raw-mem-access",
    "raw-bus-access",
    "raw-bus-cycles",
    "raw-cpu-cycles",
    "raw-instruction-retired",
)

#: All 46 events, kernel first (mirrors the paper's "46 performance
#: events are available in total").
ALL_EVENTS = KERNEL_EVENTS + PMU_EVENTS

#: The three kernel events S-Checker ends up selecting.
FILTER_EVENTS = ("context-switches", "task-clock", "page-faults")

#: IPC scaling per operation kind (I/O code stalls; loops stream).
_KIND_IPC = {
    ApiKind.BLOCKING: 0.7,
    ApiKind.COMPUTE: 1.3,
    ApiKind.UI: 1.0,
    ApiKind.LIGHT: 1.0,
    # Wait-dominated kinds run little code of their own; what does run
    # (marshalling, wake-up paths) stalls like I/O code.
    ApiKind.ASYNC_WAIT: 0.6,
    ApiKind.IPC: 0.55,
}

#: Task-clock counter units (nanoseconds) per millisecond of CPU time:
#: the model converts a segment's CPU milliseconds *into* the
#: nanosecond-denominated task-clock value perf reports.
NS_PER_MS = 1e6

#: Lognormal shape of the per-action DVFS frequency factor.  The
#: governor holds one frequency across a short action, so the
#: :class:`~repro.sim.engine.ExecutionEngine` draws this once per
#: action and threads it into every segment; a direct
#: :meth:`CounterModel.segment_counts` caller that passes ``dvfs=None``
#: gets a per-segment fallback draw with the **same** sigma, so both
#: entry points sample the same frequency distribution.
DVFS_SIGMA = 0.7

#: Kernel events whose values require the scheduler switch model.
_SWITCH_EVENTS = frozenset({"context-switches", "cpu-migrations"})

#: Kernel events whose values require the page-fault model.
_FAULT_EVENTS = frozenset({"page-faults", "minor-faults", "major-faults"})

#: Kernel events derived from the segment's CPU time.
_CLOCK_EVENTS = frozenset({"task-clock", "cpu-clock"})


# --------------------------------------------------------------------------
# The PMU DAG.
#
# One entry per noise draw, in the exact order the historical scalar
# implementation consumed the rng: (event, sigma, deps, base).  ``base``
# computes the pre-noise value from already-evaluated node values ``v``
# and the environment ``e`` (works element-wise on scalars and numpy
# arrays alike); the node's count is ``base * lognormal(0, sigma)`` when
# the base is positive, else exactly 0.0 with the factor discarded.
# ``deps`` names the upstream nodes so a lazy model can restrict
# evaluation (and the pooled draw) to the dependency closure of the
# events it was asked for.
#
# Environment keys: ``cpu`` = cpu_ms * cycles_per_ms * dvfs, ``ipc`` =
# baseline_ipc * kind multiplier * uarch ipc, and the raw uarch
# multipliers ``branch`` / ``mem`` / ``cache`` / ``tlb``.
# --------------------------------------------------------------------------
_PMU_NODES = (
    ("cpu-cycles", 0.03, (),
     lambda v, e: e["cpu"]),
    ("instructions", 0.05, ("cpu-cycles",),
     lambda v, e: v["cpu-cycles"] * e["ipc"]),
    ("raw-cpu-cycles", 0.01, ("cpu-cycles",),
     lambda v, e: v["cpu-cycles"]),
    ("raw-instruction-retired", 0.01, ("instructions",),
     lambda v, e: v["instructions"]),
    ("branch-instructions", 0.05, ("instructions",),
     lambda v, e: v["instructions"] * 0.18 * e["branch"]),
    ("branch-misses", 0.10, ("branch-instructions",),
     lambda v, e: v["branch-instructions"] * 0.045),
    ("branch-loads", 0.02, ("branch-instructions",),
     lambda v, e: v["branch-instructions"]),
    ("branch-load-misses", 0.05, ("branch-misses",),
     lambda v, e: v["branch-misses"]),
    ("raw-branch-pred", 0.02, ("branch-instructions",),
     lambda v, e: v["branch-instructions"]),
    ("raw-branch-mispred", 0.05, ("branch-misses",),
     lambda v, e: v["branch-misses"]),
    ("L1-dcache-loads", 0.05, ("instructions",),
     lambda v, e: v["instructions"] * 0.28 * e["mem"]),
    ("L1-dcache-stores", 0.05, ("instructions",),
     lambda v, e: v["instructions"] * 0.12 * e["mem"]),
    ("L1-dcache-load-misses", 0.10, ("L1-dcache-loads",),
     lambda v, e: v["L1-dcache-loads"] * 0.030 * e["cache"]),
    ("L1-dcache-store-misses", 0.10, ("L1-dcache-stores",),
     lambda v, e: v["L1-dcache-stores"] * 0.020 * e["cache"]),
    ("raw-l1-dcache", 0.02, ("L1-dcache-loads", "L1-dcache-stores"),
     lambda v, e: v["L1-dcache-loads"] + v["L1-dcache-stores"]),
    ("raw-l1-dcache-refill", 0.05,
     ("L1-dcache-load-misses", "L1-dcache-store-misses"),
     lambda v, e: v["L1-dcache-load-misses"] + v["L1-dcache-store-misses"]),
    ("L1-icache-loads", 0.03, ("instructions",),
     lambda v, e: v["instructions"] * 0.95),
    ("L1-icache-load-misses", 0.12, ("L1-icache-loads",),
     lambda v, e: v["L1-icache-loads"] * 0.008 * e["cache"]),
    ("raw-l1-icache", 0.02, ("L1-icache-loads",),
     lambda v, e: v["L1-icache-loads"]),
    ("raw-l1-icache-refill", 0.05, ("L1-icache-load-misses",),
     lambda v, e: v["L1-icache-load-misses"]),
    ("LLC-loads", 0.08, ("L1-dcache-load-misses",),
     lambda v, e: v["L1-dcache-load-misses"] * 0.85),
    ("LLC-load-misses", 0.12, ("LLC-loads",),
     lambda v, e: v["LLC-loads"] * 0.30 * e["cache"]),
    ("LLC-stores", 0.08, ("L1-dcache-store-misses",),
     lambda v, e: v["L1-dcache-store-misses"] * 0.85),
    ("LLC-store-misses", 0.12, ("LLC-stores",),
     lambda v, e: v["LLC-stores"] * 0.25 * e["cache"]),
    ("cache-references", 0.04, ("LLC-loads", "LLC-stores"),
     lambda v, e: v["LLC-loads"] + v["LLC-stores"]),
    ("cache-misses", 0.06, ("LLC-load-misses", "LLC-store-misses"),
     lambda v, e: v["LLC-load-misses"] + v["LLC-store-misses"]),
    ("dTLB-load-misses", 0.12, ("L1-dcache-loads",),
     lambda v, e: v["L1-dcache-loads"] * 0.004 * e["tlb"]),
    ("iTLB-load-misses", 0.15, ("L1-icache-loads",),
     lambda v, e: v["L1-icache-loads"] * 0.001 * e["tlb"]),
    ("dTLB-loads", 0.02, ("L1-dcache-loads",),
     lambda v, e: v["L1-dcache-loads"]),
    ("iTLB-loads", 0.02, ("L1-icache-loads",),
     lambda v, e: v["L1-icache-loads"]),
    ("raw-l1-dtlb-refill", 0.05, ("dTLB-load-misses",),
     lambda v, e: v["dTLB-load-misses"]),
    ("raw-l1-itlb-refill", 0.05, ("iTLB-load-misses",),
     lambda v, e: v["iTLB-load-misses"]),
    ("stalled-cycles-frontend", 0.10, ("cpu-cycles",),
     lambda v, e: v["cpu-cycles"] * 0.15),
    ("stalled-cycles-backend", 0.12, ("cpu-cycles",),
     lambda v, e: v["cpu-cycles"] * 0.25 * e["cache"]),
    ("raw-mem-access", 0.03, ("L1-dcache-loads", "L1-dcache-stores"),
     lambda v, e: v["L1-dcache-loads"] + v["L1-dcache-stores"]),
    ("raw-bus-access", 0.08, ("cache-misses",),
     lambda v, e: v["cache-misses"] * 1.1),
    ("raw-bus-cycles", 0.05, ("cpu-cycles",),
     lambda v, e: v["cpu-cycles"] * 0.4),
)

_PMU_DEPS = {name: deps for name, _, deps, _ in _PMU_NODES}

#: Full-mode sigma vector, in draw order (one pooled draw per segment).
_PMU_SIGMAS_FULL = np.array([sigma for _, sigma, _, _ in _PMU_NODES])


def _pmu_closure(events):
    """Dependency closure of *events* over the PMU DAG."""
    needed = set()
    stack = [event for event in events if event in _PMU_DEPS]
    while stack:
        name = stack.pop()
        if name in needed:
            continue
        needed.add(name)
        stack.extend(_PMU_DEPS[name])
    return needed


class CounterModel:
    """Generates per-segment counts for the 46 events — or, in lazy
    mode, for just a requested subset.

    *events* restricts the model to the named events: the 9 kernel
    software events are cheap closed forms (a handful of scheduler and
    memory draws) and are always computed, while PMU hardware events
    are evaluated lazily — only the dependency closure of the requested
    PMU events is computed, with one pooled lognormal draw sized to
    that closure (partial-PMU mode), and kernel-only subsets perform no
    PMU draws at all.  This is the fleet-scale fast path: S-Checker's
    filter only ever reads :data:`FILTER_EVENTS` (three kernel events),
    so a filter-only model does an order-of-magnitude fewer RNG draws
    per segment.

    Lazy mode advances the per-action RNG stream differently from the
    full model (the skipped PMU draws never happen), so it is a
    *distinct* deterministic universe: reproducible for a given (seed,
    event set), but not sample-identical to ``events=None`` runs.

    *columnar* selects the pooled-draw implementation (the default).
    ``columnar=False`` retains the historical scalar-draw reference
    implementation; in full mode both produce bit-identical counts
    (the pooled vector consumes the rng exactly as the scalar sequence
    did), and the reference is kept as the baseline for the
    ``BENCH_*.json`` speedup trajectory and the bit-identity tests.
    """

    def __init__(self, device, events=None, columnar=True):
        self.device = device
        self.columnar = bool(columnar)
        if events is None:
            self.events = None
            self._want = None
            self._wants_pmu = True
        else:
            events = tuple(events)
            unknown = [e for e in events if e not in ALL_EVENTS]
            if unknown:
                raise ValueError(f"unknown performance events: {unknown}")
            self.events = events
            self._want = frozenset(events)
            self._wants_pmu = not self._want.isdisjoint(PMU_EVENTS)
        want = self._want
        # Event-subset masks, resolved once instead of per segment.
        self._need_switches = want is None or not want.isdisjoint(_SWITCH_EVENTS)
        self._need_faults = want is None or not want.isdisjoint(_FAULT_EVENTS)
        # The minor/major split costs two extra draw blocks; a model
        # asked only for "page-faults" totals can skip it (batch path).
        self._need_fault_split = want is None or not want.isdisjoint(
            ("minor-faults", "major-faults")
        )
        self._need_migrations = want is None or "cpu-migrations" in want
        self._need_clock = want is None or not want.isdisjoint(_CLOCK_EVENTS)
        self._need_cpu_clock = want is None or "cpu-clock" in want
        # Static per-device/kind products (exactly the historical
        # ``baseline_ipc * _KIND_IPC[kind]`` grouping, precomputed).
        self._cycles_per_ms = device.cycles_per_ms
        self._ipc_by_kind = {
            kind: device.baseline_ipc * mult for kind, mult in _KIND_IPC.items()
        }
        # Partial-PMU plan: the DAG nodes to evaluate (dependency
        # closure of the requested PMU events, in canonical draw order)
        # and the matching pooled sigma vector.
        if not self._wants_pmu:
            self._pmu_plan = ()
            self._pmu_sigmas = np.empty(0)
        elif want is None:
            self._pmu_plan = tuple(
                (name, base) for name, _, _, base in _PMU_NODES
            )
            self._pmu_sigmas = _PMU_SIGMAS_FULL
        else:
            needed = _pmu_closure(want)
            self._pmu_plan = tuple(
                (name, base) for name, _, _, base in _PMU_NODES
                if name in needed
            )
            self._pmu_sigmas = np.array(
                [sigma for name, sigma, _, _ in _PMU_NODES if name in needed]
            )

    # -- single-segment API ------------------------------------------------

    def segment_counts(self, *, kind, thread, wall_ms, cpu_ms, pages, uarch, rng,
                       wait_chunk_override=None, dvfs=None):
        """Sample event counts for one execution segment.

        Parameters
        ----------
        kind: :class:`~repro.base.kinds.ApiKind` of the driving operation.
        thread: timeline thread name the segment runs on.
        wall_ms / cpu_ms: wall duration and CPU time of the segment.
        pages: fresh memory pages the segment touches.
        uarch: per-API multipliers from :meth:`ApiSpec.uarch_profile`.
        rng: numpy Generator (one per action execution).

        Returns a dict over :data:`ALL_EVENTS`, or over the configured
        subset when the model was built with an *events* restriction.

        When ``dvfs`` is None a per-segment frequency factor is drawn
        with :data:`DVFS_SIGMA` — the same sigma the engine uses for
        its per-action draw, so direct callers sample the same
        distribution the engine threads through (see :data:`DVFS_SIGMA`
        for the contract).
        """
        if not self.columnar:
            return self._segment_counts_reference(
                kind=kind, thread=thread, wall_ms=wall_ms, cpu_ms=cpu_ms,
                pages=pages, uarch=uarch, rng=rng,
                wait_chunk_override=wait_chunk_override, dvfs=dvfs,
            )
        device = self.device
        cpu_ms = max(0.0, min(cpu_ms, wall_ms))
        counts = {}

        # --- kernel software events (OS-scheduling driven) ---
        # The scalar draw sequence is exactly the historical one
        # (switches, faults, migrations, clocks); a lazy model draws
        # only for the events it was asked for.
        switches = None
        if self._need_switches:
            switches = scheduler.segment_switches(
                kind, thread, wall_ms, cpu_ms, device, rng,
                chunk_override=wait_chunk_override,
            )
            counts["context-switches"] = float(switches.total)
        if self._need_faults:
            faults = memory.segment_faults(kind, pages, rng)
            counts["page-faults"] = float(faults.total)
            counts["minor-faults"] = float(faults.minor)
            counts["major-faults"] = float(faults.major)
        if switches is not None and self._need_migrations:
            counts["cpu-migrations"] = float(
                scheduler.cpu_migrations(switches, device, rng)
            )
        if self._need_clock:
            task_clock = cpu_ms * NS_PER_MS
            if task_clock > 0:
                task_clock = float(
                    task_clock * rng.lognormal(mean=0.0, sigma=0.02)
                )
            counts["task-clock"] = task_clock
            if self._need_cpu_clock:
                cpu_clock = task_clock
                if cpu_clock > 0:
                    cpu_clock = float(
                        cpu_clock * rng.lognormal(mean=0.0, sigma=0.01)
                    )
                counts["cpu-clock"] = cpu_clock
        counts["alignment-faults"] = 0.0
        counts["emulation-faults"] = 0.0

        if not self._wants_pmu:
            return {event: counts[event] for event in self.events}

        # --- PMU events (code-specific via per-API uarch profile) ---
        # DVFS: the governor varies clock frequency, so cycle-derived
        # counts decorrelate from task-clock (wall CPU time) — one
        # reason the paper's top events are all kernel events.  The
        # factor normally comes from the engine (one draw per action).
        if dvfs is None:
            dvfs = float(rng.lognormal(mean=0.0, sigma=DVFS_SIGMA))
        cpu_base = cpu_ms * self._cycles_per_ms * dvfs
        ipc = self._ipc_by_kind[kind] * uarch["ipc"]
        if self.events is None:
            if (
                cpu_base > 0.0
                and uarch["ipc"] > 0.0 and uarch["branch"] > 0.0
                and uarch["mem"] > 0.0 and uarch["cache"] > 0.0
                and uarch["tlb"] > 0.0
            ):
                self._pmu_full(counts, cpu_base, ipc, uarch, rng)
            else:
                # Pathological inputs (a zero/negative multiplier from a
                # direct caller): replay the per-value scalar guards.
                self._pmu_reference(counts, cpu_base, ipc, uarch, rng)
            return counts

        # Partial-PMU mode: one pooled draw sized to the dependency
        # closure, consumed in canonical node order.  The factor for a
        # non-positive base is drawn and discarded, keeping the draw
        # count fixed per (event set) — the lazy-mode contract.
        factors = rng.lognormal(mean=0.0, sigma=self._pmu_sigmas).tolist()
        env = {
            "cpu": cpu_base, "ipc": ipc, "branch": uarch["branch"],
            "mem": uarch["mem"], "cache": uarch["cache"], "tlb": uarch["tlb"],
        }
        values = {}
        for index, (name, base_fn) in enumerate(self._pmu_plan):
            base = base_fn(values, env)
            values[name] = base * factors[index] if base > 0.0 else 0.0
        want = self._want
        for name in values:
            if name in want:
                counts[name] = values[name]
        return {event: counts[event] for event in self.events}

    def _pmu_full(self, counts, cpu_base, ipc, uarch, rng):
        """Full-mode PMU block: one pooled 37-factor draw, bit-identical
        to the historical scalar sequence (same stream consumption, same
        left-to-right float arithmetic)."""
        f = rng.lognormal(mean=0.0, sigma=_PMU_SIGMAS_FULL).tolist()
        cycles = cpu_base * f[0]
        instructions = cycles * ipc * f[1]
        counts["cpu-cycles"] = cycles
        counts["raw-cpu-cycles"] = cycles * f[2]
        counts["instructions"] = instructions
        counts["raw-instruction-retired"] = instructions * f[3]

        branch_instr = instructions * 0.18 * uarch["branch"] * f[4]
        branch_miss = branch_instr * 0.045 * f[5]
        counts["branch-instructions"] = branch_instr
        counts["branch-misses"] = branch_miss
        counts["branch-loads"] = branch_instr * f[6]
        counts["branch-load-misses"] = branch_miss * f[7]
        counts["raw-branch-pred"] = branch_instr * f[8]
        counts["raw-branch-mispred"] = branch_miss * f[9]

        l1d_loads = instructions * 0.28 * uarch["mem"] * f[10]
        l1d_stores = instructions * 0.12 * uarch["mem"] * f[11]
        l1d_load_miss = l1d_loads * 0.030 * uarch["cache"] * f[12]
        l1d_store_miss = l1d_stores * 0.020 * uarch["cache"] * f[13]
        counts["L1-dcache-loads"] = l1d_loads
        counts["L1-dcache-stores"] = l1d_stores
        counts["L1-dcache-load-misses"] = l1d_load_miss
        counts["L1-dcache-store-misses"] = l1d_store_miss
        counts["raw-l1-dcache"] = (l1d_loads + l1d_stores) * f[14]
        counts["raw-l1-dcache-refill"] = (l1d_load_miss + l1d_store_miss) * f[15]

        l1i_loads = instructions * 0.95 * f[16]
        l1i_miss = l1i_loads * 0.008 * uarch["cache"] * f[17]
        counts["L1-icache-loads"] = l1i_loads
        counts["L1-icache-load-misses"] = l1i_miss
        counts["raw-l1-icache"] = l1i_loads * f[18]
        counts["raw-l1-icache-refill"] = l1i_miss * f[19]

        llc_loads = l1d_load_miss * 0.85 * f[20]
        llc_load_miss = llc_loads * 0.30 * uarch["cache"] * f[21]
        llc_stores = l1d_store_miss * 0.85 * f[22]
        llc_store_miss = llc_stores * 0.25 * uarch["cache"] * f[23]
        counts["LLC-loads"] = llc_loads
        counts["LLC-load-misses"] = llc_load_miss
        counts["LLC-stores"] = llc_stores
        counts["LLC-store-misses"] = llc_store_miss
        counts["cache-references"] = (llc_loads + llc_stores) * f[24]
        cache_misses = (llc_load_miss + llc_store_miss) * f[25]
        counts["cache-misses"] = cache_misses

        dtlb_miss = l1d_loads * 0.004 * uarch["tlb"] * f[26]
        itlb_miss = l1i_loads * 0.001 * uarch["tlb"] * f[27]
        counts["dTLB-loads"] = l1d_loads * f[28]
        counts["dTLB-load-misses"] = dtlb_miss
        counts["iTLB-loads"] = l1i_loads * f[29]
        counts["iTLB-load-misses"] = itlb_miss
        counts["raw-l1-dtlb-refill"] = dtlb_miss * f[30]
        counts["raw-l1-itlb-refill"] = itlb_miss * f[31]

        counts["stalled-cycles-frontend"] = cycles * 0.15 * f[32]
        counts["stalled-cycles-backend"] = cycles * 0.25 * uarch["cache"] * f[33]
        counts["raw-mem-access"] = (l1d_loads + l1d_stores) * f[34]
        counts["raw-bus-access"] = cache_misses * 1.1 * f[35]
        counts["raw-bus-cycles"] = cycles * 0.4 * f[36]

    def _pmu_reference(self, counts, cpu_base, ipc, uarch, rng):
        """Historical scalar PMU block (per-value guards, one draw per
        positive value).  The columnar full path defers to this for
        pathological inputs; ``columnar=False`` models use it always."""

        def noisy(value, sigma):
            if value <= 0:
                return 0.0
            return float(value * rng.lognormal(mean=0.0, sigma=sigma))

        cycles = noisy(cpu_base, 0.03)
        instructions = noisy(cycles * ipc, 0.05)
        counts["cpu-cycles"] = cycles
        counts["raw-cpu-cycles"] = noisy(cycles, 0.01)
        counts["instructions"] = instructions
        counts["raw-instruction-retired"] = noisy(instructions, 0.01)

        branch_instr = noisy(instructions * 0.18 * uarch["branch"], 0.05)
        branch_miss = noisy(branch_instr * 0.045, 0.10)
        counts["branch-instructions"] = branch_instr
        counts["branch-misses"] = branch_miss
        counts["branch-loads"] = noisy(branch_instr, 0.02)
        counts["branch-load-misses"] = noisy(branch_miss, 0.05)
        counts["raw-branch-pred"] = noisy(branch_instr, 0.02)
        counts["raw-branch-mispred"] = noisy(branch_miss, 0.05)

        l1d_loads = noisy(instructions * 0.28 * uarch["mem"], 0.05)
        l1d_stores = noisy(instructions * 0.12 * uarch["mem"], 0.05)
        l1d_load_miss = noisy(l1d_loads * 0.030 * uarch["cache"], 0.10)
        l1d_store_miss = noisy(l1d_stores * 0.020 * uarch["cache"], 0.10)
        counts["L1-dcache-loads"] = l1d_loads
        counts["L1-dcache-stores"] = l1d_stores
        counts["L1-dcache-load-misses"] = l1d_load_miss
        counts["L1-dcache-store-misses"] = l1d_store_miss
        counts["raw-l1-dcache"] = noisy(l1d_loads + l1d_stores, 0.02)
        counts["raw-l1-dcache-refill"] = noisy(
            l1d_load_miss + l1d_store_miss, 0.05
        )

        l1i_loads = noisy(instructions * 0.95, 0.03)
        l1i_miss = noisy(l1i_loads * 0.008 * uarch["cache"], 0.12)
        counts["L1-icache-loads"] = l1i_loads
        counts["L1-icache-load-misses"] = l1i_miss
        counts["raw-l1-icache"] = noisy(l1i_loads, 0.02)
        counts["raw-l1-icache-refill"] = noisy(l1i_miss, 0.05)

        llc_loads = noisy(l1d_load_miss * 0.85, 0.08)
        llc_load_miss = noisy(llc_loads * 0.30 * uarch["cache"], 0.12)
        llc_stores = noisy(l1d_store_miss * 0.85, 0.08)
        llc_store_miss = noisy(llc_stores * 0.25 * uarch["cache"], 0.12)
        counts["LLC-loads"] = llc_loads
        counts["LLC-load-misses"] = llc_load_miss
        counts["LLC-stores"] = llc_stores
        counts["LLC-store-misses"] = llc_store_miss
        counts["cache-references"] = noisy(llc_loads + llc_stores, 0.04)
        counts["cache-misses"] = noisy(llc_load_miss + llc_store_miss, 0.06)

        dtlb_miss = noisy(l1d_loads * 0.004 * uarch["tlb"], 0.12)
        itlb_miss = noisy(l1i_loads * 0.001 * uarch["tlb"], 0.15)
        counts["dTLB-loads"] = noisy(l1d_loads, 0.02)
        counts["dTLB-load-misses"] = dtlb_miss
        counts["iTLB-loads"] = noisy(l1i_loads, 0.02)
        counts["iTLB-load-misses"] = itlb_miss
        counts["raw-l1-dtlb-refill"] = noisy(dtlb_miss, 0.05)
        counts["raw-l1-itlb-refill"] = noisy(itlb_miss, 0.05)

        counts["stalled-cycles-frontend"] = noisy(cycles * 0.15, 0.10)
        counts["stalled-cycles-backend"] = noisy(
            cycles * 0.25 * uarch["cache"], 0.12
        )
        counts["raw-mem-access"] = noisy(l1d_loads + l1d_stores, 0.03)
        counts["raw-bus-access"] = noisy(counts["cache-misses"] * 1.1, 0.08)
        counts["raw-bus-cycles"] = noisy(cycles * 0.4, 0.05)

    def _segment_counts_reference(self, *, kind, thread, wall_ms, cpu_ms,
                                  pages, uarch, rng,
                                  wait_chunk_override=None, dvfs=None):
        """The historical scalar implementation, retained verbatim as
        the reference for bit-identity tests and the ``BENCH_*.json``
        speedup baselines (``columnar=False``)."""
        device = self.device
        cpu_ms = max(0.0, min(cpu_ms, wall_ms))

        def noisy(value, sigma):
            if value <= 0:
                return 0.0
            return float(value * rng.lognormal(mean=0.0, sigma=sigma))

        counts = {}
        want = self._want

        switches = None
        if want is None or not want.isdisjoint(_SWITCH_EVENTS):
            switches = scheduler.segment_switches(
                kind, thread, wall_ms, cpu_ms, device, rng,
                chunk_override=wait_chunk_override,
            )
            counts["context-switches"] = float(switches.total)
        if want is None or not want.isdisjoint(_FAULT_EVENTS):
            faults = memory.segment_faults(kind, pages, rng)
            counts["page-faults"] = float(faults.total)
            counts["minor-faults"] = float(faults.minor)
            counts["major-faults"] = float(faults.major)
        if switches is not None and (want is None or "cpu-migrations" in want):
            counts["cpu-migrations"] = float(
                scheduler.cpu_migrations(switches, device, rng)
            )
        if want is None or not want.isdisjoint(_CLOCK_EVENTS):
            counts["task-clock"] = noisy(cpu_ms * NS_PER_MS, 0.02)
            if want is None or "cpu-clock" in want:
                counts["cpu-clock"] = noisy(counts["task-clock"], 0.01)
        counts["alignment-faults"] = 0.0
        counts["emulation-faults"] = 0.0

        if not self._wants_pmu:
            return {event: counts[event] for event in self.events}

        if dvfs is None:
            dvfs = float(rng.lognormal(mean=0.0, sigma=DVFS_SIGMA))
        cpu_base = cpu_ms * device.cycles_per_ms * dvfs
        ipc = device.baseline_ipc * _KIND_IPC[kind] * uarch["ipc"]
        self._pmu_reference(counts, cpu_base, ipc, uarch, rng)
        if self.events is not None:
            return {event: counts[event] for event in self.events}
        return counts

    # -- batched multi-segment API -----------------------------------------

    def segment_batch(self, segments, *, rng, dvfs=None):
        """Pooled-draw counts for a whole action's segments at once.

        *segments* is a sequence of ``(kind, thread, wall_ms, cpu_ms,
        pages, uarch, wait_chunk_override)`` tuples in timeline order.
        Returns one counts dict per segment, over the configured event
        subset.

        This is the engine's lazy-mode columnar core: instead of a few
        scalar draws per segment, the whole batch consumes a handful of
        draws pooled by distribution (one poisson call, one
        standard-normal call, one beta, one binomial — see the inline
        layout comment), so the per-segment RNG overhead is paid once
        per *action*.  The draw layout differs from per-segment
        :meth:`segment_counts` — both are lazy-mode universes,
        reproducible per (seed, event set, segment shapes) but not
        sample-identical to each other.

        Full models (``events=None``) must use :meth:`segment_counts`,
        whose scalar draw order is the byte-identity contract; calling
        this with a full model raises :class:`ValueError`.
        """
        if self.events is None:
            raise ValueError(
                "segment_batch is the lazy-mode core; full-mode counts "
                "must keep the per-segment scalar draw order "
                "(use segment_counts)"
            )
        count = len(segments)
        if count == 0:
            return []
        # Batches are one action's worth of segments (a handful), so
        # the per-segment arithmetic runs as plain Python — at this
        # size numpy's per-array overhead costs more than vectorized
        # arithmetic saves.  The RNG draws are pooled by *distribution*
        # across the whole batch in a fixed order: one poisson call
        # (involuntary switch rates | voluntary rates | page-fault
        # intensities), one standard-normal call (migration load
        # factors | task-clock jitter | cpu-clock jitter, as
        # exp(sigma*z) lognormals), one beta call (bursty-fault
        # fractions, drawn only when a minor/major split is requested),
        # one binomial call (fault splits | migrations) — absent blocks
        # drop out of the layout, which is what makes the sequence
        # fixed per (event set, batch shape).
        device = self.device
        need_switches = self._need_switches
        need_migrations = need_switches and self._need_migrations
        need_faults = self._need_faults
        need_clock = self._need_clock
        need_cpu_clock = need_clock and self._need_cpu_clock
        columns = {}

        # Single extraction pass: clamp CPU to wall and compute the
        # poisson rate blocks in one loop over the rows (the switch
        # rates are scheduler.batch_switch_rates inlined — the single
        # pass avoids materialising thread/override columns).
        quantum = device.sched_quantum_ms
        vsync = device.vsync_period_ms
        io_chunk = device.io_wait_chunk_ms
        render_thread = scheduler.RENDER_THREAD
        frame_cpu = scheduler.RENDER_FRAME_CPU_MS
        wakeups = scheduler.RENDER_WAKEUPS_PER_FRAME
        ui_kind = ApiKind.UI
        kinds = []
        cpu = []
        involuntary_rate = []
        voluntary_rate = []
        page_rate = []
        for kind, thread, w, c, p, _uarch, override in segments:
            c = 0.0 if c <= 0.0 else (c if c < w else w)
            kinds.append(kind)
            cpu.append(c)
            if need_switches:
                involuntary_rate.append(c / quantum)
                if thread == render_thread:
                    voluntary_rate.append((c / frame_cpu) * wakeups)
                else:
                    blocked = w - c
                    if kind is ui_kind:
                        chunk = vsync
                    elif override is not None:
                        chunk = override
                    else:
                        chunk = io_chunk
                    voluntary_rate.append(
                        blocked / chunk if blocked > 0.0 else 0.0
                    )
            if need_faults:
                page_rate.append(p if p > 0 else 0)

        # Pooled poisson draws.
        lams = involuntary_rate + voluntary_rate + page_rate
        draws = rng.poisson(lams).tolist() if lams else []
        cursor = 0
        if need_switches:
            involuntary = draws[:count]
            voluntary = draws[count:2 * count]
            cursor = 2 * count
            switch_total = [v + i for v, i in zip(voluntary, involuntary)]
            columns["context-switches"] = [float(t) for t in switch_total]
        if need_faults:
            fault_totals = draws[cursor:cursor + count]

        # Pooled normal draws (consumed as exp(sigma * z) lognormals).
        z_blocks = (
            (1 if need_migrations else 0)
            + (1 if need_clock else 0)
            + (1 if need_cpu_clock else 0)
        )
        zs = rng.standard_normal(z_blocks * count).tolist() if z_blocks else []
        cursor = 0
        if need_migrations:
            migration_z = zs[:count]
            cursor = count
        if need_clock:
            task_clock = [
                c * NS_PER_MS * math.exp(0.02 * z) if c > 0.0 else 0.0
                for c, z in zip(cpu, zs[cursor:cursor + count])
            ]
            cursor += count
            columns["task-clock"] = task_clock
            if need_cpu_clock:
                columns["cpu-clock"] = [
                    t * math.exp(0.01 * z) if t > 0.0 else 0.0
                    for t, z in zip(task_clock, zs[cursor:cursor + count])
                ]

        # Pooled beta draw, then one binomial call over fault splits
        # and migrations together.  A model that wants only fault
        # *totals* (no minor/major events) skips both blocks outright —
        # the split draws exist solely to apportion a total the poisson
        # already fixed.
        need_split = need_faults and self._need_fault_split
        if need_faults:
            columns["page-faults"] = [float(t) for t in fault_totals]
        binomial_ns = []
        binomial_ps = []
        if need_split:
            binomial_ns += fault_totals
            binomial_ps += memory.batch_fault_fractions(kinds, rng)
        if need_migrations:
            migration_base = 0.03 * device.cores
            binomial_ns += switch_total
            binomial_ps += [
                min(0.5, migration_base * math.exp(0.6 * z))
                for z in migration_z
            ]
        splits = (
            rng.binomial(binomial_ns, binomial_ps).tolist()
            if binomial_ns else []
        )
        cursor = 0
        if need_split:
            major = splits[:count]
            cursor = count
            columns["major-faults"] = [float(m) for m in major]
            columns["minor-faults"] = [
                float(t - m) for t, m in zip(fault_totals, major)
            ]
        if need_migrations:
            columns["cpu-migrations"] = [
                float(m) for m in splits[cursor:cursor + count]
            ]
        if not self._want.isdisjoint(("alignment-faults", "emulation-faults")):
            zeros = [0.0] * count
            columns["alignment-faults"] = zeros
            columns["emulation-faults"] = zeros

        if self._wants_pmu:
            if dvfs is None:
                dvfs = float(rng.lognormal(mean=0.0, sigma=DVFS_SIGMA))
            uarchs = [seg[5] for seg in segments]
            cycles_scale = self._cycles_per_ms * dvfs
            env = {
                "cpu": np.array([c * cycles_scale for c in cpu]),
                "ipc": np.array([
                    self._ipc_by_kind[kind] * uarch["ipc"]
                    for kind, uarch in zip(kinds, uarchs)
                ]),
                "branch": np.array([u["branch"] for u in uarchs]),
                "mem": np.array([u["mem"] for u in uarchs]),
                "cache": np.array([u["cache"] for u in uarchs]),
                "tlb": np.array([u["tlb"] for u in uarchs]),
            }
            factors = rng.lognormal(
                mean=0.0, sigma=self._pmu_sigmas,
                size=(count, len(self._pmu_sigmas)),
            )
            values = {}
            for index, (name, base_fn) in enumerate(self._pmu_plan):
                base = base_fn(values, env)
                values[name] = np.where(
                    base > 0.0, base * factors[:, index], 0.0
                )
            want = self._want
            for name, column in values.items():
                if name in want:
                    columns[name] = [float(v) for v in column]

        events = self.events
        cols = [columns[event] for event in events]
        return [
            dict(zip(events, row)) for row in zip(*cols)
        ]
