"""Performance-event counter model.

Simulates the 46 performance events the paper samples with Simpleperf
on the LG V10: 9 kernel software events (counted exactly by the OS) and
37 PMU hardware events (counted by a limited set of registers; see
:mod:`repro.sim.pmu` for the multiplexing error that a register
shortage introduces).

The model's causal structure follows the paper's Section 3.3.1:

* **Scheduling/memory events** (context-switches, task-clock,
  cpu-clock, page-faults, minor-faults, cpu-migrations) are dictated by
  OS decisions — how long a thread ran, how often it blocked, how many
  fresh pages it touched.  They depend on the *role* of the thread
  during an operation, not on the operation's source code, which is why
  they discriminate soft hang bugs from UI work.
* **Microarchitectural events** (instructions, caches, branches, TLBs)
  scale with CPU time but carry a large per-API multiplier
  (:meth:`repro.apps.api.ApiSpec.uarch_profile`): each API "may have
  more or less instructions compared to UI-APIs", so these events
  correlate poorly with hang bugs.
"""

from repro.base.kinds import ApiKind
from repro.sim import memory, scheduler

#: Kernel software events (exact counting, no PMU registers needed).
KERNEL_EVENTS = (
    "context-switches",
    "cpu-migrations",
    "page-faults",
    "minor-faults",
    "major-faults",
    "task-clock",
    "cpu-clock",
    "alignment-faults",
    "emulation-faults",
)

#: PMU hardware events (subject to register multiplexing).
PMU_EVENTS = (
    "cpu-cycles",
    "instructions",
    "cache-references",
    "cache-misses",
    "branch-instructions",
    "branch-misses",
    "stalled-cycles-frontend",
    "stalled-cycles-backend",
    "L1-dcache-loads",
    "L1-dcache-load-misses",
    "L1-dcache-stores",
    "L1-dcache-store-misses",
    "L1-icache-loads",
    "L1-icache-load-misses",
    "LLC-loads",
    "LLC-load-misses",
    "LLC-stores",
    "LLC-store-misses",
    "dTLB-loads",
    "dTLB-load-misses",
    "iTLB-loads",
    "iTLB-load-misses",
    "branch-loads",
    "branch-load-misses",
    "raw-l1-dcache",
    "raw-l1-dcache-refill",
    "raw-l1-icache",
    "raw-l1-icache-refill",
    "raw-l1-dtlb-refill",
    "raw-l1-itlb-refill",
    "raw-branch-pred",
    "raw-branch-mispred",
    "raw-mem-access",
    "raw-bus-access",
    "raw-bus-cycles",
    "raw-cpu-cycles",
    "raw-instruction-retired",
)

#: All 46 events, kernel first (mirrors the paper's "46 performance
#: events are available in total").
ALL_EVENTS = KERNEL_EVENTS + PMU_EVENTS

#: The three kernel events S-Checker ends up selecting.
FILTER_EVENTS = ("context-switches", "task-clock", "page-faults")

#: IPC scaling per operation kind (I/O code stalls; loops stream).
_KIND_IPC = {
    ApiKind.BLOCKING: 0.7,
    ApiKind.COMPUTE: 1.3,
    ApiKind.UI: 1.0,
    ApiKind.LIGHT: 1.0,
}

#: Milliseconds of CPU per nanosecond-unit of the task-clock counter.
NS_PER_MS = 1e6

#: Kernel events whose values require the scheduler switch model.
_SWITCH_EVENTS = frozenset({"context-switches", "cpu-migrations"})

#: Kernel events whose values require the page-fault model.
_FAULT_EVENTS = frozenset({"page-faults", "minor-faults", "major-faults"})

#: Kernel events derived from the segment's CPU time.
_CLOCK_EVENTS = frozenset({"task-clock", "cpu-clock"})


class CounterModel:
    """Generates per-segment counts for the 46 events — or, in lazy
    mode, for just a requested subset.

    *events* restricts the model to the named events: the 9 kernel
    software events are cheap closed forms (a handful of scheduler and
    memory draws) and are always computed, while the block of 37 PMU
    hardware events — one lognormal draw per event — is skipped
    entirely unless at least one PMU event is requested.  This is the
    fleet-scale fast path: S-Checker's filter only ever reads
    :data:`FILTER_EVENTS` (three kernel events), so a filter-only model
    does an order-of-magnitude fewer RNG draws per segment.

    Lazy mode advances the per-action RNG stream differently from the
    full model (the skipped PMU draws never happen), so it is a
    *distinct* deterministic universe: reproducible for a given (seed,
    event set), but not sample-identical to ``events=None`` runs.
    """

    def __init__(self, device, events=None):
        self.device = device
        if events is None:
            self.events = None
            self._want = None
            self._wants_pmu = True
        else:
            events = tuple(events)
            unknown = [e for e in events if e not in ALL_EVENTS]
            if unknown:
                raise ValueError(f"unknown performance events: {unknown}")
            self.events = events
            self._want = frozenset(events)
            self._wants_pmu = not self._want.isdisjoint(PMU_EVENTS)

    def segment_counts(self, *, kind, thread, wall_ms, cpu_ms, pages, uarch, rng,
                       wait_chunk_override=None, dvfs=None):
        """Sample event counts for one execution segment.

        Parameters
        ----------
        kind: :class:`~repro.base.kinds.ApiKind` of the driving operation.
        thread: timeline thread name the segment runs on.
        wall_ms / cpu_ms: wall duration and CPU time of the segment.
        pages: fresh memory pages the segment touches.
        uarch: per-API multipliers from :meth:`ApiSpec.uarch_profile`.
        rng: numpy Generator (one per action execution).

        Returns a dict over :data:`ALL_EVENTS`, or over the configured
        subset when the model was built with an *events* restriction.
        """
        device = self.device
        cpu_ms = max(0.0, min(cpu_ms, wall_ms))

        def noisy(value, sigma):
            if value <= 0:
                return 0.0
            return float(value * rng.lognormal(mean=0.0, sigma=sigma))

        counts = {}
        want = self._want

        # --- kernel software events (OS-scheduling driven) ---
        # In full mode every guard is true and the draw sequence is
        # exactly the historical one (switches, faults, migrations,
        # clocks); a lazy model draws only for the events it was asked
        # for.
        switches = None
        if want is None or not want.isdisjoint(_SWITCH_EVENTS):
            switches = scheduler.segment_switches(
                kind, thread, wall_ms, cpu_ms, device, rng,
                chunk_override=wait_chunk_override,
            )
            counts["context-switches"] = float(switches.total)
        if want is None or not want.isdisjoint(_FAULT_EVENTS):
            faults = memory.segment_faults(kind, pages, rng)
            counts["page-faults"] = float(faults.total)
            counts["minor-faults"] = float(faults.minor)
            counts["major-faults"] = float(faults.major)
        if switches is not None and (want is None or "cpu-migrations" in want):
            counts["cpu-migrations"] = float(
                scheduler.cpu_migrations(switches, device, rng)
            )
        if want is None or not want.isdisjoint(_CLOCK_EVENTS):
            counts["task-clock"] = noisy(cpu_ms * NS_PER_MS, 0.02)
            if want is None or "cpu-clock" in want:
                counts["cpu-clock"] = noisy(counts["task-clock"], 0.01)
        counts["alignment-faults"] = 0.0
        counts["emulation-faults"] = 0.0

        if not self._wants_pmu:
            return {event: counts[event] for event in self.events}

        # --- PMU events (code-specific via per-API uarch profile) ---
        # DVFS: the governor varies clock frequency, so cycle-derived
        # counts decorrelate from task-clock (wall CPU time) — one
        # reason the paper's top events are all kernel events.  The
        # factor normally comes from the engine (one draw per action:
        # governors hold a frequency far longer than one operation).
        if dvfs is None:
            dvfs = float(rng.lognormal(mean=0.0, sigma=0.45))
        cycles = noisy(cpu_ms * device.cycles_per_ms * dvfs, 0.03)
        ipc = device.baseline_ipc * _KIND_IPC[kind] * uarch["ipc"]
        instructions = noisy(cycles * ipc, 0.05)
        counts["cpu-cycles"] = cycles
        counts["raw-cpu-cycles"] = noisy(cycles, 0.01)
        counts["instructions"] = instructions
        counts["raw-instruction-retired"] = noisy(instructions, 0.01)

        branch_instr = noisy(instructions * 0.18 * uarch["branch"], 0.05)
        branch_miss = noisy(branch_instr * 0.045, 0.10)
        counts["branch-instructions"] = branch_instr
        counts["branch-misses"] = branch_miss
        counts["branch-loads"] = noisy(branch_instr, 0.02)
        counts["branch-load-misses"] = noisy(branch_miss, 0.05)
        counts["raw-branch-pred"] = noisy(branch_instr, 0.02)
        counts["raw-branch-mispred"] = noisy(branch_miss, 0.05)

        l1d_loads = noisy(instructions * 0.28 * uarch["mem"], 0.05)
        l1d_stores = noisy(instructions * 0.12 * uarch["mem"], 0.05)
        l1d_load_miss = noisy(l1d_loads * 0.030 * uarch["cache"], 0.10)
        l1d_store_miss = noisy(l1d_stores * 0.020 * uarch["cache"], 0.10)
        counts["L1-dcache-loads"] = l1d_loads
        counts["L1-dcache-stores"] = l1d_stores
        counts["L1-dcache-load-misses"] = l1d_load_miss
        counts["L1-dcache-store-misses"] = l1d_store_miss
        counts["raw-l1-dcache"] = noisy(l1d_loads + l1d_stores, 0.02)
        counts["raw-l1-dcache-refill"] = noisy(
            l1d_load_miss + l1d_store_miss, 0.05
        )

        l1i_loads = noisy(instructions * 0.95, 0.03)
        l1i_miss = noisy(l1i_loads * 0.008 * uarch["cache"], 0.12)
        counts["L1-icache-loads"] = l1i_loads
        counts["L1-icache-load-misses"] = l1i_miss
        counts["raw-l1-icache"] = noisy(l1i_loads, 0.02)
        counts["raw-l1-icache-refill"] = noisy(l1i_miss, 0.05)

        llc_loads = noisy(l1d_load_miss * 0.85, 0.08)
        llc_load_miss = noisy(llc_loads * 0.30 * uarch["cache"], 0.12)
        llc_stores = noisy(l1d_store_miss * 0.85, 0.08)
        llc_store_miss = noisy(llc_stores * 0.25 * uarch["cache"], 0.12)
        counts["LLC-loads"] = llc_loads
        counts["LLC-load-misses"] = llc_load_miss
        counts["LLC-stores"] = llc_stores
        counts["LLC-store-misses"] = llc_store_miss
        counts["cache-references"] = noisy(llc_loads + llc_stores, 0.04)
        counts["cache-misses"] = noisy(llc_load_miss + llc_store_miss, 0.06)

        dtlb_miss = noisy(l1d_loads * 0.004 * uarch["tlb"], 0.12)
        itlb_miss = noisy(l1i_loads * 0.001 * uarch["tlb"], 0.15)
        counts["dTLB-loads"] = noisy(l1d_loads, 0.02)
        counts["dTLB-load-misses"] = dtlb_miss
        counts["iTLB-loads"] = noisy(l1i_loads, 0.02)
        counts["iTLB-load-misses"] = itlb_miss
        counts["raw-l1-dtlb-refill"] = noisy(dtlb_miss, 0.05)
        counts["raw-l1-itlb-refill"] = noisy(itlb_miss, 0.05)

        counts["stalled-cycles-frontend"] = noisy(cycles * 0.15, 0.10)
        counts["stalled-cycles-backend"] = noisy(
            cycles * 0.25 * uarch["cache"], 0.12
        )
        counts["raw-mem-access"] = noisy(l1d_loads + l1d_stores, 0.03)
        counts["raw-bus-access"] = noisy(counts["cache-misses"] * 1.1, 0.08)
        counts["raw-bus-cycles"] = noisy(cycles * 0.4, 0.05)
        if self.events is not None:
            return {event: counts[event] for event in self.events}
        return counts
