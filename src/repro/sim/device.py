"""Device profiles.

The paper evaluates on an LG V10 and cross-checks on a Nexus 5 and a
Galaxy S3.  A profile captures the handful of hardware/OS parameters the
simulator depends on: CPU frequency, scheduler quantum, vsync period,
I/O wait granularity, and the PMU register budget that forces event
multiplexing when too many hardware events are counted at once.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceProfile:
    """Hardware/OS parameters of a simulated smartphone."""

    name: str
    #: Number of CPU cores.
    cores: int
    #: Nominal CPU frequency in GHz (cycles accrue at this rate).
    cpu_freq_ghz: float
    #: Scheduler timeslice in milliseconds of CPU time; a thread that
    #: runs this long is preempted (one involuntary context switch).
    sched_quantum_ms: float
    #: Display refresh period in milliseconds (frame pacing for the
    #: render thread).
    vsync_period_ms: float
    #: Average CPU-burst length between voluntary blocks during I/O, in
    #: milliseconds of wall time spent blocked per voluntary switch.
    io_wait_chunk_ms: float
    #: Number of hardware PMU counter registers.  Counting more PMU
    #: events than this multiplexes them (scaled estimates with error).
    pmu_registers: int
    #: Number of PMU-generated events exposed by the CPU.
    pmu_events_available: int
    #: Baseline instructions-per-cycle for typical app code.
    baseline_ipc: float

    @property
    def cycles_per_ms(self):
        """CPU cycles accrued per millisecond of CPU time."""
        return self.cpu_freq_ghz * 1e6


#: The paper's primary evaluation device (Snapdragon 808: 6 registers,
#: 37 PMU events plus kernel software events).
LG_V10 = DeviceProfile(
    name="LG V10",
    cores=6,
    cpu_freq_ghz=1.8,
    sched_quantum_ms=10.0,
    vsync_period_ms=16.67,
    io_wait_chunk_ms=5.0,
    pmu_registers=6,
    pmu_events_available=37,
    baseline_ipc=1.1,
)

NEXUS_5 = DeviceProfile(
    name="Nexus 5",
    cores=4,
    cpu_freq_ghz=2.26,
    sched_quantum_ms=10.0,
    vsync_period_ms=16.67,
    io_wait_chunk_ms=5.0,
    pmu_registers=4,
    pmu_events_available=37,
    baseline_ipc=1.2,
)

GALAXY_S3 = DeviceProfile(
    name="Galaxy S3",
    cores=4,
    cpu_freq_ghz=1.4,
    sched_quantum_ms=10.0,
    vsync_period_ms=16.67,
    io_wait_chunk_ms=6.0,
    pmu_registers=4,
    pmu_events_available=30,
    baseline_ipc=0.9,
)

ALL_DEVICES = (LG_V10, NEXUS_5, GALAXY_S3)
