"""Action execution engine.

Simulates what happens on an app's threads when the user performs an
action: the action's input events are posted to the main thread's
looper and processed FIFO; each operation occupies the main thread for
a sampled duration (UI work additionally feeding the render thread,
worker-offloaded calls running concurrently), accruing performance
events along the way.  The result is an :class:`ActionExecution` —
per-event response times plus a queryable :class:`Timeline` — which is
everything runtime detectors are allowed to observe.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.apps.app import ActionSpec, AppSpec, Operation
from repro.base.kinds import ApiKind
from repro.base.rng import stream
from repro.sim.counters import CounterModel
from repro.sim.looper import Looper, Message
from repro.sim.timeline import (
    MAIN_THREAD,
    RENDER_THREAD,
    Segment,
    Timeline,
    WORKER_THREAD,
)
from repro.telemetry import current as telemetry

#: Human-perceivable delay threshold (ms); the paper's soft-hang bar.
PERCEIVABLE_DELAY_MS = 100.0

#: Pseudo-event recording bytes moved over the network by main-thread
#: code (from TrafficStats, not the PMU).  Fuel for the paper's
#: footnote-2 extension: any main-thread network activity during a
#: hang is a soft hang bug by definition.
NETWORK_BYTES_EVENT = "network-bytes"

#: Main-thread cost of posting work to a worker (AsyncTask dispatch).
_WORKER_DISPATCH_MS = 0.4

#: Gap between consecutive input events of one action (queue overhead).
_EVENT_GAP_MS = 0.3

#: Fraction of a UI operation's duration spent computing on the main
#: thread before the render thread receives any work.
_RENDER_LAG_SHARE = 0.4

#: Main-thread CPU share of the post-action ambient activity.
_AMBIENT_CPU_SHARE = 0.45

#: Render pages per main-thread page per unit of render share: at the
#: typical render_share of 0.6 a UI operation touches ~4x its main
#: pages render-side (textures, display lists); main-thread-heavy UI
#: work (measure/layout) touches proportionally less.
_RENDER_PAGE_FACTOR_PER_SHARE = 6.67

#: Stable microarchitectural profile of the render thread's own code.
_RENDER_UARCH = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0, "mem": 1.0}


@dataclass(frozen=True)
class OperationExecution:
    """One operation's execution within an action."""

    op: Operation
    thread: str
    start_ms: float
    end_ms: float
    manifested: bool

    @property
    def duration_ms(self):
        """Wall-clock duration of the operation."""
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class InputEventExecution:
    """One input event's trip through the main thread."""

    spec: object
    enqueue_ms: float
    dispatch_ms: float
    finish_ms: float
    op_executions: Tuple[OperationExecution, ...]

    @property
    def response_time_ms(self):
        """Dequeue-to-finish processing time (what Hang Doctor measures
        via the Looper's message-logging hooks)."""
        return self.finish_ms - self.dispatch_ms

    @property
    def is_soft_hang(self):
        """True if the event's response time is user-perceivable."""
        return self.response_time_ms > PERCEIVABLE_DELAY_MS

    def dominant_op(self):
        """Main-thread operation contributing the most wall time."""
        main_ops = [oe for oe in self.op_executions if oe.thread == MAIN_THREAD]
        if not main_ops:
            return None
        return max(main_ops, key=lambda oe: oe.duration_ms)


@dataclass(frozen=True)
class ActionExecution:
    """Everything observable about one execution of a user action."""

    app: AppSpec
    action: ActionSpec
    start_ms: float
    end_ms: float
    events: Tuple[InputEventExecution, ...]
    timeline: Timeline

    @property
    def response_time_ms(self):
        """Action response time = max over its input events (paper §2.2)."""
        return max(event.response_time_ms for event in self.events)

    @property
    def has_soft_hang(self):
        """True if any input event exceeded the perceivable delay."""
        return any(event.is_soft_hang for event in self.events)

    def hang_events(self):
        """Input events whose response time exceeded 100 ms."""
        return [event for event in self.events if event.is_soft_hang]

    def bug_caused_hang(self):
        """Ground truth: is some soft hang dominated by a hang-bug op?

        Used only by the metrics layer, never by detectors.
        """
        for event in self.hang_events():
            dominant = event.dominant_op()
            if dominant is not None and dominant.op.is_hang_bug:
                return True
        return False

    def hang_bug_sites(self):
        """Ground-truth bug call sites that manifested a hang here.

        A site counts when its call individually exceeded the
        perceivable delay, or when it was the dominant operation of a
        hanging input event (a 90 ms blocking call that tips a busy
        event over 100 ms still manifested as a hang).
        """
        sites = []
        for event in self.hang_events():
            dominant = event.dominant_op()
            for oe in event.op_executions:
                is_main_bug = oe.thread == MAIN_THREAD and oe.op.is_hang_bug
                manifested_hang = (
                    oe.duration_ms > PERCEIVABLE_DELAY_MS or oe is dominant
                )
                if is_main_bug and manifested_hang:
                    if oe.op.site_id not in sites:
                        sites.append(oe.op.site_id)
        return sites

    def counter_difference(self, event, start_ms=None, end_ms=None):
        """Main−render difference of one event over a window."""
        return self.timeline.difference(
            event, MAIN_THREAD, RENDER_THREAD, start_ms, end_ms
        )


class ExecutionEngine:
    """Runs actions of an app on a simulated device.

    Each call to :meth:`run_action` uses a fresh RNG stream derived
    from (seed, app, action, execution index), so repeated executions
    vary while the whole experiment stays reproducible.
    """

    def __init__(self, device, seed=0, environment="wild",
                 counter_events=None):
        if environment not in ("wild", "lab"):
            raise ValueError(f"unknown environment {environment!r}")
        self.device = device
        self.seed = seed
        #: "wild" (real users, real content) or "lab" (a test bed with
        #: synthetic inputs, where content-dependent bugs rarely
        #: manifest -- the paper's §4.6 discussion).
        self.environment = environment
        #: Restricting *counter_events* (e.g. to
        #: :data:`repro.sim.counters.FILTER_EVENTS`) puts the counter
        #: model in lazy mode: segments carry only the requested
        #: events, and the 37-event PMU block is skipped unless asked
        #: for — the fast path for fleet-scale runs where only the
        #: S-Checker filter reads counters.  Timeline queries for
        #: unrequested events read as zero.
        self.counter_model = CounterModel(device, events=counter_events)
        self._execution_index = 0

    def run_action(self, app, action, start_ms=0.0, rng=None, looper=None):
        """Execute *action* of *app* starting at *start_ms*.

        A caller may supply its own *looper* (e.g. one with response-
        time monitors installed via ``set_message_logging``); otherwise
        a private looper is used.
        """
        self._execution_index += 1
        if rng is None:
            rng = stream(self.seed, app.name, action.name, self._execution_index)
        # The DVFS governor holds one frequency across a short action.
        self._dvfs = float(rng.lognormal(mean=0.0, sigma=0.7))
        timeline = Timeline()
        looper = looper if looper is not None else Looper()
        handler_frame = action.handler_frame(app.package)

        for event_spec in action.events:
            looper.post(
                Message(target=event_spec.name, payload=event_spec,
                        enqueue_ms=start_ms)
            )

        op_execs_per_event = []

        def handle(message, dispatch_ms):
            clock = dispatch_ms
            op_execs = []
            for op in message.payload.operations:
                clock = self._run_operation(
                    app, op, clock, rng, timeline, op_execs, handler_frame
                )
            op_execs_per_event.append(tuple(op_execs))
            return clock

        records = looper.dispatch_all(handle, start_ms)

        events = []
        clock = start_ms
        for record, op_execs in zip(records, op_execs_per_event):
            events.append(
                InputEventExecution(
                    spec=record.message.payload,
                    enqueue_ms=record.message.enqueue_ms,
                    dispatch_ms=record.dispatch_ms,
                    finish_ms=record.finish_ms,
                    op_executions=op_execs,
                )
            )
            clock = record.finish_ms + _EVENT_GAP_MS

        end_ms = self._settle(timeline, clock, rng)
        tel = telemetry()
        if tel.enabled:
            tel.count("sim.actions.executed")
            tel.count("sim.events.dispatched", len(events))
            tel.record_span(
                "sim.action.execute", start_ms, end_ms,
                app=app.name, action=action.name, events=len(events),
                hang=any(event.is_soft_hang for event in events),
            )
        return ActionExecution(
            app=app,
            action=action,
            start_ms=start_ms,
            end_ms=end_ms,
            events=tuple(events),
            timeline=timeline,
        )

    def run_queued_burst(self, app, action_names, start_ms=0.0):
        """A rapid tap burst: every action's input events enqueue at
        once, then drain FIFO (paper §2.1: "events are executed, one by
        one, in their queue order" — which is why one blocking
        operation freezes everything behind it).

        Returns the list of
        :class:`~repro.sim.looper.DispatchRecord` — their ``latency_ms``
        (enqueue to finish) shows queued events absorbing the delay of
        whatever ran before them, unlike ``response_time_ms``.
        """
        self._execution_index += 1
        rng = stream(self.seed, app.name, "burst", self._execution_index)
        self._dvfs = float(rng.lognormal(mean=0.0, sigma=0.7))
        timeline = Timeline()
        looper = Looper()
        for name in action_names:
            action = app.action(name)
            handler_frame = action.handler_frame(app.package)
            for event_spec in action.events:
                looper.post(
                    Message(target=f"{name}/{event_spec.name}",
                            payload=(event_spec, handler_frame),
                            enqueue_ms=start_ms)
                )

        def handle(message, dispatch_ms):
            event_spec, handler_frame = message.payload
            clock = dispatch_ms
            scratch = []
            for op in event_spec.operations:
                clock = self._run_operation(
                    app, op, clock, rng, timeline, scratch, handler_frame
                )
            return clock

        records = looper.dispatch_all(handle, start_ms)
        return records, timeline

    def run_session(self, app, action_names, start_ms=0.0, gap_ms=2000.0):
        """Execute a sequence of actions with idle gaps between them."""
        executions = []
        clock = start_ms
        for name in action_names:
            action = app.action(name)
            execution = self.run_action(app, action, start_ms=clock)
            executions.append(execution)
            clock = execution.end_ms + gap_ms
        return executions

    # ------------------------------------------------------------------

    def _run_operation(self, app, op, clock, rng, timeline, op_execs,
                       handler_frame):
        """Execute one operation; returns the new main-thread clock."""
        api = op.api
        duration, manifested = api.sample_duration_ms(
            rng, environment=self.environment
        )
        base_pages = api.pages if manifested else api.pages_fast
        # Content-size variance: how many fresh pages a call touches
        # depends on the input (bitmap size, list length), not just on
        # the API.
        pages = int(base_pages * rng.lognormal(mean=0.0, sigma=0.6))
        frames = op.stack_frames(app.package, handler_frame)

        if op.on_worker:
            # Main thread only pays the dispatch; the call itself runs
            # concurrently on a worker thread (AsyncTask-style).
            dispatch_end = clock + _WORKER_DISPATCH_MS
            timeline.add(
                Segment(
                    thread=MAIN_THREAD,
                    start_ms=clock,
                    end_ms=dispatch_end,
                    frames=frames[:2],
                    counts=self._counts(
                        ApiKind.LIGHT, MAIN_THREAD, _WORKER_DISPATCH_MS,
                        _WORKER_DISPATCH_MS * 0.9, 2, _RENDER_UARCH, rng
                    ),
                    op=op,
                    cpu_ms=_WORKER_DISPATCH_MS * 0.9,
                )
            )
            cpu_ms = duration * api.cpu_share
            timeline.add(
                Segment(
                    thread=WORKER_THREAD,
                    start_ms=dispatch_end,
                    end_ms=dispatch_end + duration,
                    frames=frames,
                    counts=self._counts(
                        api.kind, WORKER_THREAD, duration, cpu_ms, pages,
                        api.uarch_profile(), rng,
                        wait_chunk_override=api.wait_chunk_ms,
                    ),
                    op=op,
                    cpu_ms=cpu_ms,
                )
            )
            op_execs.append(
                OperationExecution(
                    op=op,
                    thread=WORKER_THREAD,
                    start_ms=dispatch_end,
                    end_ms=dispatch_end + duration,
                    manifested=manifested,
                )
            )
            return dispatch_end

        cpu_ms = duration * api.cpu_share
        counts = self._counts(
            api.kind, MAIN_THREAD, duration, cpu_ms, pages,
            api.uarch_profile(), rng,
            wait_chunk_override=api.wait_chunk_ms,
        )
        if api.network_bytes and manifested:
            # TrafficStats-style accounting of main-thread sockets
            # (the paper's footnote-2 extension reads this).
            counts[NETWORK_BYTES_EVENT] = float(
                api.network_bytes * rng.lognormal(0.0, 0.3)
            )
        timeline.add(
            Segment(
                thread=MAIN_THREAD,
                start_ms=clock,
                end_ms=clock + duration,
                frames=frames,
                counts=counts,
                op=op,
                cpu_ms=cpu_ms,
            )
        )
        if api.render_share > 0:
            # The render thread lags the main thread: the UI code first
            # computes (positions, display lists) and only then commits
            # frames — which is why the *early* part of a UI action
            # looks bug-like (main busy, render idle; paper Figure 5).
            render_lag = _RENDER_LAG_SHARE * duration
            render_wall = (duration - render_lag) + self.device.vsync_period_ms
            render_cpu = duration * api.render_share
            render_pages = int(
                pages * _RENDER_PAGE_FACTOR_PER_SHARE * api.render_share
            )
            timeline.add(
                Segment(
                    thread=RENDER_THREAD,
                    start_ms=clock + render_lag,
                    end_ms=clock + render_lag + render_wall,
                    frames=(),
                    counts=self._counts(
                        ApiKind.UI, RENDER_THREAD, render_wall, render_cpu,
                        render_pages, _RENDER_UARCH, rng
                    ),
                    op=op,
                    cpu_ms=render_cpu,
                )
            )
        op_execs.append(
            OperationExecution(
                op=op,
                thread=MAIN_THREAD,
                start_ms=clock,
                end_ms=clock + duration,
                manifested=manifested,
            )
        )
        return clock + duration

    def _settle(self, timeline, clock, rng):
        """Brief post-action settling (render finishing queued frames).

        The settle marks the end of the *action* (the window S-Checker
        accumulates counters over); the ambient activity that follows —
        animations, garbage collection, list prefetching — belongs to
        the app's steady state, not to the action, but it is visible to
        anything that monitors the process continuously (the paper's
        utilization baselines sample /proc every 100 ms around the
        clock, and their low thresholds fire on exactly this kind of
        ordinary busy window).
        """
        settle_ms = float(self.device.vsync_period_ms)
        render_cpu = settle_ms * 0.2
        timeline.add(
            Segment(
                thread=RENDER_THREAD,
                start_ms=clock,
                end_ms=clock + settle_ms,
                frames=(),
                counts=self._counts(
                    ApiKind.UI, RENDER_THREAD, settle_ms, render_cpu, 4,
                    _RENDER_UARCH, rng
                ),
                op=None,
                cpu_ms=render_cpu,
            )
        )
        end_ms = clock + settle_ms
        self._ambient(timeline, end_ms, rng)
        return end_ms

    def _ambient(self, timeline, clock, rng):
        """Post-action ambient activity (after the action has ended)."""
        ambient_ms = float(rng.uniform(400.0, 800.0))
        main_cpu = ambient_ms * _AMBIENT_CPU_SHARE
        timeline.add(
            Segment(
                thread=MAIN_THREAD,
                start_ms=clock,
                end_ms=clock + ambient_ms,
                frames=(),
                counts=self._counts(
                    ApiKind.UI, MAIN_THREAD, ambient_ms, main_cpu, 60,
                    _RENDER_UARCH, rng
                ),
                op=None,
                cpu_ms=main_cpu,
            )
        )
        render_cpu = ambient_ms * 0.15
        timeline.add(
            Segment(
                thread=RENDER_THREAD,
                start_ms=clock,
                end_ms=clock + ambient_ms,
                frames=(),
                counts=self._counts(
                    ApiKind.UI, RENDER_THREAD, ambient_ms, render_cpu, 40,
                    _RENDER_UARCH, rng
                ),
                op=None,
                cpu_ms=render_cpu,
            )
        )

    def _counts(self, kind, thread, wall_ms, cpu_ms, pages, uarch, rng,
                wait_chunk_override=None):
        # Hot path: a bare counter bump is the only telemetry afforded
        # here (the no-op makes it one global read when disabled).
        telemetry().count("sim.counter.segments")
        return self.counter_model.segment_counts(
            kind=kind,
            thread=thread,
            wall_ms=wall_ms,
            cpu_ms=cpu_ms,
            pages=pages,
            uarch=uarch,
            rng=rng,
            wait_chunk_override=wait_chunk_override,
            dvfs=getattr(self, "_dvfs", None),
        )
