"""Action execution engine.

Simulates what happens on an app's threads when the user performs an
action: the action's input events are posted to the main thread's
looper and processed FIFO; each operation occupies the main thread for
a sampled duration (UI work additionally feeding the render thread,
worker-offloaded calls running concurrently), accruing performance
events along the way.  The result is an :class:`ActionExecution` —
per-event response times plus a queryable :class:`Timeline` — which is
everything runtime detectors are allowed to observe.

The engine caches an :class:`~repro.sim.plan.ActionPlan` per
(app, action): frames, uarch profiles, and duration parameters are
resolved once instead of per segment.  Full-mode executions keep the
historical scalar draw sequence exactly (byte-identical rendered
outputs); engines restricted to a *counter_events* subset additionally
run a columnar action loop that pools the per-operation draws and
computes all of an action's segment counts in one
:meth:`~repro.sim.counters.CounterModel.segment_batch` call.  See
``docs/perf.md`` for the determinism contract.
"""

import math
from dataclasses import dataclass
from typing import Tuple

from repro.apps.app import ActionSpec, AppSpec, Operation
from repro.base.kinds import ApiKind
from repro.base.rng import (
    digest_prefix,
    pooled_stream,
    reseed_prefixed,
    stream,
)
from repro.sim.counters import DVFS_SIGMA, CounterModel
from repro.sim.looper import Looper, Message
from repro.sim.plan import ActionPlan
from repro.sim.timeline import (
    MAIN_THREAD,
    RENDER_THREAD,
    Segment,
    Timeline,
    WORKER_THREAD,
    fast_segment,
)
from repro.telemetry import current as telemetry

#: Human-perceivable delay threshold (ms); the paper's soft-hang bar.
PERCEIVABLE_DELAY_MS = 100.0

#: Pseudo-event recording bytes moved over the network by main-thread
#: code (from TrafficStats, not the PMU).  Fuel for the paper's
#: footnote-2 extension: any main-thread network activity during a
#: hang is a soft hang bug by definition.
NETWORK_BYTES_EVENT = "network-bytes"

#: Main-thread cost of posting work to a worker (AsyncTask dispatch).
_WORKER_DISPATCH_MS = 0.4

#: Gap between consecutive input events of one action (queue overhead).
_EVENT_GAP_MS = 0.3

#: Fraction of a UI operation's duration spent computing on the main
#: thread before the render thread receives any work.
_RENDER_LAG_SHARE = 0.4

#: Main-thread CPU share of the post-action ambient activity.
_AMBIENT_CPU_SHARE = 0.45

#: Render pages per main-thread page per unit of render share: at the
#: typical render_share of 0.6 a UI operation touches ~4x its main
#: pages render-side (textures, display lists); main-thread-heavy UI
#: work (measure/layout) touches proportionally less.
_RENDER_PAGE_FACTOR_PER_SHARE = 6.67

#: Stable microarchitectural profile of the render thread's own code.
_RENDER_UARCH = {"ipc": 1.0, "cache": 1.0, "branch": 1.0, "tlb": 1.0, "mem": 1.0}

#: Static segment-batch params of a worker-dispatch stub (columnar
#: path) — every dispatch segment has the same shape.
_WORKER_DISPATCH_PARAMS = (
    ApiKind.LIGHT, MAIN_THREAD, _WORKER_DISPATCH_MS,
    _WORKER_DISPATCH_MS * 0.9, 2, _RENDER_UARCH, None,
)


@dataclass(frozen=True)
class OperationExecution:
    """One operation's execution within an action."""

    op: Operation
    thread: str
    start_ms: float
    end_ms: float
    manifested: bool

    @property
    def duration_ms(self):
        """Wall-clock duration of the operation."""
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class InputEventExecution:
    """One input event's trip through the main thread."""

    spec: object
    enqueue_ms: float
    dispatch_ms: float
    finish_ms: float
    op_executions: Tuple[OperationExecution, ...]

    @property
    def response_time_ms(self):
        """Dequeue-to-finish processing time (what Hang Doctor measures
        via the Looper's message-logging hooks)."""
        return self.finish_ms - self.dispatch_ms

    @property
    def is_soft_hang(self):
        """True if the event's response time is user-perceivable."""
        return self.response_time_ms > PERCEIVABLE_DELAY_MS

    def dominant_op(self):
        """Main-thread operation contributing the most wall time."""
        main_ops = [oe for oe in self.op_executions if oe.thread == MAIN_THREAD]
        if not main_ops:
            return None
        return max(main_ops, key=lambda oe: oe.duration_ms)


@dataclass(frozen=True)
class ActionExecution:
    """Everything observable about one execution of a user action."""

    app: AppSpec
    action: ActionSpec
    start_ms: float
    end_ms: float
    events: Tuple[InputEventExecution, ...]
    timeline: Timeline

    @property
    def response_time_ms(self):
        """Action response time = max over its input events (paper §2.2).

        0.0 for an action with no input events — consistent with
        :attr:`has_soft_hang` being False and :meth:`hang_events` being
        empty for such an action.
        """
        return max(
            (event.response_time_ms for event in self.events), default=0.0
        )

    @property
    def has_soft_hang(self):
        """True if any input event exceeded the perceivable delay."""
        return any(event.is_soft_hang for event in self.events)

    def hang_events(self):
        """Input events whose response time exceeded 100 ms."""
        return [event for event in self.events if event.is_soft_hang]

    def bug_caused_hang(self):
        """Ground truth: is some soft hang dominated by a hang-bug op?

        Used only by the metrics layer, never by detectors.
        """
        for event in self.hang_events():
            dominant = event.dominant_op()
            if dominant is not None and dominant.op.is_hang_bug:
                return True
        return False

    def hang_bug_sites(self):
        """Ground-truth bug call sites that manifested a hang here.

        A site counts when its call individually exceeded the
        perceivable delay, or when it was the dominant operation of a
        hanging input event (a 90 ms blocking call that tips a busy
        event over 100 ms still manifested as a hang).
        """
        sites = []
        for event in self.hang_events():
            dominant = event.dominant_op()
            for oe in event.op_executions:
                is_main_bug = oe.thread == MAIN_THREAD and oe.op.is_hang_bug
                manifested_hang = (
                    oe.duration_ms > PERCEIVABLE_DELAY_MS or oe is dominant
                )
                if is_main_bug and manifested_hang:
                    if oe.op.site_id not in sites:
                        sites.append(oe.op.site_id)
        return sites

    def counter_difference(self, event, start_ms=None, end_ms=None):
        """Main−render difference of one event over a window."""
        return self.timeline.difference(
            event, MAIN_THREAD, RENDER_THREAD, start_ms, end_ms
        )


class ExecutionEngine:
    """Runs actions of an app on a simulated device.

    Each call to :meth:`run_action` uses a fresh RNG stream derived
    from (seed, app, action, execution index), so repeated executions
    vary while the whole experiment stays reproducible.
    """

    def __init__(self, device, seed=0, environment="wild",
                 counter_events=None, columnar=True):
        if environment not in ("wild", "lab"):
            raise ValueError(f"unknown environment {environment!r}")
        self.device = device
        self.seed = seed
        #: "wild" (real users, real content) or "lab" (a test bed with
        #: synthetic inputs, where content-dependent bugs rarely
        #: manifest -- the paper's §4.6 discussion).
        self.environment = environment
        #: Restricting *counter_events* (e.g. to
        #: :data:`repro.sim.counters.FILTER_EVENTS`) puts the counter
        #: model in lazy mode: segments carry only the requested
        #: events, and only the dependency closure of the requested PMU
        #: events is computed (none at all for kernel-only subsets) —
        #: the fast path for fleet-scale runs where only the S-Checker
        #: filter reads counters.  Timeline queries for unrequested
        #: events read as zero.
        self.counter_model = CounterModel(
            device, events=counter_events, columnar=columnar
        )
        #: ``columnar=False`` retains the historical per-segment scalar
        #: implementation end to end — the reference baseline for the
        #: bit-identity tests and the ``BENCH_*.json`` trajectory.
        self.columnar = bool(columnar)
        self._plans = {}
        self._execution_index = 0
        # Lazy columnar engines re-key one pooled generator per action
        # instead of constructing a fresh stream (the full-mode scalar
        # path keeps stream() — its derivation is part of the
        # byte-identity contract).
        self._lazy_rng = (
            pooled_stream()
            if self.columnar and counter_events is not None else None
        )
        # sha256 prefix per (app, action): the per-action re-key then
        # hashes only the execution index.  reseed_prefixed lands on the
        # same digest bytes as reseed, so this is not a universe change.
        self._reseed_prefixes = {}
        settle_ms = float(device.vsync_period_ms)
        self._settle_ms = settle_ms
        self._settle_params = (
            ApiKind.UI, RENDER_THREAD, settle_ms, settle_ms * 0.2, 4,
            _RENDER_UARCH, None,
        )

    def _plan(self, app, action):
        """Cached :class:`ActionPlan` for (app, action)."""
        key = (id(app), id(action))
        plan = self._plans.get(key)
        # The cache holds strong refs, so a live plan pins the ids; the
        # identity check guards against a stale hit all the same.
        if plan is None or plan.app is not app or plan.action is not action:
            plan = ActionPlan(app, action, self.environment)
            self._plans[key] = plan
        return plan

    def run_action(self, app, action, start_ms=0.0, rng=None, looper=None):
        """Execute *action* of *app* starting at *start_ms*.

        A caller may supply its own *looper* (e.g. one with response-
        time monitors installed via ``set_message_logging``); otherwise
        a private looper is used.
        """
        self._execution_index += 1
        # columnar=False bypasses the plan cache entirely: the
        # reference path recomputes frames/uarch per segment exactly as
        # the historical hot loop did, so it stays an honest baseline
        # for the BENCH_*.json speedup trajectory.
        plan = self._plan(app, action) if self.columnar else None
        if plan is not None and self.counter_model.events is not None:
            # Lazy universe: the per-action DVFS draw moves into
            # segment_batch (and disappears when no PMU event needs
            # it), and the action stream comes from one re-keyed
            # generator instead of a fresh SeedSequence per action.
            if rng is None:
                key = (app.name, action.name)
                prefix = self._reseed_prefixes.get(key)
                if prefix is None:
                    prefix = self._reseed_prefixes[key] = digest_prefix(
                        self.seed, app.name, action.name
                    )
                rng = reseed_prefixed(
                    self._lazy_rng, prefix, self._execution_index
                )
            return self._run_action_columnar(
                app, action, plan, start_ms, rng, looper
            )
        if rng is None:
            rng = stream(self.seed, app.name, action.name, self._execution_index)
        # The DVFS governor holds one frequency across a short action.
        self._dvfs = float(rng.lognormal(mean=0.0, sigma=DVFS_SIGMA))
        timeline = Timeline()
        events = []
        if plan is not None and looper is None:
            # Private looper + cached plan: inline the FIFO drain.  The
            # queue would hold one message per input event, all
            # enqueued at start_ms and drained with no printers — the
            # timing bookkeeping below is exactly Looper.dispatch_all's
            # and involves no draws, so the scalar draw sequence (the
            # byte-identity contract) is untouched.
            finish = start_ms
            for event_spec, ops in zip(action.events, plan.events):
                dispatch_ms = finish
                clock = dispatch_ms
                op_execs = []
                for op_plan in ops:
                    clock = self._run_operation(
                        op_plan, clock, rng, timeline, op_execs
                    )
                events.append(
                    InputEventExecution(
                        spec=event_spec, enqueue_ms=start_ms,
                        dispatch_ms=dispatch_ms, finish_ms=clock,
                        op_executions=tuple(op_execs),
                    )
                )
                finish = clock
            clock = finish + _EVENT_GAP_MS if events else start_ms
        else:
            looper = looper if looper is not None else Looper()
            handler_frame = (
                plan.handler_frame if plan is not None
                else action.handler_frame(app.package)
            )

            for event_spec in action.events:
                looper.post(
                    Message(target=event_spec.name, payload=event_spec,
                            enqueue_ms=start_ms)
                )

            op_execs_per_event = []

            def handle(message, dispatch_ms):
                clock = dispatch_ms
                op_execs = []
                if plan is not None:
                    for op_plan in plan.ops_for(
                        message.payload, app.package, self.environment
                    ):
                        clock = self._run_operation(
                            op_plan, clock, rng, timeline, op_execs
                        )
                else:
                    for op in message.payload.operations:
                        clock = self._run_operation_reference(
                            app, op, clock, rng, timeline, op_execs,
                            handler_frame,
                        )
                op_execs_per_event.append(tuple(op_execs))
                return clock

            records = looper.dispatch_all(handle, start_ms)

            clock = start_ms
            for record, op_execs in zip(records, op_execs_per_event):
                events.append(
                    InputEventExecution(
                        spec=record.message.payload,
                        enqueue_ms=record.message.enqueue_ms,
                        dispatch_ms=record.dispatch_ms,
                        finish_ms=record.finish_ms,
                        op_executions=op_execs,
                    )
                )
                clock = record.finish_ms + _EVENT_GAP_MS

        end_ms = self._settle(timeline, clock, rng)
        tel = telemetry()
        if tel.enabled:
            tel.count("sim.actions.executed")
            tel.count("sim.events.dispatched", len(events))
            tel.record_span(
                "sim.action.execute", start_ms, end_ms,
                app=app.name, action=action.name, events=len(events),
                hang=any(event.is_soft_hang for event in events),
            )
        return ActionExecution(
            app=app,
            action=action,
            start_ms=start_ms,
            end_ms=end_ms,
            events=tuple(events),
            timeline=timeline,
        )

    def run_queued_burst(self, app, action_names, start_ms=0.0):
        """A rapid tap burst: every action's input events enqueue at
        once, then drain FIFO (paper §2.1: "events are executed, one by
        one, in their queue order" — which is why one blocking
        operation freezes everything behind it).

        Returns the list of
        :class:`~repro.sim.looper.DispatchRecord` — their ``latency_ms``
        (enqueue to finish) shows queued events absorbing the delay of
        whatever ran before them, unlike ``response_time_ms``.
        """
        self._execution_index += 1
        rng = stream(self.seed, app.name, "burst", self._execution_index)
        self._dvfs = float(rng.lognormal(mean=0.0, sigma=DVFS_SIGMA))
        timeline = Timeline()
        looper = Looper()
        for name in action_names:
            action = app.action(name)
            plan = self._plan(app, action)
            for event_spec in action.events:
                looper.post(
                    Message(
                        target=f"{name}/{event_spec.name}",
                        payload=plan.ops_for(
                            event_spec, app.package, self.environment
                        ),
                        enqueue_ms=start_ms,
                    )
                )

        def handle(message, dispatch_ms):
            clock = dispatch_ms
            scratch = []
            for op_plan in message.payload:
                clock = self._run_operation(
                    op_plan, clock, rng, timeline, scratch
                )
            return clock

        records = looper.dispatch_all(handle, start_ms)
        return records, timeline

    def run_session(self, app, action_names, start_ms=0.0, gap_ms=2000.0):
        """Execute a sequence of actions with idle gaps between them."""
        executions = []
        clock = start_ms
        for name in action_names:
            action = app.action(name)
            execution = self.run_action(app, action, start_ms=clock)
            executions.append(execution)
            clock = execution.end_ms + gap_ms
        return executions

    # ------------------------------------------------------------------
    # Full-mode scalar path (byte-identity contract).

    def _run_operation(self, op_plan, clock, rng, timeline, op_execs):
        """Execute one operation; returns the new main-thread clock.

        Draw-for-draw identical to the historical inline code: one
        uniform + one lognormal for the duration (the exact
        ``ApiSpec.sample_duration_ms`` sequence, with ``log_mu``
        precomputed by the plan), one lognormal for content-size page
        variance, then the counter model's per-segment draws.
        """
        op = op_plan.op
        manifested = bool(rng.random() < op_plan.manifest_prob)
        if manifested:
            duration = float(
                rng.lognormal(mean=op_plan.log_mu, sigma=op_plan.sigma)
            )
        else:
            jitter = rng.lognormal(mean=0.0, sigma=0.3)
            duration = max(0.05, op_plan.fast_ms * jitter)
        base_pages = op_plan.pages if manifested else op_plan.pages_fast
        # Content-size variance: how many fresh pages a call touches
        # depends on the input (bitmap size, list length), not just on
        # the API.
        pages = int(base_pages * rng.lognormal(mean=0.0, sigma=0.6))
        frames = op_plan.frames

        if op_plan.on_worker:
            # Main thread only pays the dispatch; the call itself runs
            # concurrently on a worker thread (AsyncTask-style).
            dispatch_end = clock + _WORKER_DISPATCH_MS
            timeline.add(fast_segment(
                MAIN_THREAD, clock, dispatch_end, op_plan.dispatch_frames,
                self._counts(
                    ApiKind.LIGHT, MAIN_THREAD, _WORKER_DISPATCH_MS,
                    _WORKER_DISPATCH_MS * 0.9, 2, _RENDER_UARCH, rng
                ),
                op, _WORKER_DISPATCH_MS * 0.9,
            ))
            cpu_ms = duration * op_plan.cpu_share
            timeline.add(fast_segment(
                WORKER_THREAD, dispatch_end, dispatch_end + duration, frames,
                self._counts(
                    op_plan.kind, WORKER_THREAD, duration, cpu_ms, pages,
                    op_plan.uarch, rng,
                    wait_chunk_override=op_plan.wait_chunk_ms,
                ),
                op, cpu_ms,
            ))
            op_execs.append(
                OperationExecution(
                    op=op,
                    thread=WORKER_THREAD,
                    start_ms=dispatch_end,
                    end_ms=dispatch_end + duration,
                    manifested=manifested,
                )
            )
            return dispatch_end

        cpu_ms = duration * op_plan.cpu_share
        counts = self._counts(
            op_plan.kind, MAIN_THREAD, duration, cpu_ms, pages,
            op_plan.uarch, rng,
            wait_chunk_override=op_plan.wait_chunk_ms,
        )
        if op_plan.network_bytes and manifested:
            # TrafficStats-style accounting of main-thread sockets
            # (the paper's footnote-2 extension reads this).
            counts[NETWORK_BYTES_EVENT] = float(
                op_plan.network_bytes * rng.lognormal(0.0, 0.3)
            )
        timeline.add(fast_segment(
            MAIN_THREAD, clock, clock + duration, frames, counts, op, cpu_ms,
        ))
        if op_plan.render_share > 0:
            # The render thread lags the main thread: the UI code first
            # computes (positions, display lists) and only then commits
            # frames — which is why the *early* part of a UI action
            # looks bug-like (main busy, render idle; paper Figure 5).
            render_lag = _RENDER_LAG_SHARE * duration
            render_wall = (duration - render_lag) + self.device.vsync_period_ms
            render_cpu = duration * op_plan.render_share
            render_pages = int(
                pages * _RENDER_PAGE_FACTOR_PER_SHARE * op_plan.render_share
            )
            timeline.add(fast_segment(
                RENDER_THREAD, clock + render_lag,
                clock + render_lag + render_wall, (),
                self._counts(
                    ApiKind.UI, RENDER_THREAD, render_wall, render_cpu,
                    render_pages, _RENDER_UARCH, rng
                ),
                op, render_cpu,
            ))
        op_execs.append(
            OperationExecution(
                op=op,
                thread=MAIN_THREAD,
                start_ms=clock,
                end_ms=clock + duration,
                manifested=manifested,
            )
        )
        return clock + duration

    def _run_operation_reference(self, app, op, clock, rng, timeline,
                                 op_execs, handler_frame):
        """The historical per-segment hot loop, retained verbatim for
        ``columnar=False`` engines: frames and the uarch profile are
        recomputed per operation, durations sampled through
        ``ApiSpec.sample_duration_ms``.  Bit-identical outputs to the
        plan-based path (plans only cache what this recomputes) — the
        honest baseline the ``BENCH_*.json`` speedups are measured
        against."""
        api = op.api
        duration, manifested = api.sample_duration_ms(
            rng, environment=self.environment
        )
        base_pages = api.pages if manifested else api.pages_fast
        pages = int(base_pages * rng.lognormal(mean=0.0, sigma=0.6))
        frames = op.stack_frames(app.package, handler_frame)

        if op.on_worker:
            dispatch_end = clock + _WORKER_DISPATCH_MS
            timeline.add(
                Segment(
                    thread=MAIN_THREAD,
                    start_ms=clock,
                    end_ms=dispatch_end,
                    frames=frames[:2],
                    counts=self._counts(
                        ApiKind.LIGHT, MAIN_THREAD, _WORKER_DISPATCH_MS,
                        _WORKER_DISPATCH_MS * 0.9, 2, _RENDER_UARCH, rng
                    ),
                    op=op,
                    cpu_ms=_WORKER_DISPATCH_MS * 0.9,
                )
            )
            cpu_ms = duration * api.cpu_share
            timeline.add(
                Segment(
                    thread=WORKER_THREAD,
                    start_ms=dispatch_end,
                    end_ms=dispatch_end + duration,
                    frames=frames,
                    counts=self._counts(
                        api.kind, WORKER_THREAD, duration, cpu_ms, pages,
                        api.uarch_profile(), rng,
                        wait_chunk_override=api.wait_chunk_ms,
                    ),
                    op=op,
                    cpu_ms=cpu_ms,
                )
            )
            op_execs.append(
                OperationExecution(
                    op=op,
                    thread=WORKER_THREAD,
                    start_ms=dispatch_end,
                    end_ms=dispatch_end + duration,
                    manifested=manifested,
                )
            )
            return dispatch_end

        cpu_ms = duration * api.cpu_share
        counts = self._counts(
            api.kind, MAIN_THREAD, duration, cpu_ms, pages,
            api.uarch_profile(), rng,
            wait_chunk_override=api.wait_chunk_ms,
        )
        if api.network_bytes and manifested:
            counts[NETWORK_BYTES_EVENT] = float(
                api.network_bytes * rng.lognormal(0.0, 0.3)
            )
        timeline.add(
            Segment(
                thread=MAIN_THREAD,
                start_ms=clock,
                end_ms=clock + duration,
                frames=frames,
                counts=counts,
                op=op,
                cpu_ms=cpu_ms,
            )
        )
        if api.render_share > 0:
            render_lag = _RENDER_LAG_SHARE * duration
            render_wall = (duration - render_lag) + self.device.vsync_period_ms
            render_cpu = duration * api.render_share
            render_pages = int(
                pages * _RENDER_PAGE_FACTOR_PER_SHARE * api.render_share
            )
            timeline.add(
                Segment(
                    thread=RENDER_THREAD,
                    start_ms=clock + render_lag,
                    end_ms=clock + render_lag + render_wall,
                    frames=(),
                    counts=self._counts(
                        ApiKind.UI, RENDER_THREAD, render_wall, render_cpu,
                        render_pages, _RENDER_UARCH, rng
                    ),
                    op=op,
                    cpu_ms=render_cpu,
                )
            )
        op_execs.append(
            OperationExecution(
                op=op,
                thread=MAIN_THREAD,
                start_ms=clock,
                end_ms=clock + duration,
                manifested=manifested,
            )
        )
        return clock + duration

    def _settle(self, timeline, clock, rng):
        """Brief post-action settling (render finishing queued frames).

        The settle marks the end of the *action* (the window S-Checker
        accumulates counters over); the ambient activity that follows —
        animations, garbage collection, list prefetching — belongs to
        the app's steady state, not to the action, but it is visible to
        anything that monitors the process continuously (the paper's
        utilization baselines sample /proc every 100 ms around the
        clock, and their low thresholds fire on exactly this kind of
        ordinary busy window).
        """
        settle_ms = float(self.device.vsync_period_ms)
        render_cpu = settle_ms * 0.2
        timeline.add(
            Segment(
                thread=RENDER_THREAD,
                start_ms=clock,
                end_ms=clock + settle_ms,
                frames=(),
                counts=self._counts(
                    ApiKind.UI, RENDER_THREAD, settle_ms, render_cpu, 4,
                    _RENDER_UARCH, rng
                ),
                op=None,
                cpu_ms=render_cpu,
            )
        )
        end_ms = clock + settle_ms
        self._ambient(timeline, end_ms, rng)
        return end_ms

    def _ambient(self, timeline, clock, rng):
        """Post-action ambient activity (after the action has ended)."""
        ambient_ms = float(rng.uniform(400.0, 800.0))
        main_cpu = ambient_ms * _AMBIENT_CPU_SHARE
        timeline.add(
            Segment(
                thread=MAIN_THREAD,
                start_ms=clock,
                end_ms=clock + ambient_ms,
                frames=(),
                counts=self._counts(
                    ApiKind.UI, MAIN_THREAD, ambient_ms, main_cpu, 60,
                    _RENDER_UARCH, rng
                ),
                op=None,
                cpu_ms=main_cpu,
            )
        )
        render_cpu = ambient_ms * 0.15
        timeline.add(
            Segment(
                thread=RENDER_THREAD,
                start_ms=clock,
                end_ms=clock + ambient_ms,
                frames=(),
                counts=self._counts(
                    ApiKind.UI, RENDER_THREAD, ambient_ms, render_cpu, 40,
                    _RENDER_UARCH, rng
                ),
                op=None,
                cpu_ms=render_cpu,
            )
        )

    def _counts(self, kind, thread, wall_ms, cpu_ms, pages, uarch, rng,
                wait_chunk_override=None):
        # Hot path: a bare counter bump is the only telemetry afforded
        # here (the no-op makes it one global read when disabled).
        telemetry().count("sim.counter.segments")
        return self.counter_model.segment_counts(
            kind=kind,
            thread=thread,
            wall_ms=wall_ms,
            cpu_ms=cpu_ms,
            pages=pages,
            uarch=uarch,
            rng=rng,
            wait_chunk_override=wait_chunk_override,
            dvfs=getattr(self, "_dvfs", None),
        )

    # ------------------------------------------------------------------
    # Lazy-mode columnar path.

    def _run_action_columnar(self, app, action, plan, start_ms, rng, looper):
        """Columnar action loop for lazy (event-restricted) engines.

        All per-operation draws come from vectors pooled up front
        (manifest uniforms, duration/page/network normals, the ambient
        uniform) and every segment's counts come from one
        :meth:`CounterModel.segment_batch` call at the end — a fixed
        draw layout per (action shape, event set), reproducible per
        seed but deliberately not the full-mode scalar sequence (lazy
        mode is its own deterministic universe; see ``docs/perf.md``).
        """
        device = self.device

        # Per-action draw pools, fixed layout: one uniform vector
        # (manifest checks | ambient span) and one standard-normal
        # vector (duration z | pages z | network z when the action has
        # network ops), consumed by operation index.
        n_ops = plan.op_count
        uniforms = rng.random(n_ops + 1).tolist()
        ambient_ms = 400.0 + 400.0 * uniforms[n_ops]
        z_pool = rng.standard_normal(
            n_ops * (3 if plan.has_network else 2)
        ).tolist()
        pages_off = n_ops
        network_off = 2 * n_ops if plan.has_network else None

        # Segments accumulate as two parallel row lists: *params* rows
        # feed segment_batch; *builds* rows hold what Segment
        # construction needs beyond them (start, frames, op, network).
        params = []
        builds = []
        op_cursor = [0]

        def run_op(op_plan, clock, op_execs):
            index = op_cursor[0]
            op_cursor[0] = index + 1
            if index < n_ops:
                u = uniforms[index]
                dz = z_pool[index]
                pz = z_pool[pages_off + index]
                nz = (
                    z_pool[network_off + index]
                    if network_off is not None else None
                )
            else:
                # Off-plan message (pre-posted on a caller-supplied
                # looper): extend the pools with scalar draws.
                u = float(rng.random())
                dz = float(rng.standard_normal())
                pz = float(rng.standard_normal())
                nz = None
            manifested = u < op_plan.manifest_prob
            if manifested:
                duration = math.exp(op_plan.log_mu + op_plan.sigma * dz)
                base_pages = op_plan.pages
            else:
                duration = max(0.05, op_plan.fast_ms * math.exp(0.3 * dz))
                base_pages = op_plan.pages_fast
            pages = int(base_pages * math.exp(0.6 * pz))
            op = op_plan.op
            cpu_ms = duration * op_plan.cpu_share

            if op_plan.on_worker:
                dispatch_end = clock + _WORKER_DISPATCH_MS
                params.append(_WORKER_DISPATCH_PARAMS)
                builds.append((clock, op_plan.dispatch_frames, op, None))
                params.append((
                    op_plan.kind, WORKER_THREAD, duration, cpu_ms, pages,
                    op_plan.uarch, op_plan.wait_chunk_ms,
                ))
                builds.append((dispatch_end, op_plan.frames, op, None))
                op_execs.append(
                    OperationExecution(
                        op=op, thread=WORKER_THREAD, start_ms=dispatch_end,
                        end_ms=dispatch_end + duration, manifested=manifested,
                    )
                )
                return dispatch_end

            network = None
            if op_plan.network_bytes and manifested:
                if nz is None:
                    nz = float(rng.standard_normal())
                network = float(op_plan.network_bytes * math.exp(0.3 * nz))
            params.append((
                op_plan.kind, MAIN_THREAD, duration, cpu_ms, pages,
                op_plan.uarch, op_plan.wait_chunk_ms,
            ))
            builds.append((clock, op_plan.frames, op, network))
            if op_plan.render_share > 0:
                render_lag = _RENDER_LAG_SHARE * duration
                render_wall = (duration - render_lag) + device.vsync_period_ms
                render_cpu = duration * op_plan.render_share
                render_pages = int(
                    pages * _RENDER_PAGE_FACTOR_PER_SHARE
                    * op_plan.render_share
                )
                params.append((
                    ApiKind.UI, RENDER_THREAD, render_wall, render_cpu,
                    render_pages, _RENDER_UARCH, None,
                ))
                builds.append((clock + render_lag, (), op, None))
            op_execs.append(
                OperationExecution(
                    op=op, thread=MAIN_THREAD, start_ms=clock,
                    end_ms=clock + duration, manifested=manifested,
                )
            )
            return clock + duration

        events = []
        if looper is None:
            # Private looper: the queue would drain FIFO with no
            # printers installed, so inline the dispatch loop (same
            # timing semantics as Looper.dispatch_all over one message
            # per input event, all enqueued at start_ms).
            finish = start_ms
            for event_spec, ops in zip(action.events, plan.events):
                dispatch_ms = finish
                op_execs = []
                clock = dispatch_ms
                for op_plan in ops:
                    clock = run_op(op_plan, clock, op_execs)
                events.append(
                    InputEventExecution(
                        spec=event_spec, enqueue_ms=start_ms,
                        dispatch_ms=dispatch_ms, finish_ms=clock,
                        op_executions=tuple(op_execs),
                    )
                )
                finish = clock
            clock = finish + _EVENT_GAP_MS if events else start_ms
        else:
            for event_spec in action.events:
                looper.post(
                    Message(target=event_spec.name, payload=event_spec,
                            enqueue_ms=start_ms)
                )
            op_execs_per_event = []

            def handle(message, dispatch_ms):
                clock = dispatch_ms
                op_execs = []
                for op_plan in plan.ops_for(
                    message.payload, app.package, self.environment
                ):
                    clock = run_op(op_plan, clock, op_execs)
                op_execs_per_event.append(tuple(op_execs))
                return clock

            records = looper.dispatch_all(handle, start_ms)
            clock = start_ms
            for record, op_execs in zip(records, op_execs_per_event):
                events.append(
                    InputEventExecution(
                        spec=record.message.payload,
                        enqueue_ms=record.message.enqueue_ms,
                        dispatch_ms=record.dispatch_ms,
                        finish_ms=record.finish_ms,
                        op_executions=op_execs,
                    )
                )
                clock = record.finish_ms + _EVENT_GAP_MS

        # Settle + ambient, same shapes as the scalar path.
        settle_ms = self._settle_ms
        params.append(self._settle_params)
        builds.append((clock, (), None, None))
        end_ms = clock + settle_ms
        ambient_cpu = ambient_ms * _AMBIENT_CPU_SHARE
        params.append((
            ApiKind.UI, MAIN_THREAD, ambient_ms, ambient_cpu, 60,
            _RENDER_UARCH, None,
        ))
        builds.append((end_ms, (), None, None))
        params.append((
            ApiKind.UI, RENDER_THREAD, ambient_ms, ambient_ms * 0.15, 40,
            _RENDER_UARCH, None,
        ))
        builds.append((end_ms, (), None, None))

        counts_list = self.counter_model.segment_batch(params, rng=rng)
        segments = []
        for row, build, counts in zip(params, builds, counts_list):
            network = build[3]
            if network is not None:
                counts[NETWORK_BYTES_EVENT] = network
            start = build[0]
            segments.append(fast_segment(
                row[1], start, start + row[2], build[1], counts, build[2],
                row[3],
            ))
        timeline = Timeline()
        timeline.add_batch(segments)

        tel = telemetry()
        if tel.enabled:
            tel.count("sim.counter.segments", len(params))
            tel.count("sim.actions.executed")
            tel.count("sim.events.dispatched", len(events))
            tel.record_span(
                "sim.action.execute", start_ms, end_ms,
                app=app.name, action=action.name, events=len(events),
                hang=any(event.is_soft_hang for event in events),
            )
        return ActionExecution(
            app=app,
            action=action,
            start_ms=start_ms,
            end_ms=end_ms,
            events=tuple(events),
            timeline=timeline,
        )
