"""Frame production and jank.

Android renders one frame per vsync when the pipeline keeps up; a
blocked main thread starves the render thread and frames drop ("jank").
This module derives frame statistics from a simulated timeline: how
many frames the display expected over a window, how many the render
thread's CPU budget could produce, and the dropped remainder.

Jank is the user-visible face of the soft hangs Hang Doctor hunts:
a bug hang freezes frame production outright, while heavy UI work
keeps producing (late) frames — which makes the dropped-frame ratio
yet another signal separating the two classes.
"""

from dataclasses import dataclass

from repro.sim.scheduler import RENDER_FRAME_CPU_MS
from repro.sim.timeline import RENDER_THREAD


@dataclass(frozen=True)
class FrameStats:
    """Frame accounting over one window."""

    #: Frames the display expected (window / vsync period).
    expected: float
    #: Frames the render thread's CPU budget produced.
    produced: float

    @property
    def dropped(self):
        """Frames the display missed."""
        return max(0.0, self.expected - self.produced)

    @property
    def jank_ratio(self):
        """Fraction of expected frames dropped (0 = silky, 1 = frozen)."""
        if self.expected <= 0:
            return 0.0
        return min(1.0, self.dropped / self.expected)


def frame_stats(timeline, device, start_ms, end_ms):
    """Frame statistics for [start, end) on a timeline."""
    if end_ms < start_ms:
        raise ValueError("end_ms must not precede start_ms")
    span = end_ms - start_ms
    expected = span / device.vsync_period_ms
    render_cpu = timeline.cpu_ms(RENDER_THREAD, start_ms, end_ms)
    produced = min(expected, render_cpu / RENDER_FRAME_CPU_MS)
    return FrameStats(expected=expected, produced=produced)


def execution_frame_stats(execution, device):
    """Frame statistics over a whole action execution."""
    return frame_stats(
        execution.timeline, device, execution.start_ms, execution.end_ms
    )


def hang_frame_stats(execution, device):
    """Frame statistics restricted to the execution's hang windows.

    During a bug hang the render thread is starved, so the jank ratio
    approaches 1; a UI hang keeps the render thread fed and drops far
    fewer frames.
    """
    windows = [
        (event.dispatch_ms, event.finish_ms)
        for event in execution.hang_events()
    ]
    if not windows:
        return FrameStats(expected=0.0, produced=0.0)
    expected = 0.0
    produced = 0.0
    for start_ms, end_ms in windows:
        stats = frame_stats(execution.timeline, device, start_ms, end_ms)
        expected += stats.expected
        produced += stats.produced
    return FrameStats(expected=expected, produced=produced)
