"""Main-thread message loop.

Android delivers user input to an app's main thread as messages on the
``Looper`` queue; input events execute one at a time in FIFO order,
which is exactly why a blocking operation freezes the UI.  Hang Doctor
measures per-event response times by installing a logging printer via
``Looper.setMessageLogging``, which Android invokes with a
``>>>>> Dispatching to <target>`` line when a message is dequeued and a
``<<<<< Finished`` line when it completes.

This module reproduces that mechanism: the engine posts one
:class:`Message` per input event and drains the queue through a
handler; any number of logging printers observe dispatch boundaries
with timestamps, which is all the response-time monitor needs.
"""

from collections import deque
from dataclasses import dataclass

DISPATCH_PREFIX = ">>>>> Dispatching to "
FINISH_PREFIX = "<<<<< Finished to "


@dataclass(frozen=True)
class Message:
    """One queued input event."""

    target: str
    payload: object
    enqueue_ms: float


@dataclass(frozen=True)
class DispatchRecord:
    """Timing of one processed message."""

    message: Message
    dispatch_ms: float
    finish_ms: float

    @property
    def response_time_ms(self):
        """Processing time of the message (dequeue to finish), as
        measured between the two ``setMessageLogging`` invocations."""
        return self.finish_ms - self.dispatch_ms

    @property
    def latency_ms(self):
        """End-to-end latency including time spent queued."""
        return self.finish_ms - self.message.enqueue_ms


class Looper:
    """FIFO message queue with Android-style logging hooks."""

    def __init__(self):
        self._queue = deque()
        self._printers = []

    def set_message_logging(self, printer):
        """Install a logging printer (``printer(line, time_ms)``).

        Mirrors ``Looper.setMessageLogging``; multiple printers may be
        installed (Hang Doctor plus e.g. a baseline under comparison).
        Pass ``None`` to clear all printers.
        """
        if printer is None:
            self._printers.clear()
        else:
            self._printers.append(printer)

    def post(self, message):
        """Enqueue a message."""
        self._queue.append(message)

    def pending(self):
        """Number of queued messages."""
        return len(self._queue)

    def _log(self, line, time_ms):
        for printer in self._printers:
            printer(line, time_ms)

    def dispatch_next(self, handler, now_ms):
        """Dequeue and process one message.

        *handler(message, dispatch_ms)* performs the work and returns
        the finish time.  Returns a :class:`DispatchRecord`, or None if
        the queue is empty.
        """
        if not self._queue:
            return None
        message = self._queue.popleft()
        dispatch_ms = max(now_ms, message.enqueue_ms)
        # Build the Android-style log lines only when a printer is
        # actually installed — the engine's private loopers have none.
        printers = self._printers
        if printers:
            self._log(f"{DISPATCH_PREFIX}{message.target}", dispatch_ms)
        finish_ms = handler(message, dispatch_ms)
        if finish_ms < dispatch_ms:
            raise ValueError("handler returned a finish time before dispatch")
        if printers:
            self._log(f"{FINISH_PREFIX}{message.target}", finish_ms)
        return DispatchRecord(
            message=message, dispatch_ms=dispatch_ms, finish_ms=finish_ms
        )

    def dispatch_all(self, handler, now_ms):
        """Drain the queue; returns the list of dispatch records."""
        records = []
        clock = now_ms
        while self._queue:
            record = self.dispatch_next(handler, clock)
            records.append(record)
            clock = record.finish_ms
        return records
