"""Page-fault model.

A thread faults when it touches a page not currently mapped.  Blocking
operations (file reads, bitmap decodes, database queries) touch large
fresh buffers on the *main* thread; UI work touches most of its fresh
memory (textures, display lists) on the *render* thread.  The
main−render page-fault difference therefore separates soft hang bugs
from UI work — the third condition of the paper's filter (threshold
500).

Minor faults dominate (already-resident pages mapped on demand); major
faults (disk-backed) occur mainly for file-backed blocking I/O.
"""

from dataclasses import dataclass

from repro.base.kinds import ApiKind


@dataclass(frozen=True)
class FaultCounts:
    """Page faults for one segment, split minor/major."""

    minor: int
    major: int

    @property
    def total(self):
        """All page faults (minor + major)."""
        return self.minor + self.major


#: Fraction of faults that are major (disk-backed), per operation kind.
_MAJOR_FRACTION = {
    ApiKind.BLOCKING: 0.03,
    ApiKind.COMPUTE: 0.002,
    ApiKind.UI: 0.002,
    ApiKind.LIGHT: 0.0,
}


def segment_faults(kind, pages, rng):
    """Sample page faults for a segment that touches *pages* new pages."""
    if pages <= 0:
        return FaultCounts(minor=0, major=0)
    total = int(rng.poisson(pages))
    if total == 0:
        return FaultCounts(minor=0, major=0)
    # Major faults come in bursts (a cold file region pages in all at
    # once or not at all), so the fraction is heavily overdispersed.
    fraction = _MAJOR_FRACTION[kind]
    if fraction > 0:
        fraction = min(0.5, float(rng.beta(0.4, 0.4 / fraction - 0.4)))
    major = int(rng.binomial(total, fraction))
    return FaultCounts(minor=total - major, major=major)
