"""Page-fault model.

A thread faults when it touches a page not currently mapped.  Blocking
operations (file reads, bitmap decodes, database queries) touch large
fresh buffers on the *main* thread; UI work touches most of its fresh
memory (textures, display lists) on the *render* thread.  The
main−render page-fault difference therefore separates soft hang bugs
from UI work — the third condition of the paper's filter (threshold
500).

Minor faults dominate (already-resident pages mapped on demand); major
faults (disk-backed) occur mainly for file-backed blocking I/O.
"""

from dataclasses import dataclass

from repro.base.kinds import ApiKind


@dataclass(frozen=True)
class FaultCounts:
    """Page faults for one segment, split minor/major."""

    minor: int
    major: int

    @property
    def total(self):
        """All page faults (minor + major)."""
        return self.minor + self.major


#: Fraction of faults that are major (disk-backed), per operation kind.
_MAJOR_FRACTION = {
    ApiKind.BLOCKING: 0.03,
    ApiKind.COMPUTE: 0.002,
    ApiKind.UI: 0.002,
    ApiKind.LIGHT: 0.0,
    # A waiting thread touches almost nothing; IPC replies land in
    # already-resident ashmem/binder buffers.
    ApiKind.ASYNC_WAIT: 0.0,
    ApiKind.IPC: 0.005,
}


def segment_faults(kind, pages, rng):
    """Sample page faults for a segment that touches *pages* new pages."""
    if pages <= 0:
        return FaultCounts(minor=0, major=0)
    total = int(rng.poisson(pages))
    if total == 0:
        return FaultCounts(minor=0, major=0)
    # Major faults come in bursts (a cold file region pages in all at
    # once or not at all), so the fraction is heavily overdispersed.
    fraction = _MAJOR_FRACTION[kind]
    if fraction > 0:
        fraction = min(0.5, float(rng.beta(0.4, 0.4 / fraction - 0.4)))
    major = int(rng.binomial(total, fraction))
    return FaultCounts(minor=total - major, major=major)


def batch_faults(kinds, pages, rng):
    """Pooled-draw :func:`segment_faults` over a whole batch.

    *pages* and *kinds* are parallel lists.  Returns ``(minor, major)``
    lists of ints.

    The draw layout differs from the scalar path (pooled poisson
    vector, then one beta per kind-with-major-faults segment regardless
    of its fault total, then a pooled binomial) — batch callers are
    lazy-mode only.
    """
    totals = rng.poisson([p if p > 0 else 0 for p in pages]).tolist()
    fractions = batch_fault_fractions(kinds, rng)
    major = rng.binomial(totals, fractions).tolist()
    minor = [total - m for total, m in zip(totals, major)]
    return minor, major


def batch_fault_fractions(kinds, rng):
    """Major-fault fractions for a batch, one pooled beta draw over the
    segments whose kind produces major faults at all.  Split out of
    :func:`batch_faults` so a caller can pool the surrounding poisson
    and binomial draws with other draws of the same kind."""
    fractions = [0.0] * len(kinds)
    bursty = [
        (index, _MAJOR_FRACTION[kind])
        for index, kind in enumerate(kinds)
        if _MAJOR_FRACTION[kind] > 0
    ]
    if bursty:
        betas = rng.beta(
            0.4, [0.4 / fraction - 0.4 for _, fraction in bursty]
        ).tolist()
        for (index, _), beta in zip(bursty, betas):
            fractions[index] = beta if beta < 0.5 else 0.5
    return fractions
