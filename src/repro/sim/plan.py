"""Static per-action execution plans.

Everything about an action that does not depend on the RNG — stack
frame tuples, per-API microarchitectural profiles, duration-
distribution parameters, page footprints — is the same on every
execution, yet the original hot loop recomputed it per segment
(``uarch_profile`` alone was five lognormal draws from a fresh hashed
stream per operation per execution).  A :class:`OpPlan` resolves those
statics once; an :class:`ActionPlan` groups them per input event so the
:class:`~repro.sim.engine.ExecutionEngine` can cache one plan per
(app, action) pair and spend the hot loop on sampling only.

Plans hold values *identical* to what the per-segment code computed
(``uarch_profile`` is deterministic per API name; ``log_mu`` is the
exact ``math.log(mean_ms) - 0.5 * sigma**2`` expression from
:meth:`ApiSpec.sample_duration_ms`), so planning on its own does not
change a single sampled byte — the full-mode byte-identity contract
(see ``docs/perf.md``).
"""

import math

#: Process-wide cache of per-API uarch profiles.  ``uarch_profile`` is
#: a pure function of the API's qualified name, so one entry serves
#: every ApiSpec instance (and every engine) that shares the name.
_UARCH_CACHE = {}


def cached_uarch(api):
    """The API's uarch profile, computed once per qualified name."""
    key = api.qualified_name
    profile = _UARCH_CACHE.get(key)
    if profile is None:
        profile = _UARCH_CACHE.setdefault(key, api.uarch_profile())
    return profile


class OpPlan:
    """RNG-independent statics of one operation within an action."""

    __slots__ = (
        "op", "kind", "on_worker", "frames", "dispatch_frames", "uarch",
        "manifest_prob", "fast_ms", "sigma", "log_mu", "pages",
        "pages_fast", "cpu_share", "render_share", "wait_chunk_ms",
        "network_bytes",
    )

    def __init__(self, op, package, handler_frame, environment):
        api = op.api
        self.op = op
        self.kind = api.kind
        self.on_worker = op.on_worker
        self.frames = op.stack_frames(package, handler_frame)
        self.dispatch_frames = self.frames[:2]
        self.uarch = cached_uarch(api)
        self.manifest_prob = api.effective_manifest_prob(environment)
        self.fast_ms = api.fast_ms
        self.sigma = api.sigma
        self.log_mu = math.log(api.mean_ms) - 0.5 * api.sigma**2
        self.pages = api.pages
        self.pages_fast = api.pages_fast
        self.cpu_share = api.cpu_share
        self.render_share = api.render_share
        self.wait_chunk_ms = api.wait_chunk_ms
        self.network_bytes = api.network_bytes


class ActionPlan:
    """Statics of one (app, action) pair, grouped per input event."""

    __slots__ = (
        "app", "action", "handler_frame", "events", "ops_by_event",
        "op_count", "has_network",
    )

    def __init__(self, app, action, environment):
        self.app = app
        self.action = action
        self.handler_frame = action.handler_frame(app.package)
        self.events = tuple(
            tuple(
                OpPlan(op, app.package, self.handler_frame, environment)
                for op in event_spec.operations
            )
            for event_spec in action.events
        )
        # Input-event specs are looked up by identity: the engine posts
        # the spec objects themselves to the looper.
        self.ops_by_event = {
            id(spec): ops for spec, ops in zip(action.events, self.events)
        }
        self.op_count = sum(len(ops) for ops in self.events)
        self.has_network = any(
            plan.network_bytes > 0 and not plan.on_worker
            for ops in self.events
            for plan in ops
        )

    def ops_for(self, event_spec, package, environment):
        """Op plans for *event_spec* (built ad hoc for foreign specs,
        e.g. messages pre-posted on a caller-supplied looper)."""
        ops = self.ops_by_event.get(id(event_spec))
        if ops is None:
            ops = tuple(
                OpPlan(op, package, self.handler_frame, environment)
                for op in event_spec.operations
            )
        return ops
