"""PMU register multiplexing.

Kernel software events (context-switches, task-clock, page-faults, ...)
are counted exactly by the OS.  PMU hardware events share a small set
of counter registers (6 on the LG V10); asking for more events than
registers makes perf time-multiplex them, observing each event for only
a fraction of the interval and scaling the result — an estimate with
error that grows with the multiplexing factor.  The paper cites this
("the counting accuracy may decrease ... 37 events vs 6 registers") as
one reason to select few events, and S-Checker's final three events are
all kernel events, hence exact.
"""

from repro.base.rng import stream
from repro.sim.counters import KERNEL_EVENTS, PMU_EVENTS


class PmuSampler:
    """Reads event totals from a timeline with multiplexing error.

    Parameters
    ----------
    device: DeviceProfile (supplies the register budget).
    events: the set of events being counted *simultaneously*; the
        number of PMU events among them determines the multiplexing
        factor applied to every PMU reading.
    seed: seed for the multiplexing-noise stream.
    """

    def __init__(self, device, events, seed=0):
        unknown = [e for e in events if e not in KERNEL_EVENTS + PMU_EVENTS]
        if unknown:
            raise ValueError(f"unknown performance events: {unknown}")
        self.device = device
        self.events = tuple(events)
        self.seed = seed
        self._kernel = frozenset(e for e in self.events if e in KERNEL_EVENTS)
        self._event_set = frozenset(self.events)
        self._pmu_count = len(self.events) - len(self._kernel)
        self._reads = 0

    @property
    def kernel_only(self):
        """True when every counted event is a kernel software event.

        Kernel-only samplers pair with a lazily-restricted
        :class:`~repro.sim.counters.CounterModel`: readings are exact
        (no multiplexing) and no noise streams are ever created — the
        configuration Hang Doctor's three-event filter runs in.
        """
        return self._pmu_count == 0

    @property
    def multiplex_factor(self):
        """How many events share each register (1.0 = no multiplexing)."""
        if self._pmu_count <= self.device.pmu_registers:
            return 1.0
        return self._pmu_count / self.device.pmu_registers

    def read(self, timeline, thread, event, start_ms=None, end_ms=None):
        """Estimated total of *event* on *thread* over a window."""
        if event not in self._event_set:
            raise KeyError(f"event {event!r} is not being counted")
        true_value = timeline.total(thread, event, start_ms, end_ms)
        if event in self._kernel:
            return true_value
        factor = self.multiplex_factor
        if factor <= 1.0 or true_value == 0.0:
            return true_value
        self._reads += 1
        rng = stream(self.seed, "pmu", thread, event, self._reads)
        sigma = 0.05 * (factor - 1.0)
        return float(true_value * rng.lognormal(mean=0.0, sigma=sigma))

    def read_difference(self, timeline, event, minuend, subtrahend,
                        start_ms=None, end_ms=None):
        """Estimated main−render style difference for one event."""
        return self.read(timeline, minuend, event, start_ms, end_ms) - self.read(
            timeline, subtrahend, event, start_ms, end_ms
        )
