"""Context-switch model.

The paper's key insight is that the best soft-hang-bug discriminators
are events "dictated by OS decisions on thread scheduling rather than
the particular source code of a soft hang bug".  This module models
exactly those decisions:

* **Involuntary switches**: a thread that accumulates a scheduler
  quantum of CPU time is preempted.
* **Voluntary switches**: a thread that blocks (I/O wait for blocking
  APIs, vsync/fence waits for UI work) yields once per wait chunk.

During a soft hang bug the *main* thread is busy (many switches of both
kinds) while the render thread is starved (few).  During UI work the
main thread sleeps on vsync while the render thread wakes every frame —
the main−render difference flips sign.  That emergent behaviour, not a
hard-coded label, is what S-Checker's filter keys on.
"""

from dataclasses import dataclass

from repro.base.kinds import ApiKind
from repro.sim.timeline import RENDER_THREAD


@dataclass(frozen=True)
class SwitchCounts:
    """Voluntary/involuntary context switches for one segment."""

    voluntary: int
    involuntary: int

    @property
    def total(self):
        """All context switches (voluntary + involuntary)."""
        return self.voluntary + self.involuntary


#: Render-thread wakeups per produced frame (input fence, draw pass,
#: buffer swap) — each is a voluntary context switch, which is what
#: makes the render thread the busier switcher during UI work.
RENDER_WAKEUPS_PER_FRAME = 3.0

#: Render-thread CPU milliseconds per produced frame.  Frames (and
#: hence wakeups) scale with the render *work* an operation generates,
#: not with wall time: a render thread starved by a blocked main
#: thread produces nothing and barely switches.
RENDER_FRAME_CPU_MS = 5.0


def wait_chunk_ms(kind, thread, device, override=None):
    """Average blocked milliseconds per voluntary switch (non-render).

    Blocking I/O yields in short chunks (device ``io_wait_chunk_ms``)
    unless the API declares its own *override* (a single long block
    yields once).  The main thread's UI-related waits are paced by the
    display (one wakeup per vsync).
    """
    if kind is ApiKind.UI:
        return device.vsync_period_ms
    if override is not None:
        return override
    return device.io_wait_chunk_ms


def segment_switches(kind, thread, wall_ms, cpu_ms, device, rng, chunk_override=None):
    """Sample context switches for one segment.

    Parameters
    ----------
    kind: ApiKind of the operation driving the segment.
    thread: which thread the segment runs on.
    wall_ms / cpu_ms: wall duration and CPU time of the segment.
    device: DeviceProfile supplying quantum and wait-chunk parameters.
    rng: numpy Generator.
    """
    cpu_ms = min(cpu_ms, wall_ms)
    blocked_ms = max(0.0, wall_ms - cpu_ms)
    involuntary_rate = cpu_ms / device.sched_quantum_ms
    if thread == RENDER_THREAD:
        frames = cpu_ms / RENDER_FRAME_CPU_MS
        voluntary_rate = frames * RENDER_WAKEUPS_PER_FRAME
    else:
        voluntary_rate = blocked_ms / wait_chunk_ms(
            kind, thread, device, chunk_override
        )
    involuntary = int(rng.poisson(involuntary_rate))
    voluntary = int(rng.poisson(voluntary_rate))
    return SwitchCounts(voluntary=voluntary, involuntary=involuntary)


def batch_switches(kinds, threads, wall_ms, cpu_ms, device, rng, overrides):
    """Pooled-draw :func:`segment_switches` over a whole batch.

    *wall_ms* / *cpu_ms* are parallel lists (cpu already clamped to
    wall), as are *kinds* / *threads* / *overrides*.  Returns
    ``(voluntary, involuntary)`` lists of ints.

    The rates are plain Python arithmetic (batches are small — one
    action's worth of segments — where numpy's per-array overhead
    costs more than it saves); only the two poisson draws are pooled.
    The draw layout differs from the scalar path (one poisson vector
    for involuntary rates, then one for voluntary, instead of an
    interleaved pair per segment) — batch callers are lazy-mode only.
    """
    involuntary_rate, voluntary_rate = batch_switch_rates(
        kinds, threads, wall_ms, cpu_ms, device, overrides
    )
    involuntary = rng.poisson(involuntary_rate).tolist()
    voluntary = rng.poisson(voluntary_rate).tolist()
    return voluntary, involuntary


def batch_switch_rates(kinds, threads, wall_ms, cpu_ms, device, overrides):
    """Poisson rates for a batch of segments, ``(involuntary,
    voluntary)`` lists — the deterministic half of
    :func:`batch_switches`, split out so a caller can pool the poisson
    draws themselves with other draws of the same kind."""
    quantum = device.sched_quantum_ms
    involuntary_rate = [cpu / quantum for cpu in cpu_ms]
    voluntary_rate = [
        (cpu / RENDER_FRAME_CPU_MS) * RENDER_WAKEUPS_PER_FRAME
        if thread == RENDER_THREAD
        else max(0.0, wall - cpu) / wait_chunk_ms(kind, thread, device, override)
        for kind, thread, wall, cpu, override in zip(
            kinds, threads, wall_ms, cpu_ms, overrides
        )
    ]
    return involuntary_rate, voluntary_rate


def cpu_migrations(switches, device, rng):
    """Sample CPU migrations given a switch count.

    Each switch gives the scheduler a chance to move the thread to
    another core; more cores -> more migration opportunities.
    """
    if switches.total == 0:
        return 0
    # Migration probability swings with transient core load, which the
    # app cannot observe — a large noise source on this event.
    probability = min(0.5, 0.03 * device.cores * rng.lognormal(0.0, 0.6))
    return int(rng.binomial(switches.total, probability))


def batch_migrations(switch_totals, device, rng):
    """Pooled-draw :func:`cpu_migrations` over a list of totals.

    Unlike the scalar path, the load-factor draw happens for every
    segment (even zero-switch ones) so the draw count stays fixed per
    batch shape — batch callers are lazy-mode only.  Returns a list of
    ints.
    """
    base = 0.03 * device.cores
    factors = rng.lognormal(0.0, 0.6, size=len(switch_totals)).tolist()
    probability = [min(0.5, base * factor) for factor in factors]
    return rng.binomial(switch_totals, probability).tolist()
