"""Context-switch model.

The paper's key insight is that the best soft-hang-bug discriminators
are events "dictated by OS decisions on thread scheduling rather than
the particular source code of a soft hang bug".  This module models
exactly those decisions:

* **Involuntary switches**: a thread that accumulates a scheduler
  quantum of CPU time is preempted.
* **Voluntary switches**: a thread that blocks (I/O wait for blocking
  APIs, vsync/fence waits for UI work) yields once per wait chunk.

During a soft hang bug the *main* thread is busy (many switches of both
kinds) while the render thread is starved (few).  During UI work the
main thread sleeps on vsync while the render thread wakes every frame —
the main−render difference flips sign.  That emergent behaviour, not a
hard-coded label, is what S-Checker's filter keys on.
"""

from dataclasses import dataclass

from repro.base.kinds import ApiKind
from repro.sim.timeline import RENDER_THREAD


@dataclass(frozen=True)
class SwitchCounts:
    """Voluntary/involuntary context switches for one segment."""

    voluntary: int
    involuntary: int

    @property
    def total(self):
        """All context switches (voluntary + involuntary)."""
        return self.voluntary + self.involuntary


#: Render-thread wakeups per produced frame (input fence, draw pass,
#: buffer swap) — each is a voluntary context switch, which is what
#: makes the render thread the busier switcher during UI work.
RENDER_WAKEUPS_PER_FRAME = 3.0

#: Render-thread CPU milliseconds per produced frame.  Frames (and
#: hence wakeups) scale with the render *work* an operation generates,
#: not with wall time: a render thread starved by a blocked main
#: thread produces nothing and barely switches.
RENDER_FRAME_CPU_MS = 5.0


def wait_chunk_ms(kind, thread, device, override=None):
    """Average blocked milliseconds per voluntary switch (non-render).

    Blocking I/O yields in short chunks (device ``io_wait_chunk_ms``)
    unless the API declares its own *override* (a single long block
    yields once).  The main thread's UI-related waits are paced by the
    display (one wakeup per vsync).
    """
    if kind is ApiKind.UI:
        return device.vsync_period_ms
    if override is not None:
        return override
    return device.io_wait_chunk_ms


def segment_switches(kind, thread, wall_ms, cpu_ms, device, rng, chunk_override=None):
    """Sample context switches for one segment.

    Parameters
    ----------
    kind: ApiKind of the operation driving the segment.
    thread: which thread the segment runs on.
    wall_ms / cpu_ms: wall duration and CPU time of the segment.
    device: DeviceProfile supplying quantum and wait-chunk parameters.
    rng: numpy Generator.
    """
    cpu_ms = min(cpu_ms, wall_ms)
    blocked_ms = max(0.0, wall_ms - cpu_ms)
    involuntary_rate = cpu_ms / device.sched_quantum_ms
    if thread == RENDER_THREAD:
        frames = cpu_ms / RENDER_FRAME_CPU_MS
        voluntary_rate = frames * RENDER_WAKEUPS_PER_FRAME
    else:
        voluntary_rate = blocked_ms / wait_chunk_ms(
            kind, thread, device, chunk_override
        )
    involuntary = int(rng.poisson(involuntary_rate))
    voluntary = int(rng.poisson(voluntary_rate))
    return SwitchCounts(voluntary=voluntary, involuntary=involuntary)


def cpu_migrations(switches, device, rng):
    """Sample CPU migrations given a switch count.

    Each switch gives the scheduler a chance to move the thread to
    another core; more cores -> more migration opportunities.
    """
    if switches.total == 0:
        return 0
    # Migration probability swings with transient core load, which the
    # app cannot observe — a large noise source on this event.
    probability = min(0.5, 0.03 * device.cores * rng.lognormal(0.0, 0.6))
    return int(rng.binomial(switches.total, probability))
