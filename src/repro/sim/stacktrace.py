"""Stack-trace sampling over simulated timelines.

The paper's Diagnoser collects main-thread stack traces during a soft
hang (roughly one every ~20 ms; Figure 6(b) shows 62 traces over a
1.3 s hang).  :class:`StackTraceSampler` walks a simulated timeline and
records the stack active on a thread at each sampling instant.

The frame/trace records themselves live in :mod:`repro.base.frames`
and are re-exported here for convenience.
"""

from repro.base.frames import Frame, StackTrace, occurrence_factor

__all__ = ["Frame", "StackTrace", "StackTraceSampler", "occurrence_factor"]


class StackTraceSampler:
    """Periodic stack-trace sampler over a simulated timeline.

    Parameters
    ----------
    period_ms:
        Sampling period.  The default 20 ms matches the paper's
        observed trace density (62 traces over a 1.3 s hang).
    faults:
        Optional :class:`~repro.faults.FaultInjector`.  When attached,
        a sampling window may be refused outright (raising
        :class:`~repro.faults.TraceCollectionError`, as a ptrace/
        SELinux denial would) and individual traces may come back
        truncated or unreadable (``frames=None``).
    """

    def __init__(self, period_ms=20.0, faults=None):
        if period_ms <= 0:
            raise ValueError(f"period_ms must be positive, got {period_ms}")
        self.period_ms = period_ms
        self.faults = faults

    def sample(self, timeline, thread, start_ms, end_ms):
        """Return the stack traces sampled on *thread* in [start, end).

        Sampling instants are ``start + k * period`` for integer k >= 0.
        An instant where the thread is idle yields an empty trace, which
        still counts toward occurrence-factor denominators.  Frames of a
        *blocked* operation remain on the stack: the timeline keeps the
        operation's segment active while it waits on I/O, exactly as a
        real sampler would observe.
        """
        if end_ms < start_ms:
            raise ValueError(
                f"end_ms ({end_ms}) must not precede start_ms ({start_ms})"
            )
        if self.faults is not None:
            self.faults.trace_collection_fault()
        traces = []
        instant = start_ms
        while instant < end_ms:
            frames = timeline.stack_at(thread, instant)
            traces.append(StackTrace(time_ms=instant, frames=frames))
            instant += self.period_ms
        if self.faults is not None:
            traces = self.faults.mangle_traces(traces)
        return traces
