"""Execution timelines.

A :class:`Timeline` records what each thread of an app did during a
simulated interval as a list of :class:`Segment` objects.  A segment is
one operation's occupancy of one thread: its wall-clock span, the stack
frames active for its whole duration (a blocked operation keeps its
frames on the stack), and the performance-event counts it accrued.

Counter *queries* over arbitrary windows pro-rate each segment's counts
by overlap fraction; whole-segment totals are exact.  This supports
both end-of-action counter reads (S-Checker) and periodic sampling
(Figure 5's time series, the utilization baselines).
"""

import bisect
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Canonical thread names used across the simulator.
MAIN_THREAD = "main"
RENDER_THREAD = "render"
WORKER_THREAD = "worker"


@dataclass(frozen=True)
class Segment:
    """One operation's occupancy of one thread."""

    thread: str
    start_ms: float
    end_ms: float
    #: Stack frames active during the segment (outermost first).  Empty
    #: for synthetic idle/settle segments.
    frames: Tuple = ()
    #: Performance-event counts accrued over the whole segment.
    counts: Dict[str, float] = field(default_factory=dict)
    #: The Operation that produced the segment (None for settle work).
    op: Optional[object] = None
    #: CPU milliseconds consumed within the segment (<= wall duration).
    cpu_ms: float = 0.0

    def __post_init__(self):
        if self.end_ms < self.start_ms:
            raise ValueError(
                f"segment ends ({self.end_ms}) before it starts ({self.start_ms})"
            )

    @property
    def duration_ms(self):
        """Wall-clock duration of the segment."""
        return self.end_ms - self.start_ms

    def overlap_fraction(self, start_ms, end_ms):
        """Fraction of the segment falling inside [start, end)."""
        if self.duration_ms == 0:
            return 1.0 if start_ms <= self.start_ms < end_ms else 0.0
        lo = max(self.start_ms, start_ms)
        hi = min(self.end_ms, end_ms)
        if hi <= lo:
            return 0.0
        return (hi - lo) / self.duration_ms

    def count_in(self, event, start_ms, end_ms):
        """Pro-rated count of *event* inside [start, end)."""
        total = self.counts.get(event, 0.0)
        if total == 0.0:
            return 0.0
        return total * self.overlap_fraction(start_ms, end_ms)


class Timeline:
    """Per-thread sequence of execution segments with counter queries."""

    def __init__(self):
        self._segments = {}
        self._starts = {}

    def add(self, segment):
        """Append a segment (segments per thread must be time-ordered)."""
        per_thread = self._segments.setdefault(segment.thread, [])
        starts = self._starts.setdefault(segment.thread, [])
        if per_thread and segment.start_ms < per_thread[-1].start_ms:
            raise ValueError(
                f"segments on {segment.thread!r} must be added in start order"
            )
        per_thread.append(segment)
        starts.append(segment.start_ms)
        return segment

    def extend(self, segments):
        """Append several segments."""
        for segment in segments:
            self.add(segment)

    def threads(self):
        """Names of threads that have at least one segment."""
        return sorted(self._segments)

    def segments(self, thread=None):
        """Segments of one thread, or of all threads in time order."""
        if thread is not None:
            return list(self._segments.get(thread, []))
        merged = [seg for segs in self._segments.values() for seg in segs]
        return sorted(merged, key=lambda seg: (seg.start_ms, seg.thread))

    @property
    def start_ms(self):
        """Earliest segment start (0.0 for an empty timeline)."""
        starts = [segs[0].start_ms for segs in self._segments.values() if segs]
        return min(starts) if starts else 0.0

    @property
    def end_ms(self):
        """Latest segment end (0.0 for an empty timeline)."""
        ends = [
            max(seg.end_ms for seg in segs)
            for segs in self._segments.values()
            if segs
        ]
        return max(ends) if ends else 0.0

    def total(self, thread, event, start_ms=None, end_ms=None):
        """Total count of *event* on *thread* within [start, end)."""
        segments = self._segments.get(thread, [])
        if not segments:
            return 0.0
        if start_ms is None and end_ms is None:
            return sum(seg.counts.get(event, 0.0) for seg in segments)
        lo = self.start_ms if start_ms is None else start_ms
        hi = self.end_ms if end_ms is None else end_ms
        return sum(seg.count_in(event, lo, hi) for seg in segments)

    def difference(self, event, minuend, subtrahend, start_ms=None, end_ms=None):
        """``total(minuend) - total(subtrahend)`` for one event."""
        return self.total(minuend, event, start_ms, end_ms) - self.total(
            subtrahend, event, start_ms, end_ms
        )

    def cpu_ms(self, thread, start_ms=None, end_ms=None):
        """CPU milliseconds consumed by *thread* within [start, end)."""
        segments = self._segments.get(thread, [])
        if start_ms is None and end_ms is None:
            return sum(seg.cpu_ms for seg in segments)
        lo = self.start_ms if start_ms is None else start_ms
        hi = self.end_ms if end_ms is None else end_ms
        return sum(
            seg.cpu_ms * seg.overlap_fraction(lo, hi) for seg in segments
        )

    def stack_at(self, thread, time_ms):
        """Stack frames active on *thread* at *time_ms* (empty if idle)."""
        segments = self._segments.get(thread, [])
        starts = self._starts.get(thread, [])
        if not segments:
            return ()
        index = bisect.bisect_right(starts, time_ms) - 1
        # Walk backwards over overlapping candidates; the latest-started
        # segment covering the instant wins (nested/settle work).
        while index >= 0:
            segment = segments[index]
            if segment.start_ms <= time_ms < segment.end_ms:
                return segment.frames
            index -= 1
        return ()

    def segment_at(self, thread, time_ms):
        """Segment active on *thread* at *time_ms*, or None."""
        segments = self._segments.get(thread, [])
        starts = self._starts.get(thread, [])
        index = bisect.bisect_right(starts, time_ms) - 1
        while index >= 0:
            segment = segments[index]
            if segment.start_ms <= time_ms < segment.end_ms:
                return segment
            index -= 1
        return None

    def merge(self, other):
        """Append all segments of *other* (must not rewind any thread)."""
        for segment in other.segments():
            self.add(segment)
        return self
