"""Execution timelines.

A :class:`Timeline` records what each thread of an app did during a
simulated interval as a list of :class:`Segment` objects.  A segment is
one operation's occupancy of one thread: its wall-clock span, the stack
frames active for its whole duration (a blocked operation keeps its
frames on the stack), and the performance-event counts it accrued.

Counter *queries* over arbitrary windows pro-rate each segment's counts
by overlap fraction; whole-segment totals are exact.  This supports
both end-of-action counter reads (S-Checker) and periodic sampling
(Figure 5's time series, the utilization baselines).

Queries are index-bounded: each thread keeps its sorted start array and
a running maximum of segment ends, so windowed ``total``/``cpu_ms``
reads touch only the segments that can overlap the window, and
``stack_at``/``segment_at`` stop their backward walk as soon as no
earlier segment can still cover the instant.  Unwindowed totals are
maintained incrementally on :meth:`Timeline.add` and read in O(1) —
long-session monitors query totals per action, so unbounded scans were
quadratic in session length.
"""

import bisect
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Canonical thread names used across the simulator.
MAIN_THREAD = "main"
RENDER_THREAD = "render"
WORKER_THREAD = "worker"


@dataclass(frozen=True)
class Segment:
    """One operation's occupancy of one thread."""

    thread: str
    start_ms: float
    end_ms: float
    #: Stack frames active during the segment (outermost first).  Empty
    #: for synthetic idle/settle segments.
    frames: Tuple = ()
    #: Performance-event counts accrued over the whole segment.
    counts: Dict[str, float] = field(default_factory=dict)
    #: The Operation that produced the segment (None for settle work).
    op: Optional[object] = None
    #: CPU milliseconds consumed within the segment (<= wall duration).
    cpu_ms: float = 0.0

    def __post_init__(self):
        if self.end_ms < self.start_ms:
            raise ValueError(
                f"segment ends ({self.end_ms}) before it starts ({self.start_ms})"
            )

    @property
    def duration_ms(self):
        """Wall-clock duration of the segment."""
        return self.end_ms - self.start_ms

    def overlap_fraction(self, start_ms, end_ms):
        """Fraction of the segment falling inside [start, end)."""
        if self.duration_ms == 0:
            return 1.0 if start_ms <= self.start_ms < end_ms else 0.0
        lo = max(self.start_ms, start_ms)
        hi = min(self.end_ms, end_ms)
        if hi <= lo:
            return 0.0
        return (hi - lo) / self.duration_ms

    def count_in(self, event, start_ms, end_ms):
        """Pro-rated count of *event* inside [start, end)."""
        total = self.counts.get(event, 0.0)
        if total == 0.0:
            return 0.0
        return total * self.overlap_fraction(start_ms, end_ms)


def fast_segment(thread, start_ms, end_ms, frames, counts, op, cpu_ms):
    """Build a :class:`Segment` bypassing the frozen-dataclass init.

    A frozen dataclass routes every field through
    ``object.__setattr__`` and runs ``__post_init__`` validation; on
    the engine's columnar path, which builds segments from already
    start-ordered rows with ``end_ms = start_ms + wall``, that is pure
    overhead.  Callers must guarantee ``end_ms >= start_ms``.
    """
    segment = _new_segment(Segment)
    segment.__dict__.update(
        thread=thread, start_ms=start_ms, end_ms=end_ms,
        frames=frames, counts=counts, op=op, cpu_ms=cpu_ms,
    )
    return segment


_new_segment = object.__new__


class Timeline:
    """Per-thread sequence of execution segments with counter queries."""

    def __init__(self):
        self._segments = {}
        self._starts = {}
        # Running max of segment ends, parallel to _starts: the window
        # lower bound for overlap queries and the early-stop bound for
        # the stack_at/segment_at backward walk.
        self._cummax_ends = {}
        # Incremental unwindowed sums (event -> total, and CPU ms).
        self._event_totals = {}
        self._cpu_totals = {}

    def add(self, segment):
        """Append a segment (segments per thread must be time-ordered)."""
        thread = segment.thread
        per_thread = self._segments.setdefault(thread, [])
        starts = self._starts.setdefault(thread, [])
        cummax = self._cummax_ends.setdefault(thread, [])
        if per_thread and segment.start_ms < starts[-1]:
            raise ValueError(
                f"segments on {thread!r} must be added in start order"
            )
        per_thread.append(segment)
        starts.append(segment.start_ms)
        cummax.append(
            segment.end_ms if not cummax else max(cummax[-1], segment.end_ms)
        )
        totals = self._event_totals.setdefault(thread, {})
        for event, value in segment.counts.items():
            totals[event] = totals.get(event, 0.0) + value
        self._cpu_totals[thread] = (
            self._cpu_totals.get(thread, 0.0) + segment.cpu_ms
        )
        return segment

    def extend(self, segments):
        """Append several segments."""
        for segment in segments:
            self.add(segment)

    def add_batch(self, segments):
        """Append many segments, amortising per-thread bookkeeping.

        Same ordering contract as :meth:`add` (per-thread start order);
        the per-thread index arrays and running totals are looked up
        once per segment instead of via repeated ``setdefault`` calls —
        this is the engine's columnar ingest path.
        """
        seg_map = self._segments
        starts_map = self._starts
        cummax_map = self._cummax_ends
        totals_map = self._event_totals
        cpu_map = self._cpu_totals
        for segment in segments:
            thread = segment.thread
            per_thread = seg_map.get(thread)
            if per_thread is None:
                per_thread = seg_map[thread] = []
                starts = starts_map[thread] = []
                cummax = cummax_map[thread] = []
                totals = totals_map[thread] = {}
                cpu_map[thread] = 0.0
            else:
                starts = starts_map[thread]
                cummax = cummax_map[thread]
                totals = totals_map[thread]
            start_ms = segment.start_ms
            if starts and start_ms < starts[-1]:
                raise ValueError(
                    f"segments on {thread!r} must be added in start order"
                )
            end_ms = segment.end_ms
            per_thread.append(segment)
            starts.append(start_ms)
            if cummax and cummax[-1] > end_ms:
                cummax.append(cummax[-1])
            else:
                cummax.append(end_ms)
            for event, value in segment.counts.items():
                totals[event] = totals.get(event, 0.0) + value
            cpu_map[thread] += segment.cpu_ms

    def threads(self):
        """Names of threads that have at least one segment."""
        return sorted(self._segments)

    def segments(self, thread=None):
        """Segments of one thread, or of all threads in time order."""
        if thread is not None:
            return list(self._segments.get(thread, []))
        merged = [seg for segs in self._segments.values() for seg in segs]
        return sorted(merged, key=lambda seg: (seg.start_ms, seg.thread))

    @property
    def start_ms(self):
        """Earliest segment start (0.0 for an empty timeline)."""
        starts = [starts[0] for starts in self._starts.values() if starts]
        return min(starts) if starts else 0.0

    @property
    def end_ms(self):
        """Latest segment end (0.0 for an empty timeline)."""
        ends = [ends[-1] for ends in self._cummax_ends.values() if ends]
        return max(ends) if ends else 0.0

    def _window_slice(self, thread, lo, hi):
        """Index range of segments on *thread* that can overlap [lo, hi).

        A segment overlaps only if it starts before *hi* and ends at or
        after *lo* (``>=`` keeps zero-duration segments sitting exactly
        on the window start, which count as fully inside).  Both bounds
        come from sorted arrays, so the slice is found in O(log n).
        """
        starts = self._starts.get(thread)
        if not starts:
            return 0, 0
        upper = bisect.bisect_left(starts, hi)
        lower = bisect.bisect_left(self._cummax_ends[thread], lo, 0, upper)
        return lower, upper

    def total(self, thread, event, start_ms=None, end_ms=None):
        """Total count of *event* on *thread* within [start, end)."""
        if start_ms is None and end_ms is None:
            return self._event_totals.get(thread, {}).get(event, 0.0)
        segments = self._segments.get(thread, [])
        if not segments:
            return 0.0
        lo = self.start_ms if start_ms is None else start_ms
        hi = self.end_ms if end_ms is None else end_ms
        lower, upper = self._window_slice(thread, lo, hi)
        return sum(
            seg.count_in(event, lo, hi) for seg in segments[lower:upper]
        )

    def difference(self, event, minuend, subtrahend, start_ms=None, end_ms=None):
        """``total(minuend) - total(subtrahend)`` for one event."""
        return self.total(minuend, event, start_ms, end_ms) - self.total(
            subtrahend, event, start_ms, end_ms
        )

    def cpu_ms(self, thread, start_ms=None, end_ms=None):
        """CPU milliseconds consumed by *thread* within [start, end)."""
        if start_ms is None and end_ms is None:
            return self._cpu_totals.get(thread, 0.0)
        segments = self._segments.get(thread, [])
        if not segments:
            return 0.0
        lo = self.start_ms if start_ms is None else start_ms
        hi = self.end_ms if end_ms is None else end_ms
        lower, upper = self._window_slice(thread, lo, hi)
        return sum(
            seg.cpu_ms * seg.overlap_fraction(lo, hi)
            for seg in segments[lower:upper]
        )

    def stack_at(self, thread, time_ms):
        """Stack frames active on *thread* at *time_ms* (empty if idle)."""
        segment = self.segment_at(thread, time_ms)
        return segment.frames if segment is not None else ()

    def segment_at(self, thread, time_ms):
        """Segment active on *thread* at *time_ms*, or None."""
        segments = self._segments.get(thread, [])
        if not segments:
            return None
        starts = self._starts[thread]
        cummax = self._cummax_ends[thread]
        index = bisect.bisect_right(starts, time_ms) - 1
        # Walk backwards over overlapping candidates; the latest-started
        # segment covering the instant wins (nested/settle work).  Once
        # every earlier segment ends at or before the instant (running
        # max of ends), nothing further back can cover it.
        while index >= 0:
            if cummax[index] <= time_ms:
                return None
            segment = segments[index]
            if segment.start_ms <= time_ms < segment.end_ms:
                return segment
            index -= 1
        return None

    def merge(self, other):
        """Append all segments of *other* (must not rewind any thread)."""
        for segment in other.segments():
            self.add(segment)
        return self
