"""Deterministic telemetry: tracing spans, metrics, and exporters.

The observability layer of the reproduction (see
``docs/observability.md``).  Instrumented code throughout
``src/repro`` calls ``telemetry.current()`` and records spans,
instant events, and metrics; with no session active that returns a
shared zero-allocation no-op, so telemetry costs nothing and changes
nothing unless a ``--telemetry`` run turned it on.

Determinism is the defining property: timestamps come from the sim
clock or a logical tick counter (never wall time), records live on
semantic tracks with per-track sequence numbers, and shard-collected
telemetry merges associatively — so the trace and metrics exports are
byte-identical across ``--workers`` counts, repeat runs, and
checkpoint resume.  Nondeterministic supervision events travel a
separate advisory channel with no byte-identity claim.

This package deliberately imports nothing from the rest of
``repro`` (beyond the package ``__init__`` Python always runs), so
every layer can instrument itself without import cycles.
"""

from repro.telemetry.api import (
    NOOP,
    SHARD_BASE_TRACK,
    NoopTelemetry,
    Session,
    ShardTelemetry,
    SpanRecord,
    absorb_value,
    activate,
    active,
    collect_shard,
    current,
    deactivate,
    session,
)
from repro.telemetry.exporters import (
    EXPORT_FILENAMES,
    export_advisory_jsonl,
    export_chrome_trace,
    export_jsonl,
    export_metrics_text,
    render_trace_summary,
    span_self_times,
    top_spans_by_self_time,
    write_exports,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS_MS,
    MetricsRegistry,
    labeled,
)

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "EXPORT_FILENAMES",
    "MetricsRegistry",
    "NOOP",
    "NoopTelemetry",
    "SHARD_BASE_TRACK",
    "Session",
    "ShardTelemetry",
    "SpanRecord",
    "absorb_value",
    "activate",
    "active",
    "collect_shard",
    "current",
    "deactivate",
    "export_advisory_jsonl",
    "export_chrome_trace",
    "export_jsonl",
    "export_metrics_text",
    "labeled",
    "render_trace_summary",
    "session",
    "span_self_times",
    "top_spans_by_self_time",
    "write_exports",
]
