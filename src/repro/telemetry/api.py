"""The tracing API of :mod:`repro.telemetry`.

Design constraints (see ``docs/observability.md`` for the full story):

* **Deterministic timestamps.**  Spans inside simulated code carry the
  *sim clock* (the ``start_ms``/``end_ms`` of the execution they
  describe) via :meth:`Session.record_span`; orchestration-level spans
  with no sim time use a *logical tick clock* — a per-session counter
  that advances by one on every span boundary.  Neither ever reads
  wall time, so traces are byte-identical across repeat runs,
  ``--workers`` counts, and checkpoint resume.
* **Track-addressed records.**  Every record lands on a *track* (a
  named timeline — ``fleet/K9-mail``, ``chaos/rate0.2/AndStatus``,
  ``crowd/fleet4/d1/r0``) chosen by the code doing the work, *not* by
  the shard the scheduler happened to put it on.  Shard boundaries
  move with the worker count (Table 5 shards are worker-count slices);
  semantic tracks do not, which is what keeps exports byte-identical
  across ``--workers``.
* **Per-track sequence numbers.**  The parent session renumbers
  records per track as it absorbs shard carriers, and exporters sort
  by ``(track, seq)``; since each track's records arrive in one
  deterministic order (one carrier, or serial program order), the
  export is independent of shard completion *and* absorption order —
  including the resume case where journaled shards are absorbed
  before fresh ones.
* **Two channels.**  The records above are the *deterministic*
  channel.  Supervision events (pool rebuilds, deadline hits,
  checkpoint restores) legitimately differ run to run; they go to a
  separate *advisory* channel exported to its own file and excluded
  from every byte-identity claim.
* **Zero-allocation no-op.**  With no session active,
  :func:`current` returns a module-level singleton whose methods do
  nothing and whose context managers are cached — instrumented code
  pays one global read and one method call, allocates nothing, and
  perturbs no output.
"""

import contextlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.telemetry.metrics import DEFAULT_BUCKETS_MS, MetricsRegistry

#: Base track of shard sub-sessions: a sentinel the parent replaces
#: with the shard's journal key (or generated track) at absorb time.
SHARD_BASE_TRACK = ""


@dataclass
class SpanRecord:
    """One deterministic-channel record: a span or an instant event.

    Picklable by construction (builtins only) so records ride inside
    :class:`ShardTelemetry` carriers through process pools and
    checkpoint journals.
    """

    #: ``"span"`` (has duration) or ``"event"`` (instant).
    kind: str
    #: Timeline this record belongs to (semantic, not shard-derived).
    track: str
    #: Position within the track (renumbered at absorb time).
    seq: int
    #: Hierarchical dot-separated name (``core.action.process``).
    name: str
    #: Start timestamp — sim milliseconds or logical ticks.
    start: float
    #: End timestamp (== start for events).
    end: float
    #: Nesting depth of tick-clock spans at record time.
    depth: int
    #: Deterministic key/value details (builtins only).
    attrs: dict = field(default_factory=dict)


@dataclass
class ShardTelemetry:
    """Everything a shard observed, shipped back beside its value.

    Workers (and the serial/in-process execution paths, so every path
    produces identical carriers) run the shard function under a fresh
    :class:`Session` and return this picklable carrier; the parent
    absorbs it in submission order and unwraps ``value``.  Checkpoint
    journals store the whole carrier, so a resumed run replays the
    shard's telemetry exactly.
    """

    #: The shard function's actual return value.
    value: object
    #: Deterministic-channel records, in shard program order.
    records: List[SpanRecord] = field(default_factory=list)
    #: Advisory-channel ``(name, attrs)`` events, in occurrence order.
    advisory: List[Tuple[str, dict]] = field(default_factory=list)
    #: :meth:`MetricsRegistry.state` snapshot.
    metrics_state: dict = field(default_factory=dict)


class _NoopContext:
    """Reusable do-nothing context manager (shared singleton)."""

    __slots__ = ()

    def __enter__(self):
        """Enter: nothing to set up."""
        return None

    def __exit__(self, *exc):
        """Exit: nothing to tear down; never swallows exceptions."""
        return False


_NOOP_CONTEXT = _NoopContext()


class NoopTelemetry:
    """The disabled telemetry surface: every method is a no-op.

    Shares :class:`Session`'s method names so instrumented code calls
    ``current().span(...)`` unconditionally; with telemetry off this
    allocates nothing (the context managers are module singletons) and
    records nothing, keeping every output byte-identical to an
    uninstrumented run.
    """

    __slots__ = ()

    #: False — instrumentation can skip building expensive attrs.
    enabled = False

    def track(self, name):
        """No-op track scope."""
        return _NOOP_CONTEXT

    def span(self, name, **attrs):
        """No-op tick-clock span."""
        return _NOOP_CONTEXT

    def record_span(self, name, start_ms, end_ms, **attrs):
        """No-op sim-clock span."""

    def event(self, name, time_ms=None, **attrs):
        """No-op instant event."""

    def count(self, name, n=1):
        """No-op counter increment."""

    def gauge_set(self, name, value):
        """No-op gauge set."""

    def observe(self, name, value, buckets=DEFAULT_BUCKETS_MS):
        """No-op histogram observation."""

    def advisory_event(self, name, **attrs):
        """No-op advisory event."""


#: Shared do-nothing instance returned by :func:`current` when no
#: session is active.
NOOP = NoopTelemetry()


class _TickSpan:
    """Context manager recording one logical-tick-clock span."""

    __slots__ = ("_session", "_name", "_attrs", "_start", "_depth")

    def __init__(self, session, name, attrs):
        self._session = session
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        """Stamp the start tick and push one nesting level."""
        session = self._session
        self._start = session._tick()
        self._depth = session._depth
        session._depth += 1
        return self

    def __exit__(self, *exc):
        """Stamp the end tick and emit the span record."""
        session = self._session
        session._depth -= 1
        session._append(
            "span", self._name, self._start, session._tick(),
            self._depth, self._attrs,
        )
        return False


class _TrackScope:
    """Context manager routing nested records onto a named track."""

    __slots__ = ("_session", "_name")

    def __init__(self, session, name):
        self._session = session
        self._name = name

    def __enter__(self):
        """Push the track name."""
        self._session._track_stack.append(self._name)
        return self

    def __exit__(self, *exc):
        """Pop back to the enclosing track."""
        self._session._track_stack.pop()
        return False


class Session:
    """One active telemetry collection: records, metrics, advisory log.

    A session is activated with :func:`activate` (or the
    :func:`session` context manager); instrumented code reaches it via
    :func:`current`.  Worker processes run shards under their own
    sessions whose carriers the parent absorbs (see
    :func:`collect_shard` / :meth:`absorb`).
    """

    #: True — instrumentation may build detailed span attributes.
    enabled = True

    def __init__(self, base_track="main"):
        #: Deterministic-channel records in append order.
        self.records: List[SpanRecord] = []
        #: Advisory-channel ``(name, attrs)`` events.
        self.advisory: List[Tuple[str, dict]] = []
        #: The session's always-on metrics registry.
        self.metrics = MetricsRegistry()
        self._track_stack = [base_track]
        self._track_seq = {}
        self._depth = 0
        self._ticks = 0.0
        self._map_seq = 0

    # ------------------------------------------------------------ clocks

    def _tick(self):
        """Advance and return the logical tick clock."""
        self._ticks += 1.0
        return self._ticks

    # ----------------------------------------------------------- records

    def _append(self, kind, name, start, end, depth, attrs):
        track = self._track_stack[-1]
        seq = self._track_seq.get(track, 0)
        self._track_seq[track] = seq + 1
        self.records.append(
            SpanRecord(kind=kind, track=track, seq=seq, name=name,
                       start=start, end=end, depth=depth, attrs=attrs)
        )

    def track(self, name):
        """Scope: records inside land on track *name*.

        Use semantic names derived from the work itself (app, cell,
        device/round) — never from shard indices, which move with the
        worker count.
        """
        return _TrackScope(self, name)

    def span(self, name, **attrs):
        """Tick-clock span context manager for orchestration code."""
        return _TickSpan(self, name, attrs)

    def record_span(self, name, start_ms, end_ms, **attrs):
        """Record a completed sim-clock span (explicit timestamps)."""
        self._append("span", name, float(start_ms), float(end_ms),
                     self._depth, attrs)

    def event(self, name, time_ms=None, **attrs):
        """Record an instant event at sim time *time_ms* (or the next
        logical tick when omitted)."""
        when = self._tick() if time_ms is None else float(time_ms)
        self._append("event", name, when, when, self._depth, attrs)

    # ----------------------------------------------------------- metrics

    def count(self, name, n=1):
        """Increment counter *name* by *n*."""
        self.metrics.count(name, n)

    def gauge_set(self, name, value):
        """Set gauge *name* to *value*."""
        self.metrics.gauge_set(name, value)

    def observe(self, name, value, buckets=DEFAULT_BUCKETS_MS):
        """Record one histogram observation."""
        self.metrics.observe(name, value, buckets)

    # ---------------------------------------------------------- advisory

    def advisory_event(self, name, **attrs):
        """Record a nondeterministic supervision event.

        Advisory events go to their own export and carry no
        byte-identity guarantee — pool rebuilds, deadline hits, and
        checkpoint restores legitimately differ across runs.
        """
        self.advisory.append((name, attrs))

    # ------------------------------------------------------------ shards

    def next_map_seq(self):
        """Monotonic id for auto-generated shard track names."""
        self._map_seq += 1
        return self._map_seq

    def absorb(self, shard, default_track=None):
        """Fold one :class:`ShardTelemetry` carrier into this session.

        Records still on the shard's sentinel base track move to
        *default_track*; every record is renumbered with this
        session's per-track sequence counters, so absorption order
        only matters *within* a track — and each track's records
        arrive in one deterministic order by construction.
        """
        base = default_track if default_track is not None else "shard"
        for record in shard.records:
            track = record.track if record.track else base
            seq = self._track_seq.get(track, 0)
            self._track_seq[track] = seq + 1
            self.records.append(
                SpanRecord(kind=record.kind, track=track, seq=seq,
                           name=record.name, start=record.start,
                           end=record.end, depth=record.depth,
                           attrs=record.attrs)
            )
        for name, attrs in shard.advisory:
            self.advisory.append((name, attrs))
        if shard.metrics_state:
            self.metrics.merge_state(shard.metrics_state)


#: The active session, or None (module-global, single-threaded by
#: design: parent orchestration is serial, workers are processes).
_ACTIVE: Optional[Session] = None


def current():
    """The active :class:`Session`, or the shared no-op when inactive."""
    return _ACTIVE if _ACTIVE is not None else NOOP


def active():
    """True when a telemetry session is collecting."""
    return _ACTIVE is not None


def activate(new_session):
    """Install *new_session* as the active session; returns the
    previous one (pass it to :func:`deactivate` to restore)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = new_session
    return previous


def deactivate(previous=None):
    """Restore *previous* (usually :func:`activate`'s return value)."""
    global _ACTIVE
    _ACTIVE = previous


@contextlib.contextmanager
def session(base_track="main"):
    """Activate a fresh :class:`Session` for the block; yields it."""
    active_session = Session(base_track=base_track)
    previous = activate(active_session)
    try:
        yield active_session
    finally:
        deactivate(previous)


def collect_shard(fn, *args):
    """Run ``fn(*args)`` under a fresh shard session; return a carrier.

    This is the worker-side half of shard telemetry: the executor
    calls it (in workers *and* on the serial/in-process paths, so
    every path produces identical carriers) whenever the parent had a
    session active, and ships the resulting :class:`ShardTelemetry`
    back for :meth:`Session.absorb`.
    """
    shard_session = Session(base_track=SHARD_BASE_TRACK)
    previous = activate(shard_session)
    try:
        value = fn(*args)
    finally:
        deactivate(previous)
    return ShardTelemetry(
        value=value,
        records=shard_session.records,
        advisory=shard_session.advisory,
        metrics_state=(
            {} if shard_session.metrics.empty()
            else shard_session.metrics.state()
        ),
    )


def absorb_value(value, default_track=None):
    """Unwrap a shard result, absorbing its telemetry if present.

    Non-carrier values pass through untouched, so the call is safe on
    every shard result regardless of whether telemetry was active when
    the shard ran (e.g. values restored from an older journal).
    """
    if isinstance(value, ShardTelemetry):
        if _ACTIVE is not None:
            _ACTIVE.absorb(value, default_track)
        return value.value
    return value
