"""Exporters for :mod:`repro.telemetry` sessions.

Three deterministic-channel formats plus one advisory file:

* ``trace.jsonl`` — one JSON object per record (sorted by
  ``(track, seq)``, compact separators, sorted keys), the
  machine-greppable event log;
* ``trace.json`` — Chrome trace format (the JSON Array/Object format
  read by Perfetto and ``chrome://tracing``): tracks become threads,
  spans become complete ``"X"`` events, instants become ``"i"``;
* ``metrics.txt`` — the registry's plain-text rendering;
* ``executor.jsonl`` — the advisory channel (supervision events),
  which carries **no** byte-identity guarantee.

The first three are byte-identical across ``--workers`` counts,
repeat runs, and checkpoint resume — that property is what the
``trace-smoke`` CI job and ``tests/test_telemetry.py`` diff for.
"""

import json
import pathlib

#: Filenames written by :func:`write_exports`, deterministic channel
#: first.  ``execution.json`` is added when an ExecutionReport is
#: passed.
EXPORT_FILENAMES = (
    "trace.jsonl", "trace.json", "metrics.txt", "executor.jsonl",
)


def _sorted_records(session):
    return sorted(session.records, key=lambda r: (r.track, r.seq))


def export_jsonl(session):
    """The JSONL event log: one compact JSON object per record."""
    lines = []
    for record in _sorted_records(session):
        lines.append(json.dumps(
            {
                "type": record.kind,
                "track": record.track,
                "seq": record.seq,
                "name": record.name,
                "start_ms": record.start,
                "end_ms": record.end,
                "depth": record.depth,
                "attrs": record.attrs,
            },
            sort_keys=True, separators=(",", ":"),
        ))
    return "".join(line + "\n" for line in lines)


def export_chrome_trace(session):
    """Chrome trace format JSON (Perfetto / ``chrome://tracing``).

    Tracks map to threads of one process (thread names via ``"M"``
    metadata events); spans become complete ``"X"`` events with
    integer microsecond ``ts``/``dur`` (sim milliseconds or logical
    ticks, times 1000); instants become ``"i"`` events with
    thread scope.
    """
    records = _sorted_records(session)
    tracks = sorted({record.track for record in records})
    tids = {track: position + 1 for position, track in enumerate(tracks)}
    events = [{
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": "repro"},
    }]
    for track in tracks:
        events.append({
            "ph": "M", "pid": 1, "tid": tids[track],
            "name": "thread_name", "args": {"name": track},
        })
    for record in records:
        ts = int(round(record.start * 1000))
        base = {
            "pid": 1, "tid": tids[record.track], "name": record.name,
            "ts": ts, "cat": record.name.split(".", 1)[0],
            "args": record.attrs,
        }
        if record.kind == "span":
            base["ph"] = "X"
            base["dur"] = max(int(round(record.end * 1000)) - ts, 0)
        else:
            base["ph"] = "i"
            base["s"] = "t"
        events.append(base)
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"},
        sort_keys=True, separators=(",", ":"),
    ) + "\n"


def export_metrics_text(session):
    """The metrics registry's sorted plain-text summary."""
    lines = session.metrics.render_lines()
    return "".join(line + "\n" for line in lines)


def export_advisory_jsonl(session):
    """The advisory channel: supervision events, occurrence order.

    Pool rebuilds, deadline hits, and checkpoint restores differ
    legitimately between runs — this export is *excluded* from every
    byte-identity guarantee.
    """
    lines = []
    for position, (name, attrs) in enumerate(session.advisory):
        lines.append(json.dumps(
            {"seq": position, "name": name, "attrs": attrs},
            sort_keys=True, separators=(",", ":"),
        ))
    return "".join(line + "\n" for line in lines)


def write_exports(session, directory, report=None):
    """Write every export for *session* into *directory*.

    Writes the four standard files (:data:`EXPORT_FILENAMES`) and,
    when *report* (an :class:`~repro.parallel.ExecutionReport`) is
    given, ``execution.json`` with its :meth:`to_dict` — the advisory
    counters in machine-readable form.  Returns the written paths.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    contents = {
        "trace.jsonl": export_jsonl(session),
        "trace.json": export_chrome_trace(session),
        "metrics.txt": export_metrics_text(session),
        "executor.jsonl": export_advisory_jsonl(session),
    }
    if report is not None:
        contents["execution.json"] = json.dumps(
            report.to_dict(), indent=2, sort_keys=True
        ) + "\n"
    paths = []
    for name, text in contents.items():
        path = directory / name
        path.write_text(text)
        paths.append(path)
    return paths


def span_self_times(session):
    """Per-span self time: duration minus direct children's durations.

    A child is a span on the same track nested one level deeper and
    contained within the parent's time range.  Quadratic per track —
    meant for reports and examples, not hot paths.  Yields
    ``(record, self_time)`` pairs; times mix sim milliseconds and
    logical ticks depending on the span's clock domain.
    """
    by_track = {}
    for record in _sorted_records(session):
        if record.kind == "span":
            by_track.setdefault(record.track, []).append(record)
    for spans in by_track.values():
        for parent in spans:
            child_time = sum(
                child.end - child.start
                for child in spans
                if child is not parent
                and child.depth == parent.depth + 1
                and child.start >= parent.start
                and child.end <= parent.end
            )
            yield parent, (parent.end - parent.start) - child_time


def top_spans_by_self_time(session, limit=10):
    """Aggregate self time by span name; the *limit* heaviest first.

    Returns dicts with ``name``, ``count``, ``total_self`` (summed
    self time in the span's clock units) and ``mean_self``, sorted by
    total self time descending (name ascending on ties, for
    determinism).
    """
    totals = {}
    for record, self_time in span_self_times(session):
        entry = totals.setdefault(record.name, [0, 0.0])
        entry[0] += 1
        entry[1] += self_time
    rows = [
        {
            "name": name,
            "count": count,
            "total_self": total,
            "mean_self": total / count if count else 0.0,
        }
        for name, (count, total) in totals.items()
    ]
    rows.sort(key=lambda row: (-row["total_self"], row["name"]))
    return rows[:limit]


def render_trace_summary(session, limit=10):
    """Human-readable session summary: top spans plus the metrics."""
    lines = [f"top {limit} spans by self-time:"]
    rows = top_spans_by_self_time(session, limit=limit)
    if not rows:
        lines.append("  (no spans recorded)")
    for row in rows:
        lines.append(
            f"  {row['name']:<28} x{row['count']:<5} "
            f"self={row['total_self']:.3f} "
            f"mean={row['mean_self']:.3f}"
        )
    metrics = export_metrics_text(session)
    if metrics:
        lines.append("")
        lines.append(metrics.rstrip("\n"))
    return "\n".join(lines)
